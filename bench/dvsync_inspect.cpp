/**
 * @file
 * dvsync_inspect: read a frame-forensics dump and explain it.
 *
 * Input is the JSON written by RenderSystem::save_forensics /
 * MultiSurfaceSystem::save_forensics (or `chaos_campaign
 * --forensics=PATH`). The tool prints the run header, the per-cause
 * drop breakdown, the dropped refreshes with their attributed causes,
 * and the top-k worst frames by present latency — each with its full
 * causal span chain (input → UI → render → GPU → queue → display).
 *
 * Usage: dvsync_inspect DUMP.json [--top=K] [--golden]
 *   --top=K    how many worst frames / drops to detail (default 5)
 *   --golden   golden-check mode; output is already deterministic, the
 *              flag only asserts no environment-dependent lines sneak in
 *
 * Exits nonzero when the dump cannot be read or parsed, or when any
 * drop in it carries an unknown cause — a fully wired system must
 * attribute every drop, so an unknown-cause dump is a regression.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/drop_cause.h"
#include "obs/json_view.h"

using namespace dvs;

namespace {

double
ms(double ns)
{
    return ns / 1e6;
}

struct RankedFrame {
    const JsonValue *frame = nullptr;
    const JsonValue *surface = nullptr;
    double latency_ns = 0.0;
};

void
print_chain(const JsonValue &frame)
{
    for (const JsonValue &s : frame.at("spans").items()) {
        const double t0 = s.number_at("t0");
        const double t1 = s.number_at("t1", -1.0);
        if (t1 >= t0) {
            std::printf("      %-15s @%9.3fms  +%8.3fms\n",
                        s.string_at("stage").c_str(), ms(t0),
                        ms(t1 - t0));
        } else {
            std::printf("      %-15s @%9.3fms  +open\n",
                        s.string_at("stage").c_str(), ms(t0));
        }
    }
}

std::string
frame_title(const JsonValue &frame, const JsonValue &surface)
{
    char buf[128];
    const std::string name = surface.string_at("name");
    std::snprintf(buf, sizeof(buf), "%s%sframe %lld.%lld%s", name.c_str(),
                  name.empty() ? "" : " ",
                  (long long)frame.number_at("seg"),
                  (long long)frame.number_at("slot"),
                  frame.at("pre").as_bool() ? " (pre)" : "");
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ArgParser args(argc, argv);
    const int top = args.int_flag("top", 5);
    args.bool_flag("golden"); // output is deterministic either way
    const std::vector<std::string> paths = args.positional(1);
    args.finish();
    const std::string path = paths.empty() ? "" : paths.front();
    if (path.empty() || top < 1) {
        std::fprintf(stderr,
                     "usage: dvsync_inspect DUMP.json [--top=K] "
                     "[--golden]\n");
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "dvsync_inspect: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    std::string error;
    const JsonValue dump = JsonValue::parse(text.str(), &error);
    if (dump.is_null()) {
        std::fprintf(stderr, "dvsync_inspect: parse error: %s\n",
                     error.c_str());
        return 1;
    }
    if (dump.string_at("source") != "dvsync-forensics") {
        std::fprintf(stderr,
                     "dvsync_inspect: not a forensics dump (source=%s)\n",
                     dump.string_at("source", "?").c_str());
        return 1;
    }

    const std::vector<JsonValue> &surfaces = dump.at("surfaces").items();

    // ----- header + aggregate cause breakdown -------------------------
    std::uint64_t frames = 0, presents = 0;
    std::uint64_t causes[kDropCauseCount] = {};
    std::uint64_t drops = 0, injected = 0;
    for (const JsonValue &sf : surfaces) {
        for (const JsonValue &f : sf.at("frames").items()) {
            ++frames;
            if (f.number_at("present", -1.0) >= 0.0)
                ++presents;
        }
        for (int c = 0; c < kDropCauseCount; ++c) {
            const std::uint64_t n = std::uint64_t(
                sf.at("causes").number_at(to_string(DropCause(c))));
            causes[c] += n;
            drops += n;
        }
        injected += std::uint64_t(sf.number_at("injected_drops"));
    }

    std::printf("forensics: scenario=%s mode=%s surfaces=%zu\n",
                dump.string_at("scenario", "?").c_str(),
                dump.string_at("mode", "?").c_str(), surfaces.size());
    std::printf("frames=%llu presented=%llu dropped_refreshes=%llu "
                "(injected %llu)\n",
                (unsigned long long)frames, (unsigned long long)presents,
                (unsigned long long)drops, (unsigned long long)injected);

    std::printf("\ndrop causes:\n");
    std::printf("  %-15s %6s %7s\n", "cause", "count", "share");
    for (int c = 0; c < kDropCauseCount; ++c) {
        if (causes[c] == 0)
            continue;
        std::printf("  %-15s %6llu %6.1f%%\n", to_string(DropCause(c)),
                    (unsigned long long)causes[c],
                    drops ? 100.0 * double(causes[c]) / double(drops)
                          : 0.0);
    }
    if (drops == 0)
        std::printf("  (no drops)\n");

    // ----- dropped refreshes, worst-first -----------------------------
    if (drops > 0) {
        std::printf("\ndropped refreshes (first %d):\n", top);
        int shown = 0;
        for (const JsonValue &sf : surfaces) {
            for (const JsonValue &d : sf.at("drops").items()) {
                if (shown++ >= top)
                    break;
                std::printf("  @%9.3fms refresh=%-4lld cause=%s%s",
                            ms(d.number_at("t")),
                            (long long)d.number_at("refresh"),
                            d.string_at("cause").c_str(),
                            d.at("injected").as_bool() ? " (injected)"
                                                       : "");
                const std::string name = sf.string_at("name");
                if (!name.empty())
                    std::printf(" surface=%s", name.c_str());
                std::printf("\n");
            }
        }
    }

    // ----- top-k worst frames by present latency ----------------------
    std::vector<RankedFrame> ranked;
    for (const JsonValue &sf : surfaces) {
        for (const JsonValue &f : sf.at("frames").items()) {
            const double present = f.number_at("present", -1.0);
            const double timeline = f.number_at("timeline", -1.0);
            if (present < 0.0 || timeline < 0.0)
                continue;
            ranked.push_back(RankedFrame{&f, &sf, present - timeline});
        }
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedFrame &a, const RankedFrame &b) {
                         return a.latency_ns > b.latency_ns;
                     });
    if (ranked.size() > std::size_t(top))
        ranked.resize(std::size_t(top));

    std::printf("\nworst presented frames (by latency), top %d:\n", top);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const RankedFrame &r = ranked[i];
        std::printf("  #%zu %s latency=%.3fms trigger=%.3fms "
                    "present=%.3fms\n",
                    i + 1, frame_title(*r.frame, *r.surface).c_str(),
                    ms(r.latency_ns), ms(r.frame->number_at("trigger")),
                    ms(r.frame->number_at("present")));
        print_chain(*r.frame);
    }
    if (ranked.empty())
        std::printf("  (no presented frames)\n");

    // ----- metrics footer ---------------------------------------------
    const JsonValue &metrics = dump.at("metrics");
    if (metrics.is_object()) {
        const std::vector<JsonValue> &series = metrics.at("metrics").items();
        std::printf("\nmetrics: %zu series", series.size());
        std::size_t samples = 0;
        for (const JsonValue &m : series)
            samples = std::max(samples, m.at("samples").items().size());
        std::printf(", %zu samples at peak cadence\n", samples);
    }

    if (causes[int(DropCause::kUnknown)] > 0) {
        std::fprintf(stderr,
                     "dvsync_inspect: %llu drops carry an unknown cause\n",
                     (unsigned long long)causes[int(DropCause::kUnknown)]);
        return 1;
    }
    return 0;
}
