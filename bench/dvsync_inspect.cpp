/**
 * @file
 * dvsync_inspect: read a frame-forensics dump and explain it.
 *
 * Input is the JSON written by RenderSystem::save_forensics /
 * MultiSurfaceSystem::save_forensics (or `chaos_campaign
 * --forensics=PATH`). The tool prints the run header, the per-cause
 * drop breakdown, the dropped refreshes with their attributed causes,
 * and the top-k worst frames by present latency — each with its full
 * causal span chain (input → UI → render → GPU → queue → display).
 *
 * Usage: dvsync_inspect DUMP.json [--top=K] [--golden]
 *        dvsync_inspect --diff A.json B.json [--top=K]
 *        dvsync_inspect --metrics=DUMP.json
 *        dvsync_inspect --specimens=DIR
 *   --top=K    how many worst frames / drops to detail (default 5)
 *   --golden   golden-check mode; output is already deterministic, the
 *              flag only asserts no environment-dependent lines sneak in
 *   --diff     compare two dumps (e.g. the same trace replayed before
 *              and after a change, or under VSync vs D-VSync): per-cause
 *              drop deltas, frames whose presentation fate flipped, and
 *              the frames whose latency diverged most, with both causal
 *              chains printed side by side
 *   --metrics  dump the MetricsRegistry time series embedded in a
 *              forensics dump as CSV on stdout: one `t_ns` column plus
 *              one column per counter/gauge series, rows over the union
 *              of sample timestamps (histograms have no time axis and
 *              are skipped)
 *   --specimens list an observatory specimen directory: parse its
 *              manifest.json, print each captured offender (rank,
 *              session, score, cohort, violated SLOs, drop causes), and
 *              verify every listed .dvst file is present on disk
 *
 * Exits nonzero when a dump cannot be read or parsed, when a specimen
 * manifest references a missing .dvst file, or (single-dump mode) when
 * any drop in it carries an unknown cause — a fully wired system must
 * attribute every drop, so an unknown-cause dump is a regression.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/drop_cause.h"
#include "obs/json_view.h"

using namespace dvs;

namespace {

double
ms(double ns)
{
    return ns / 1e6;
}

struct RankedFrame {
    const JsonValue *frame = nullptr;
    const JsonValue *surface = nullptr;
    double latency_ns = 0.0;
};

void
print_chain(const JsonValue &frame)
{
    for (const JsonValue &s : frame.at("spans").items()) {
        const double t0 = s.number_at("t0");
        const double t1 = s.number_at("t1", -1.0);
        if (t1 >= t0) {
            std::printf("      %-15s @%9.3fms  +%8.3fms\n",
                        s.string_at("stage").c_str(), ms(t0),
                        ms(t1 - t0));
        } else {
            std::printf("      %-15s @%9.3fms  +open\n",
                        s.string_at("stage").c_str(), ms(t0));
        }
    }
}

std::string
frame_title(const JsonValue &frame, const JsonValue &surface)
{
    char buf[128];
    const std::string name = surface.string_at("name");
    std::snprintf(buf, sizeof(buf), "%s%sframe %lld.%lld%s", name.c_str(),
                  name.empty() ? "" : " ",
                  (long long)frame.number_at("seg"),
                  (long long)frame.number_at("slot"),
                  frame.at("pre").as_bool() ? " (pre)" : "");
    return buf;
}

/** Load + validate a forensics dump; exits on failure. */
JsonValue
load_dump(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "dvsync_inspect: cannot open %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    JsonValue dump = JsonValue::parse(text.str(), &error);
    if (dump.is_null()) {
        std::fprintf(stderr, "dvsync_inspect: parse error in %s: %s\n",
                     path.c_str(), error.c_str());
        std::exit(1);
    }
    if (dump.string_at("source") != "dvsync-forensics") {
        std::fprintf(stderr,
                     "dvsync_inspect: %s is not a forensics dump "
                     "(source=%s)\n",
                     path.c_str(), dump.string_at("source", "?").c_str());
        std::exit(1);
    }
    return dump;
}

/** A frame's identity across two dumps of the same workload. */
struct FrameKey {
    std::string surface;
    long long seg = 0;
    long long slot = 0;

    bool operator<(const FrameKey &o) const
    {
        if (surface != o.surface)
            return surface < o.surface;
        if (seg != o.seg)
            return seg < o.seg;
        return slot < o.slot;
    }
};

struct FrameFate {
    const JsonValue *frame = nullptr;
    const JsonValue *surface = nullptr;
    bool presented = false;
    double latency_ns = -1.0; ///< present - timeline, when presented
};

std::map<FrameKey, FrameFate>
index_frames(const JsonValue &dump)
{
    std::map<FrameKey, FrameFate> out;
    for (const JsonValue &sf : dump.at("surfaces").items()) {
        const std::string name = sf.string_at("name");
        for (const JsonValue &f : sf.at("frames").items()) {
            FrameKey key{name, (long long)f.number_at("seg"),
                         (long long)f.number_at("slot")};
            FrameFate fate;
            fate.frame = &f;
            fate.surface = &sf;
            const double present = f.number_at("present", -1.0);
            const double timeline = f.number_at("timeline", -1.0);
            fate.presented = present >= 0.0;
            if (present >= 0.0 && timeline >= 0.0)
                fate.latency_ns = present - timeline;
            // Pre-rendered frames can share (seg, slot) with a re-render
            // of the same content; keep the one that reached the screen.
            auto [it, inserted] = out.emplace(key, fate);
            if (!inserted && fate.presented && !it->second.presented)
                it->second = fate;
        }
    }
    return out;
}

void
tally_causes(const JsonValue &dump, std::uint64_t causes[kDropCauseCount])
{
    for (const JsonValue &sf : dump.at("surfaces").items())
        for (int c = 0; c < kDropCauseCount; ++c)
            causes[c] += std::uint64_t(
                sf.at("causes").number_at(to_string(DropCause(c))));
}

int
run_diff(const std::string &path_a, const std::string &path_b, int top)
{
    const JsonValue a = load_dump(path_a);
    const JsonValue b = load_dump(path_b);

    std::printf("diff: A=%s (scenario=%s mode=%s)\n", path_a.c_str(),
                a.string_at("scenario", "?").c_str(),
                a.string_at("mode", "?").c_str());
    std::printf("      B=%s (scenario=%s mode=%s)\n", path_b.c_str(),
                b.string_at("scenario", "?").c_str(),
                b.string_at("mode", "?").c_str());

    // ----- per-cause drop deltas --------------------------------------
    std::uint64_t causes_a[kDropCauseCount] = {};
    std::uint64_t causes_b[kDropCauseCount] = {};
    tally_causes(a, causes_a);
    tally_causes(b, causes_b);
    std::uint64_t drops_a = 0, drops_b = 0;
    for (int c = 0; c < kDropCauseCount; ++c) {
        drops_a += causes_a[c];
        drops_b += causes_b[c];
    }
    std::printf("\ndrop causes (A -> B):\n");
    std::printf("  %-15s %6s %6s %7s\n", "cause", "A", "B", "delta");
    for (int c = 0; c < kDropCauseCount; ++c) {
        if (causes_a[c] == 0 && causes_b[c] == 0)
            continue;
        std::printf("  %-15s %6llu %6llu %+7lld\n",
                    to_string(DropCause(c)),
                    (unsigned long long)causes_a[c],
                    (unsigned long long)causes_b[c],
                    (long long)causes_b[c] - (long long)causes_a[c]);
    }
    std::printf("  %-15s %6llu %6llu %+7lld\n", "total",
                (unsigned long long)drops_a, (unsigned long long)drops_b,
                (long long)drops_b - (long long)drops_a);

    // ----- presentation-fate flips ------------------------------------
    const std::map<FrameKey, FrameFate> frames_a = index_frames(a);
    const std::map<FrameKey, FrameFate> frames_b = index_frames(b);

    std::vector<const FrameKey *> gained, lost, only_a, only_b;
    struct Diverged {
        const FrameKey *key;
        const FrameFate *a;
        const FrameFate *b;
        double delta_ns;
    };
    std::vector<Diverged> diverged;
    for (const auto &[key, fa] : frames_a) {
        const auto it = frames_b.find(key);
        if (it == frames_b.end()) {
            only_a.push_back(&key);
            continue;
        }
        const FrameFate &fb = it->second;
        if (fa.presented != fb.presented) {
            (fb.presented ? gained : lost).push_back(&key);
        } else if (fa.latency_ns >= 0.0 && fb.latency_ns >= 0.0 &&
                   fa.latency_ns != fb.latency_ns) {
            diverged.push_back(
                Diverged{&key, &fa, &fb, fb.latency_ns - fa.latency_ns});
        }
    }
    for (const auto &[key, fb] : frames_b) {
        if (!frames_a.count(key))
            only_b.push_back(&key);
    }

    std::printf("\nframes: %zu in A, %zu in B (%zu only in A, %zu only "
                "in B)\n",
                frames_a.size(), frames_b.size(), only_a.size(),
                only_b.size());
    std::printf("fate flips: %zu presented in B but not A, %zu presented "
                "in A but not B\n",
                gained.size(), lost.size());
    const auto list_keys = [&](const char *title,
                               const std::vector<const FrameKey *> &keys) {
        if (keys.empty())
            return;
        std::printf("  %s:", title);
        int shown = 0;
        for (const FrameKey *k : keys) {
            if (shown++ >= top) {
                std::printf(" ...");
                break;
            }
            std::printf(" %s%s%lld.%lld", k->surface.c_str(),
                        k->surface.empty() ? "" : "/", k->seg, k->slot);
        }
        std::printf("\n");
    };
    list_keys("newly presented", gained);
    list_keys("newly dropped", lost);

    // ----- worst latency divergence, chains side by side --------------
    std::stable_sort(diverged.begin(), diverged.end(),
                     [](const Diverged &x, const Diverged &y) {
                         return std::abs(x.delta_ns) > std::abs(y.delta_ns);
                     });
    if (diverged.size() > std::size_t(top))
        diverged.resize(std::size_t(top));
    std::printf("\nlargest latency divergence (A -> B), top %d:\n", top);
    for (std::size_t i = 0; i < diverged.size(); ++i) {
        const Diverged &d = diverged[i];
        std::printf("  #%zu %s latency %.3fms -> %.3fms (%+.3fms)\n",
                    i + 1,
                    frame_title(*d.a->frame, *d.a->surface).c_str(),
                    ms(d.a->latency_ns), ms(d.b->latency_ns),
                    ms(d.delta_ns));
        std::printf("    chain in A:\n");
        print_chain(*d.a->frame);
        std::printf("    chain in B:\n");
        print_chain(*d.b->frame);
    }
    if (diverged.empty())
        std::printf("  (no shared presented frames diverged)\n");
    return 0;
}

/** `--metrics=DUMP.json`: the registry time series as CSV on stdout. */
int
run_metrics_csv(const std::string &path)
{
    const JsonValue dump = load_dump(path);
    const JsonValue &metrics = dump.at("metrics");
    if (!metrics.is_object()) {
        std::fprintf(stderr, "dvsync_inspect: %s carries no metrics block\n",
                     path.c_str());
        return 1;
    }

    // Counter/gauge series only: histograms are distributions, not time
    // series, so they have no row in a timestamp-keyed table.
    struct Series {
        const JsonValue *metric = nullptr;
        std::map<long long, double> by_time;
    };
    std::vector<Series> series;
    std::map<long long, std::size_t> times; // timestamp -> row ordinal
    for (const JsonValue &m : metrics.at("metrics").items()) {
        if (m.string_at("type") == "histogram")
            continue;
        Series s;
        s.metric = &m;
        for (const JsonValue &sample : m.at("samples").items()) {
            const std::vector<JsonValue> &pair = sample.items();
            if (pair.size() != 2)
                continue;
            const long long t = (long long)pair[0].as_number();
            s.by_time[t] = pair[1].as_number();
            times.emplace(t, 0);
        }
        series.push_back(std::move(s));
    }

    std::printf("t_ns");
    for (const Series &s : series)
        std::printf(",%s", s.metric->string_at("name").c_str());
    std::printf("\n");
    for (const auto &[t, unused] : times) {
        (void)unused;
        std::printf("%lld", t);
        for (const Series &s : series) {
            const auto it = s.by_time.find(t);
            if (it == s.by_time.end())
                std::printf(",");
            else
                std::printf(",%.10g", it->second);
        }
        std::printf("\n");
    }
    std::fprintf(stderr, "dvsync_inspect: %zu series, %zu rows\n",
                 series.size(), times.size());
    return 0;
}

/** `--specimens=DIR`: list an observatory capture directory. */
int
run_specimens(const std::string &dir)
{
    const std::string manifest_path = dir + "/manifest.json";
    std::ifstream in(manifest_path);
    if (!in) {
        std::fprintf(stderr, "dvsync_inspect: cannot open %s\n",
                     manifest_path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const JsonValue manifest = JsonValue::parse(text.str(), &error);
    if (manifest.is_null()) {
        std::fprintf(stderr, "dvsync_inspect: parse error in %s: %s\n",
                     manifest_path.c_str(), error.c_str());
        return 1;
    }
    if (manifest.string_at("source") != "dvsync-observatory") {
        std::fprintf(stderr,
                     "dvsync_inspect: %s is not an observatory manifest "
                     "(source=%s)\n",
                     manifest_path.c_str(),
                     manifest.string_at("source", "?").c_str());
        return 1;
    }

    const std::vector<JsonValue> &specimens =
        manifest.at("specimens").items();
    std::printf("observatory specimens: %s (%zu captured, schema %lld)\n",
                dir.c_str(), specimens.size(),
                (long long)manifest.number_at("schema"));

    int missing = 0;
    for (const JsonValue &sp : specimens) {
        const std::string file = sp.string_at("file");
        const std::string path = dir + "/" + file;
        std::ifstream probe(path, std::ios::binary);
        const bool present = bool(probe);
        if (!present)
            ++missing;

        std::string slos;
        for (const JsonValue &name : sp.at("slos").items()) {
            if (!slos.empty())
                slos += ", ";
            slos += name.as_string();
        }
        std::printf("  #%lld session %llu  score %.3f  cohort %s%s\n",
                    (long long)sp.number_at("rank"),
                    (unsigned long long)sp.number_at("session"),
                    sp.number_at("score_milli") / 1000.0,
                    sp.string_at("cohort", "?").c_str(),
                    present ? "" : "  [MISSING FILE]");
        std::printf("      file %s  slos [%s]  drops %llu/%lld  "
                    "stutters %llu  p99 %.2fms\n",
                    file.c_str(), slos.c_str(),
                    (unsigned long long)sp.number_at("drops"),
                    (long long)sp.number_at("frames_due"),
                    (unsigned long long)sp.number_at("stutters"),
                    sp.number_at("latency_p99_ms"));
        const JsonValue &causes = sp.at("drop_causes");
        if (causes.is_object()) {
            std::string breakdown;
            char buf[64];
            for (int c = 0; c < kDropCauseCount; ++c) {
                const char *name = to_string(DropCause(c));
                if (!causes.has(name))
                    continue;
                std::snprintf(buf, sizeof(buf), "%s%s %llu",
                              breakdown.empty() ? "" : ", ", name,
                              (unsigned long long)causes.number_at(name));
                breakdown += buf;
            }
            if (!breakdown.empty())
                std::printf("      drop causes: %s\n", breakdown.c_str());
        }
    }
    if (missing > 0) {
        std::fprintf(stderr,
                     "dvsync_inspect: %d specimen file(s) listed in %s "
                     "are missing on disk\n",
                     missing, manifest_path.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ArgParser args(argc, argv);
    const int top = args.int_flag("top", 5);
    args.bool_flag("golden"); // output is deterministic either way
    const bool diff = args.bool_flag("diff");
    const std::string metrics_path = args.string_flag("metrics");
    const std::string specimens_dir = args.string_flag("specimens");
    const bool standalone = !metrics_path.empty() || !specimens_dir.empty();
    const std::vector<std::string> paths =
        standalone ? std::vector<std::string>()
                   : args.positional(diff ? 2 : 1);
    args.finish();
    if (top < 1 || (!standalone && paths.size() != (diff ? 2u : 1u)) ||
        (standalone && diff) ||
        (!metrics_path.empty() && !specimens_dir.empty())) {
        std::fprintf(stderr,
                     "usage: dvsync_inspect DUMP.json [--top=K] "
                     "[--golden]\n"
                     "       dvsync_inspect --diff A.json B.json "
                     "[--top=K]\n"
                     "       dvsync_inspect --metrics=DUMP.json\n"
                     "       dvsync_inspect --specimens=DIR\n");
        return 2;
    }
    if (!metrics_path.empty())
        return run_metrics_csv(metrics_path);
    if (!specimens_dir.empty())
        return run_specimens(specimens_dir);
    if (diff)
        return run_diff(paths[0], paths[1], top);
    const std::string path = paths.front();

    const JsonValue dump = load_dump(path);

    const std::vector<JsonValue> &surfaces = dump.at("surfaces").items();

    // ----- header + aggregate cause breakdown -------------------------
    std::uint64_t frames = 0, presents = 0;
    std::uint64_t causes[kDropCauseCount] = {};
    std::uint64_t drops = 0, injected = 0;
    for (const JsonValue &sf : surfaces) {
        for (const JsonValue &f : sf.at("frames").items()) {
            ++frames;
            if (f.number_at("present", -1.0) >= 0.0)
                ++presents;
        }
        for (int c = 0; c < kDropCauseCount; ++c) {
            const std::uint64_t n = std::uint64_t(
                sf.at("causes").number_at(to_string(DropCause(c))));
            causes[c] += n;
            drops += n;
        }
        injected += std::uint64_t(sf.number_at("injected_drops"));
    }

    std::printf("forensics: scenario=%s mode=%s surfaces=%zu\n",
                dump.string_at("scenario", "?").c_str(),
                dump.string_at("mode", "?").c_str(), surfaces.size());
    std::printf("frames=%llu presented=%llu dropped_refreshes=%llu "
                "(injected %llu)\n",
                (unsigned long long)frames, (unsigned long long)presents,
                (unsigned long long)drops, (unsigned long long)injected);

    std::printf("\ndrop causes:\n");
    std::printf("  %-15s %6s %7s\n", "cause", "count", "share");
    for (int c = 0; c < kDropCauseCount; ++c) {
        if (causes[c] == 0)
            continue;
        std::printf("  %-15s %6llu %6.1f%%\n", to_string(DropCause(c)),
                    (unsigned long long)causes[c],
                    drops ? 100.0 * double(causes[c]) / double(drops)
                          : 0.0);
    }
    if (drops == 0)
        std::printf("  (no drops)\n");

    // ----- dropped refreshes, worst-first -----------------------------
    if (drops > 0) {
        std::printf("\ndropped refreshes (first %d):\n", top);
        int shown = 0;
        for (const JsonValue &sf : surfaces) {
            for (const JsonValue &d : sf.at("drops").items()) {
                if (shown++ >= top)
                    break;
                std::printf("  @%9.3fms refresh=%-4lld cause=%s%s",
                            ms(d.number_at("t")),
                            (long long)d.number_at("refresh"),
                            d.string_at("cause").c_str(),
                            d.at("injected").as_bool() ? " (injected)"
                                                       : "");
                const std::string name = sf.string_at("name");
                if (!name.empty())
                    std::printf(" surface=%s", name.c_str());
                std::printf("\n");
            }
        }
    }

    // ----- top-k worst frames by present latency ----------------------
    std::vector<RankedFrame> ranked;
    for (const JsonValue &sf : surfaces) {
        for (const JsonValue &f : sf.at("frames").items()) {
            const double present = f.number_at("present", -1.0);
            const double timeline = f.number_at("timeline", -1.0);
            if (present < 0.0 || timeline < 0.0)
                continue;
            ranked.push_back(RankedFrame{&f, &sf, present - timeline});
        }
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedFrame &a, const RankedFrame &b) {
                         return a.latency_ns > b.latency_ns;
                     });
    if (ranked.size() > std::size_t(top))
        ranked.resize(std::size_t(top));

    std::printf("\nworst presented frames (by latency), top %d:\n", top);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const RankedFrame &r = ranked[i];
        std::printf("  #%zu %s latency=%.3fms trigger=%.3fms "
                    "present=%.3fms\n",
                    i + 1, frame_title(*r.frame, *r.surface).c_str(),
                    ms(r.latency_ns), ms(r.frame->number_at("trigger")),
                    ms(r.frame->number_at("present")));
        print_chain(*r.frame);
    }
    if (ranked.empty())
        std::printf("  (no presented frames)\n");

    // ----- metrics footer ---------------------------------------------
    const JsonValue &metrics = dump.at("metrics");
    if (metrics.is_object()) {
        const std::vector<JsonValue> &series = metrics.at("metrics").items();
        std::printf("\nmetrics: %zu series", series.size());
        std::size_t samples = 0;
        for (const JsonValue &m : series)
            samples = std::max(samples, m.at("samples").items().size());
        std::printf(", %zu samples at peak cadence\n", samples);
    }

    if (causes[int(DropCause::kUnknown)] > 0) {
        std::fprintf(stderr,
                     "dvsync_inspect: %llu drops carry an unknown cause\n",
                     (unsigned long long)causes[int(DropCause::kUnknown)]);
        return 1;
    }
    return 0;
}
