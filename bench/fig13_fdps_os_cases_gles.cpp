/**
 * @file
 * Figure 13: D-VSync FDPS reduction for OS use cases with the GLES
 * backend — Mate 40 Pro (90 Hz, 9 cases) and Mate 60 Pro (120 Hz, 20
 * cases).
 *
 * Paper: Mate 40 Pro 3.17 -> 0.97 (-69.4%); Mate 60 Pro 7.51 -> 2.52
 * (-66.4%).
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/os_case_profiles.h"

using namespace dvs;
using namespace dvs::bench;

namespace {

void
run_config(OsConfig config, const DeviceConfig &device,
           double paper_avg_vs, double paper_avg_dv)
{
    std::printf("\n-- %s --\n", to_string(config));

    SwipeSetup setup = SwipeSetup::os_cases();
    setup.repeats = 3;

    TableReporter table(
        {"case", "paper", "VSync 4", "D-VSync 4", "reduction"});
    double sum_vs = 0, sum_dv = 0;
    int n = 0;
    for (const OsCase *c : cases_with_drops(config)) {
        const ProfileSpec raw = make_os_case_spec(*c, config);
        const std::uint64_t seed =
            std::hash<std::string>{}(raw.name) ^ std::uint64_t(config);
        const ProfileSpec spec =
            calibrate_baseline(raw, device, 4, setup, seed);
        const BenchRun vs = run_profile(spec, device, RenderMode::kVsync,
                                        4, setup, seed);
        const BenchRun dv = run_profile(spec, device, RenderMode::kDvsync,
                                        4, setup, seed);
        sum_vs += vs.fdps;
        sum_dv += dv.fdps;
        ++n;
        table.add_row({c->abbrev,
                       TableReporter::num(case_fdps(*c, config)),
                       TableReporter::num(vs.fdps),
                       TableReporter::num(dv.fdps),
                       TableReporter::num(
                           reduction_percent(vs.fdps, dv.fdps), 1) + "%"});
    }
    table.print();
    std::printf("paper:    avg %.2f -> %.2f (-%.1f%%)\n", paper_avg_vs,
                paper_avg_dv,
                reduction_percent(paper_avg_vs, paper_avg_dv));
    std::printf("measured: avg %.2f -> %.2f (-%.1f%%)\n", sum_vs / n,
                sum_dv / n, reduction_percent(sum_vs, sum_dv));
}

} // namespace

int
main()
{
    print_section("Figure 13: FDPS for OS use cases with GLES, "
                  "VSync 4 bufs vs D-VSync 4 bufs");
    run_config(OsConfig::kMate40Gles, mate40_pro(), 3.17, 0.97);
    run_config(OsConfig::kMate60Gles, mate60_pro(), 7.51, 2.52);
    return 0;
}
