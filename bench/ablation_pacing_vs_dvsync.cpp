/**
 * @file
 * Ablation: three architectures head-to-head — conventional VSync,
 * Swappy-style auto swap-interval pacing, and D-VSync.
 *
 * The paper's positioning (and the related-work critique of sub-60-FPS
 * pacing: "50 FPS in smartphones without G-Sync implies 10 janks on a
 * 60 Hz screen") in one table: pacing buys a steady cadence by conceding
 * refreshes; D-VSync delivers the full refresh rate with fewer drops
 * than either.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

struct Row {
    const char *workload;
    double heavy_rate;
    double heavy_max;
    double short_mean;
};

void
run_row(const Row &row, TableReporter &table)
{
    ProfileSpec spec;
    spec.name = row.workload;
    spec.heavy_per_sec = row.heavy_rate;
    spec.heavy_min_periods = 1.2;
    spec.heavy_max_periods = row.heavy_max;
    spec.heavy_alpha = 1.5;
    spec.short_mean_periods = row.short_mean;
    auto cost = make_cost_model(spec, 60.0, 123);
    Scenario sc = make_swipe_scenario(row.workload, 20, 600_ms, cost, 0.8);

    for (RenderMode mode :
         {RenderMode::kVsync, RenderMode::kPaced, RenderMode::kDvsync}) {
        SystemConfig cfg;
        cfg.device = pixel5();
        cfg.mode = mode;
        const BenchRun r = run_system(cfg, sc);
        table.add_row({row.workload, to_string(mode),
                       TableReporter::num(double(r.presents) /
                                          to_seconds(sc.active_duration()),
                                          1),
                       TableReporter::num(r.fdps),
                       std::to_string(r.stutters),
                       TableReporter::num(r.latency_mean_ms, 1)});
    }
}

} // namespace

int
main()
{
    print_section("Ablation: VSync vs swap-interval pacing vs D-VSync "
                  "(Pixel 5, 60 Hz)");

    TableReporter table({"workload", "architecture", "FPS", "FDPS",
                         "stutters", "latency ms"});
    const Row rows[] = {
        {"sporadic key frames", 3.0, 2.8, 0.45},
        {"frequent key frames", 8.0, 2.5, 0.45},
        {"sustained heavy bulk", 2.0, 2.2, 0.85},
    };
    for (const Row &row : rows)
        run_row(row, table);
    table.print();

    std::printf(
        "\nexpected shape: swap-interval pacing degrades to a lower "
        "steady rate under load\n(~30-40 FPS) whose conceded refreshes "
        "all count as janks by the industrial FDPS\nmetric — the "
        "related-work critique the paper cites; D-VSync keeps ~60 FPS "
        "with the\nfewest drops and stutters on every workload.\n");
    return 0;
}
