/**
 * @file
 * Ablation: DTV calibration interval under hardware vsync jitter.
 *
 * §5.1: "DTV calibrates the issued D-Timestamp every few frames with
 * hardware VSync signals to avoid error accumulation." This sweep runs a
 * jittery panel and varies how often DTV resamples the hardware into its
 * timing model, measuring the D-Timestamp promise error and the residual
 * frame drops.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/frame_cost.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

struct CalRun {
    double err_mean_us = 0.0;
    double err_max_us = 0.0;
    std::uint64_t drops = 0;
    std::uint64_t calibrations = 0;
};

CalRun
run_with_interval(int interval, Time jitter, std::uint64_t seed)
{
    auto cost = std::make_shared<ConstantCostModel>(2_ms, 5_ms);
    Scenario sc("cal");
    sc.animate(5_s, cost);

    SystemConfig cfg;
    cfg.device = pixel5();
    cfg.mode = RenderMode::kDvsync;
    cfg.vsync_jitter = jitter;
    cfg.dtv_calibration_interval = interval;
    cfg.seed = seed;
    RenderSystem sys(cfg, sc);
    sys.run();

    CalRun out;
    out.err_mean_us = to_us(Time(sys.dtv()->promise_error().mean()));
    out.err_max_us = to_us(Time(sys.dtv()->promise_error().max()));
    out.drops = sys.stats().frame_drops();
    out.calibrations = sys.dtv()->calibrations();
    return out;
}

} // namespace

int
main()
{
    print_section("Ablation: DTV calibration interval vs promise error "
                  "(Pixel 5, 250 us vsync jitter)");

    const Time jitter = 250_us;
    TableReporter table({"calibration interval", "samples taken",
                         "promise err mean us", "err max us", "drops"});
    for (int interval : {1, 2, 4, 8, 16, 32}) {
        const CalRun r = run_with_interval(interval, jitter, 91);
        table.add_row({std::to_string(interval),
                       std::to_string(r.calibrations),
                       TableReporter::num(r.err_mean_us, 1),
                       TableReporter::num(r.err_max_us, 1),
                       std::to_string(r.drops)});
    }
    table.print();

    const CalRun ideal = run_with_interval(1, 0, 91);
    std::printf("\nideal panel (no jitter): promise error %.1f us\n",
                ideal.err_mean_us);
    std::printf("expected shape: error grows with sparser calibration "
                "but stays far below one period (16667 us); frequent "
                "calibration recovers near-exact promises.\n");
    return 0;
}
