/**
 * @file
 * Ablation: animation correctness under load (§4.4).
 *
 * "DTV guarantees that animations never appear fast in accumulation or
 * slow down in long frames, with a uniform pacing just as the fixed
 * VSync rhythm." This bench plays a fling curve through increasingly
 * loaded pipelines and scores, for every displayed refresh, how far the
 * on-screen content is from where an ideally-timed frame would be
 * (after compensating each run's constant pipeline lag).
 */

#include <cstdio>

#include "anim/judder.h"
#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

JudderReport
score(RenderMode mode, double heavy_rate, std::uint64_t seed)
{
    ProfileSpec spec;
    spec.name = "anim";
    spec.heavy_per_sec = heavy_rate;
    spec.heavy_min_periods = 1.2;
    spec.heavy_max_periods = 3.0;
    spec.heavy_alpha = 1.4;
    auto cost = make_cost_model(spec, 60.0, seed);

    Scenario sc("fling");
    sc.animate(1_s, cost);
    SystemConfig cfg;
    cfg.device = pixel5();
    cfg.mode = mode;
    cfg.seed = seed;
    RenderSystem sys(cfg, sc);
    sys.run();

    Animation fling(std::make_shared<FlingCurve>(4.0), 0, 1_s, 0.0,
                    2400.0);
    // Walk the refreshes chronologically: presented refreshes update the
    // on-screen content; due drops keep showing the stale content and
    // are scored against their own refresh time.
    std::vector<DisplayedFrame> frames;
    Time on_screen = kTimeNone;
    for (const RefreshLog &r : sys.stats().refreshes()) {
        if (r.presented) {
            on_screen =
                sys.producer().record(r.frame_id).content_timestamp;
            frames.push_back({on_screen, r.time});
        } else if (r.drop && on_screen != kTimeNone) {
            frames.push_back({on_screen, r.time});
        }
    }
    return score_playback(fling, frames);
}

} // namespace

int
main()
{
    print_section("Ablation: animation position error under load "
                  "(2400 px fling, Pixel 5)");

    TableReporter table({"key frames/s", "VSync err px (mean/max)",
                         "D-VSync err px (mean/max)",
                         "VSync lag", "D-VSync lag"});
    for (double rate : {1.0, 3.0, 6.0, 10.0}) {
        const JudderReport vs = score(RenderMode::kVsync, rate, 17);
        const JudderReport dv = score(RenderMode::kDvsync, rate, 17);
        char vbuf[48], dbuf[48];
        std::snprintf(vbuf, sizeof(vbuf), "%.1f / %.1f",
                      vs.position_error_px.mean(), vs.max_error_px);
        std::snprintf(dbuf, sizeof(dbuf), "%.1f / %.1f",
                      dv.position_error_px.mean(), dv.max_error_px);
        table.add_row({TableReporter::num(rate, 0), vbuf, dbuf,
                       format_time(vs.content_offset),
                       format_time(dv.content_offset)});
    }
    table.print();

    std::printf("\nexpected shape: VSync shows tens of pixels of mean "
                "position error (repeats and\nstuffing shift content off "
                "the curve) and a multi-period content lag; D-VSync\n"
                "stays near zero on both at every load because frames "
                "sample the motion curve\nat their actual display time "
                "(§4.4).\n");
    return 0;
}
