/**
 * @file
 * Figure 14: trace-driven simulation of 15 mobile games on Mate 60 Pro.
 *
 * Exactly the paper's methodology: collect runtime traces (CPU and GPU
 * time of every frame) of the games' UI and scene animations, then replay
 * them under the VSync and the D-VSync decoupled pre-rendering patterns
 * and count frame drops. Paper: VSync 3 bufs avg 0.79 FDPS; D-VSync
 * 4 bufs 0.25 (-68.4%); 5 bufs -87.3%.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/game_traces.h"
#include "workload/trace.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

Experiment
game_point(const GameInfo &game, const FrameTrace &trace, RenderMode mode,
           int buffers)
{
    auto cost = std::make_shared<TraceCostModel>(trace);
    Scenario sc(game.name);
    // Games play continuously: one long scene-animation segment.
    sc.animate(60_s, cost, "scene");

    DeviceConfig device = mate60_pro();
    device.refresh_hz = game.rate_hz; // panel follows the game's rate
    device.vsync_buffers = 3;         // custom engines triple-buffer

    Experiment point;
    point.scenario = std::move(sc);
    point.config = SystemConfig()
                       .with_device(device)
                       .with_mode(mode)
                       .with_buffers(buffers);
    point.label = game.name;
    return point;
}

/** Calibrate the synthetic trace so VSync 3-buf FDPS matches Fig. 14. */
FrameTrace
calibrated_trace(const GameInfo &game, std::uint64_t seed,
                 const ExperimentRunner &runner)
{
    GameInfo adjusted = game;
    FrameTrace trace = make_game_trace(adjusted, 60_s, seed);
    for (int iter = 0; iter < 4; ++iter) {
        const double fdps =
            runner.run_one(game_point(game, trace, RenderMode::kVsync, 3))
                .fdps;
        if (fdps <= 0) {
            adjusted.paper_fdps *= 2.0;
        } else {
            const double ratio = game.paper_fdps / fdps;
            if (ratio > 0.9 && ratio < 1.1)
                break;
            adjusted.paper_fdps *=
                std::clamp(1.0 + 0.8 * (ratio - 1.0), 0.4, 2.5);
        }
        trace = make_game_trace(adjusted, 60_s, seed);
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    print_section("Figure 14: game simulation on Mate 60 Pro, "
                  "VSync 3 bufs vs D-VSync 4/5 bufs (trace replay)");

    TableReporter table({"game", "rate", "paper", "VSync 3", "D-VSync 4",
                         "D-VSync 5"});

    ArgParser args(argc, argv);
    const ExperimentRunner runner(args.jobs());
    args.finish();

    // Calibrate each game's trace, then replay every game under all
    // three buffer configurations as one parallel batch.
    const auto &games = game_list();
    std::vector<Experiment> points;
    for (const GameInfo &game : games) {
        const std::uint64_t seed = std::hash<std::string>{}(game.name);
        const FrameTrace trace = calibrated_trace(game, seed, runner);
        points.push_back(game_point(game, trace, RenderMode::kVsync, 3));
        points.push_back(game_point(game, trace, RenderMode::kDvsync, 4));
        points.push_back(game_point(game, trace, RenderMode::kDvsync, 5));
    }
    const std::vector<RunReport> results = runner.run(points);

    double sum_vs = 0, sum_d4 = 0, sum_d5 = 0;
    for (std::size_t i = 0; i < games.size(); ++i) {
        const GameInfo &game = games[i];
        const double vs = results[i * 3 + 0].fdps;
        const double d4 = results[i * 3 + 1].fdps;
        const double d5 = results[i * 3 + 2].fdps;
        sum_vs += vs;
        sum_d4 += d4;
        sum_d5 += d5;

        char rate[16];
        std::snprintf(rate, sizeof(rate), "%gHz", game.rate_hz);
        table.add_row({game.name, rate,
                       TableReporter::num(game.paper_fdps),
                       TableReporter::num(vs), TableReporter::num(d4),
                       TableReporter::num(d5)});
    }
    const double n = double(games.size());
    table.add_row({"AVERAGE", "", "0.79", TableReporter::num(sum_vs / n),
                   TableReporter::num(sum_d4 / n),
                   TableReporter::num(sum_d5 / n)});
    table.print();

    std::printf("\npaper:    avg 0.79 -> 0.25 (4 bufs, -68.4%%), "
                "5 bufs -87.3%%\n");
    std::printf("measured: avg %.2f -> %.2f (4 bufs, -%.1f%%), "
                "%.2f (5 bufs, -%.1f%%)\n",
                sum_vs / n, sum_d4 / n, reduction_percent(sum_vs, sum_d4),
                sum_d5 / n, reduction_percent(sum_vs, sum_d5));
    return 0;
}
