/**
 * @file
 * Trace corpus regression (`BENCH_trace.json`): replay every .dvst
 * capture in the versioned corpus and hold the determinism contract.
 *
 * Every corpus entry is loaded through the strict .dvst loader, then:
 *
 *  - replayed as recorded: a verbatim capture must reproduce its
 *    recorded dispatch hash and RunReport fingerprint bit-exactly
 *    (DESIGN.md §5i); a transformed capture replays as a deterministic
 *    scenario with nothing recorded to verify against;
 *  - replayed under both forced pacing modes (VSync and D-VSync), the
 *    paper's A/B comparison on real recorded sessions;
 *  - held to the campaign bar: no failed runs, zero invariant
 *    violations, and every dropped frame attributed to a cause.
 *
 * Output is byte-identical whatever --jobs or --sim-workers says — the
 * CI determinism check replays the corpus under several values of each
 * and compares stdout.
 *
 * Usage: trace_campaign [--corpus=DIR] [--jobs=N] [--sim-workers=N]
 *                       [--out=PATH] [--golden] [--write-extra=DIR]
 *   --corpus=DIR   directory scanned (non-recursively) for *.dvst
 *                  entries, replayed in name order (default traces)
 *   --sim-workers=N  parallel lane-dispatch workers inside each replay
 *                  (-1 = as recorded, 0 = serial, N = N workers; the
 *                  bit-exact contract holds at any worker count)
 *   --out=PATH     where to write the JSON record (default
 *                  BENCH_trace.json; "-" suppresses the file)
 *   --golden       deterministic full-report dump for the golden check
 *                  (per-entry replay reports, no JSON)
 *   --write-extra=DIR  derive the corpus's transformed entries from the
 *                  raw captures in --corpus (chaos-amplified.dvst from
 *                  chaos-everything.dvsync.dvst) into DIR, then exit
 *   --record-synthetics=DIR  record the two scripted corpus seeds
 *                  (anim-steady.dvst, interactive-swipe.dvst) into DIR,
 *                  then exit
 *
 * Exits nonzero on any load failure, contract divergence, failed run,
 * invariant violation, or unattributed drop.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "input/gesture.h"
#include "sim/logging.h"
#include "trace/session_recorder.h"
#include "trace/trace_replay.h"
#include "trace/transforms.h"
#include "workload/frame_cost.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

struct ModeStats {
    double fdps = 0.0;
    std::uint64_t drops = 0;
    std::uint64_t presents = 0;
};

struct EntryResult {
    std::string name;
    std::string error; ///< load / replay failure, empty = fine

    std::string label;
    bool verbatim = false;
    std::vector<std::string> lineage;
    std::string kind;

    std::string verify; ///< verbatim contract check, empty = held
    ModeStats recorded; ///< as-recorded replay
    ModeStats vsync;    ///< forced-VSync replay
    ModeStats dvsync;   ///< forced-D-VSync replay
    std::uint64_t violations = 0;
    std::uint64_t unattributed = 0;

    /** --golden payload: full reports of the three replays. */
    std::string golden_dump;
};

ModeStats
stats_of(const RunReport &r)
{
    return {r.fdps, r.drops, r.presents};
}

EntryResult
replay_entry(const std::filesystem::path &path, int sim_workers,
             bool golden)
{
    EntryResult res;
    res.name = path.filename().string();

    SessionCapture cap;
    std::string error;
    if (!SessionCapture::load(path.string(), cap, error)) {
        res.error = error;
        return res;
    }
    res.label = cap.label;
    res.verbatim = cap.verbatim;
    res.lineage = cap.lineage;
    res.kind = cap.kind == SessionCapture::Kind::kSingle ? "single"
                                                         : "multi";

    const auto check = [&](const ReplayResult &r, const char *leg) {
        res.violations += r.report.invariant_violations;
        res.unattributed +=
            r.report.drop_causes[std::size_t(DropCause::kUnknown)];
        if (!r.report.error.empty() && res.error.empty())
            res.error = std::string(leg) + " replay failed: " +
                        r.report.error;
        if (golden)
            res.golden_dump += std::string("--- ") + leg + "\n" +
                               r.report.debug_string() + "\n";
    };

    ReplayOptions opts;
    opts.sim_workers = sim_workers;
    const ReplayResult as_recorded = replay_session(cap, opts);
    res.recorded = stats_of(as_recorded.report);
    check(as_recorded, "as-recorded");
    if (cap.verbatim)
        res.verify = as_recorded.verify_against(cap);

    for (RenderMode mode : {RenderMode::kVsync, RenderMode::kDvsync}) {
        ReplayOptions forced;
        forced.sim_workers = sim_workers;
        forced.mode = mode;
        const ReplayResult r = replay_session(cap, forced);
        (mode == RenderMode::kVsync ? res.vsync : res.dvsync) =
            stats_of(r.report);
        check(r, to_string(mode));
    }
    return res;
}

void
write_extra(const std::string &corpus, const std::string &out_dir)
{
    const std::string source = corpus + "/chaos-everything.dvsync.dvst";
    SessionCapture cap;
    std::string error;
    if (!SessionCapture::load(source, cap, error))
        fatal("--write-extra needs %s: %s", source.c_str(), error.c_str());
    // Compress time 25% and worsen the heavy frames: the same recorded
    // chaos session pushed past its original load.
    const SessionCapture mutated =
        amplify_heavy_frames(time_warp(std::move(cap), 0.75), 4_ms, 1.5);
    const std::string dest = out_dir + "/chaos-amplified.dvst";
    if (!mutated.save(dest))
        fatal("cannot write %s", dest.c_str());
    std::fprintf(stderr, "derived capture written to %s\n", dest.c_str());
}

void
record_synthetics(const std::string &out_dir)
{
    const auto record = [&](RenderSystem &sys, const std::string &label,
                            const std::string &file) {
        sys.run();
        const SessionCapture cap = SessionRecorder::capture(sys, label);
        const std::string path = out_dir + "/" + file;
        if (!cap.save(path))
            fatal("cannot write %s", path.c_str());
        std::fprintf(stderr, "capture written to %s\n", path.c_str());
    };

    {
        // Steady animation with periodic key frames under D-VSync.
        auto cost = std::make_shared<PeriodicSpikeCostModel>(
            FrameCost{1_ms, 4_ms, 2_ms}, FrameCost{2_ms, 9_ms, 5_ms}, 9);
        Scenario sc("anim-steady");
        sc.animate(800_ms, cost).idle(100_ms).animate(400_ms, cost);
        SystemConfig cfg;
        cfg.mode = RenderMode::kDvsync;
        RenderSystem sys(cfg, sc);
        record(sys, "synthetic/anim-steady", "anim-steady.dvst");
    }
    {
        // A fast upward swipe (the Fig. 7 gesture) under D-VSync.
        GestureTiming timing;
        timing.duration = 300_ms;
        auto touch = std::make_shared<const TouchStream>(
            make_swipe(timing, 2000.0, 1500.0));
        auto cost = std::make_shared<ConstantCostModel>(2_ms, 6_ms);
        Scenario sc("swipe");
        sc.interact(touch, cost, "swipe").idle(50_ms);
        SystemConfig cfg;
        cfg.mode = RenderMode::kDvsync;
        RenderSystem sys(cfg, sc);
        record(sys, "synthetic/interactive-swipe",
               "interactive-swipe.dvst");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const std::string corpus = args.string_flag("corpus", "traces");
    const bool golden = args.bool_flag("golden");
    std::string out_path = args.string_flag("out", "BENCH_trace.json");
    const std::string extra_dir = args.string_flag("write-extra");
    const std::string synth_dir = args.string_flag("record-synthetics");
    const int jobs = args.jobs();
    const int sim_workers = args.int_flag("sim-workers", -1);
    args.finish();
    if (sim_workers < -1)
        fatal("--sim-workers must be >= -1");
    if (golden)
        out_path = "-";

    if (!synth_dir.empty()) {
        record_synthetics(synth_dir);
        return 0;
    }
    if (!extra_dir.empty()) {
        write_extra(corpus, extra_dir);
        return 0;
    }

    std::vector<std::filesystem::path> entries;
    {
        std::error_code ec;
        for (const auto &de :
             std::filesystem::directory_iterator(corpus, ec)) {
            if (de.path().extension() == ".dvst")
                entries.push_back(de.path());
        }
        if (ec)
            fatal("cannot scan corpus directory %s: %s", corpus.c_str(),
                  ec.message().c_str());
    }
    std::sort(entries.begin(), entries.end());
    if (entries.empty())
        fatal("corpus directory %s holds no .dvst entries",
              corpus.c_str());

    // Entries replay in parallel; results print in name order, so the
    // output is byte-stable whatever --jobs says.
    std::vector<EntryResult> results(entries.size());
    {
        std::atomic<std::size_t> next{0};
        const std::size_t workers = std::size_t(std::max(
            1, std::min<int>(jobs, int(entries.size()))));
        std::vector<std::thread> pool;
        for (std::size_t t = 0; t < workers; ++t) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < entries.size(); i = next.fetch_add(1))
                    results[i] =
                        replay_entry(entries[i], sim_workers, golden);
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    std::printf("trace corpus: %zu entries from %s\n\n", entries.size(),
                corpus.c_str());
    std::printf("%-32s %-6s %-8s %9s %7s %9s %7s %6s\n", "entry", "kind",
                "replay", "presents", "drops", "fdps[V]", "fdps[D]",
                "viols");
    int failures = 0;
    for (const EntryResult &r : results) {
        const char *status = !r.error.empty()        ? "ERROR"
                             : !r.verify.empty()     ? "DIVERGED"
                             : r.verbatim            ? "bitexact"
                             : "derived";
        std::printf("%-32s %-6s %-8s %9llu %7llu %9.4f %7.4f %6llu\n",
                    r.name.c_str(), r.kind.c_str(), status,
                    (unsigned long long)r.recorded.presents,
                    (unsigned long long)r.recorded.drops, r.vsync.fdps,
                    r.dvsync.fdps,
                    (unsigned long long)r.violations);
        if (!r.lineage.empty()) {
            std::printf("%-32s   lineage:", "");
            for (const std::string &s : r.lineage)
                std::printf(" [%s]", s.c_str());
            std::printf("\n");
        }
        if (!r.error.empty()) {
            std::printf("ERROR %s: %s\n", r.name.c_str(), r.error.c_str());
            ++failures;
        }
        if (!r.verify.empty()) {
            std::printf("CONTRACT %s: %s\n", r.name.c_str(),
                        r.verify.c_str());
            ++failures;
        }
        if (r.violations > 0 || r.unattributed > 0) {
            std::printf("BAR %s: %llu violations, %llu unattributed "
                        "drops\n",
                        r.name.c_str(), (unsigned long long)r.violations,
                        (unsigned long long)r.unattributed);
            ++failures;
        }
        if (golden)
            std::fputs(r.golden_dump.c_str(), stdout);
    }

    if (out_path != "-") {
        bench::BenchJson record("trace_campaign");
        record.u64("entries", entries.size());
        record.i64("failures", failures);
        std::string corpus_json = "[\n";
        char jbuf[512];
        for (std::size_t i = 0; i < results.size(); ++i) {
            const EntryResult &r = results[i];
            std::snprintf(
                jbuf, sizeof(jbuf),
                "    {\"entry\": \"%s\", \"kind\": \"%s\", "
                "\"verbatim\": %s, \"bitexact\": %s, "
                "\"presents\": %llu, \"drops\": %llu, "
                "\"fdps_vsync\": %.4f, \"fdps_dvsync\": %.4f, "
                "\"violations\": %llu}%s\n",
                r.name.c_str(), r.kind.c_str(),
                r.verbatim ? "true" : "false",
                r.verbatim && r.verify.empty() && r.error.empty()
                    ? "true"
                    : "false",
                (unsigned long long)r.recorded.presents,
                (unsigned long long)r.recorded.drops, r.vsync.fdps,
                r.dvsync.fdps, (unsigned long long)r.violations,
                i + 1 < results.size() ? "," : "");
            corpus_json += jbuf;
        }
        corpus_json += "  ]";
        record.raw("corpus", corpus_json);
        record.write(out_path);
        std::printf("trace record written to %s\n", out_path.c_str());
    }

    if (failures > 0) {
        std::printf("TRACE CAMPAIGN FAILED (%d)\n", failures);
        return 1;
    }
    return 0;
}
