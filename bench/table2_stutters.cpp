/**
 * @file
 * Table 2: user-perceptible stutters in the professional UX evaluation
 * tasks (Mate 60 Pro), VSync vs D-VSync.
 *
 * Each task is a composed scenario of multiple consecutive operations in
 * different scenes. The perceived stutters are scored by the stutter
 * perception model (a display hold of >= 2 refreshes, or a dense cluster
 * of single drops). Tasks mix deterministic animations (which D-VSync
 * pre-renders) with content-loading phases that depend on real-time data
 * (where D-VSync stays off), which is why some tasks improve by ~90% and
 * the shopping task barely moves — matching the paper's spread.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

/** Knobs describing one UX task. */
struct UxTask {
    const char *description;
    int paper_vsync;
    int paper_dvsync;
    int reps;                 ///< operations in the task
    double anim_heavy_rate;   ///< key frames/s in animated phases
    double anim_heavy_max;    ///< tail length (periods)
    double realtime_fraction; ///< share of phases that are real-time
    double realtime_heavy_rate;
};

Scenario
build_task(const UxTask &task, std::uint64_t seed)
{
    Scenario sc(task.description);
    Rng rng(seed);
    for (int rep = 0; rep < task.reps; ++rep) {
        // Transition animation (app open / page change / swipe): the
        // stutters of these tasks come from heavyweight key frames —
        // view-tree inflation, window blur — spanning several periods.
        ProfileSpec anim;
        anim.name = "anim";
        anim.heavy_per_sec = task.anim_heavy_rate;
        anim.heavy_min_periods = 2.4;
        anim.heavy_max_periods = task.anim_heavy_max;
        anim.heavy_alpha = 1.5;
        anim.heavy_burst = 0.05;
        sc.animate(400_ms,
                   make_cost_model(anim, 120.0, rng.next_u64()),
                   "transition");

        // Content phase: real-time loading for some share of the reps.
        const bool realtime =
            rng.uniform() < task.realtime_fraction;
        ProfileSpec content;
        content.name = "content";
        content.heavy_per_sec =
            realtime ? task.realtime_heavy_rate : task.anim_heavy_rate / 2;
        content.heavy_min_periods = realtime ? 3.0 : 1.5;
        content.heavy_max_periods = realtime ? 4.0 : 3.0;
        content.heavy_alpha = 1.5;
        auto cost = make_cost_model(content, 120.0, rng.next_u64());
        if (realtime)
            sc.realtime(600_ms, cost, "loading");
        else
            sc.animate(600_ms, cost, "scrolling");

        sc.idle(300_ms); // user re-targets
    }
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    print_section("Table 2: perceived stutters in UX evaluation tasks "
                  "(Mate 60 Pro, 120 Hz)");

    const UxTask tasks[] = {
        {"Cold start/close Top 20 apps, slide multitasking", 20, 12, 20,
         2.8, 6.0, 0.45, 4.0},
        {"Cold start Top 10 news/social apps, swipe up", 28, 3, 14, 6.0,
         3.3, 0.10, 4.0},
        {"Hot start Top 10 news/social apps, swipe up", 25, 2, 14, 5.2,
         3.2, 0.08, 4.0},
        {"Game to news app and swipe, x5", 20, 3, 12, 4.6, 3.3, 0.12,
         4.0},
        {"Short video comments and swipe, x5", 20, 2, 12, 4.6, 3.2, 0.10,
         4.0},
        {"Music app swipe and play, x5", 7, 0, 10, 1.3, 3.6, 0.05, 2.0},
        {"Shopping app products and details", 14, 13, 10, 1.2, 4.0, 0.85,
         4.5},
        {"Lifestyle app ads and restaurants", 40, 10, 12, 4.8, 4.5, 0.20,
         5.0},
    };

    // Every task under both architectures as one parallel batch; each
    // task's pair shares the seed so the workloads are identical.
    std::vector<Experiment> points;
    std::uint64_t seed = 1000;
    for (const UxTask &task : tasks) {
        seed += 17;
        for (RenderMode mode :
             {RenderMode::kVsync, RenderMode::kDvsync}) {
            Experiment point;
            point.scenario = build_task(task, seed);
            point.config = SystemConfig()
                               .with_device(mate60_pro())
                               .with_mode(mode)
                               .with_seed(seed);
            point.label = task.description;
            points.push_back(std::move(point));
        }
    }
    ArgParser args(argc, argv);
    const ExperimentRunner runner(args.jobs());
    args.finish();
    const std::vector<RunReport> results = runner.run(points);

    TableReporter table({"task", "VSync", "D-VSync", "reduction",
                         "paper VS", "paper DV"});
    std::uint64_t sum_vs = 0, sum_dv = 0;
    int paper_vs_total = 0, paper_dv_total = 0;
    for (std::size_t i = 0; i < std::size(tasks); ++i) {
        const UxTask &task = tasks[i];
        const std::uint64_t vs = results[i * 2 + 0].stutters;
        const std::uint64_t dv = results[i * 2 + 1].stutters;
        sum_vs += vs;
        sum_dv += dv;
        paper_vs_total += task.paper_vsync;
        paper_dv_total += task.paper_dvsync;
        table.add_row(
            {task.description, std::to_string(vs), std::to_string(dv),
             TableReporter::num(
                 reduction_percent(double(vs), double(dv)), 0) + "%",
             std::to_string(task.paper_vsync),
             std::to_string(task.paper_dvsync)});
    }
    table.print();

    std::printf("\npaper:    %d -> %d stutters over all tasks (-72.3%%)\n",
                paper_vs_total, paper_dv_total);
    std::printf("measured: %llu -> %llu stutters (-%.1f%%)\n",
                (unsigned long long)sum_vs, (unsigned long long)sum_dv,
                reduction_percent(double(sum_vs), double(sum_dv)));
    return 0;
}
