/**
 * @file
 * Governor campaign (`BENCH_governor.json`): closed-loop thermal governor
 * vs static configurations across the fleet's thermal envelopes.
 *
 * Every (tier, envelope) group runs a GPU-heavy soak (animation bursts
 * alternating with game-like realtime segments, costs scaled to the
 * panel period so all tiers see the same duty cycle) under four
 * policies:
 *
 *   vsync           baseline pacing, no pre-rendering
 *   dvsync-deep     D-VSync at full pre-render depth
 *   dvsync-shallow  D-VSync with the pre-render queue capped at 1
 *   governor        D-VSync + the closed-loop ladder (trim -> ltpo ->
 *                   dvfs -> watchdog handoff)
 *
 * All runs carry the tier's RC thermal plant; the `constrained` envelope
 * scales the chassis dissipation down (thin phone, hot day) so sustained
 * load trips the DVFS throttle. The frontier metric is
 * energy-per-stutter-avoided vs the VSync baseline of the same group:
 *
 *   eps = (E_policy - E_vsync) / (stutters_vsync - stutters_policy)
 *
 * printed as "n/a" when the policy avoided nothing (the NaN convention).
 * Acceptance bar: in at least one constrained group the governor must
 * beat every static D-VSync config on eps, every drop must carry a
 * cause, and a chaos-mix leg (everything-mix fault plans with the
 * governor engaged) must finish with zero invariant violations.
 *
 * Usage: governor_campaign [--seeds=N] [--jobs=N] [--out=PATH] [--golden]
 *                          [--sim-workers=N] [--record=PATH]
 *   --seeds=N    seeds per (tier, envelope, policy) cell (default 5)
 *   --sim-workers=N  parallel lane-dispatch workers inside each run
 *                (default 0 = serial; byte-identical either way)
 *   --out=PATH   where to write the JSON record (default
 *                BENCH_governor.json; "-" suppresses the file)
 *   --golden     deterministic single-seed replay dump for the golden
 *                check (per-run reports + the frontier table, no JSON)
 *   --record=PATH  record one canonical governed soak (first fleet tier,
 *                constrained envelope, governor policy, seed 1) as a
 *                replayable .dvst capture at PATH and exit
 *
 * Exits nonzero on any invariant violation, failed run, unattributed
 * drop, or if the governor loses a whole constrained envelope sweep.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "metrics/power_model.h"
#include "sim/logging.h"
#include "trace/session_recorder.h"
#include "workload/device_population.h"
#include "workload/frame_cost.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

struct Envelope {
    const char *name;
    double scale;
};

// `constrained` halves the sustained dissipation budget: the same soak
// that idles comfortably below the throttle point at nominal settles
// past it, so the plant trips and the ladder has something to govern.
constexpr Envelope kEnvelopes[] = {{"nominal", 1.0}, {"constrained", 0.5}};

enum PolicyKind { kVsyncBase = 0, kDeep, kShallow, kGoverned, kPolicies };

const char *const kPolicyNames[kPolicies] = {"vsync", "dvsync-deep",
                                             "dvsync-shallow", "governor"};

/**
 * The soak: two animation bursts (coherent frames, cheap re-renders)
 * split by game-like realtime segments at ~78% GPU duty. Costs are
 * fractions of the panel period so a 120 Hz flagship and a 60 Hz entry
 * phone run the same duty cycle and differ only in their envelopes.
 */
Scenario
soak_scenario(const DeviceConfig &dev)
{
    const Time p = dev.period();
    const auto cost = [&](double ui, double render, double gpu) {
        return std::make_shared<ConstantCostModel>(
            FrameCost{Time(ui * p), Time(render * p), Time(gpu * p)});
    };
    const auto anim = cost(0.06, 0.12, 0.50);
    const auto game = cost(0.06, 0.12, 0.78);
    Scenario sc("thermal-soak");
    sc.animate(900_ms, anim)
        .realtime(1200_ms, game)
        .animate(600_ms, anim)
        .realtime(900_ms, game);
    return sc;
}

/** Ladder thresholds pegged to the tier's throttle point. */
GovernorConfig
governor_for(const DeviceTier &tier)
{
    GovernorConfig g;
    g.enabled = true;
    const double throttle_c = 25.0 + tier.device.thermal_headroom_c;
    g.temp_demote_c = throttle_c - 2.0; // engage before the plant trips
    g.temp_promote_c = throttle_c - 6.0;
    return g;
}

SystemConfig
policy_config(const DeviceTier &tier, const Envelope &env, int policy,
              std::uint64_t seed, int sim_workers)
{
    SystemConfig cfg = SystemConfig()
                           .with_device(tier.device)
                           .with_seed(seed)
                           .with_sim_workers(sim_workers)
                           .with_thermal_envelope(env.scale);
    switch (policy) {
    case kVsyncBase:
        cfg.with_mode(RenderMode::kVsync);
        break;
    case kDeep:
        cfg.with_mode(RenderMode::kDvsync);
        break;
    case kShallow:
        cfg.with_mode(RenderMode::kDvsync).with_prerender_limit(1);
        break;
    case kGoverned:
        cfg.with_mode(RenderMode::kDvsync).with_governor(governor_for(tier));
        break;
    }
    return cfg;
}

struct Cell {
    std::string tier;
    std::string envelope;
    std::string policy;
    int runs = 0;
    double energy_mj = 0.0;
    std::uint64_t stutters = 0;
    std::uint64_t drops = 0;
    std::int64_t frames_due = 0;
    std::uint64_t presents = 0;
    std::uint64_t violations = 0;
    std::uint64_t trips = 0;
    double peak_c = 0.0; // max over runs
    int dvfs_end = 0;    // max over runs
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
    int rung_end = 0; // max over runs
    int errors = 0;
    RunActivity act; // summed, for PowerModel::percent_increase
};

void
accumulate(Cell &cell, const RunReport &r)
{
    ++cell.runs;
    cell.energy_mj += r.energy_mj;
    cell.stutters += r.stutters;
    cell.drops += r.drops;
    cell.frames_due += r.frames_due;
    cell.presents += r.presents;
    cell.violations += r.invariant_violations;
    cell.trips += r.thermal_trips;
    cell.peak_c = std::max(cell.peak_c, r.peak_temp_c);
    cell.dvfs_end = std::max(cell.dvfs_end, r.dvfs_level_end);
    cell.demotions += r.governor_demotions;
    cell.promotions += r.governor_promotions;
    cell.rung_end = std::max(cell.rung_end, r.governor_rung_end);
    cell.act.wall_time += r.activity.wall_time;
    cell.act.pipeline_busy += r.activity.pipeline_busy;
    cell.act.frames_produced += r.activity.frames_produced;
    cell.act.predicted_frames += r.activity.predicted_frames;
    cell.act.gpu_mj += r.activity.gpu_mj;
    cell.act.dvsync_on = cell.act.dvsync_on || r.activity.dvsync_on;
}

/** Energy-per-stutter-avoided vs the group baseline; NaN = avoided none. */
double
eps_mj(const Cell &base, const Cell &cell)
{
    const std::int64_t avoided =
        std::int64_t(base.stutters) - std::int64_t(cell.stutters);
    if (avoided <= 0)
        return std::nan("");
    return (cell.energy_mj - base.energy_mj) / double(avoided);
}

/** NaN-aware cell formatter: the "n/a" convention for empty baselines. */
std::string
fmt_or_na(double v, const char *fmt)
{
    if (std::isnan(v))
        return "n/a";
    char buf[48];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    int seeds = args.int_flag("seeds", 5);
    bool golden = args.bool_flag("golden");
    std::string out_path = args.string_flag("out", "BENCH_governor.json");
    const int jobs = args.jobs();
    const int sim_workers = args.int_flag("sim-workers", 0);
    const std::string record_path = args.string_flag("record");
    args.finish();
    if (seeds < 1)
        fatal("--seeds must be >= 1");
    if (sim_workers < 0)
        fatal("--sim-workers must be >= 0");
    if (golden) {
        seeds = 1;
        out_path = "-";
    }

    const DevicePopulation fleet = DevicePopulation::paper_fleet();
    const std::vector<DeviceTier> &tiers = fleet.tiers();

    if (!record_path.empty()) {
        // Record a governed soak whose closed loop actually engages:
        // first tier, constrained envelope, ladder enabled.
        const DeviceTier &tier = tiers.front();
        RenderSystem sys(
            policy_config(tier, kEnvelopes[1], kGoverned, 1, 0),
            soak_scenario(tier.device));
        sys.run();
        const SessionCapture cap = SessionRecorder::capture(
            sys, tier.name + "/constrained/governor/seed1");
        if (!cap.save(record_path))
            fatal("cannot write capture %s", record_path.c_str());
        std::fprintf(stderr, "capture written to %s\n",
                     record_path.c_str());
        return 0;
    }

    // Grid, tier-major: every (tier, envelope, policy) cell holds
    // `seeds` runs; the chaos leg (everything-mix fault plans with the
    // governor engaged, one run per tier at the constrained envelope)
    // rides on the same stream.
    std::vector<Experiment> points;
    std::vector<Cell> cells;
    for (const DeviceTier &tier : tiers) {
        const Scenario scenario = soak_scenario(tier.device);
        for (const Envelope &env : kEnvelopes) {
            for (int policy = 0; policy < kPolicies; ++policy) {
                Cell cell;
                cell.tier = tier.name;
                cell.envelope = env.name;
                cell.policy = kPolicyNames[policy];
                cells.push_back(cell);
                for (int s = 0; s < seeds; ++s) {
                    const std::uint64_t seed = std::uint64_t(s) + 1;
                    Experiment point;
                    point.scenario = scenario;
                    point.config = policy_config(tier, env, policy, seed,
                                                 sim_workers);
                    point.label = tier.name + "/" + env.name + "/" +
                                  kPolicyNames[policy] + "/seed" +
                                  std::to_string(seed);
                    points.push_back(std::move(point));
                }
            }
        }
    }
    const std::size_t grid_points = points.size();

    // Chaos leg: the governor must hold the chaos bar (zero invariant
    // violations, every drop attributed) while actively reshaping the
    // pipeline it is injected into.
    const std::vector<FaultMix> mixes = FaultMix::campaign_mixes();
    const FaultMix *everything = &mixes.back();
    for (const FaultMix &mix : mixes) {
        if (mix.name == "everything")
            everything = &mix;
    }
    const Envelope chaos_env = kEnvelopes[1]; // constrained
    const std::size_t chaos_cell0 = cells.size();
    for (const DeviceTier &tier : tiers) {
        const Scenario scenario = soak_scenario(tier.device);
        const Time horizon = scenario.total_duration();
        Cell cell;
        cell.tier = tier.name;
        cell.envelope = chaos_env.name;
        cell.policy = "governor+chaos";
        cells.push_back(cell);
        for (int s = 0; s < seeds; ++s) {
            const std::uint64_t seed = std::uint64_t(s) + 1;
            Experiment point;
            point.scenario = scenario;
            point.config =
                policy_config(tier, chaos_env, kGoverned, seed, sim_workers)
                    .with_faults(std::make_shared<const FaultPlan>(
                        FaultPlan::generate(seed, horizon, *everything)));
            point.label = tier.name + "/chaos/governor/seed" +
                          std::to_string(seed);
            points.push_back(std::move(point));
        }
    }

    std::uint64_t cause_totals[kDropCauseCount] = {};
    std::uint64_t injected_drops = 0;
    std::uint64_t total_drops = 0;
    CallbackSink sink([&](std::size_t idx, RunReport &&r) {
        const std::size_t cell_idx =
            idx < grid_points
                ? idx / std::size_t(seeds)
                : chaos_cell0 + (idx - grid_points) / std::size_t(seeds);
        Cell &cell = cells[cell_idx];
        accumulate(cell, r);
        for (int c = 0; c < kDropCauseCount; ++c)
            cause_totals[c] += r.drop_causes[c];
        injected_drops += r.drops_injected;
        total_drops += r.drops;
        if (!r.error.empty()) {
            ++cell.errors;
            std::printf("ERROR %s: %s\n", r.label.c_str(), r.error.c_str());
        }
        if (r.invariant_violations > 0) {
            std::printf("VIOLATIONS %s: %llu\n", r.label.c_str(),
                        (unsigned long long)r.invariant_violations);
        }
        if (golden)
            std::printf("%s\n", r.debug_string().c_str());
    });
    const ExperimentRunner runner(jobs);
    runner.run_stream(points, sink);

    std::uint64_t total_violations = 0;
    std::uint64_t chaos_violations = 0;
    int total_errors = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        total_violations += cells[i].violations;
        if (i >= chaos_cell0)
            chaos_violations += cells[i].violations;
        total_errors += cells[i].errors;
    }

    std::printf("governor campaign: %d seeds x %zu tiers x %zu envelopes "
                "x %d policies + chaos leg (%zu runs)\n\n",
                seeds, tiers.size(), std::size(kEnvelopes), int(kPolicies),
                points.size());

    // The frontier table. eps is energy-per-stutter-avoided vs the
    // group's vsync baseline; pwr% is PowerModel::percent_increase over
    // the same baseline ("n/a" renders its NaN convention).
    const PowerModel pm;
    std::printf("%-12s %-11s %-15s %9s %8s %6s %6s %7s %5s %9s %9s %8s\n",
                "tier", "envelope", "policy", "energy_mJ", "stutters",
                "drops", "trips", "peak_C", "d/p", "eps_mJ", "pwr_%",
                "errs");
    bool governor_wins_constrained = false;
    std::vector<std::string> winning_groups;
    for (std::size_t g = 0; g + kPolicies <= chaos_cell0;
         g += kPolicies) {
        const Cell &base = cells[g + kVsyncBase];
        bool governor_wins = true;
        for (int policy = 0; policy < kPolicies; ++policy) {
            const Cell &c = cells[g + policy];
            const double eps = eps_mj(base, c);
            const double pct = pm.percent_increase(base.act, c.act);
            char dp[24];
            std::snprintf(dp, sizeof(dp), "%llu/%llu",
                          (unsigned long long)c.demotions,
                          (unsigned long long)c.promotions);
            std::printf("%-12s %-11s %-15s %9.1f %8llu %6llu %6llu %7.1f "
                        "%5s %9s %9s %8d\n",
                        c.tier.c_str(), c.envelope.c_str(),
                        c.policy.c_str(), c.energy_mj,
                        (unsigned long long)c.stutters,
                        (unsigned long long)c.drops,
                        (unsigned long long)c.trips, c.peak_c, dp,
                        fmt_or_na(eps, "%.2f").c_str(),
                        fmt_or_na(pct, "%.1f").c_str(), c.errors);
            // Frontier verdict: the governor must avoid stutters at a
            // strictly better energy price than every static D-VSync
            // config (a static that avoided nothing concedes the point).
            if (policy == kDeep || policy == kShallow) {
                const double gov = eps_mj(base, cells[g + kGoverned]);
                if (std::isnan(gov) ||
                    (!std::isnan(eps) && gov >= eps))
                    governor_wins = false;
            }
        }
        if (governor_wins &&
            cells[g].envelope == std::string("constrained")) {
            governor_wins_constrained = true;
            winning_groups.push_back(cells[g].tier + "/" +
                                     cells[g].envelope);
        }
    }
    for (std::size_t i = chaos_cell0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::printf("%-12s %-11s %-15s %9.1f %8llu %6llu %6llu %7.1f "
                    "%llu/%llu %9s %9s %8d\n",
                    c.tier.c_str(), c.envelope.c_str(), c.policy.c_str(),
                    c.energy_mj, (unsigned long long)c.stutters,
                    (unsigned long long)c.drops,
                    (unsigned long long)c.trips, c.peak_c,
                    (unsigned long long)c.demotions,
                    (unsigned long long)c.promotions, "-", "-", c.errors);
    }

    std::printf("\ndrop causes (all runs):");
    for (int c = 0; c < kDropCauseCount; ++c) {
        if (cause_totals[c] > 0)
            std::printf(" %s=%llu", to_string(DropCause(c)),
                        (unsigned long long)cause_totals[c]);
    }
    std::printf(" | injected %llu of %llu drops\n",
                (unsigned long long)injected_drops,
                (unsigned long long)total_drops);

    if (governor_wins_constrained) {
        std::printf("\nfrontier: governor beats every static config in");
        for (const std::string &w : winning_groups)
            std::printf(" %s", w.c_str());
        std::printf("\n");
    } else {
        std::printf("\nfrontier: governor does NOT beat the static "
                    "configs in any constrained group\n");
    }
    std::printf("total: %llu violations (%llu in chaos leg), %d failed "
                "runs\n",
                (unsigned long long)total_violations,
                (unsigned long long)chaos_violations, total_errors);

    if (out_path != "-") {
        bench::BenchJson record("governor_campaign");
        record.i64("seeds", seeds);
        record.u64("runs", points.size());
        record.u64("total_violations", total_violations);
        record.u64("chaos_violations", chaos_violations);
        record.i64("failed_runs", total_errors);
        record.boolean("governor_wins_constrained",
                       governor_wins_constrained);
        std::string cell_json = "[\n";
        char jbuf[512];
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            const double eps =
                i < chaos_cell0
                    ? eps_mj(cells[(i / kPolicies) * kPolicies], c)
                    : std::nan("");
            std::snprintf(
                jbuf, sizeof(jbuf),
                "    {\"tier\": \"%s\", \"envelope\": \"%s\", "
                "\"policy\": \"%s\", \"runs\": %d, "
                "\"energy_mj\": %.3f, \"stutters\": %llu, "
                "\"drops\": %llu, \"frames_due\": %lld, "
                "\"presents\": %llu, \"violations\": %llu, "
                "\"trips\": %llu, \"peak_c\": %.2f, \"dvfs_end\": %d, "
                "\"demotions\": %llu, \"promotions\": %llu, "
                "\"rung_end\": %d, \"eps_mj\": %s, \"errors\": %d}%s\n",
                c.tier.c_str(), c.envelope.c_str(), c.policy.c_str(),
                c.runs, c.energy_mj, (unsigned long long)c.stutters,
                (unsigned long long)c.drops, (long long)c.frames_due,
                (unsigned long long)c.presents,
                (unsigned long long)c.violations,
                (unsigned long long)c.trips, c.peak_c, c.dvfs_end,
                (unsigned long long)c.demotions,
                (unsigned long long)c.promotions, c.rung_end,
                std::isnan(eps) ? "null"
                                : fmt_or_na(eps, "%.3f").c_str(),
                c.errors, i + 1 < cells.size() ? "," : "");
            cell_json += jbuf;
        }
        cell_json += "  ]";
        record.raw("cells", cell_json);
        record.write(out_path);
        std::printf("governor record written to %s\n", out_path.c_str());
    }

    bool failed = total_violations > 0 || total_errors > 0;
    if (cause_totals[int(DropCause::kUnknown)] > 0) {
        std::printf("UNATTRIBUTED DROPS: %llu frames carry no cause\n",
                    (unsigned long long)
                        cause_totals[int(DropCause::kUnknown)]);
        failed = true;
    }
    if (!governor_wins_constrained) {
        std::printf("GOVERNOR LOSES THE CONSTRAINED FRONTIER\n");
        failed = true;
    }
    if (failed) {
        std::printf("GOVERNOR CAMPAIGN FAILED\n");
        return 1;
    }
    return 0;
}
