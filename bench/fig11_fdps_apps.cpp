/**
 * @file
 * Figure 11: D-VSync FDPS reduction for the 25 top apps on Google
 * Pixel 5 (60 Hz).
 *
 * For each app, 1000 frames are recorded by swiping the main page twice
 * a second, under VSync with triple buffering and D-VSync with 4, 5, and
 * 7 buffers. The paper reports an average baseline of 2.04 FDPS, reduced
 * to 0.58 (4 bufs, −71.6%), 0.25 (5 bufs, −87.7%), and 0.06 (7 bufs).
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace dvs;
using namespace dvs::bench;

int
main(int argc, char **argv)
{
    print_section(
        "Figure 11: FDPS for 25 apps on Google Pixel 5 (60 Hz), "
        "VSync 3 bufs vs D-VSync 4/5/7 bufs");

    const DeviceConfig device = pixel5();
    SwipeSetup setup;
    // 1000 frames at 60 Hz ~ 25 swipes of 0.7 * 500 ms each.
    setup.swipes = 48;

    struct Cell {
        RenderMode mode;
        int buffers;
    };
    const Cell cells[] = {{RenderMode::kVsync, 3},
                          {RenderMode::kDvsync, 4},
                          {RenderMode::kDvsync, 5},
                          {RenderMode::kDvsync, 7}};
    constexpr int kCells = 4;

    // Anchor every app's baseline, then measure all app x buffer-count
    // cells as one parallel batch.
    std::vector<ProfileSpec> apps;
    std::vector<Experiment> points;
    for (const ProfileSpec &raw : pixel5_app_profiles()) {
        const std::uint64_t seed = std::hash<std::string>{}(raw.name);
        apps.push_back(calibrate_baseline(raw, device, 3, setup, seed));
        for (const Cell &cell : cells) {
            auto cell_points = profile_experiments(
                apps.back(), device, cell.mode, cell.buffers, setup, seed);
            points.insert(points.end(), cell_points.begin(),
                          cell_points.end());
        }
    }
    ArgParser args(argc, argv);
    const ExperimentRunner runner(args.jobs());
    args.finish();
    // Streamed: repeats fold into their cell average on delivery.
    GroupAverageSink sink(setup.repeats);
    runner.run_stream(points, sink);
    const std::vector<RunReport> results = sink.take();

    TableReporter table({"app", "paper", "VSync 3", "D-VSync 4",
                         "D-VSync 5", "D-VSync 7", "reduction@5"});

    double sum_vs = 0, sum_d4 = 0, sum_d5 = 0, sum_d7 = 0, sum_paper = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const ProfileSpec &app = apps[i];
        const RunReport &vs = results[i * kCells + 0];
        const RunReport &d4 = results[i * kCells + 1];
        const RunReport &d5 = results[i * kCells + 2];
        const RunReport &d7 = results[i * kCells + 3];
        sum_paper += app.paper_fdps;
        sum_vs += vs.fdps;
        sum_d4 += d4.fdps;
        sum_d5 += d5.fdps;
        sum_d7 += d7.fdps;
        table.add_row({app.name, TableReporter::num(app.paper_fdps),
                       TableReporter::num(vs.fdps),
                       TableReporter::num(d4.fdps),
                       TableReporter::num(d5.fdps),
                       TableReporter::num(d7.fdps),
                       TableReporter::num(
                           reduction_percent(vs.fdps, d5.fdps), 1) + "%"});
    }
    const double n = double(apps.size());
    table.add_row({"AVERAGE", TableReporter::num(sum_paper / n),
                   TableReporter::num(sum_vs / n),
                   TableReporter::num(sum_d4 / n),
                   TableReporter::num(sum_d5 / n),
                   TableReporter::num(sum_d7 / n), ""});
    table.print();

    std::printf("\npaper:    avg 2.04 -> 0.58 (4 bufs, -71.6%%) "
                "-> 0.25 (5 bufs, -87.7%%) -> 0.06 (7 bufs)\n");
    std::printf("measured: avg %.2f -> %.2f (4 bufs, %.1f%%) "
                "-> %.2f (5 bufs, %.1f%%) -> %.2f (7 bufs, %.1f%%)\n",
                sum_vs / n, sum_d4 / n,
                -reduction_percent(sum_vs, sum_d4), sum_d5 / n,
                -reduction_percent(sum_vs, sum_d5), sum_d7 / n,
                -reduction_percent(sum_vs, sum_d7));
    return 0;
}
