/**
 * @file
 * Figure 1: CDF of frame rendering time on a 60 Hz screen.
 *
 * The paper's trace analysis finds a power-law distribution: 78.3% of
 * frames finish within one VSync period, and despite triple buffering
 * about 5% fail to finish on time, causing stutters. This bench samples
 * the frame-time distribution of a representative mix of the 25 app
 * profiles and prints the CDF series with the paper's landmarks.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/histogram.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;

int
main()
{
    print_section("Figure 1: CDF of frame rendering time (60 Hz)");

    const double period_ms = 1000.0 / 60.0;
    Histogram hist(0.0, 3.0 * period_ms, 90);

    // Sample every app profile equally: the population mix behind the
    // paper's trace corpus.
    const int frames_per_app = 4000;
    for (const ProfileSpec &app : pixel5_app_profiles()) {
        const PowerLawCostModel model(
            make_params(app, 60.0),
            std::hash<std::string>{}(app.name));
        for (int i = 0; i < frames_per_app; ++i)
            hist.add(to_ms(model.cost_for(i).total()));
    }

    std::printf("\nrendering time (ms)  CDF     \n");
    for (int i = 4; i < hist.bins(); i += 5) {
        const double edge = hist.bin_edge(i) + (3.0 * period_ms) / 90;
        std::printf("%8.2f             %6.4f  |%s\n", edge, hist.cdf_at(i),
                    ascii_bar(hist.cdf_at(i), 1.0, 40).c_str());
    }

    const double within_one = hist.cdf(period_ms);
    const double within_two = hist.cdf(2.0 * period_ms);
    std::printf("\npaper:    78.3%% of frames finish within 1 period; "
                "~5%% exceed the deadline headroom\n");
    std::printf("measured: %.1f%% within 1 period, %.1f%% within 2, "
                "%.1f%% beyond 2 periods\n",
                100.0 * within_one, 100.0 * within_two,
                100.0 * (1.0 - within_two));
    return 0;
}
