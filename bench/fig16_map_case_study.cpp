/**
 * @file
 * Figure 16 / §6.5 — Case study 1: the decoupling-aware map app.
 *
 * Zooming keeps two fingers on the screen while vector tiles load at new
 * zoom levels (heavy key frames). The map registers a Zooming Distance
 * Predictor (ZDP, a linear fit of the fingertip distance) on the IPL,
 * configures 5 buffers, and activates D-VSync only while zooming.
 *
 * Paper: 100% of frame drops eliminated, latency -30.2%, ZDP costs
 * 151.6 µs per frame (for 3600 frames recorded).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/input_prediction_layer.h"
#include "input/gesture.h"
#include "metrics/reporter.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

/** One zoom gesture: pinch out over 1.5 s with tile-load cost spikes. */
Scenario
zoom_scenario(std::uint64_t seed)
{
    Scenario sc("map");
    Rng rng(seed);
    for (int rep = 0; rep < 40; ++rep) { // ~3600 frames at 60 Hz
        GestureTiming timing;
        timing.duration = 1500_ms;
        timing.noise_px = 1.5;
        Rng noise = rng.fork();
        auto touch = std::make_shared<TouchStream>(
            make_pinch(timing, 180.0, 180.0 + rng.uniform(250.0, 450.0),
                       &noise));

        // Crossing a zoom level rasterizes a new tile pyramid: heavy key
        // frames roughly every 20 frames, plus a loaded short-frame base.
        auto cost = std::make_shared<PeriodicSpikeCostModel>(
            FrameCost{3_ms, 8_ms}, FrameCost{4_ms, 24_ms}, 20,
            rng.uniform_int(0, 19));
        sc.interact(touch, cost, "zoom");
        sc.idle(200_ms);
    }
    return sc;
}

struct MapRun {
    BenchRun run;
    double touch_error_px = 0.0;
    std::uint64_t predictions = 0;
};

/** Repackage a finished system into the common summary. */
MapRun
measure(RenderMode mode, bool with_zdp, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.device = pixel5();
    cfg.mode = mode;
    cfg.buffers = mode == RenderMode::kDvsync ? 5 : 3;
    cfg.seed = seed;
    RenderSystem sys(cfg, zoom_scenario(seed));
    if (with_zdp && sys.runtime()) {
        sys.runtime()->register_predictor(
            "zoom", std::make_shared<LinearPredictor>(80_ms));
    }
    sys.run();

    MapRun out;
    out.run.fdps = sys.stats().fdps();
    out.run.drops = sys.stats().frame_drops();
    out.run.latency_mean_ms = to_ms(Time(sys.stats().latency().mean()));
    out.touch_error_px = sys.stats().touch_error_px().mean();
    if (sys.runtime())
        out.predictions = sys.runtime()->ipl().predictions();
    return out;
}

} // namespace

int
main()
{
    print_section("Figure 16 / Section 6.5: map app zooming with the "
                  "Zooming Distance Predictor (ZDP)");

    const MapRun vsync = measure(RenderMode::kVsync, false, 31);
    const MapRun zdp = measure(RenderMode::kDvsync, true, 31);

    TableReporter table({"metric", "VSync 3 bufs", "D-VSync 5 bufs + ZDP",
                         "paper"});
    table.add_row({"FDPS while zooming",
                   TableReporter::num(vsync.run.fdps),
                   TableReporter::num(zdp.run.fdps),
                   "100% of drops eliminated"});
    table.add_row({"frame drops", std::to_string(vsync.run.drops),
                   std::to_string(zdp.run.drops), "-"});
    table.add_row({"rendering latency (ms)",
                   TableReporter::num(vsync.run.latency_mean_ms, 1),
                   TableReporter::num(zdp.run.latency_mean_ms, 1),
                   "-30.2%"});
    table.add_row({"zoom-state error vs truth (px)",
                   TableReporter::num(vsync.touch_error_px, 1),
                   TableReporter::num(zdp.touch_error_px, 1), "-"});
    table.add_row({"ZDP execution per frame (us)", "0",
                   "151.6 (modeled)", "151.6 us"});
    table.print();

    std::printf("\nmeasured: drops %llu -> %llu (%.1f%% eliminated), "
                "latency -%.1f%%, %llu ZDP predictions served\n",
                (unsigned long long)vsync.run.drops,
                (unsigned long long)zdp.run.drops,
                reduction_percent(double(vsync.run.drops),
                                  double(zdp.run.drops)),
                reduction_percent(vsync.run.latency_mean_ms,
                                  zdp.run.latency_mean_ms),
                (unsigned long long)zdp.predictions);
    return 0;
}
