/**
 * @file
 * §6.7: power consumption.
 *
 * Paper: a power tester on a Pixel 5 over 30 minutes shows D-VSync
 * increasing end-to-end power by 0.13% for a map-app animation, and by
 * 0.37% when 10% of frames additionally invoke the ZDP input fitting.
 * CPU instructions in the render service rise 0.52% (10.793M -> 10.849M
 * per frame over the 75 OS cases).
 */

#include <cstdio>

#include "bench_common.h"
#include "core/input_prediction_layer.h"
#include "input/gesture.h"
#include "metrics/power_model.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

/**
 * The §6.7 programmed map animation, long enough to be steady-state.
 * In the interactive variant, 10% of the operations are pinch zooms
 * (invoking the ZDP), matching the paper's "10% of the frames
 * additionally invoke the ZDP input curve fitting".
 */
Scenario
map_animation(std::uint64_t seed, bool interactive)
{
    Scenario sc("power");
    Rng rng(seed);
    for (int rep = 0; rep < 120; ++rep) { // 2 minutes simulated
        auto cost = std::make_shared<PeriodicSpikeCostModel>(
            FrameCost{3_ms, 7_ms}, FrameCost{3_ms, 20_ms}, 25,
            rng.uniform_int(0, 24));
        if (interactive && rep % 10 == 0) {
            GestureTiming timing;
            timing.duration = 700_ms;
            auto touch = std::make_shared<TouchStream>(
                make_pinch(timing, 200, 200 + rng.uniform(200, 400)));
            sc.interact(touch, cost, "zoom");
        } else {
            sc.animate(700_ms, cost, "pan");
        }
        sc.idle(300_ms);
    }
    return sc;
}

RunActivity
measure(RenderMode mode, bool interactive, bool with_zdp,
        std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.device = pixel5();
    cfg.mode = mode;
    cfg.buffers = mode == RenderMode::kDvsync ? 5 : 3;
    cfg.seed = seed;
    RenderSystem sys(cfg, map_animation(seed, interactive));
    if (with_zdp && sys.runtime()) {
        sys.runtime()->register_predictor(
            "zoom", std::make_shared<LinearPredictor>());
    }
    sys.run();
    return sys.activity();
}

} // namespace

int
main()
{
    print_section("Section 6.7: power consumption of D-VSync");

    PowerModel power;

    // Animation case: deterministic pre-rendering, no predictor.
    const RunActivity vs_anim =
        measure(RenderMode::kVsync, false, false, 41);
    const RunActivity dv_anim =
        measure(RenderMode::kDvsync, false, false, 41);
    const double anim_increase = power.percent_increase(vs_anim, dv_anim);

    // Interactive case: ZDP fitting on the zoom frames.
    const RunActivity vs_zoom =
        measure(RenderMode::kVsync, true, false, 43);
    const RunActivity dv_zoom =
        measure(RenderMode::kDvsync, true, true, 43);
    const double zoom_increase = power.percent_increase(vs_zoom, dv_zoom);

    TableReporter table({"scenario", "VSync mJ", "D-VSync mJ", "increase",
                         "paper"});
    table.add_row({"map animation (FPE+DTV only)",
                   TableReporter::num(power.energy_mj(vs_anim), 0),
                   TableReporter::num(power.energy_mj(dv_anim), 0),
                   TableReporter::num(anim_increase, 2) + "%", "+0.13%"});
    table.add_row({"zooming with ZDP prediction",
                   TableReporter::num(power.energy_mj(vs_zoom), 0),
                   TableReporter::num(power.energy_mj(dv_zoom), 0),
                   TableReporter::num(zoom_increase, 2) + "%", "+0.37%"});
    table.print();

    std::printf("\nframes: VSync produced %llu, D-VSync produced %llu "
                "(the difference is frames VSync skipped at drops)\n",
                (unsigned long long)vs_anim.frames_produced,
                (unsigned long long)dv_anim.frames_produced);
    std::printf("ZDP predictions served: %llu (%.1f%% of frames)\n",
                (unsigned long long)dv_zoom.predicted_frames,
                100.0 * double(dv_zoom.predicted_frames) /
                    double(dv_zoom.frames_produced));

    // CPU instruction accounting (§6.7's second measurement).
    const double instr_vs =
        power.instructions(vs_anim) / double(vs_anim.frames_produced);
    const double instr_dv =
        power.instructions(dv_anim) / double(dv_anim.frames_produced);
    std::printf("\nrender-service instructions per frame: %.3fM -> %.3fM "
                "(+%.2f%%; paper: 10.793M -> 10.849M, +0.52%%)\n",
                instr_vs / 1e6, instr_dv / 1e6,
                100.0 * (instr_dv - instr_vs) / instr_vs);
    return 0;
}
