/**
 * @file
 * Simulator-core performance record (`BENCH_simcore.json`).
 *
 * Every figure and table of the reproduction is driven by the
 * discrete-event core, so its per-event cost bounds the wall-clock of
 * every sweep. This bench pins that cost from three angles:
 *
 *  1. A cancel-heavy schedule/cancel/fire mix (the watchdog/timeout
 *     pattern: a ring of outstanding timers that are mostly re-armed
 *     before they fire), run against both the production EventQueue and
 *     an in-bench replica of the pre-slot-map storage (linear callback
 *     scan). The acceptance bar for the storage rewrite is >= 5x on the
 *     1M-event run.
 *  2. A pure schedule/fire chain mix (the simulator's steady-state
 *     pattern) for dispatch-throughput parity.
 *  3. A full fig11-style app sweep timed end-to-end through the parallel
 *     ExperimentRunner — the macro number that the micro numbers exist
 *     to explain.
 *  4. The parallel-in-time lane dispatcher on a many-surface composition
 *     mix (private GPUs, all surfaces decoupled): one session timed
 *     serial vs. multi-worker. The dispatch hash is cross-checked on
 *     every run — parallel mode is only allowed to be faster, never
 *     different.
 *
 * Both queue implementations must produce byte-identical dispatch
 * sequences (same (time, priority, seq) semantics); each workload folds
 * its dispatch order into a checksum and the bench aborts on mismatch.
 * The checksums are deterministic for a given --events value, so CI can
 * golden-check them while the timings float.
 *
 * Usage: perf_sim_core [--events=N] [--jobs=N] [--out=PATH]
 *   --events=N   events per micro workload (default 1,000,000)
 *   --out=PATH   where to write the JSON record (default
 *                BENCH_simcore.json; "-" suppresses the file)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "sim/event_queue.h"
#include "sim/logging.h"
#include "sim/parallel_dispatch.h"
#include "surface/multi_surface.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;

namespace {

/**
 * Replica of the pre-rewrite EventQueue storage: heap of (time, prio,
 * seq) entries plus a *linear-scan* callback vector, with cancelled
 * entries skipped lazily at dispatch. Kept here (not in src/) purely as
 * the measured baseline; semantics are identical to the production queue.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Time now() const { return now_; }

    EventId schedule(Time when, Callback fn,
                     EventPriority prio = EventPriority::kDefault)
    {
        EventId id = next_id_++;
        heap_.push(Entry{when, static_cast<int>(prio), next_seq_++, id});
        callbacks_.emplace_back(id, std::move(fn));
        return id;
    }

    bool cancel(EventId id)
    {
        for (auto &kv : callbacks_) {
            if (kv.first == id && kv.second) {
                kv.second = nullptr;
                return true;
            }
        }
        return false;
    }

    std::uint64_t run_until(Time horizon, bool advance_to_horizon = true)
    {
        std::uint64_t n = 0;
        while (!heap_.empty() && heap_.top().when <= horizon) {
            Entry e = heap_.top();
            heap_.pop();
            Callback fn;
            for (auto it = callbacks_.begin(); it != callbacks_.end();
                 ++it) {
                if (it->first == e.id) {
                    fn = std::move(it->second);
                    callbacks_.erase(it);
                    break;
                }
            }
            if (!fn)
                continue; // cancelled
            now_ = e.when;
            ++n;
            fn();
        }
        if (advance_to_horizon && horizon != kTimeMax && now_ < horizon)
            now_ = horizon;
        return n;
    }

    std::uint64_t run() { return run_until(kTimeMax, false); }

  private:
    struct Entry {
        Time when;
        int prio;
        std::uint64_t seq;
        EventId id;

        bool operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<std::pair<EventId, Callback>> callbacks_;
    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
};

/** Deterministic splitmix-style stream so runs are comparable. */
struct Lcg {
    std::uint64_t s;
    std::uint64_t next()
    {
        s += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
};

double
ms_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Cancel-heavy mix: a ring of `window` outstanding timers; each step
 * re-arms a pseudo-random ring slot (cancelling whatever was pending
 * there) and periodically drains a short horizon. Checksum folds the
 * dispatch order so both implementations can be cross-checked.
 */
template <class Queue>
std::uint64_t
cancel_heavy_mix(Queue &q, int events, int window, std::uint64_t &fired)
{
    std::vector<EventId> ring(std::size_t(window), 0);
    std::uint64_t checksum = 0xcbf29ce484222325ULL;
    std::uint64_t step = 0;
    Lcg rng{42};
    for (int i = 0; i < events; ++i) {
        const std::size_t slot = std::size_t(rng.next() % ring.size());
        if (ring[slot])
            q.cancel(ring[slot]);
        const Time when = q.now() + 1 + Time(rng.next() % 4096);
        const std::uint64_t tag = step++;
        ring[slot] = q.schedule(when, [&checksum, &fired, tag, &q] {
            checksum = (checksum ^ tag) * 0x100000001b3ULL;
            checksum = (checksum ^ std::uint64_t(q.now())) *
                       0x100000001b3ULL;
            ++fired;
        });
        if ((i & 255) == 0)
            q.run_until(q.now() + 64);
    }
    q.run();
    return checksum;
}

/**
 * Steady-state chain mix: `width` self-rescheduling chains (each fired
 * event schedules its successor), the simulator's dominant pattern.
 */
template <class Queue>
std::uint64_t
chain_mix(Queue &q, int events, int width, std::uint64_t &fired)
{
    std::uint64_t checksum = 0xcbf29ce484222325ULL;
    std::uint64_t budget = std::uint64_t(events);
    std::function<void(std::uint64_t)> arm = [&](std::uint64_t chain) {
        checksum = (checksum ^ chain) * 0x100000001b3ULL;
        checksum = (checksum ^ std::uint64_t(q.now())) * 0x100000001b3ULL;
        ++fired;
        if (budget == 0)
            return;
        --budget;
        Lcg rng{chain * 7919 + fired};
        q.schedule(q.now() + 1 + Time(rng.next() % 997),
                   [&arm, chain] { arm(chain); });
    };
    for (int c = 0; c < width; ++c) {
        if (budget == 0)
            break;
        --budget;
        q.schedule(Time(c + 1), [&arm, c] { arm(std::uint64_t(c)); });
    }
    q.run();
    return checksum;
}

/** The fig11 app sweep (uncalibrated), as one ExperimentRunner batch. */
std::vector<Experiment>
fig11_sweep_points()
{
    const DeviceConfig device = pixel5();
    SwipeSetup setup;
    setup.swipes = 48;
    struct Cell {
        RenderMode mode;
        int buffers;
    };
    const Cell cells[] = {{RenderMode::kVsync, 3},
                          {RenderMode::kDvsync, 4},
                          {RenderMode::kDvsync, 5},
                          {RenderMode::kDvsync, 7}};
    std::vector<Experiment> points;
    for (const ProfileSpec &app : pixel5_app_profiles()) {
        const std::uint64_t seed = std::hash<std::string>{}(app.name);
        for (const Cell &cell : cells) {
            auto cell_points = profile_experiments(
                app, device, cell.mode, cell.buffers, setup, seed);
            points.insert(points.end(), cell_points.begin(),
                          cell_points.end());
        }
    }
    return points;
}

// ---- parallel lane-dispatch mix -----------------------------------------

/**
 * Cost model with a calibrated per-sample compute grain.
 *
 * A real per-frame workload model does actual CPU work when a frame
 * starts — trace resampling, content-adaptive cost lookup, predictor
 * features — on the order of microseconds, where the simulator's raw
 * event plumbing is a few hundred nanoseconds. Parallel speedup is a
 * function of that per-event grain, so the parallel mix models it
 * explicitly: a fixed, deterministic number of integer-mix rounds per
 * cost query (pure function of the slot index — identical in serial and
 * parallel runs) folded into a checksum so the work cannot be elided.
 */
class GrainedCostModel : public FrameCostModel
{
  public:
    GrainedCostModel(std::shared_ptr<const FrameCostModel> inner,
                     int rounds)
        : inner_(std::move(inner)), rounds_(rounds)
    {}

    FrameCost cost_for(std::int64_t nominal_index) const override
    {
        std::uint64_t h = 0x9e3779b97f4a7c15ULL ^
                          std::uint64_t(nominal_index);
        for (int r = 0; r < rounds_; ++r) {
            h += 0x9e3779b97f4a7c15ULL;
            h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
            h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
            h ^= h >> 31;
        }
        grain_sink_.fetch_xor(h, std::memory_order_relaxed);
        return inner_->cost_for(nominal_index);
    }

    static std::uint64_t sink() { return grain_sink_.load(); }

  private:
    std::shared_ptr<const FrameCostModel> inner_;
    int rounds_;
    static std::atomic<std::uint64_t> grain_sink_;
};

std::atomic<std::uint64_t> GrainedCostModel::grain_sink_{0};

/// Integer-mix rounds per cost query in the parallel mix (~4 us).
constexpr int kMixGrainRounds = 1200;

/**
 * The parallel-mix fleet: many decoupled surfaces rendering on private
 * GPUs, which is exactly the shape that gives the conservative lane
 * dispatcher its lookahead (see DESIGN.md §5g). Heavy power-law costs
 * keep every lane busy between refresh barriers.
 */
std::vector<SurfaceDesc>
parallel_mix_surfaces(int n)
{
    std::vector<SurfaceDesc> descs;
    descs.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i) {
        PowerLawParams p;
        p.short_mean_ms = 5.0 + 0.5 * double(i % 4);
        p.heavy_prob = 0.12;
        p.heavy_min_ms = 10.0;
        p.heavy_max_ms = 24.0;
        auto cost = std::make_shared<GrainedCostModel>(
            std::make_shared<PowerLawCostModel>(p, 101 + std::uint64_t(i)),
            kMixGrainRounds);
        SurfaceDesc d;
        d.name = "layer" + std::to_string(i);
        Scenario sc(d.name);
        sc.animate(1'500'000'000, cost); // 1.5 s of animation
        d.scenario = std::move(sc);
        d.buffer_mb = 10.0 + double(i % 5);
        d.weight = 1.0 + double(i % 3);
        descs.push_back(std::move(d));
    }
    return descs;
}

struct ParallelMixRun {
    double wall_ms = 0.0;
    std::uint64_t hash = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t windows = 0;
    double fdps_total = 0.0;
};

ParallelMixRun
run_parallel_mix(int surfaces, int workers)
{
    MultiSurfaceSystem sys(parallel_mix_surfaces(surfaces),
                           MultiSurfaceConfig()
                               .with_budget_mb(double(surfaces) * 14.0)
                               .with_shared_gpu(false)
                               .with_sim_workers(workers));
    const auto t0 = std::chrono::steady_clock::now();
    const RunReport report = sys.run();
    ParallelMixRun out;
    out.wall_ms = ms_since(t0);
    out.hash = sys.sim().events().dispatch_hash();
    out.dispatched = sys.sim().events().dispatched();
    out.fdps_total = report.fdps;
    if (const ParallelDispatcher *d = sys.sim().dispatcher())
        out.windows = d->windows();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const int events = args.int_flag("events", 1'000'000);
    const std::string out_path = args.string_flag("out", "BENCH_simcore.json");
    const int jobs = args.jobs();
    args.finish();
    if (events <= 0)
        fatal("--events must be positive");
    const int window = 1024;

    print_section("Simulator-core performance record");
    std::printf("events per micro workload: %d\n\n", events);

    // ---- cancel-heavy mix: production queue vs legacy replica ----------
    std::uint64_t fired_new = 0, fired_legacy = 0;

    auto t0 = std::chrono::steady_clock::now();
    EventQueue q_new;
    const std::uint64_t sum_new =
        cancel_heavy_mix(q_new, events, window, fired_new);
    const double cancel_new_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    LegacyEventQueue q_old;
    const std::uint64_t sum_legacy =
        cancel_heavy_mix(q_old, events, window, fired_legacy);
    const double cancel_legacy_ms = ms_since(t0);

    if (sum_new != sum_legacy || fired_new != fired_legacy) {
        fatal("dispatch order diverged between storage implementations: "
              "%016llx (%llu fired) vs %016llx (%llu fired)",
              (unsigned long long)sum_new, (unsigned long long)fired_new,
              (unsigned long long)sum_legacy,
              (unsigned long long)fired_legacy);
    }
    const double speedup = cancel_legacy_ms / cancel_new_ms;

    // ---- steady-state chain mix ----------------------------------------
    std::uint64_t chain_fired_new = 0, chain_fired_legacy = 0;

    t0 = std::chrono::steady_clock::now();
    EventQueue q_new2;
    const std::uint64_t chain_sum_new =
        chain_mix(q_new2, events, 256, chain_fired_new);
    const double chain_new_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    LegacyEventQueue q_old2;
    const std::uint64_t chain_sum_legacy =
        chain_mix(q_old2, events, 256, chain_fired_legacy);
    const double chain_legacy_ms = ms_since(t0);

    if (chain_sum_new != chain_sum_legacy)
        fatal("chain-mix dispatch order diverged");

    // ---- macro: fig11 sweep through the ExperimentRunner ---------------
    const std::vector<Experiment> points = fig11_sweep_points();
    const ExperimentRunner runner(jobs);
    t0 = std::chrono::steady_clock::now();
    const std::vector<RunReport> reports = runner.run(points);
    const double sweep_ms = ms_since(t0);
    double sweep_fdps = 0.0;
    for (const RunReport &r : reports)
        sweep_fdps += r.fdps;

    // ---- forensics overhead guard --------------------------------------
    //
    // The same sweep with frame forensics on (metrics sampler installed
    // at the default cadence). The sampler only reads component state,
    // so results must be bit-identical. The enforced overhead metric is
    // deterministic — extra simulator events dispatched — because wall
    // clock on a shared CI box is too noisy to bound a few-percent
    // effect; wall time is still measured (best-of-2 each way,
    // interleaved) and reported for the record.
    std::vector<Experiment> fpoints = fig11_sweep_points();
    for (Experiment &p : fpoints)
        p.config.forensics = true;

    std::uint64_t base_events = 0, forensics_events = 0;
    double base_fdps = 0.0, forensics_fdps = 0.0;
    for (const Experiment &p : points) {
        RenderSystem sys(p.config, p.scenario);
        base_fdps += sys.run().fdps;
        base_events += sys.sim().events().dispatched();
    }
    for (const Experiment &p : fpoints) {
        RenderSystem sys(p.config, p.scenario);
        forensics_fdps += sys.run().fdps;
        forensics_events += sys.sim().events().dispatched();
    }
    if (forensics_fdps != base_fdps) {
        fatal("forensics changed results: fdps total %.6f with vs %.6f "
              "without",
              forensics_fdps, base_fdps);
    }
    const double overhead_pct =
        base_events > 0
            ? 100.0 * double(forensics_events - base_events) /
                  double(base_events)
            : 0.0;

    double base_best_ms = sweep_ms;
    double forensics_best_ms = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
        t0 = std::chrono::steady_clock::now();
        runner.run(fpoints);
        const double wall = ms_since(t0);
        forensics_best_ms =
            rep == 0 ? wall : std::min(forensics_best_ms, wall);
        t0 = std::chrono::steady_clock::now();
        runner.run(points);
        base_best_ms = std::min(base_best_ms, ms_since(t0));
    }

    // ---- parallel lane-dispatch mix ------------------------------------
    //
    // Serial vs. multi-worker on the same many-surface session,
    // best-of-3 each, interleaved. The dispatch hash folds (when, prio,
    // lane, seq) of every dispatched event in order, so equal hashes
    // mean the parallel run dispatched the exact serial sequence — the
    // cross-checksum runs every time, not only under --golden.
    const int mix_surfaces = 32;
    const int mix_workers = 4;
    ParallelMixRun mix_serial, mix_par;
    for (int rep = 0; rep < 3; ++rep) {
        const ParallelMixRun s = run_parallel_mix(mix_surfaces, 0);
        const ParallelMixRun p = run_parallel_mix(mix_surfaces,
                                                  mix_workers);
        if (s.hash != p.hash || s.dispatched != p.dispatched) {
            fatal("parallel lane dispatch diverged from serial: "
                  "%016llx (%llu events) vs %016llx (%llu events)",
                  (unsigned long long)s.hash,
                  (unsigned long long)s.dispatched,
                  (unsigned long long)p.hash,
                  (unsigned long long)p.dispatched);
        }
        if (s.fdps_total != p.fdps_total)
            fatal("parallel lane dispatch changed results");
        if (rep == 0 || s.wall_ms < mix_serial.wall_ms)
            mix_serial = s;
        if (rep == 0 || p.wall_ms < mix_par.wall_ms)
            mix_par = p;
    }
    const double mix_speedup = mix_serial.wall_ms / mix_par.wall_ms;
    // Wall-clock speedup is bounded by the machine: on a single-core
    // host the parallel run can only tie serial (the cross-check is
    // what runs unconditionally; the timing is a capability record).
    const unsigned mix_cores = std::thread::hardware_concurrency();

    TableReporter table({"workload", "slot-map (ms)", "linear-scan (ms)",
                         "speedup"});
    table.add_row({"cancel-heavy mix", TableReporter::num(cancel_new_ms, 1),
                   TableReporter::num(cancel_legacy_ms, 1),
                   TableReporter::num(speedup, 1) + "x"});
    table.add_row({"chain mix", TableReporter::num(chain_new_ms, 1),
                   TableReporter::num(chain_legacy_ms, 1),
                   TableReporter::num(chain_legacy_ms / chain_new_ms, 1) +
                       "x"});
    table.print();

    // Time-valued: deliberately does NOT match the golden grep (which
    // pins 'dispatch checksum'/'fdps sum' lines only).
    std::printf("\nparallel mix: %d surfaces, %llu events, serial %.1f ms "
                "vs %d workers %.1f ms = %.2fx on %u hw core%s "
                "(%llu windows, lane hash cross-check ok)\n",
                mix_surfaces, (unsigned long long)mix_serial.dispatched,
                mix_serial.wall_ms, mix_workers, mix_par.wall_ms,
                mix_speedup, mix_cores, mix_cores == 1 ? "" : "s",
                (unsigned long long)mix_par.windows);
    std::printf("\nfig11 sweep: %zu runs in %.1f ms (%d jobs)\n",
                points.size(), sweep_ms, runner.jobs());
    std::printf("forensics-on sweep: %.1f ms vs %.1f ms wall "
                "(informational); event overhead %+.2f%% "
                "(%llu -> %llu dispatched, results bit-identical)\n",
                forensics_best_ms, base_best_ms, overhead_pct,
                (unsigned long long)base_events,
                (unsigned long long)forensics_events);
    // Deterministic lines (checksums + fired counts) for the golden
    // check; everything time-valued above floats run to run.
    std::printf("dispatch checksum (cancel-heavy): %016llx after %llu "
                "events\n",
                (unsigned long long)sum_new,
                (unsigned long long)fired_new);
    std::printf("dispatch checksum (chain):        %016llx after %llu "
                "events\n",
                (unsigned long long)chain_sum_new,
                (unsigned long long)chain_fired_new);
    std::printf("fig11 sweep fdps sum:             %.6f over %zu runs\n",
                sweep_fdps, reports.size());

    if (out_path != "-") {
        bench::BenchJson record("perf_sim_core");
        record.i64("events", events);
        record.i64("cancel_window", window);
        char jbuf[512];
        std::snprintf(jbuf, sizeof(jbuf),
                      "{\n"
                      "    \"slot_map_ms\": %.3f,\n"
                      "    \"linear_scan_ms\": %.3f,\n"
                      "    \"speedup\": %.2f,\n"
                      "    \"dispatched\": %llu,\n"
                      "    \"checksum\": \"%016llx\"\n"
                      "  }",
                      cancel_new_ms, cancel_legacy_ms, speedup,
                      (unsigned long long)fired_new,
                      (unsigned long long)sum_new);
        record.raw("cancel_heavy", jbuf);
        std::snprintf(jbuf, sizeof(jbuf),
                      "{\n"
                      "    \"slot_map_ms\": %.3f,\n"
                      "    \"linear_scan_ms\": %.3f,\n"
                      "    \"speedup\": %.2f,\n"
                      "    \"dispatched\": %llu,\n"
                      "    \"checksum\": \"%016llx\"\n"
                      "  }",
                      chain_new_ms, chain_legacy_ms,
                      chain_legacy_ms / chain_new_ms,
                      (unsigned long long)chain_fired_new,
                      (unsigned long long)chain_sum_new);
        record.raw("chain", jbuf);
        std::snprintf(jbuf, sizeof(jbuf),
                      "{\n"
                      "    \"runs\": %zu,\n"
                      "    \"jobs\": %d,\n"
                      "    \"wall_ms\": %.3f,\n"
                      "    \"fdps_sum\": %.6f\n"
                      "  }",
                      points.size(), runner.jobs(), sweep_ms, sweep_fdps);
        record.raw("fig11_sweep", jbuf);
        std::snprintf(jbuf, sizeof(jbuf),
                      "{\n"
                      "    \"wall_ms\": %.3f,\n"
                      "    \"overhead_percent\": %.2f\n"
                      "  }",
                      forensics_best_ms, overhead_pct);
        record.raw("forensics_sweep", jbuf);
        std::snprintf(jbuf, sizeof(jbuf),
                      "{\n"
                      "    \"surfaces\": %d,\n"
                      "    \"workers\": %d,\n"
                      "    \"hw_cores\": %u,\n"
                      "    \"grain_rounds\": %d,\n"
                      "    \"serial_ms\": %.3f,\n"
                      "    \"parallel_ms\": %.3f,\n"
                      "    \"speedup\": %.2f,\n"
                      "    \"dispatched\": %llu,\n"
                      "    \"windows\": %llu,\n"
                      "    \"lane_hash\": \"%016llx\"\n"
                      "  }",
                      mix_surfaces, mix_workers, mix_cores,
                      kMixGrainRounds, mix_serial.wall_ms, mix_par.wall_ms,
                      mix_speedup,
                      (unsigned long long)mix_serial.dispatched,
                      (unsigned long long)mix_par.windows,
                      (unsigned long long)mix_serial.hash);
        record.raw("parallel_mix", jbuf);
        record.write(out_path);
        std::printf("\nperf record written to %s\n", out_path.c_str());
    }

    // The 5% budget, enforced on the deterministic event-count metric.
    if (overhead_pct > 5.0) {
        fatal("forensics overhead %.2f%% exceeds the 5%% budget "
              "(%llu -> %llu events dispatched)",
              overhead_pct, (unsigned long long)base_events,
              (unsigned long long)forensics_events);
    }
    return 0;
}
