/**
 * @file
 * Figure 6: distribution of frames for the 25 apps under baseline VSync —
 * frame drops vs buffer stuffing vs direct composition.
 *
 * The paper's point: because of frequent frame drops, most frames end up
 * waiting inside the buffer queue (buffer stuffing) rather than being
 * composited directly, creating unnecessary latency.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace dvs;
using namespace dvs::bench;

int
main()
{
    print_section("Figure 6: frame distribution under VSync "
                  "(Google Pixel 5, 60 Hz, 3 buffers)");

    const DeviceConfig device = pixel5();
    SwipeSetup setup;
    setup.swipes = 48;

    TableReporter table(
        {"app", "drop %", "stuffing %", "direct %", "stuffing bar"});

    double sum_drop = 0, sum_stuffed = 0, sum_direct = 0;
    for (const ProfileSpec &raw : pixel5_app_profiles()) {
        const std::uint64_t seed = std::hash<std::string>{}(raw.name);
        const ProfileSpec app =
            calibrate_baseline(raw, device, 3, setup, seed);
        const BenchRun r =
            run_profile(app, device, RenderMode::kVsync, 3, setup, seed);

        const double total =
            double(r.drops + r.stuffed + r.direct);
        const double drop_pct = 100.0 * double(r.drops) / total;
        const double stuffed_pct = 100.0 * double(r.stuffed) / total;
        const double direct_pct = 100.0 * double(r.direct) / total;
        sum_drop += drop_pct;
        sum_stuffed += stuffed_pct;
        sum_direct += direct_pct;

        table.add_row({app.name, TableReporter::num(drop_pct, 1),
                       TableReporter::num(stuffed_pct, 1),
                       TableReporter::num(direct_pct, 1),
                       ascii_bar(stuffed_pct, 100.0, 25)});
    }
    const double n = double(pixel5_app_profiles().size());
    table.add_row({"AVERAGE", TableReporter::num(sum_drop / n, 1),
                   TableReporter::num(sum_stuffed / n, 1),
                   TableReporter::num(sum_direct / n, 1), ""});
    table.print();

    std::printf("\npaper:    most frames wait inside the buffer queue "
                "(stuffing dominates direct composition)\n");
    std::printf("measured: avg %.1f%% drops, %.1f%% stuffing, %.1f%% "
                "direct composition\n",
                sum_drop / n, sum_stuffed / n, sum_direct / n);
    return 0;
}
