/**
 * @file
 * Figure 5: average and maximum percentage of frame drops over the total
 * display time, per evaluated configuration.
 *
 * Paper: Pixel 5 (60 Hz, GLES) avg 3.4% / max 20.8%; Mate 40 Pro (90 Hz)
 * avg 3.5%; Mate 60 Pro GLES avg 6.3% / max 27.5%; Mate 60 Pro Vulkan
 * avg 7.0%. (Averages over the populations that show drops.)
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/os_case_profiles.h"

using namespace dvs;
using namespace dvs::bench;

namespace {

struct Summary {
    double avg_fd = 0.0;
    double max_fd = 0.0;
};

Summary
sweep(const std::vector<ProfileSpec> &specs, const DeviceConfig &device,
      const SwipeSetup &setup, const ExperimentRunner &runner)
{
    // Anchor each profile's baseline, then measure the whole population
    // as one parallel batch.
    std::vector<Experiment> points;
    for (const ProfileSpec &raw : specs) {
        const std::uint64_t seed = std::hash<std::string>{}(raw.name);
        const ProfileSpec spec = calibrate_baseline(
            raw, device, device.vsync_buffers, setup, seed);
        auto cell = profile_experiments(spec, device, RenderMode::kVsync,
                                        device.vsync_buffers, setup, seed);
        points.insert(points.end(), cell.begin(), cell.end());
    }
    const std::vector<RunReport> cells =
        average_groups(runner.run(points), setup.repeats);

    Summary s;
    for (const RunReport &r : cells) {
        s.avg_fd += r.fd_percent;
        s.max_fd = std::max(s.max_fd, r.fd_percent);
    }
    if (!cells.empty())
        s.avg_fd /= double(cells.size());
    return s;
}

std::vector<ProfileSpec>
case_specs(OsConfig config)
{
    std::vector<ProfileSpec> specs;
    for (const OsCase *c : cases_with_drops(config))
        specs.push_back(make_os_case_spec(*c, config));
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    print_section("Figure 5: average / max frame-drop percentage of "
                  "display time (baseline VSync)");

    SwipeSetup setup = SwipeSetup::os_cases();
    setup.repeats = 2;
    ArgParser args(argc, argv);
    const ExperimentRunner runner(args.jobs());
    args.finish();

    TableReporter table(
        {"configuration", "avg FD%", "max FD%", "paper avg", "paper max"});

    const Summary p5 = sweep(pixel5_app_profiles(), pixel5(), setup, runner);
    table.add_row({"Google Pixel 5 (AOSP 60Hz, GLES)",
                   TableReporter::num(p5.avg_fd, 1),
                   TableReporter::num(p5.max_fd, 1), "3.4", "20.8"});

    const Summary m40 = sweep(case_specs(OsConfig::kMate40Gles),
                              mate40_pro(), setup, runner);
    table.add_row({"Mate 40 Pro (OH 90Hz, GLES)",
                   TableReporter::num(m40.avg_fd, 1),
                   TableReporter::num(m40.max_fd, 1), "3.5", "7.8"});

    const Summary m60g = sweep(case_specs(OsConfig::kMate60Gles),
                               mate60_pro(), setup, runner);
    table.add_row({"Mate 60 Pro (OH 120Hz, GLES)",
                   TableReporter::num(m60g.avg_fd, 1),
                   TableReporter::num(m60g.max_fd, 1), "6.3", "27.5"});

    const Summary m60v = sweep(case_specs(OsConfig::kMate60Vk),
                               mate60_pro(Backend::kVulkan), setup, runner);
    table.add_row({"Mate 60 Pro (OH 120Hz, Vulkan)",
                   TableReporter::num(m60v.avg_fd, 1),
                   TableReporter::num(m60v.max_fd, 1), "7.0", "7.4"});

    table.print();
    std::printf("\n(the populations are the cases/apps with reported "
                "drops, as in the paper)\n");
    return 0;
}
