/**
 * @file
 * Figure 9: the scope of the D-VSync approach.
 *
 * The paper classifies a typical user's frames into deterministic
 * animations (~85%, pre-renderable with no app changes), predictable
 * interactions (~10%, D-VSync-extensible via the IPL), and real-time
 * content (~5%, where D-VSync stays off). This bench composes a "typical
 * day" scenario with that mix and measures which channel actually
 * handled each frame — pre-rendered, IPL-predicted, or the VSync
 * fallback — with and without a registered predictor.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/input_prediction_layer.h"
#include "input/gesture.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

Scenario
typical_day(std::uint64_t seed)
{
    Rng rng(seed);
    ProfileSpec spec;
    spec.name = "scope";
    spec.heavy_per_sec = 2.0;
    spec.heavy_max_periods = 2.5;

    Scenario sc("typical day");
    for (int block = 0; block < 12; ++block) {
        // ~85%: clicking-triggered animations (open, transition, fling).
        for (int i = 0; i < 5; ++i) {
            sc.animate(400_ms,
                       make_cost_model(spec, 60.0, rng.next_u64()),
                       "animation");
        }
        // ~10%: a continuous interaction (browse / zoom).
        GestureTiming timing;
        timing.duration = 280_ms;
        Rng noise = rng.fork();
        sc.interact(std::make_shared<TouchStream>(make_swipe(
                        timing, 1800, rng.uniform(600, 1400), &noise)),
                    make_cost_model(spec, 60.0, rng.next_u64()), "browse");
        // ~5%: real-time content (camera preview, PvP game).
        sc.realtime(140_ms, make_cost_model(spec, 60.0, rng.next_u64()),
                    "realtime");
    }
    return sc;
}

struct ScopeCount {
    std::uint64_t anim = 0, inter = 0, realtime = 0;
    std::uint64_t pre_rendered = 0, predicted = 0, fallback = 0;
};

ScopeCount
measure(bool with_predictor)
{
    SystemConfig cfg;
    cfg.device = pixel5();
    cfg.mode = RenderMode::kDvsync;
    RenderSystem sys(cfg, typical_day(3));
    if (with_predictor) {
        sys.runtime()->register_predictor(
            "browse", std::make_shared<LinearPredictor>());
    }
    sys.run();

    ScopeCount out;
    for (const FrameRecord &rec : sys.producer().records()) {
        switch (rec.kind) {
          case SegmentKind::kAnimation:
            ++out.anim;
            break;
          case SegmentKind::kInteraction:
            ++out.inter;
            break;
          case SegmentKind::kRealtime:
            ++out.realtime;
            break;
          default:
            break;
        }
        if (rec.pre_rendered)
            ++out.pre_rendered;
        else
            ++out.fallback;
    }
    if (sys.runtime())
        out.predicted = sys.runtime()->ipl().predictions();
    return out;
}

} // namespace

int
main()
{
    print_section("Figure 9: the scope of D-VSync on a typical user's "
                  "frame mix");

    const ScopeCount oblivious = measure(false);
    const ScopeCount aware = measure(true);

    const double total =
        double(oblivious.anim + oblivious.inter + oblivious.realtime);
    std::printf("\nframe mix: %.1f%% animations, %.1f%% interactions, "
                "%.1f%% real-time\n(paper: ~85%% / ~10%% / ~5%%)\n",
                100.0 * double(oblivious.anim) / total,
                100.0 * double(oblivious.inter) / total,
                100.0 * double(oblivious.realtime) / total);

    TableReporter table({"channel", "decoupling-oblivious app",
                         "decoupling-aware app (IPL registered)"});
    table.add_row({"pre-rendered frames",
                   TableReporter::num(100.0 *
                                      double(oblivious.pre_rendered) /
                                      total, 1) + "%",
                   TableReporter::num(100.0 * double(aware.pre_rendered) /
                                      total, 1) + "%"});
    table.add_row({"vsync-path frames",
                   TableReporter::num(100.0 * double(oblivious.fallback) /
                                      total, 1) + "%",
                   TableReporter::num(100.0 * double(aware.fallback) /
                                      total, 1) + "%"});
    table.add_row({"IPL predictions served", "0",
                   std::to_string(aware.predicted)});
    table.print();

    std::printf("\npaper:    decoupled pre-rendering applies to all "
                "deterministic animation frames\n(85%%) and extends to "
                "simple interactive frames (10%%), covering ~95%% of\n"
                "frames; real-time content stays on the VSync path.\n");
    return 0;
}
