/**
 * @file
 * §6.6 — Case study 2: the Chromium browser compositor.
 *
 * Chromium's real-time compositor rasterizes page layers into tiles
 * asynchronously and composites them synchronously with VSync — a
 * custom-rendering app. The decoupled scheme pre-renders compositor
 * frames during the fling animations after a swipe, using the
 * decoupling-aware APIs.
 *
 * Paper: across the Sina, Weather, and AI Life pages, the average FDPS
 * during fling animations drops from 1.47 to 0.08 (-94.3%).
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

struct Page {
    const char *name;
    double tile_raster_rate; ///< heavy tile rasterizations per second
    double tile_max_periods; ///< worst rasterization burst
};

/**
 * A fling over a page: compositing frames are cheap, but scrolling into
 * unrasterized content forces synchronous tile work — the key frames.
 */
Scenario
fling_scenario(const Page &page, std::uint64_t seed)
{
    ProfileSpec spec;
    spec.name = page.name;
    spec.heavy_per_sec = page.tile_raster_rate;
    spec.heavy_min_periods = 1.1;
    spec.heavy_max_periods = page.tile_max_periods;
    spec.heavy_alpha = 1.4;
    spec.heavy_burst = 0.3;
    spec.short_mean_periods = 0.35; // compositing is cheap
    spec.ui_fraction = 0.3;         // main-thread scroll offset updates

    auto cost = make_cost_model(spec, 60.0, seed);
    // Swipes with fling animations, like the app methodology.
    return make_swipe_scenario(page.name, 30, 600_ms, cost, 0.75);
}

} // namespace

int
main()
{
    print_section("Section 6.6: Chromium compositor fling animations, "
                  "VSync vs decoupling-aware D-VSync");

    const Page pages[] = {
        {"Sina", 3.2, 3.2},
        {"Weather", 1.8, 2.6},
        {"AI Life", 2.4, 2.8},
    };

    TableReporter table(
        {"page", "VSync FDPS", "D-VSync FDPS", "reduction"});
    double sum_vs = 0, sum_dv = 0;
    for (const Page &page : pages) {
        const std::uint64_t seed = std::hash<std::string>{}(page.name);
        const Scenario sc = fling_scenario(page, seed);

        SystemConfig vs_cfg;
        vs_cfg.device = pixel5();
        vs_cfg.mode = RenderMode::kVsync;
        vs_cfg.seed = seed;
        const BenchRun vs = run_system(vs_cfg, sc);

        SystemConfig dv_cfg = vs_cfg;
        dv_cfg.mode = RenderMode::kDvsync;
        dv_cfg.buffers = 5; // compositor configures its own limit
        const BenchRun dv = run_system(dv_cfg, sc);

        sum_vs += vs.fdps;
        sum_dv += dv.fdps;
        table.add_row({page.name, TableReporter::num(vs.fdps),
                       TableReporter::num(dv.fdps),
                       TableReporter::num(
                           reduction_percent(vs.fdps, dv.fdps), 1) + "%"});
    }
    table.add_row({"AVERAGE", TableReporter::num(sum_vs / 3),
                   TableReporter::num(sum_dv / 3),
                   TableReporter::num(
                       reduction_percent(sum_vs, sum_dv), 1) + "%"});
    table.print();

    std::printf("\npaper:    avg FDPS 1.47 -> 0.08 (-94.3%%) during "
                "flinging animations\n");
    std::printf("measured: avg FDPS %.2f -> %.2f (-%.1f%%)\n", sum_vs / 3,
                sum_dv / 3, reduction_percent(sum_vs, sum_dv));
    return 0;
}
