/**
 * @file
 * Ablation: the D-VSync × LTPO co-design (§5.3).
 *
 * Compares, on a decelerating fling over an LTPO panel:
 *  - co-design ON: rendering switches rate immediately, the screen
 *    drains old-rate buffers before switching (every frame displays at
 *    its bound rate);
 *  - naive switching (no drain coordination): the panel follows the LTPO
 *    decision directly, displaying accumulated old-rate frames at the
 *    new rate — the inconsistency the paper calls out ("frames rendered
 *    at X Hz are not displayed at Y Hz").
 */

#include <cstdio>

#include "core/ltpo_codesign.h"
#include "core/render_system.h"
#include "metrics/reporter.h"
#include "workload/frame_cost.h"

using namespace dvs;
using namespace dvs::time_literals;

namespace {

struct LtpoOutcome {
    std::uint64_t mismatched_frames = 0; ///< displayed at the wrong rate
    std::uint64_t switches = 0;
    std::uint64_t deferred = 0;
    std::uint64_t drops = 0;
};

LtpoOutcome
run(bool codesign_on, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.device = mate60_pro();
    cfg.mode = RenderMode::kDvsync;
    cfg.seed = seed;
    Scenario sc("fling");
    sc.animate(1'500_ms, std::make_shared<ConstantCostModel>(1_ms, 3_ms));
    RenderSystem sys(cfg, sc);

    LtpoController ltpo = LtpoController::for_rates({120.0, 90.0, 60.0});
    ltpo.set_speed_source([&] {
        // Decelerating fling: speed decays with time.
        const double t = to_seconds(sys.sim().now());
        return 4000.0 * std::max(0.0, 1.0 - t / 1.2);
    });

    std::unique_ptr<LtpoCodesign> codesign;
    std::uint64_t switches = 0;
    if (codesign_on) {
        codesign = std::make_unique<LtpoCodesign>(
            sys.hw_vsync(), sys.queue(), ltpo, sys.producer());
    } else {
        // Naive policy: the screen follows LTPO directly, ignoring what
        // rate the queued buffers were rendered for.
        sys.hw_vsync().set_rate_policy([&](const VsyncEdge &e) {
            const double desired = ltpo.decide();
            if (desired != e.rate_hz) {
                ++switches;
                return desired;
            }
            return 0.0;
        });
    }

    LtpoOutcome out;
    sys.panel().add_present_listener([&](const PresentEvent &ev) {
        if (!ev.repeat && ev.meta.render_rate_hz > 0 &&
            ev.meta.render_rate_hz != ev.rate_hz) {
            ++out.mismatched_frames;
        }
    });
    sys.run();

    out.drops = sys.stats().frame_drops();
    if (codesign) {
        out.switches = codesign->switches();
        out.deferred = codesign->deferred();
    } else {
        out.switches = switches;
    }
    return out;
}

} // namespace

int
main()
{
    print_section("Ablation: LTPO co-design vs naive rate switching "
                  "(Mate 60 Pro, decelerating fling 120->90->60 Hz)");

    const LtpoOutcome with = run(true, 3);
    const LtpoOutcome naive = run(false, 3);

    TableReporter table({"policy", "rate switches", "deferred edges",
                         "mismatched frames", "drops"});
    table.add_row({"co-design (drain first)", std::to_string(with.switches),
                   std::to_string(with.deferred),
                   std::to_string(with.mismatched_frames),
                   std::to_string(with.drops)});
    table.add_row({"naive (switch immediately)",
                   std::to_string(naive.switches),
                   std::to_string(naive.deferred),
                   std::to_string(naive.mismatched_frames),
                   std::to_string(naive.drops)});
    table.print();

    std::printf("\nexpected shape: the co-design defers switches while "
                "accumulated buffers drain and never displays a frame at "
                "a rate it was not rendered for; the naive policy shows "
                "rendered-at-X-displayed-at-Y frames.\n");
    return 0;
}
