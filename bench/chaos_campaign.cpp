/**
 * @file
 * Chaos campaign (`BENCH_chaos.json`): N seeds x fault-mix grid x both
 * architectures through the parallel experiment harness.
 *
 * Every point runs the mixed chaos scenario (animation, idle, realtime,
 * animation) under a deterministic FaultPlan generated from its seed,
 * with the invariant monitor on and the degradation watchdog armed. The
 * campaign's acceptance bar: zero invariant violations and zero aborted
 * runs across the whole grid — faults may cost frames, never
 * correctness. Any failure replays byte-for-byte from its (seed, mix)
 * pair.
 *
 * Usage: chaos_campaign [--seeds=N] [--jobs=N] [--out=PATH] [--golden]
 *                       [--forensics=PATH] [--sim-workers=N]
 *   --seeds=N    seeds per (mix, mode) cell (default 50)
 *   --sim-workers=N  parallel lane-dispatch workers inside each run
 *                (default 0 = serial; reports are byte-identical either
 *                way, so goldens never pass this flag)
 *   --out=PATH   where to write the JSON record (default
 *                BENCH_chaos.json; "-" suppresses the file)
 *   --golden     deterministic single-seed replay dump for the golden
 *                check (prints fault plans + per-run reports, no JSON)
 *   --forensics=PATH  additionally run the canonical specimen (the
 *                everything mix, seed 1, D-VSync) with frame forensics
 *                on and write its dump JSON to PATH — feed it to
 *                dvsync_inspect
 *   --record=BASE  record the canonical specimen under both pacing
 *                modes as replayable .dvst captures (BASE.vsync.dvst +
 *                BASE.dvsync.dvst — feed them to trace_campaign) and
 *                exit without running the campaign grid
 *   --observatory  tee the stream into the SLO/anomaly observatory
 *                (cohorts = "mix/mode" cells) and print its summary
 *   --top-k=N    observatory offender ranking depth (default 8)
 *   --specimens=DIR  re-simulate the observatory's top-K offenders into
 *                DIR as verified .dvst specimens + manifest.json
 *                (needs --observatory)
 *
 * Exits nonzero when any run violates an invariant, fails, or drops a
 * frame the classifier cannot attribute to a cause.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"
#include "obs/observatory.h"
#include "sim/logging.h"
#include "trace/session_recorder.h"
#include "workload/frame_cost.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

Scenario
chaos_scenario()
{
    auto cost = std::make_shared<ConstantCostModel>(1_ms, 4_ms);
    Scenario sc("chaos");
    sc.animate(600_ms, cost)
        .idle(100_ms)
        .realtime(200_ms, cost)
        .animate(300_ms, cost);
    return sc;
}

struct Cell {
    std::string mix;
    std::string mode;
    int runs = 0;
    std::uint64_t violations = 0;
    std::uint64_t faults = 0;
    std::uint64_t presents = 0;
    std::uint64_t drops = 0;
    std::uint64_t degradations = 0;
    std::uint64_t repromotions = 0;
    int errors = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    int seeds = args.int_flag("seeds", 50);
    bool golden = args.bool_flag("golden");
    std::string out_path = args.string_flag("out", "BENCH_chaos.json");
    const std::string forensics_path = args.string_flag("forensics");
    const std::string record_base = args.string_flag("record");
    const int jobs = args.jobs();
    const int sim_workers = args.int_flag("sim-workers", 0);
    const bool observatory_on = args.bool_flag("observatory");
    const int top_k = args.int_flag("top-k", 8);
    const std::string specimens_dir = args.string_flag("specimens");
    args.finish();
    if (!specimens_dir.empty() && !observatory_on)
        fatal("--specimens needs --observatory");
    if (seeds < 1)
        fatal("--seeds must be >= 1");
    if (sim_workers < 0)
        fatal("--sim-workers must be >= 0");
    if (golden) {
        seeds = 1;
        out_path = "-";
    }

    const Scenario scenario = chaos_scenario();
    const Time horizon = scenario.total_duration();
    const std::vector<FaultMix> mixes = FaultMix::campaign_mixes();
    const RenderMode modes[] = {RenderMode::kVsync, RenderMode::kDvsync};

    if (!record_base.empty()) {
        // Record the canonical specimen (everything mix, seed 1) under
        // each pacing mode as a verbatim .dvst capture.
        for (RenderMode mode : modes) {
            SystemConfig cfg =
                SystemConfig()
                    .with_mode(mode)
                    .with_seed(1)
                    .with_faults(std::make_shared<const FaultPlan>(
                        FaultPlan::generate(1, horizon,
                                            FaultMix::everything())));
            RenderSystem sys(cfg, scenario);
            sys.run();
            const SessionCapture cap = SessionRecorder::capture(
                sys, std::string("chaos/everything/seed1/") +
                         to_string(mode));
            const std::string path =
                record_base +
                (mode == RenderMode::kVsync ? ".vsync.dvst"
                                            : ".dvsync.dvst");
            if (!cap.save(path))
                fatal("cannot write capture %s", path.c_str());
            std::fprintf(stderr, "capture written to %s\n", path.c_str());
        }
        return 0;
    }

    // The grid, mix-major: every (mix, mode) cell holds `seeds` runs.
    std::vector<Experiment> points;
    for (const FaultMix &mix : mixes) {
        if (golden) {
            std::fputs(
                FaultPlan::generate(1, horizon, mix).debug_string().c_str(),
                stdout);
        }
        for (RenderMode mode : modes) {
            for (int s = 0; s < seeds; ++s) {
                const std::uint64_t seed = std::uint64_t(s) + 1;
                Experiment point;
                point.scenario = scenario;
                point.config =
                    SystemConfig()
                        .with_mode(mode)
                        .with_seed(seed)
                        .with_sim_workers(sim_workers)
                        .with_faults(std::make_shared<const FaultPlan>(
                            FaultPlan::generate(seed, horizon, mix)));
                point.label = mix.name + "/" + to_string(mode) + "/seed" +
                              std::to_string(seed);
                points.push_back(std::move(point));
            }
        }
    }

    // Streaming fold: every report lands in its (mix, mode) cell and
    // the campaign-wide cause tally on delivery, then is dropped —
    // nothing is retained, whatever --seeds says.
    std::vector<Cell> cells;
    for (const FaultMix &mix : mixes) {
        for (RenderMode mode : modes) {
            Cell cell;
            cell.mix = mix.name;
            cell.mode = to_string(mode);
            cells.push_back(cell);
        }
    }
    std::uint64_t cause_totals[kDropCauseCount] = {};
    std::uint64_t injected_drops = 0;
    std::uint64_t total_drops = 0;
    CallbackSink sink([&](std::size_t idx, RunReport &&r) {
        Cell &cell = cells[idx / std::size_t(seeds)];
        ++cell.runs;
        cell.violations += r.invariant_violations;
        cell.faults += r.faults_injected;
        cell.presents += r.presents;
        cell.drops += r.drops;
        cell.degradations += r.degradations;
        cell.repromotions += r.repromotions;
        for (int c = 0; c < kDropCauseCount; ++c)
            cause_totals[c] += r.drop_causes[c];
        injected_drops += r.drops_injected;
        total_drops += r.drops;
        if (!r.error.empty()) {
            ++cell.errors;
            std::printf("ERROR %s: %s\n", r.label.c_str(),
                        r.error.c_str());
        }
        if (r.invariant_violations > 0) {
            std::printf("VIOLATIONS %s: %llu\n", r.label.c_str(),
                        (unsigned long long)r.invariant_violations);
        }
        if (golden)
            std::printf("%s\n", r.debug_string().c_str());
    });

    // The observatory keys cohorts by (mix, mode) cell — the label
    // minus its "/seedN" tail — so burn rates compare cells, not
    // individual seeds.
    ObservatoryConfig obs_config;
    obs_config.top_k = top_k;
    std::optional<Observatory> obs;
    if (observatory_on)
        obs.emplace(obs_config, [](const RunReport &r) {
            return r.label.substr(0, r.label.rfind('/'));
        });

    const ExperimentRunner runner(jobs);
    if (obs) {
        TeeSink tee({&sink, &*obs});
        runner.run_stream(points, tee);
    } else {
        runner.run_stream(points, sink);
    }

    std::uint64_t total_violations = 0;
    int total_errors = 0;
    for (const Cell &cell : cells) {
        total_violations += cell.violations;
        total_errors += cell.errors;
    }

    std::printf("chaos campaign: %d seeds x %zu mixes x 2 modes "
                "(%zu runs)\n\n",
                seeds, mixes.size(), points.size());
    std::printf("%-11s %-9s %5s %10s %8s %9s %7s %8s %6s\n", "mix", "mode",
                "runs", "violations", "faults", "presents", "drops",
                "degrades", "errs");
    for (const Cell &c : cells) {
        std::printf("%-11s %-9s %5d %10llu %8llu %9llu %7llu %8llu %6d\n",
                    c.mix.c_str(), c.mode.c_str(), c.runs,
                    (unsigned long long)c.violations,
                    (unsigned long long)c.faults,
                    (unsigned long long)c.presents,
                    (unsigned long long)c.drops,
                    (unsigned long long)c.degradations, c.errors);
    }
    // Root-cause roll-up: every drop in the campaign must carry a cause.
    std::printf("\ndrop causes (all runs):");
    for (int c = 0; c < kDropCauseCount; ++c) {
        if (cause_totals[c] > 0)
            std::printf(" %s=%llu", to_string(DropCause(c)),
                        (unsigned long long)cause_totals[c]);
    }
    std::printf(" | injected %llu of %llu drops\n",
                (unsigned long long)injected_drops,
                (unsigned long long)total_drops);

    std::printf("\ntotal: %llu violations, %d failed runs\n",
                (unsigned long long)total_violations, total_errors);

    if (obs) {
        std::fputs(obs->summary().c_str(), stdout);
        if (!specimens_dir.empty()) {
            std::string error;
            if (!capture_specimens(
                    obs.value(),
                    [&](std::uint64_t session) { return points[session]; },
                    specimens_dir, &error))
                fatal("specimen capture failed: %s", error.c_str());
            std::fprintf(stderr,
                         "observatory: %zu specimens written to %s\n",
                         obs->top().size(), specimens_dir.c_str());
        }
    }

    if (!forensics_path.empty()) {
        // The canonical forensics specimen: the everything mix under
        // D-VSync at seed 1, with the metrics sampler on.
        const FaultMix *everything = &mixes.back();
        for (const FaultMix &mix : mixes) {
            if (mix.name == "everything")
                everything = &mix;
        }
        SystemConfig cfg =
            SystemConfig()
                .with_mode(RenderMode::kDvsync)
                .with_seed(1)
                .with_sim_workers(sim_workers)
                .with_forensics(true)
                .with_faults(std::make_shared<const FaultPlan>(
                    FaultPlan::generate(1, horizon, *everything)));
        // Dense per-refresh series: this specimen exists to be
        // inspected, not to bound overhead.
        cfg.metrics_interval = cfg.device.period();
        RenderSystem sys(cfg, scenario);
        sys.run();
        if (!sys.save_forensics(forensics_path))
            fatal("cannot write forensics dump %s", forensics_path.c_str());
        // stderr: the path is caller-chosen and must not pollute goldens.
        std::fprintf(stderr, "forensics dump written to %s\n",
                     forensics_path.c_str());
    }

    if (out_path != "-") {
        BenchJson record("chaos_campaign");
        record.i64("seeds", seeds);
        record.u64("runs", points.size());
        record.u64("total_violations", total_violations);
        record.i64("failed_runs", total_errors);
        std::string cell_json = "[\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            char line[512];
            std::snprintf(
                line, sizeof(line),
                "    {\"mix\": \"%s\", \"mode\": \"%s\", \"runs\": %d, "
                "\"violations\": %llu, \"faults\": %llu, "
                "\"presents\": %llu, \"drops\": %llu, "
                "\"degradations\": %llu, \"repromotions\": %llu, "
                "\"errors\": %d}%s\n",
                c.mix.c_str(), c.mode.c_str(), c.runs,
                (unsigned long long)c.violations,
                (unsigned long long)c.faults,
                (unsigned long long)c.presents,
                (unsigned long long)c.drops,
                (unsigned long long)c.degradations,
                (unsigned long long)c.repromotions, c.errors,
                i + 1 < cells.size() ? "," : "");
            cell_json += line;
        }
        cell_json += "  ]";
        record.raw("cells", cell_json);
        record.write(out_path);
        std::printf("chaos record written to %s\n", out_path.c_str());
    }

    bool failed = total_violations > 0 || total_errors > 0;
    if (cause_totals[int(DropCause::kUnknown)] > 0) {
        std::printf("UNATTRIBUTED DROPS: %llu frames carry no cause\n",
                    (unsigned long long)
                        cause_totals[int(DropCause::kUnknown)]);
        failed = true;
    }
    if (failed) {
        std::printf("CHAOS CAMPAIGN FAILED\n");
        return 1;
    }
    return 0;
}
