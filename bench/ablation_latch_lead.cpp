/**
 * @file
 * Ablation: compositor latch deadline (SurfaceFlinger-style VSync-sf
 * lead).
 *
 * OpenHarmony's direct path latches queued buffers right at the hardware
 * edge; Android's SurfaceFlinger latches a fixed offset earlier, so a
 * buffer finished inside the latch window waits a whole extra period.
 * This sweep quantifies that design choice on both architectures: the
 * latch lead eats deadline headroom (more drops, more latency) under
 * VSync, while D-VSync's accumulated buffers are indifferent to it —
 * they were queued periods earlier anyway.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

int
main(int argc, char **argv)
{
    print_section("Ablation: compositor latch deadline (Pixel 5, 60 Hz)");

    ProfileSpec spec;
    spec.name = "latch";
    spec.heavy_per_sec = 3.0;
    spec.heavy_min_periods = 1.2;
    spec.heavy_max_periods = 2.8;
    spec.heavy_alpha = 1.5;
    spec.short_mean_periods = 0.55; // frames finish close to the edge
    auto cost = make_cost_model(spec, 60.0, 55);
    const Scenario sc = make_swipe_scenario("latch", 30, 500_ms, cost, 0.7);

    // The lead x architecture grid as one parallel batch.
    const std::vector<Time> leads = {Time(0), 2_ms, 4_ms, 6_ms, 8_ms};
    const std::vector<RenderMode> modes = {RenderMode::kVsync,
                                           RenderMode::kDvsync};
    std::vector<Experiment> points;
    for (Time lead : leads) {
        for (RenderMode mode : modes) {
            Experiment point;
            point.scenario = sc;
            point.config = SystemConfig()
                               .with_device(pixel5())
                               .with_mode(mode)
                               .with_latch_lead(lead);
            point.label = to_string(mode);
            points.push_back(std::move(point));
        }
    }
    ArgParser args(argc, argv);
    const ExperimentRunner runner(args.jobs());
    args.finish();
    const std::vector<RunReport> results = runner.run(points);

    TableReporter table({"latch lead (ms)", "architecture", "FDPS",
                         "latency ms", "deadline misses"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunReport &r = results[i];
        table.add_row({TableReporter::num(
                           to_ms(leads[i / modes.size()]), 0),
                       r.label, TableReporter::num(r.fdps),
                       TableReporter::num(r.latency_mean_ms, 1),
                       std::to_string(r.deadline_misses)});
    }
    table.print();

    std::printf("\nexpected shape: every ms of latch lead costs the VSync "
                "pipeline deadline headroom\n(FDPS and latency climb); "
                "D-VSync's pre-rendered buffers were queued long before "
                "any\ndeadline and stay flat.\n");
    return 0;
}
