#include "bench_common.h"

#include <algorithm>

namespace dvs::bench {

BenchRun
run_system(const SystemConfig &config, const Scenario &scenario)
{
    RenderSystem sys(config, scenario);
    sys.run();

    BenchRun r;
    FrameStats &stats = sys.stats();
    r.fdps = stats.fdps();
    r.drops = stats.frame_drops();
    r.frames_due = stats.frames_due();
    r.presents = stats.presents();
    r.latency_mean_ms = to_ms(Time(stats.latency().mean()));
    r.latency_p95_ms = to_ms(Time(stats.latency().percentile(95)));
    r.fd_percent = stats.frame_drop_percent();
    r.direct = stats.direct_composition();
    r.stuffed = stats.buffer_stuffing();
    r.stutters = count_stutters(stats);
    const RunActivity act = sys.activity();
    r.pipeline_busy_s = to_seconds(act.pipeline_busy);
    r.frames_produced = act.frames_produced;
    r.predicted_frames = act.predicted_frames;
    return r;
}

BenchRun
run_profile(const ProfileSpec &spec, const DeviceConfig &device,
            RenderMode mode, int buffers, const SwipeSetup &setup,
            std::uint64_t seed_base)
{
    BenchRun avg;
    for (int rep = 0; rep < setup.repeats; ++rep) {
        const std::uint64_t seed = seed_base + std::uint64_t(rep) * 7919;
        auto cost = make_cost_model(spec, device.refresh_hz, seed);
        const double fraction = spec.window_fraction > 0
                                    ? spec.window_fraction
                                    : setup.active_fraction;
        const Scenario sc = make_swipe_scenario(
            spec.name, setup.swipes, setup.swipe_period, cost, fraction);

        SystemConfig cfg;
        cfg.device = device;
        cfg.mode = mode;
        cfg.buffers = buffers;
        cfg.prerender_limit = setup.prerender_limit;
        cfg.seed = seed;
        const BenchRun r = run_system(cfg, sc);

        avg.fdps += r.fdps;
        avg.drops += r.drops;
        avg.frames_due += r.frames_due;
        avg.presents += r.presents;
        avg.latency_mean_ms += r.latency_mean_ms;
        avg.latency_p95_ms += r.latency_p95_ms;
        avg.fd_percent += r.fd_percent;
        avg.direct += r.direct;
        avg.stuffed += r.stuffed;
        avg.stutters += r.stutters;
        avg.pipeline_busy_s += r.pipeline_busy_s;
        avg.frames_produced += r.frames_produced;
        avg.predicted_frames += r.predicted_frames;
    }
    const double n = double(setup.repeats);
    avg.fdps /= n;
    avg.latency_mean_ms /= n;
    avg.latency_p95_ms /= n;
    avg.fd_percent /= n;
    avg.pipeline_busy_s /= n;
    return avg;
}

ProfileSpec
calibrate_baseline(const ProfileSpec &spec, const DeviceConfig &device,
                   int vsync_buffers, const SwipeSetup &setup,
                   std::uint64_t seed)
{
    ProfileSpec out = spec;
    if (spec.paper_fdps <= 0)
        return out;

    SwipeSetup quick = setup;
    quick.repeats = std::max(1, setup.repeats - 1);
    for (int iter = 0; iter < 4; ++iter) {
        const BenchRun r = run_profile(out, device, RenderMode::kVsync,
                                       vsync_buffers, quick, seed);
        if (r.fdps <= 0) {
            out.heavy_per_sec *= 2.0;
            continue;
        }
        const double ratio = spec.paper_fdps / r.fdps;
        if (ratio > 0.93 && ratio < 1.07)
            break;
        // Damped multiplicative update keeps the iteration stable for
        // bursty tails where drops respond super-linearly to the rate.
        out.heavy_per_sec *=
            std::clamp(1.0 + 0.8 * (ratio - 1.0), 0.35, 2.5);
        out.heavy_per_sec =
            std::min(out.heavy_per_sec, 0.4 * device.refresh_hz);
    }
    return out;
}

double
reduction_percent(double a, double b)
{
    if (a <= 0)
        return 0.0;
    return 100.0 * (1.0 - b / a);
}

} // namespace dvs::bench
