#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace dvs::bench {

const ExperimentRunner &
bench_runner()
{
    static const ExperimentRunner runner(default_jobs());
    return runner;
}

int
parse_jobs(int argc, char **argv)
{
    int flag = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            flag = std::atoi(argv[i] + 7);
    }
    return default_jobs(flag);
}

RunReport
run_system(const SystemConfig &config, const Scenario &scenario)
{
    return run_experiment(config, scenario);
}

std::vector<Experiment>
profile_experiments(const ProfileSpec &spec, const DeviceConfig &device,
                    RenderMode mode, int buffers, const SwipeSetup &setup,
                    std::uint64_t seed_base)
{
    std::vector<Experiment> points;
    points.reserve(std::size_t(setup.repeats));
    for (int rep = 0; rep < setup.repeats; ++rep) {
        const std::uint64_t seed = seed_base + std::uint64_t(rep) * 7919;
        auto cost = make_cost_model(spec, device.refresh_hz, seed);
        const double fraction = spec.window_fraction > 0
                                    ? spec.window_fraction
                                    : setup.active_fraction;
        Experiment point;
        point.scenario = make_swipe_scenario(
            spec.name, setup.swipes, setup.swipe_period, cost, fraction);
        point.config = SystemConfig()
                           .with_device(device)
                           .with_mode(mode)
                           .with_buffers(buffers)
                           .with_prerender_limit(setup.prerender_limit)
                           .with_seed(seed);
        point.label = spec.name;
        points.push_back(std::move(point));
    }
    return points;
}

RunReport
run_profile(const ProfileSpec &spec, const DeviceConfig &device,
            RenderMode mode, int buffers, const SwipeSetup &setup,
            std::uint64_t seed_base)
{
    return RunReport::averaged(bench_runner().run(
        profile_experiments(spec, device, mode, buffers, setup,
                            seed_base)));
}

std::vector<RunReport>
average_groups(const std::vector<RunReport> &reports, int group_size)
{
    std::vector<RunReport> cells;
    if (group_size <= 0)
        return cells;
    cells.reserve(reports.size() / std::size_t(group_size) + 1);
    for (std::size_t start = 0; start < reports.size();
         start += std::size_t(group_size)) {
        const std::size_t end =
            std::min(start + std::size_t(group_size), reports.size());
        const std::vector<RunReport> group(reports.begin() + long(start),
                                           reports.begin() + long(end));
        cells.push_back(RunReport::averaged(group));
    }
    return cells;
}

ProfileSpec
calibrate_baseline(const ProfileSpec &spec, const DeviceConfig &device,
                   int vsync_buffers, const SwipeSetup &setup,
                   std::uint64_t seed)
{
    ProfileSpec out = spec;
    if (spec.paper_fdps <= 0)
        return out;

    SwipeSetup quick = setup;
    quick.repeats = std::max(1, setup.repeats - 1);
    for (int iter = 0; iter < 4; ++iter) {
        const RunReport r = run_profile(out, device, RenderMode::kVsync,
                                        vsync_buffers, quick, seed);
        if (r.fdps <= 0) {
            out.heavy_per_sec *= 2.0;
            continue;
        }
        const double ratio = spec.paper_fdps / r.fdps;
        if (ratio > 0.93 && ratio < 1.07)
            break;
        // Damped multiplicative update keeps the iteration stable for
        // bursty tails where drops respond super-linearly to the rate.
        out.heavy_per_sec *=
            std::clamp(1.0 + 0.8 * (ratio - 1.0), 0.35, 2.5);
        out.heavy_per_sec =
            std::min(out.heavy_per_sec, 0.4 * device.refresh_hz);
    }
    return out;
}

double
reduction_percent(double a, double b)
{
    if (a <= 0)
        return 0.0;
    return 100.0 * (1.0 - b / a);
}

} // namespace dvs::bench
