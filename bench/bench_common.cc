#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.h"

namespace dvs::bench {

const ExperimentRunner &
bench_runner()
{
    static const ExperimentRunner runner(default_jobs());
    return runner;
}

ArgParser::ArgParser(int argc, char **argv)
    : prog_(argc > 0 ? argv[0] : "bench")
{
    for (int i = 1; i < argc; ++i) {
        Arg a;
        const char *s = argv[i];
        if (s[0] == '-' && s[1] == '-' && s[2] != '\0') {
            const char *eq = std::strchr(s + 2, '=');
            if (eq) {
                a.name.assign(s + 2, eq);
                a.value = eq + 1;
                a.has_value = true;
            } else {
                a.name = s + 2;
            }
        } else {
            a.value = s; // positional
        }
        args_.push_back(std::move(a));
    }
}

ArgParser::Arg *
ArgParser::find(const char *name)
{
    // Last occurrence wins (conventional override order); earlier
    // occurrences are consumed too so finish() does not flag them.
    Arg *hit = nullptr;
    for (Arg &a : args_) {
        if (!a.name.empty() && a.name == name) {
            a.consumed = true;
            hit = &a;
        }
    }
    return hit;
}

int
ArgParser::int_flag(const char *name, int def)
{
    const Arg *a = find(name);
    if (!a)
        return def;
    if (!a->has_value)
        fatal("--%s needs a value (--%s=N)", name, name);
    char *end = nullptr;
    const long v = std::strtol(a->value.c_str(), &end, 10);
    if (a->value.empty() || *end != '\0')
        fatal("--%s=%s is not an integer", name, a->value.c_str());
    return int(v);
}

std::uint64_t
ArgParser::u64_flag(const char *name, std::uint64_t def)
{
    const Arg *a = find(name);
    if (!a)
        return def;
    if (!a->has_value)
        fatal("--%s needs a value (--%s=N)", name, name);
    char *end = nullptr;
    const unsigned long long v = std::strtoull(a->value.c_str(), &end, 10);
    if (a->value.empty() || *end != '\0' || a->value[0] == '-')
        fatal("--%s=%s is not a non-negative integer", name,
              a->value.c_str());
    return std::uint64_t(v);
}

double
ArgParser::double_flag(const char *name, double def)
{
    const Arg *a = find(name);
    if (!a)
        return def;
    if (!a->has_value)
        fatal("--%s needs a value (--%s=X)", name, name);
    char *end = nullptr;
    const double v = std::strtod(a->value.c_str(), &end);
    if (a->value.empty() || *end != '\0')
        fatal("--%s=%s is not a number", name, a->value.c_str());
    return v;
}

std::string
ArgParser::string_flag(const char *name, std::string def)
{
    const Arg *a = find(name);
    if (!a)
        return def;
    if (!a->has_value)
        fatal("--%s needs a value (--%s=...)", name, name);
    return a->value;
}

bool
ArgParser::bool_flag(const char *name)
{
    const Arg *a = find(name);
    if (!a)
        return false;
    if (a->has_value)
        fatal("--%s takes no value", name);
    return true;
}

ShardSpec
ArgParser::shard_flag(const char *name)
{
    const std::string text = string_flag(name, "");
    if (text.empty())
        return ShardSpec{};
    const std::size_t slash = text.find('/');
    ShardSpec shard;
    char *end = nullptr;
    if (slash != std::string::npos) {
        shard.index = std::strtoull(text.c_str(), &end, 10);
        const bool index_ok = end == text.c_str() + slash;
        shard.count = std::strtoull(text.c_str() + slash + 1, &end, 10);
        if (index_ok && *end == '\0' && shard.count > 0 &&
            shard.index < shard.count)
            return shard;
    }
    fatal("--%s=%s is not K/N with 0 <= K < N", name, text.c_str());
}

int
ArgParser::jobs()
{
    return default_jobs(int_flag("jobs", 0));
}

std::vector<std::string>
ArgParser::positional(std::size_t max)
{
    std::vector<std::string> out;
    for (Arg &a : args_) {
        if (a.name.empty() && !a.consumed && out.size() < max) {
            a.consumed = true;
            out.push_back(a.value);
        }
    }
    return out;
}

void
ArgParser::finish()
{
    for (const Arg &a : args_) {
        if (a.consumed)
            continue;
        if (!a.name.empty())
            fatal("%s: unknown flag --%s", prog_.c_str(), a.name.c_str());
        fatal("%s: unexpected argument '%s'", prog_.c_str(),
              a.value.c_str());
    }
}

const std::string &
git_describe()
{
    static const std::string desc = [] {
        std::string out = "unknown";
        FILE *p = ::popen("git describe --always --dirty 2>/dev/null", "r");
        if (!p)
            return out;
        char buf[128];
        std::string raw;
        while (std::fgets(buf, sizeof(buf), p))
            raw += buf;
        if (::pclose(p) == 0) {
            while (!raw.empty() &&
                   (raw.back() == '\n' || raw.back() == '\r'))
                raw.pop_back();
            if (!raw.empty())
                out = raw;
        }
        return out;
    }();
    return desc;
}

BenchJson::BenchJson(const std::string &bench_name)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"schema_version\": %d,\n  \"bench\": \"%s\",\n"
                  "  \"git\": \"%s\"",
                  kSchemaVersion, bench_name.c_str(),
                  git_describe().c_str());
    body_ = buf;
}

void
BenchJson::key(const char *name)
{
    body_ += ",\n  \"";
    body_ += name;
    body_ += "\": ";
}

void
BenchJson::u64(const char *name, std::uint64_t value)
{
    key(name);
    body_ += std::to_string((unsigned long long)value);
}

void
BenchJson::i64(const char *name, std::int64_t value)
{
    key(name);
    body_ += std::to_string((long long)value);
}

void
BenchJson::num(const char *name, double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    key(name);
    body_ += buf;
}

void
BenchJson::str(const char *name, const std::string &value)
{
    key(name);
    body_ += "\"" + value + "\"";
}

void
BenchJson::boolean(const char *name, bool value)
{
    key(name);
    body_ += value ? "true" : "false";
}

void
BenchJson::raw(const char *name, const std::string &json)
{
    key(name);
    body_ += json;
}

std::string
BenchJson::to_string() const
{
    return "{\n" + body_ + "\n}\n";
}

void
BenchJson::write(const std::string &path) const
{
    if (path.empty() || path == "-")
        return;
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());
    const std::string text = to_string();
    std::fwrite(text.data(), 1, text.size(), f);
    if (std::fclose(f) != 0)
        fatal("cannot write %s", path.c_str());
}

RunReport
run_system(const SystemConfig &config, const Scenario &scenario)
{
    return run_experiment(config, scenario);
}

std::vector<Experiment>
profile_experiments(const ProfileSpec &spec, const DeviceConfig &device,
                    RenderMode mode, int buffers, const SwipeSetup &setup,
                    std::uint64_t seed_base)
{
    std::vector<Experiment> points;
    points.reserve(std::size_t(setup.repeats));
    for (int rep = 0; rep < setup.repeats; ++rep) {
        const std::uint64_t seed = seed_base + std::uint64_t(rep) * 7919;
        auto cost = make_cost_model(spec, device.refresh_hz, seed);
        const double fraction = spec.window_fraction > 0
                                    ? spec.window_fraction
                                    : setup.active_fraction;
        Experiment point;
        point.scenario = make_swipe_scenario(
            spec.name, setup.swipes, setup.swipe_period, cost, fraction);
        point.config = SystemConfig()
                           .with_device(device)
                           .with_mode(mode)
                           .with_buffers(buffers)
                           .with_prerender_limit(setup.prerender_limit)
                           .with_seed(seed);
        point.label = spec.name;
        points.push_back(std::move(point));
    }
    return points;
}

RunReport
run_profile(const ProfileSpec &spec, const DeviceConfig &device,
            RenderMode mode, int buffers, const SwipeSetup &setup,
            std::uint64_t seed_base)
{
    return RunReport::averaged(bench_runner().run(
        profile_experiments(spec, device, mode, buffers, setup,
                            seed_base)));
}

std::vector<RunReport>
average_groups(const std::vector<RunReport> &reports, int group_size)
{
    std::vector<RunReport> cells;
    if (group_size <= 0)
        return cells;
    cells.reserve(reports.size() / std::size_t(group_size) + 1);
    for (std::size_t start = 0; start < reports.size();
         start += std::size_t(group_size)) {
        const std::size_t end =
            std::min(start + std::size_t(group_size), reports.size());
        const std::vector<RunReport> group(reports.begin() + long(start),
                                           reports.begin() + long(end));
        cells.push_back(RunReport::averaged(group));
    }
    return cells;
}

GroupAverageSink::GroupAverageSink(int group_size)
    : group_size_(group_size > 0 ? std::size_t(group_size) : 1)
{
}

void
GroupAverageSink::consume(std::size_t, RunReport &&report)
{
    pending_.push_back(std::move(report));
    if (pending_.size() == group_size_) {
        cells_.push_back(RunReport::averaged(pending_));
        pending_.clear();
    }
}

std::vector<RunReport>
GroupAverageSink::take()
{
    if (!pending_.empty()) {
        cells_.push_back(RunReport::averaged(pending_));
        pending_.clear();
    }
    return std::move(cells_);
}

ProfileSpec
calibrate_baseline(const ProfileSpec &spec, const DeviceConfig &device,
                   int vsync_buffers, const SwipeSetup &setup,
                   std::uint64_t seed)
{
    ProfileSpec out = spec;
    if (spec.paper_fdps <= 0)
        return out;

    SwipeSetup quick = setup;
    quick.repeats = std::max(1, setup.repeats - 1);
    for (int iter = 0; iter < 4; ++iter) {
        const RunReport r = run_profile(out, device, RenderMode::kVsync,
                                        vsync_buffers, quick, seed);
        if (r.fdps <= 0) {
            out.heavy_per_sec *= 2.0;
            continue;
        }
        const double ratio = spec.paper_fdps / r.fdps;
        if (ratio > 0.93 && ratio < 1.07)
            break;
        // Damped multiplicative update keeps the iteration stable for
        // bursty tails where drops respond super-linearly to the rate.
        out.heavy_per_sec *=
            std::clamp(1.0 + 0.8 * (ratio - 1.0), 0.35, 2.5);
        out.heavy_per_sec =
            std::min(out.heavy_per_sec, 0.4 * device.refresh_hz);
    }
    return out;
}

double
reduction_percent(double a, double b)
{
    if (a <= 0)
        return 0.0;
    return 100.0 * (1.0 - b / a);
}

} // namespace dvs::bench
