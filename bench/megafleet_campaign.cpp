/**
 * @file
 * Megafleet campaign (`BENCH_megafleet.json`): one million simulated
 * user sessions streamed through the sink/aggregator pipeline.
 *
 * The point of this bench is the *shape* of the computation, not any
 * single number: a weighted device-tier x app-class population
 * (DevicePopulation) materializes each (config, scenario, seed) lazily,
 * the harness streams every finished RunReport into a
 * CampaignAggregator, and nothing else is ever retained. Peak RSS is
 * measured and printed — it must stay flat whether the campaign runs
 * 10k or 1M sessions, which is the property that makes fleet-scale
 * sweeps possible at all.
 *
 * With --observatory the same stream is teed into an Observatory
 * (src/obs/observatory.h): per-cohort SLO burn-rate monitors plus a
 * mergeable top-K anomaly ranking, checkpointed alongside the
 * aggregator (`<checkpoint>.obs`) under the same shard/resume/merge
 * determinism contract. --specimens=DIR then re-simulates the final
 * top-K offenders and writes verified bit-exact .dvst captures plus a
 * manifest — the tail of a million-session campaign, in replayable form.
 *
 * Usage: megafleet_campaign [--sessions=N] [--shard=K/N] [--jobs=N]
 *                           [--seed=N] [--checkpoint=PATH] [--resume]
 *                           [--checkpoint-every=N] [--merge PATHS...]
 *                           [--out=PATH] [--rss-limit-mb=N] [--golden]
 *                           [--sim-workers=N] [--observatory]
 *                           [--top-k=N] [--specimens=DIR]
 *   --sessions=N     campaign size (default 1000000)
 *   --sim-workers=N  parallel lane-dispatch workers inside each session
 *                    (default 0 = serial; reports are byte-identical
 *                    either way, so goldens never pass this flag)
 *   --shard=K/N      run only global session indices congruent to K
 *                    mod N; the aggregator checkpoints of all N shards
 *                    merge to the byte-exact unsharded state
 *   --seed=N         population seed (default 1)
 *   --checkpoint=PATH  write the aggregator checkpoint JSON here (the
 *                    observatory checkpoint goes to PATH.obs)
 *   --resume         load --checkpoint first and skip the sessions it
 *                    already covers (its in-order watermark)
 *   --checkpoint-every=N  additionally save every N consumed sessions
 *   --merge          merge mode: load the positional checkpoint paths,
 *                    fold them together, print the merged summary
 *                    (saving to --checkpoint when given), run nothing;
 *                    with --observatory each PATH.obs is merged too
 *   --observatory    tee the stream into the SLO/anomaly observatory
 *                    and print its summary after the aggregator's
 *   --top-k=N        observatory offender ranking depth (default 8)
 *   --specimens=DIR  after an unsharded run or a merge, re-simulate the
 *                    top-K offenders into DIR as verified .dvst
 *                    specimens + manifest.json (needs --observatory;
 *                    pass the same --seed/--sim-workers as the shards)
 *   --out=PATH       JSON bench record (default BENCH_megafleet.json;
 *                    "-" suppresses the file)
 *   --rss-limit-mb=N fail if peak RSS exceeds N MB (default 1024)
 *   --golden         deterministic 240-session replay for the golden
 *                    check (summary only: no timing, no RSS)
 *
 * Exits nonzero when any session fails, violates an invariant, drops a
 * frame without an attributed cause, exceeds the RSS bound, or fails
 * specimen capture/verification.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/aggregator.h"
#include "obs/observatory.h"
#include "sim/logging.h"
#include "workload/device_population.h"

using namespace dvs;
using namespace dvs::bench;

namespace {

/** Peak resident set size of this process, in MB. */
double
peak_rss_mb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    // Linux reports ru_maxrss in KB (macOS in bytes; this repo's CI is
    // Linux, and the value is informational elsewhere).
    return double(usage.ru_maxrss) / 1024.0;
}

/** Write the offender specimens; exits the process on failure. */
void
write_specimens(const Observatory &obs, const DevicePopulation &fleet,
                int sim_workers, const std::string &dir)
{
    std::string error;
    if (!capture_specimens(
            obs,
            [&](std::uint64_t session) {
                return fleet.experiment(session, sim_workers);
            },
            dir, &error))
        fatal("specimen capture failed: %s", error.c_str());
    std::fprintf(stderr, "observatory: %zu specimens written to %s\n",
                 obs.top().size(), dir.c_str());
}

int
merge_checkpoints(const std::vector<std::string> &paths,
                  const std::string &checkpoint_path,
                  std::optional<Observatory> &obs,
                  const DevicePopulation &fleet, int sim_workers,
                  const std::string &specimens_dir)
{
    if (paths.empty())
        fatal("--merge needs checkpoint paths as positional arguments");
    CampaignAggregator merged;
    std::string error;
    if (!merged.load(paths.front(), &error))
        fatal("cannot load %s: %s", paths.front().c_str(), error.c_str());
    for (std::size_t i = 1; i < paths.size(); ++i) {
        CampaignAggregator shard;
        if (!shard.load(paths[i], &error))
            fatal("cannot load %s: %s", paths[i].c_str(), error.c_str());
        merged.merge(shard);
    }
    if (obs) {
        if (!obs->load(paths.front() + ".obs", &error))
            fatal("cannot load %s.obs: %s", paths.front().c_str(),
                  error.c_str());
        for (std::size_t i = 1; i < paths.size(); ++i) {
            Observatory shard(obs->config());
            if (!shard.load(paths[i] + ".obs", &error))
                fatal("cannot load %s.obs: %s", paths[i].c_str(),
                      error.c_str());
            obs->merge(shard);
        }
    }
    if (!checkpoint_path.empty()) {
        if (!merged.save(checkpoint_path))
            fatal("cannot write %s", checkpoint_path.c_str());
        if (obs && !obs->save(checkpoint_path + ".obs"))
            fatal("cannot write %s.obs", checkpoint_path.c_str());
    }
    std::fputs(merged.summary().c_str(), stdout);
    if (obs) {
        std::fputs(obs->summary().c_str(), stdout);
        if (!specimens_dir.empty())
            write_specimens(*obs, fleet, sim_workers, specimens_dir);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool golden = args.bool_flag("golden");
    const std::uint64_t sessions_flag = args.u64_flag("sessions", 1'000'000);
    const std::uint64_t sessions = golden ? 240 : sessions_flag;
    const ShardSpec shard = args.shard_flag("shard");
    const std::uint64_t seed = args.u64_flag("seed", 1);
    const std::string checkpoint_path = args.string_flag("checkpoint");
    const bool resume = args.bool_flag("resume");
    const std::uint64_t checkpoint_every =
        args.u64_flag("checkpoint-every", 0);
    const bool merge = args.bool_flag("merge");
    const std::string out_flag =
        args.string_flag("out", "BENCH_megafleet.json");
    const std::string out_path = golden ? "-" : out_flag;
    const double rss_limit_mb = args.double_flag("rss-limit-mb", 1024.0);
    const int jobs = args.jobs();
    const int sim_workers = args.int_flag("sim-workers", 0);
    const bool observatory_on = args.bool_flag("observatory");
    const int top_k = args.int_flag("top-k", 8);
    const std::string specimens_dir = args.string_flag("specimens");
    const std::vector<std::string> merge_paths =
        merge ? args.positional(1024) : std::vector<std::string>{};
    args.finish();

    if (!specimens_dir.empty() && !observatory_on)
        fatal("--specimens needs --observatory");

    const DevicePopulation fleet = DevicePopulation::paper_fleet(seed);
    ObservatoryConfig obs_config;
    obs_config.top_k = top_k;

    if (merge) {
        std::optional<Observatory> obs;
        if (observatory_on)
            obs.emplace(obs_config);
        return merge_checkpoints(merge_paths, checkpoint_path, obs, fleet,
                                 sim_workers, specimens_dir);
    }
    if (sessions < 1)
        fatal("--sessions must be >= 1");
    if (resume && checkpoint_path.empty())
        fatal("--resume needs --checkpoint=PATH");
    if (sim_workers < 0)
        fatal("--sim-workers must be >= 0");
    if (!specimens_dir.empty() && shard.count > 1)
        fatal("--specimens on a shard would capture a shard-local top-K; "
              "merge the shard checkpoints first");

    // The aggregator keys cohorts by report label, which the population
    // sets to "<tier>/<mode>" — six cohorts, each with its twin.
    CampaignAggregator agg;
    if (resume) {
        std::string error;
        if (!agg.load(checkpoint_path, &error))
            fatal("cannot resume from %s: %s", checkpoint_path.c_str(),
                  error.c_str());
    }

    // This shard owns global indices K, K+N, K+2N, ...; a resumed run
    // skips the local positions its checkpoint already covers.
    const std::uint64_t shard_sessions = shard.size(sessions);
    const std::uint64_t done = agg.resume_pos();
    if (done > shard_sessions)
        fatal("checkpoint covers %llu sessions but this shard has %llu",
              (unsigned long long)done,
              (unsigned long long)shard_sessions);
    const std::uint64_t todo = shard_sessions - done;

    // The observatory rides the same stream; its verdicts carry *global*
    // session indices so any offender can be re-materialized later.
    std::optional<Observatory> obs;
    if (observatory_on) {
        obs.emplace(obs_config, nullptr, [shard, done](std::size_t i) {
            return shard.global(done + i);
        });
        if (resume) {
            std::string error;
            if (!obs->load(checkpoint_path + ".obs", &error))
                fatal("cannot resume observatory from %s.obs: %s",
                      checkpoint_path.c_str(), error.c_str());
            if (obs->resume_pos() != done)
                fatal("observatory checkpoint covers %llu sessions but "
                      "the aggregator covers %llu — mismatched resume "
                      "state",
                      (unsigned long long)obs->resume_pos(),
                      (unsigned long long)done);
        }
    }

    const ExperimentRunner runner(jobs);

    // Fan the stream out: aggregator, observatory (when on), then the
    // checkpoint saver — which runs last so a periodic checkpoint never
    // captures a half-delivered index.
    CallbackSink saver([&](std::size_t, RunReport &&) {
        if (checkpoint_every > 0 && agg.resume_pos() % checkpoint_every == 0
            && !checkpoint_path.empty()) {
            if (!agg.save(checkpoint_path))
                fatal("cannot write %s", checkpoint_path.c_str());
            if (obs && !obs->save(checkpoint_path + ".obs"))
                fatal("cannot write %s.obs", checkpoint_path.c_str());
        }
    });
    std::vector<ReportSink *> branches{&agg};
    if (obs)
        branches.push_back(&*obs);
    branches.push_back(&saver);
    TeeSink sink(std::move(branches));

    const auto t0 = std::chrono::steady_clock::now();
    runner.run_stream(
        todo,
        [&](std::size_t p) {
            return fleet.experiment(shard.global(done + p), sim_workers);
        },
        sink);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (!checkpoint_path.empty()) {
        if (!agg.save(checkpoint_path))
            fatal("cannot write %s", checkpoint_path.c_str());
        if (obs && !obs->save(checkpoint_path + ".obs"))
            fatal("cannot write %s.obs", checkpoint_path.c_str());
    }

    if (shard.count > 1)
        std::printf("shard %llu/%llu: %llu of %llu sessions\n",
                    (unsigned long long)shard.index,
                    (unsigned long long)shard.count,
                    (unsigned long long)shard_sessions,
                    (unsigned long long)sessions);
    std::fputs(agg.summary().c_str(), stdout);
    if (obs)
        std::fputs(obs->summary().c_str(), stdout);

    if (obs && !specimens_dir.empty())
        write_specimens(*obs, fleet, sim_workers, specimens_dir);

    const double rss_mb = peak_rss_mb();
    if (!golden) {
        std::printf("\nthroughput: %llu sessions in %.2f s (%.0f/s, "
                    "jobs=%d)\n",
                    (unsigned long long)todo, wall_s,
                    wall_s > 0 ? double(todo) / wall_s : 0.0,
                    runner.jobs());
        std::printf("peak RSS: %.1f MB (limit %.0f MB)\n", rss_mb,
                    rss_limit_mb);
    }

    if (out_path != "-") {
        BenchJson record("megafleet_campaign");
        record.u64("sessions", agg.sessions());
        record.u64("shard_index", shard.index);
        record.u64("shard_count", shard.count);
        record.u64("cohorts", agg.cohorts().size());
        record.u64("errors", agg.errors());
        record.u64("violations", agg.invariant_violations());
        record.boolean("observatory", observatory_on);
        record.num("wall_s", wall_s, 3);
        record.num("sessions_per_sec",
                   wall_s > 0 ? double(todo) / wall_s : 0.0, 1);
        record.num("peak_rss_mb", rss_mb, 1);
        record.i64("jobs", runner.jobs());
        record.write(out_path);
        std::fprintf(stderr, "record written to %s\n", out_path.c_str());
    }

    // Acceptance: a fleet campaign must complete clean — failed
    // sessions, invariant violations, unattributed drops, or an
    // unbounded memory footprint all fail the bench.
    int rc = 0;
    if (agg.errors() > 0) {
        std::printf("FAIL: %llu failed sessions\n",
                    (unsigned long long)agg.errors());
        rc = 1;
    }
    if (agg.invariant_violations() > 0) {
        std::printf("FAIL: %llu invariant violations\n",
                    (unsigned long long)agg.invariant_violations());
        rc = 1;
    }
    if (agg.unattributed_drops() > 0) {
        std::printf("FAIL: %llu drops without an attributed cause\n",
                    (unsigned long long)agg.unattributed_drops());
        rc = 1;
    }
    if (rss_limit_mb > 0 && rss_mb > rss_limit_mb) {
        std::printf("FAIL: peak RSS %.1f MB exceeds the %.0f MB bound\n",
                    rss_mb, rss_limit_mb);
        rc = 1;
    }
    return rc;
}
