/**
 * @file
 * Megafleet campaign (`BENCH_megafleet.json`): one million simulated
 * user sessions streamed through the sink/aggregator pipeline.
 *
 * The point of this bench is the *shape* of the computation, not any
 * single number: a weighted device-tier x app-class population
 * (DevicePopulation) materializes each (config, scenario, seed) lazily,
 * the harness streams every finished RunReport into a
 * CampaignAggregator, and nothing else is ever retained. Peak RSS is
 * measured and printed — it must stay flat whether the campaign runs
 * 10k or 1M sessions, which is the property that makes fleet-scale
 * sweeps possible at all.
 *
 * Usage: megafleet_campaign [--sessions=N] [--shard=K/N] [--jobs=N]
 *                           [--seed=N] [--checkpoint=PATH] [--resume]
 *                           [--checkpoint-every=N] [--merge PATHS...]
 *                           [--out=PATH] [--rss-limit-mb=N] [--golden]
 *                           [--sim-workers=N]
 *   --sessions=N     campaign size (default 1000000)
 *   --sim-workers=N  parallel lane-dispatch workers inside each session
 *                    (default 0 = serial; reports are byte-identical
 *                    either way, so goldens never pass this flag)
 *   --shard=K/N      run only global session indices congruent to K
 *                    mod N; the aggregator checkpoints of all N shards
 *                    merge to the byte-exact unsharded state
 *   --seed=N         population seed (default 1)
 *   --checkpoint=PATH  write the aggregator checkpoint JSON here
 *   --resume         load --checkpoint first and skip the sessions it
 *                    already covers (its in-order watermark)
 *   --checkpoint-every=N  additionally save every N consumed sessions
 *   --merge          merge mode: load the positional checkpoint paths,
 *                    fold them together, print the merged summary
 *                    (saving to --checkpoint when given), run nothing
 *   --out=PATH       JSON bench record (default BENCH_megafleet.json;
 *                    "-" suppresses the file)
 *   --rss-limit-mb=N fail if peak RSS exceeds N MB (default 1024)
 *   --golden         deterministic 240-session replay for the golden
 *                    check (summary only: no timing, no RSS)
 *
 * Exits nonzero when any session fails, violates an invariant, drops a
 * frame without an attributed cause, or the RSS bound is exceeded.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/aggregator.h"
#include "sim/logging.h"
#include "workload/device_population.h"

using namespace dvs;
using namespace dvs::bench;

namespace {

/** Peak resident set size of this process, in MB. */
double
peak_rss_mb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    // Linux reports ru_maxrss in KB (macOS in bytes; this repo's CI is
    // Linux, and the value is informational elsewhere).
    return double(usage.ru_maxrss) / 1024.0;
}

int
merge_checkpoints(const std::vector<std::string> &paths,
                  const std::string &checkpoint_path)
{
    if (paths.empty())
        fatal("--merge needs checkpoint paths as positional arguments");
    CampaignAggregator merged;
    std::string error;
    if (!merged.load(paths.front(), &error))
        fatal("cannot load %s: %s", paths.front().c_str(), error.c_str());
    for (std::size_t i = 1; i < paths.size(); ++i) {
        CampaignAggregator shard;
        if (!shard.load(paths[i], &error))
            fatal("cannot load %s: %s", paths[i].c_str(), error.c_str());
        merged.merge(shard);
    }
    if (!checkpoint_path.empty() && !merged.save(checkpoint_path))
        fatal("cannot write %s", checkpoint_path.c_str());
    std::fputs(merged.summary().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    const bool golden = args.bool_flag("golden");
    const std::uint64_t sessions_flag = args.u64_flag("sessions", 1'000'000);
    const std::uint64_t sessions = golden ? 240 : sessions_flag;
    const ShardSpec shard = args.shard_flag("shard");
    const std::uint64_t seed = args.u64_flag("seed", 1);
    const std::string checkpoint_path = args.string_flag("checkpoint");
    const bool resume = args.bool_flag("resume");
    const std::uint64_t checkpoint_every =
        args.u64_flag("checkpoint-every", 0);
    const bool merge = args.bool_flag("merge");
    const std::string out_flag =
        args.string_flag("out", "BENCH_megafleet.json");
    const std::string out_path = golden ? "-" : out_flag;
    const double rss_limit_mb = args.double_flag("rss-limit-mb", 1024.0);
    const int jobs = args.jobs();
    const int sim_workers = args.int_flag("sim-workers", 0);
    const std::vector<std::string> merge_paths =
        merge ? args.positional(1024) : std::vector<std::string>{};
    args.finish();

    if (merge)
        return merge_checkpoints(merge_paths, checkpoint_path);
    if (sessions < 1)
        fatal("--sessions must be >= 1");
    if (resume && checkpoint_path.empty())
        fatal("--resume needs --checkpoint=PATH");
    if (sim_workers < 0)
        fatal("--sim-workers must be >= 0");

    const DevicePopulation fleet = DevicePopulation::paper_fleet(seed);

    // The aggregator keys cohorts by report label, which the population
    // sets to "<tier>/<mode>" — six cohorts, each with its twin.
    CampaignAggregator agg;
    if (resume) {
        std::string error;
        if (!agg.load(checkpoint_path, &error))
            fatal("cannot resume from %s: %s", checkpoint_path.c_str(),
                  error.c_str());
    }

    // This shard owns global indices K, K+N, K+2N, ...; a resumed run
    // skips the local positions its checkpoint already covers.
    const std::uint64_t shard_sessions = shard.size(sessions);
    const std::uint64_t done = agg.resume_pos();
    if (done > shard_sessions)
        fatal("checkpoint covers %llu sessions but this shard has %llu",
              (unsigned long long)done,
              (unsigned long long)shard_sessions);
    const std::uint64_t todo = shard_sessions - done;

    const ExperimentRunner runner(jobs);
    CallbackSink sink([&](std::size_t index, RunReport &&report) {
        (void)index;
        agg.consume(index, std::move(report));
        if (checkpoint_every > 0 && agg.resume_pos() % checkpoint_every == 0
            && !checkpoint_path.empty()) {
            if (!agg.save(checkpoint_path))
                fatal("cannot write %s", checkpoint_path.c_str());
        }
    });

    const auto t0 = std::chrono::steady_clock::now();
    runner.run_stream(
        todo,
        [&](std::size_t p) {
            const std::uint64_t global = shard.global(done + p);
            SessionSpec spec = fleet.session(global);
            Experiment point;
            point.config = spec.config.with_sim_workers(sim_workers);
            point.scenario = std::move(spec.scenario);
            point.label = std::move(spec.label);
            return point;
        },
        sink);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    if (!checkpoint_path.empty() && !agg.save(checkpoint_path))
        fatal("cannot write %s", checkpoint_path.c_str());

    if (shard.count > 1)
        std::printf("shard %llu/%llu: %llu of %llu sessions\n",
                    (unsigned long long)shard.index,
                    (unsigned long long)shard.count,
                    (unsigned long long)shard_sessions,
                    (unsigned long long)sessions);
    std::fputs(agg.summary().c_str(), stdout);

    const double rss_mb = peak_rss_mb();
    if (!golden) {
        std::printf("\nthroughput: %llu sessions in %.2f s (%.0f/s, "
                    "jobs=%d)\n",
                    (unsigned long long)todo, wall_s,
                    wall_s > 0 ? double(todo) / wall_s : 0.0,
                    runner.jobs());
        std::printf("peak RSS: %.1f MB (limit %.0f MB)\n", rss_mb,
                    rss_limit_mb);
    }

    if (out_path != "-") {
        FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f)
            fatal("cannot write %s", out_path.c_str());
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"megafleet_campaign\",\n"
                     "  \"sessions\": %llu,\n"
                     "  \"shard_index\": %llu,\n"
                     "  \"shard_count\": %llu,\n"
                     "  \"cohorts\": %zu,\n"
                     "  \"errors\": %llu,\n"
                     "  \"violations\": %llu,\n"
                     "  \"wall_s\": %.3f,\n"
                     "  \"sessions_per_sec\": %.1f,\n"
                     "  \"peak_rss_mb\": %.1f,\n"
                     "  \"jobs\": %d\n"
                     "}\n",
                     (unsigned long long)agg.sessions(),
                     (unsigned long long)shard.index,
                     (unsigned long long)shard.count, agg.cohorts().size(),
                     (unsigned long long)agg.errors(),
                     (unsigned long long)agg.invariant_violations(),
                     wall_s, wall_s > 0 ? double(todo) / wall_s : 0.0,
                     rss_mb, runner.jobs());
        std::fclose(f);
        std::fprintf(stderr, "record written to %s\n", out_path.c_str());
    }

    // Acceptance: a fleet campaign must complete clean — failed
    // sessions, invariant violations, unattributed drops, or an
    // unbounded memory footprint all fail the bench.
    int rc = 0;
    if (agg.errors() > 0) {
        std::printf("FAIL: %llu failed sessions\n",
                    (unsigned long long)agg.errors());
        rc = 1;
    }
    if (agg.invariant_violations() > 0) {
        std::printf("FAIL: %llu invariant violations\n",
                    (unsigned long long)agg.invariant_violations());
        rc = 1;
    }
    if (agg.unattributed_drops() > 0) {
        std::printf("FAIL: %llu drops without an attributed cause\n",
                    (unsigned long long)agg.unattributed_drops());
        rc = 1;
    }
    if (rss_limit_mb > 0 && rss_mb > rss_limit_mb) {
        std::printf("FAIL: peak RSS %.1f MB exceeds the %.0f MB bound\n",
                    rss_mb, rss_limit_mb);
        rc = 1;
    }
    return rc;
}
