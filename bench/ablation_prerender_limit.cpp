/**
 * @file
 * Ablation: pre-rendering limit sweep.
 *
 * DESIGN.md calls out the pre-render limit as D-VSync's central knob: it
 * trades memory (one frame buffer per slot) against tolerance to long
 * frames. This sweep measures FDPS, latency, and the memory bill as the
 * limit grows from 1 to 8, on a fixed heavy workload, and shows the
 * diminishing returns past the paper's default of 2-3.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/distributions.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

int
main(int argc, char **argv)
{
    print_section("Ablation: pre-rendering limit (D-VSync on Pixel 5, "
                  "heavy power-law workload)");

    ProfileSpec spec;
    spec.name = "ablation";
    spec.heavy_per_sec = 5.0;
    spec.heavy_min_periods = 1.2;
    spec.heavy_max_periods = 5.0;
    spec.heavy_alpha = 1.2;
    spec.heavy_burst = 0.3;

    const DeviceConfig device = pixel5();
    SwipeSetup setup;
    setup.swipes = 40;
    setup.repeats = 3;

    // The whole sweep — the VSync baseline plus limits 1..8 — is one
    // parallel batch; cell 0 is the baseline, cell k the limit-k run.
    std::vector<Experiment> points = profile_experiments(
        spec, device, RenderMode::kVsync, 3, setup, 77);
    for (int limit = 1; limit <= 8; ++limit) {
        auto cell = profile_experiments(spec, device, RenderMode::kDvsync,
                                        limit + 2, setup, 77);
        points.insert(points.end(), cell.begin(), cell.end());
    }
    ArgParser args(argc, argv);
    const ExperimentRunner runner(args.jobs());
    args.finish();
    // Streamed: repeats fold into their cell average on delivery.
    GroupAverageSink sink(setup.repeats);
    runner.run_stream(points, sink);
    const std::vector<RunReport> cells = sink.take();
    const RunReport &baseline = cells.front();

    TableReporter table({"limit", "buffers", "memory MB", "FDPS",
                         "reduction", "latency ms"});
    table.add_row({"(VSync)", "3",
                   TableReporter::num(
                       3.0 * double(device.buffer_bytes()) / (1 << 20), 0),
                   TableReporter::num(baseline.fdps), "-",
                   TableReporter::num(baseline.latency_mean_ms, 1)});

    for (int limit = 1; limit <= 8; ++limit) {
        const int buffers = limit + 2;
        const RunReport &r = cells[std::size_t(limit)];
        table.add_row(
            {std::to_string(limit), std::to_string(buffers),
             TableReporter::num(double(buffers) *
                                    double(device.buffer_bytes()) /
                                    (1 << 20),
                                0),
             TableReporter::num(r.fdps),
             TableReporter::num(reduction_percent(baseline.fdps, r.fdps),
                                1) +
                 "%",
             TableReporter::num(r.latency_mean_ms, 1)});
    }
    table.print();

    std::printf("\nexpected shape: steep FDPS reduction up to limit 2-3 "
                "(the paper's default), diminishing beyond; latency "
                "stays on the 2-period floor regardless.\n");
    return 0;
}
