/**
 * @file
 * §6.4: costs of D-VSync — execution time and memory.
 *
 * Paper: the FPE + DTV bookkeeping adds 102.6 µs of execution per frame
 * (1.2% of a 120 Hz period, on little cores); memory grows by one frame
 * buffer per extra queue slot (~10 MB on Pixel 5, ~15 MB on the Mates),
 * with < 10 KB for the module logic itself.
 *
 * This binary microbenchmarks the actual execution cost of this
 * implementation's D-VSync bookkeeping (google-benchmark), and prints
 * the memory model.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/render_system.h"
#include "metrics/reporter.h"
#include "workload/frame_cost.h"

using namespace dvs;
using namespace dvs::time_literals;

namespace {

/** The per-frame D-VSync decision: DTV promise + model upkeep. */
void
BM_DtvPromiseNext(benchmark::State &state)
{
    Simulator sim;
    HwVsyncGenerator hw(sim, 120.0);
    BufferQueue queue(5);
    Panel panel(hw, queue);
    DvsyncConfig config;
    DisplayTimeVirtualizer dtv(sim, hw, panel, config);
    dtv.anchor_timeline(0);
    int ahead = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dtv.promise_next(ahead));
        ahead = (ahead + 1) % 3;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DtvPromiseNext);

/** Vsync-model calibration step (the DTV's per-edge work). */
void
BM_VsyncModelCalibration(benchmark::State &state)
{
    VsyncModel model(8'333'333);
    Time edge = 0;
    for (auto _ : state) {
        edge += 8'333'333;
        model.add_sample(edge);
        benchmark::DoNotOptimize(model.predict_next(edge));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VsyncModelCalibration);

/** Whole-stack simulation throughput: one full frame per iteration. */
void
BM_EndToEndFrameSimulation(benchmark::State &state)
{
    const bool dvsync = state.range(0) != 0;
    std::uint64_t frames = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto cost = std::make_shared<ConstantCostModel>(1_ms, 4_ms);
        Scenario sc("bench");
        sc.animate(1_s, cost);
        SystemConfig cfg;
        cfg.device = mate60_pro();
        cfg.mode = dvsync ? RenderMode::kDvsync : RenderMode::kVsync;
        state.ResumeTiming();

        RenderSystem sys(cfg, sc);
        sys.run();
        frames += sys.producer().frames_started();
    }
    state.SetItemsProcessed(std::int64_t(frames));
    state.SetLabel(dvsync ? "D-VSync" : "VSync");
}
BENCHMARK(BM_EndToEndFrameSimulation)->Arg(0)->Arg(1);

void
print_cost_model()
{
    print_section("Section 6.4: D-VSync costs");

    TableReporter table({"item", "model value", "paper"});
    DvsyncConfig config;
    PowerParams power;
    table.add_row({"FPE+DTV execution per frame",
                   TableReporter::num(
                       to_us(power.dvsync_overhead_per_frame), 1) + " us",
                   "102.6 us (1.2% of a 120 Hz period)"});

    const DeviceConfig p5 = pixel5();
    const DeviceConfig m60 = mate60_pro();
    table.add_row(
        {"extra buffer, Pixel 5 (RGBA8888)",
         TableReporter::num(double(p5.buffer_bytes()) / (1 << 20), 1) +
             " MB",
         "~10 MB per app (4 bufs vs triple buffering)"});
    table.add_row(
        {"extra buffer, Mate 60 Pro",
         TableReporter::num(double(m60.buffer_bytes()) / (1 << 20), 1) +
             " MB",
         "~15 MB (render service already uses 4 bufs)"});
    table.add_row({"module state (FPE+DTV+API)", "< 1 KB",
                   "< 10 KB"});
    table.print();
    std::printf("\n(google-benchmark timings of this implementation's "
                "bookkeeping follow)\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    print_cost_model();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
