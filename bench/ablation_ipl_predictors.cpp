/**
 * @file
 * Ablation: IPL predictor choice.
 *
 * §4.6: "simple heuristic curves can fit the input patterns with very
 * smooth user experience." This sweep compares the prediction error of
 * the available fitters — last-value (no prediction), linear (the ZDP),
 * and quadratic — across gesture families and prediction horizons.
 */

#include <cstdio>

#include "core/input_prediction_layer.h"
#include "core/predictors_extra.h"
#include "input/gesture.h"
#include "metrics/reporter.h"
#include "sim/stats.h"

using namespace dvs;
using namespace dvs::time_literals;

namespace {

struct GestureCase {
    const char *name;
    TouchStream stream;
};

std::vector<GestureCase>
make_gestures()
{
    Rng rng(7);
    std::vector<GestureCase> cases;

    GestureTiming swipe_t;
    swipe_t.duration = 500_ms;
    swipe_t.noise_px = 2.0;
    Rng n1 = rng.fork();
    cases.push_back(
        {"ease-out swipe", make_swipe(swipe_t, 1800, 1200, &n1)});

    GestureTiming drag_t;
    drag_t.duration = 500_ms;
    drag_t.noise_px = 2.0;
    Rng n2 = rng.fork();
    cases.push_back(
        {"constant drag", make_drag(drag_t, 2000, 1500, &n2)});

    GestureTiming pinch_t;
    pinch_t.duration = 600_ms;
    pinch_t.noise_px = 1.5;
    Rng n3 = rng.fork();
    cases.push_back(
        {"pinch zoom", make_pinch(pinch_t, 180, 620, &n3)});

    return cases;
}

double
score(const InputPredictor &p, const TouchStream &s, Time horizon)
{
    SampleStat err;
    const Time start = s.start_time() + 100_ms;
    const Time end = s.end_time() - horizon;
    for (Time now = start; now <= end; now += 8'333'333) {
        const Time target = now + horizon;
        const double truth = touch_value(s.interpolate(target));
        err.add(std::abs(p.predict(s, now, target) - truth));
    }
    return err.mean();
}

} // namespace

int
main()
{
    print_section("Ablation: IPL predictor error (px) by gesture and "
                  "prediction horizon");

    const LastValuePredictor last;
    const LinearPredictor linear(80_ms);
    const QuadraticPredictor quadratic(120_ms);
    const AlphaBetaPredictor alpha_beta;
    const DampedTrendPredictor damped;

    for (Time horizon : {Time(16'666'666), Time(33'333'333),
                         Time(50'000'000)}) {
        std::printf("\nprediction horizon: %.1f ms (%.0f periods at "
                    "60 Hz)\n",
                    to_ms(horizon), to_ms(horizon) / 16.667);
        TableReporter table({"gesture", "last-value", "linear (ZDP)",
                             "quadratic", "alpha-beta", "damped-trend"});
        for (const GestureCase &g : make_gestures()) {
            table.add_row(
                {g.name,
                 TableReporter::num(score(last, g.stream, horizon), 1),
                 TableReporter::num(score(linear, g.stream, horizon), 1),
                 TableReporter::num(score(quadratic, g.stream, horizon),
                                    1),
                 TableReporter::num(score(alpha_beta, g.stream, horizon),
                                    1),
                 TableReporter::num(score(damped, g.stream, horizon),
                                    1)});
        }
        table.print();
    }

    std::printf("\nexpected shape: linear fitting cuts the last-value "
                "error by an order of magnitude (the paper's ZDP choice); "
                "quadratic helps on curved gestures, at some noise "
                "sensitivity.\n");
    return 0;
}
