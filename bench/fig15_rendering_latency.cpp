/**
 * @file
 * Figure 15: rendering latency reduction per device.
 *
 * Paper (mean over all recorded workloads):
 *   Pixel 5 (60 Hz):      45.8 ms -> 31.2 ms (-31.9%)
 *   Mate 40 Pro (90 Hz):  32.2 ms -> 22.3 ms (-30.7%)
 *   Mate 60 Pro (120 Hz): 24.2 ms -> 16.8 ms (-30.6%)
 * The D-VSync numbers land almost exactly on the 2-period pipeline floor
 * of each device; VSync sits ~0.8-0.9 periods above it because of buffer
 * stuffing after drops.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/os_case_profiles.h"

using namespace dvs;
using namespace dvs::bench;

namespace {

struct LatencyPair {
    double vsync_ms = 0.0;
    double dvsync_ms = 0.0;
};

LatencyPair
sweep(const std::vector<ProfileSpec> &specs, const DeviceConfig &device)
{
    // Pixel 5 uses the app methodology with near-continuous scrolling
    // (stuffing persists across swipes, as in the recorded traces); the
    // Mates use the OS-case methodology.
    SwipeSetup setup = SwipeSetup::os_cases();
    if (device.refresh_hz <= 60.0) {
        setup = SwipeSetup{};
        setup.active_fraction = 0.9;
    }
    setup.repeats = 2;

    // Latency is averaged over all frames of all workloads, weighted by
    // presents — approximated by averaging per-profile means.
    LatencyPair out;
    int n = 0;
    for (const ProfileSpec &raw : specs) {
        const std::uint64_t seed = std::hash<std::string>{}(raw.name);
        const ProfileSpec spec = calibrate_baseline(
            raw, device, device.vsync_buffers, setup, seed);
        out.vsync_ms +=
            run_profile(spec, device, RenderMode::kVsync,
                        device.vsync_buffers, setup, seed)
                .latency_mean_ms;
        out.dvsync_ms += run_profile(spec, device, RenderMode::kDvsync,
                                     device.vsync_buffers + 1, setup, seed)
                             .latency_mean_ms;
        ++n;
    }
    out.vsync_ms /= n;
    out.dvsync_ms /= n;
    return out;
}

std::vector<ProfileSpec>
case_specs(OsConfig config)
{
    std::vector<ProfileSpec> specs;
    for (const OsCase *c : cases_with_drops(config))
        specs.push_back(make_os_case_spec(*c, config));
    return specs;
}

} // namespace

int
main()
{
    print_section("Figure 15: rendering latency, VSync vs D-VSync");

    TableReporter table({"device", "VSync ms", "D-VSync ms", "reduction",
                         "paper", "2-period floor"});

    struct Row {
        const char *name;
        DeviceConfig device;
        std::vector<ProfileSpec> specs;
        const char *paper;
    };
    const Row rows[] = {
        {"Google Pixel 5 (60 Hz)", pixel5(), pixel5_app_profiles(),
         "45.8 -> 31.2"},
        {"Mate 40 Pro (90 Hz)", mate40_pro(),
         case_specs(OsConfig::kMate40Gles), "32.2 -> 22.3"},
        {"Mate 60 Pro (120 Hz)", mate60_pro(),
         case_specs(OsConfig::kMate60Gles), "24.2 -> 16.8"},
    };

    double total_red = 0;
    for (const Row &row : rows) {
        const LatencyPair lat = sweep(row.specs, row.device);
        const double red = reduction_percent(lat.vsync_ms, lat.dvsync_ms);
        total_red += red;
        table.add_row({row.name, TableReporter::num(lat.vsync_ms, 1),
                       TableReporter::num(lat.dvsync_ms, 1),
                       TableReporter::num(red, 1) + "%", row.paper,
                       TableReporter::num(
                           2.0 * to_ms(row.device.period()), 1)});
    }
    table.print();

    std::printf("\npaper:    average reduction 31.1%% across devices, "
                "D-VSync ~= the 2-period floor\n");
    std::printf("measured: average reduction %.1f%%\n", total_red / 3.0);
    return 0;
}
