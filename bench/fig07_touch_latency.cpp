/**
 * @file
 * Figure 7: visualization of rendering latency — a ball drawn at the
 * touch position falls behind the fingertip.
 *
 * The paper's demo app draws a red ball every frame at the latest touch
 * coordinate; with ~45 ms end-to-end latency and a fast upward swipe the
 * ball trails the fingertip by up to ~400 px (2.4 cm). We reproduce the
 * per-frame displacement series, then show how D-VSync with an IPL
 * predictor closes the gap.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/input_prediction_layer.h"
#include "input/gesture.h"
#include "metrics/reporter.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

struct BallRun {
    std::vector<double> finger_y;
    std::vector<double> ball_y;
    double max_gap = 0.0;
};

BallRun
run_ball(RenderMode mode, bool with_predictor)
{
    // A fast upward swipe, ease-out, ~2700 px in 300 ms (peak ~9000 px/s
    // like the paper's "swipe fast").
    GestureTiming timing;
    timing.duration = 300_ms;
    auto touch =
        std::make_shared<TouchStream>(make_swipe(timing, 2000.0, 1500.0));

    auto cost = std::make_shared<ConstantCostModel>(2_ms, 6_ms);
    Scenario sc("ball");
    sc.interact(touch, cost, "drag");

    SystemConfig cfg;
    cfg.device = pixel5();
    cfg.mode = mode;
    RenderSystem sys(cfg, sc);
    if (with_predictor && sys.runtime()) {
        sys.runtime()->register_predictor(
            "drag", std::make_shared<LinearPredictor>());
    }
    sys.run();

    BallRun out;
    const SegmentState &st = sys.producer().segment_state(0);
    for (const ShownFrame &f : sys.stats().shown()) {
        const FrameRecord &rec = sys.producer().record(f.frame_id);
        const Time rel = f.present_time - st.abs_start;
        const double finger = touch->interpolate(rel).y;
        out.finger_y.push_back(finger);
        out.ball_y.push_back(rec.content_value);
        out.max_gap =
            std::max(out.max_gap, std::abs(finger - rec.content_value));
    }
    return out;
}

} // namespace

int
main()
{
    print_section("Figure 7: touch-follow latency — ball vs fingertip "
                  "(fast upward swipe, 60 Hz)");

    const BallRun vsync = run_ball(RenderMode::kVsync, false);
    const BallRun dvsync = run_ball(RenderMode::kDvsync, true);

    std::printf("\nframe  finger y  ball y (VSync)  gap px   gap bar\n");
    for (std::size_t i = 0; i < vsync.finger_y.size(); ++i) {
        const double gap = vsync.finger_y[i] - vsync.ball_y[i];
        std::printf("%5zu  %8.0f  %14.0f  %7.0f  %s\n", i + 1,
                    vsync.finger_y[i], vsync.ball_y[i], std::abs(gap),
                    ascii_bar(std::abs(gap), 450.0, 30).c_str());
    }

    std::printf("\npaper:    the ball falls behind the fingertip by up "
                "to ~394 px (2.4 cm) under VSync\n");
    std::printf("measured: max gap %.0f px under VSync\n", vsync.max_gap);
    std::printf("          max gap %.0f px under D-VSync + IPL linear "
                "prediction (%.1f%% smaller)\n",
                dvsync.max_gap,
                reduction_percent(vsync.max_gap, dvsync.max_gap));
    return 0;
}
