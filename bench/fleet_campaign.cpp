/**
 * @file
 * Fleet campaign (`BENCH_fleet.json`): seeded multi-surface sessions
 * swept over surface count x memory budget x arbiter policy through the
 * parallel experiment harness.
 *
 * Every session assembles a MultiSurfaceSystem from a fixed surface
 * roster (heavy D-VSync app, light status bar, oblivious overlay, heavy
 * game) and runs it under one device-wide extra-buffer budget (§6.4)
 * with the cross-surface invariant monitor on. The sweep compares the
 * weighted arbiter against the naive equal-split baseline at every
 * (count, budget) cell.
 *
 * Acceptance bar, checked on exit:
 *  - zero invariant violations and zero failed runs across the fleet;
 *  - under the constrained budgets (0 < budget <= 32 MB) the weighted
 *    arbiter's summed drops are strictly below equal-split's — the
 *    arbiter must demonstrably buy frames with the same memory.
 *
 * Usage: fleet_campaign [--seeds=N] [--jobs=N] [--out=PATH] [--golden]
 *                       [--sim-workers=N] [--record=PATH]
 *   --seeds=N    seeds per (count, budget, policy) cell (default 10;
 *                the default grid is 3 counts x 4 budgets x 2 policies
 *                x 10 seeds = 240 sessions)
 *   --sim-workers=N  parallel lane-dispatch workers inside each session
 *                (default 0 = serial; sessions with a shared device GPU
 *                fall back to serial with identical reports, so goldens
 *                never pass this flag)
 *   --out=PATH   where to write the JSON record (default
 *                BENCH_fleet.json; "-" suppresses the file)
 *   --golden     deterministic single-seed replay dump for the golden
 *                check (per-session reports, no JSON, no timing)
 *   --record=PATH  record one canonical 4-surface session (full roster,
 *                weighted arbiter, 32 MB budget, seed 1) as a replayable
 *                .dvst capture at PATH and exit without running the sweep
 *
 * Exits nonzero when the acceptance bar fails.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/logging.h"
#include "surface/multi_surface.h"
#include "trace/session_recorder.h"
#include "workload/distributions.h"
#include "workload/frame_cost.h"

using namespace dvs;
using namespace dvs::bench;
using namespace dvs::time_literals;

namespace {

Scenario
light_scenario(const std::string &name, Time duration)
{
    auto cost = std::make_shared<ConstantCostModel>(1_ms, 3_ms);
    Scenario sc(name);
    sc.animate(duration, cost);
    return sc;
}

Scenario
heavy_scenario(const std::string &name, std::uint64_t seed, Time duration)
{
    // Power-law costs whose key frames overrun the 60 Hz period:
    // pre-render depth (banked idle time) absorbs them, so drops respond
    // to the arbiter's buffer grants.
    PowerLawParams p;
    p.short_mean_ms = 8.0;
    p.heavy_prob = 0.22;
    p.heavy_min_ms = 14.0;
    p.heavy_max_ms = 32.0;
    auto cost = std::make_shared<PowerLawCostModel>(p, seed);
    Scenario sc(name);
    sc.animate(duration, cost);
    return sc;
}

/**
 * The fleet roster, in launch order. Sessions with fewer surfaces take a
 * prefix, so every count includes the heavy app that profits most from
 * arbitration. Staggered durations make surfaces exit mid-session and
 * exercise online re-arbitration.
 */
std::vector<SurfaceDesc>
roster(int count, std::uint64_t seed)
{
    std::vector<SurfaceDesc> descs = {
        SurfaceDesc()
            .with_name("app")
            .with_scenario(heavy_scenario("app", seed * 1000 + 1, 900_ms))
            .with_buffer_mb(12.0)
            .with_weight(3.0),
        SurfaceDesc()
            .with_name("status_bar")
            .with_scenario(light_scenario("status_bar", 800_ms))
            .with_buffer_mb(10.0)
            .with_weight(1.0),
        SurfaceDesc()
            .with_name("overlay")
            .with_scenario(light_scenario("overlay", 600_ms))
            .with_dvsync_aware(false)
            .with_buffer_mb(8.0),
        SurfaceDesc()
            .with_name("game")
            .with_scenario(heavy_scenario("game", seed * 1000 + 4, 900_ms))
            .with_buffer_mb(12.0)
            .with_weight(4.0),
    };
    descs.resize(std::size_t(count));
    return descs;
}

struct SurfaceAgg {
    std::string name;
    std::uint64_t drops = 0;
    std::uint64_t due = 0;
    double fdps_sum = 0.0; ///< summed per-run FDPS; mean = /runs
};

struct Cell {
    int count = 0;
    double budget_mb = 0.0;
    ArbiterPolicy policy = ArbiterPolicy::kWeighted;
    int runs = 0;
    std::uint64_t violations = 0;
    std::uint64_t drops = 0;
    std::uint64_t presents = 0;
    std::uint64_t degradations = 0;
    std::uint64_t rearbitrations = 0;
    double peak_used_mb = 0.0;
    double fdps_sum = 0.0; ///< summed aggregate FDPS; mean = /runs
    int errors = 0;
    std::vector<SurfaceAgg> surfaces;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    int seeds = args.int_flag("seeds", 10);
    bool golden = args.bool_flag("golden");
    std::string out_path = args.string_flag("out", "BENCH_fleet.json");
    const int jobs = args.jobs();
    const int sim_workers = args.int_flag("sim-workers", 0);
    const std::string record_path = args.string_flag("record");
    args.finish();
    if (seeds < 1)
        fatal("--seeds must be >= 1");
    if (sim_workers < 0)
        fatal("--sim-workers must be >= 0");
    if (golden) {
        seeds = 1;
        out_path = "-";
    }

    if (!record_path.empty()) {
        MultiSurfaceSystem sys(roster(4, 1),
                               MultiSurfaceConfig()
                                   .with_seed(1)
                                   .with_budget_mb(32.0)
                                   .with_policy(ArbiterPolicy::kWeighted));
        sys.run();
        const SessionCapture cap = SessionRecorder::capture(
            sys, "fleet/4surf/32mb/weighted/seed1");
        if (!cap.save(record_path))
            fatal("cannot write capture %s", record_path.c_str());
        std::fprintf(stderr, "capture written to %s\n",
                     record_path.c_str());
        return 0;
    }

    const int counts[] = {2, 3, 4};
    const double budgets[] = {0.0, 16.0, 32.0, 64.0};
    const ArbiterPolicy policies[] = {ArbiterPolicy::kWeighted,
                                      ArbiterPolicy::kEqualSplit};

    // The grid, count-major: every (count, budget, policy) cell holds
    // `seeds` sessions. TaskSpecs carry the submission label, so even a
    // session that dies before labeling itself reports under its cell.
    std::vector<ExperimentRunner::TaskSpec> tasks;
    std::vector<Cell> cells;
    for (int count : counts) {
        for (double budget : budgets) {
            for (ArbiterPolicy policy : policies) {
                Cell cell;
                cell.count = count;
                cell.budget_mb = budget;
                cell.policy = policy;
                cells.push_back(cell);
                for (int s = 0; s < seeds; ++s) {
                    const std::uint64_t seed = std::uint64_t(s) + 1;
                    ExperimentRunner::TaskSpec spec;
                    spec.label = std::to_string(count) + "surf/" +
                                 std::to_string(int(budget)) + "mb/" +
                                 to_string(policy) + "/seed" +
                                 std::to_string(seed);
                    spec.run = [count, budget, policy, seed, sim_workers] {
                        return run_multi_surface(
                            roster(count, seed),
                            MultiSurfaceConfig()
                                .with_seed(seed)
                                .with_budget_mb(budget)
                                .with_policy(policy)
                                .with_sim_workers(sim_workers));
                    };
                    tasks.push_back(std::move(spec));
                }
            }
        }
    }

    // Streaming fold into the per-cell aggregates; reports are dropped
    // on delivery.
    std::uint64_t total_violations = 0;
    int total_errors = 0;
    std::uint64_t cause_totals[kDropCauseCount] = {};
    std::uint64_t injected_drops = 0;
    std::uint64_t total_drops = 0;
    CallbackSink sink([&](std::size_t idx, RunReport &&r) {
        for (int c = 0; c < kDropCauseCount; ++c)
            cause_totals[c] += r.drop_causes[c];
        injected_drops += r.drops_injected;
        total_drops += r.drops;
        Cell &cell = cells[idx / std::size_t(seeds)];
        ++cell.runs;
        cell.violations += r.invariant_violations;
        cell.drops += r.drops;
        cell.presents += r.presents;
        cell.degradations += r.degradations;
        cell.rearbitrations += r.rearbitrations;
        cell.peak_used_mb = std::max(cell.peak_used_mb, r.budget_used_mb);
        cell.fdps_sum += r.fdps;
        if (cell.surfaces.size() < r.surfaces.size())
            cell.surfaces.resize(r.surfaces.size());
        for (std::size_t j = 0; j < r.surfaces.size(); ++j) {
            SurfaceAgg &agg = cell.surfaces[j];
            agg.name = r.surfaces[j].name;
            agg.drops += r.surfaces[j].drops;
            agg.due += r.surfaces[j].frames_due;
            agg.fdps_sum += r.surfaces[j].fdps;
        }
        if (!r.error.empty()) {
            ++cell.errors;
            ++total_errors;
            std::printf("ERROR %s: %s\n", r.label.c_str(), r.error.c_str());
        }
        if (r.invariant_violations > 0)
            std::printf("VIOLATIONS %s: %llu\n", r.label.c_str(),
                        (unsigned long long)r.invariant_violations);
        total_violations += r.invariant_violations;
        if (golden)
            std::printf("%s\n", r.debug_string().c_str());
    });

    const ExperimentRunner runner(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    runner.run_tasks_stream(tasks, sink);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("fleet campaign: %d seeds x %zu counts x %zu budgets x "
                "%zu policies (%zu sessions)\n\n",
                seeds, std::size(counts), std::size(budgets),
                std::size(policies), tasks.size());
    std::printf("%5s %7s %-10s %5s %10s %7s %9s %8s %7s %6s\n", "surfs",
                "budget", "policy", "runs", "violations", "drops",
                "presents", "rearbs", "peakMB", "errs");
    for (const Cell &c : cells) {
        std::printf("%5d %7.0f %-10s %5d %10llu %7llu %9llu %8llu %7.0f "
                    "%6d\n",
                    c.count, c.budget_mb, to_string(c.policy), c.runs,
                    (unsigned long long)c.violations,
                    (unsigned long long)c.drops,
                    (unsigned long long)c.presents,
                    (unsigned long long)c.rearbitrations, c.peak_used_mb,
                    c.errors);
    }

    // The acceptance comparison: at every constrained budget, how many
    // frames does arbitration buy over equal division of the same
    // memory?
    std::uint64_t constrained_weighted = 0, constrained_equal = 0;
    std::printf("\nweighted vs equal-split (same count, budget, seeds):\n");
    for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
        const Cell &w = cells[i];
        const Cell &e = cells[i + 1];
        const bool constrained = w.budget_mb > 0.0 && w.budget_mb <= 32.0;
        if (constrained) {
            constrained_weighted += w.drops;
            constrained_equal += e.drops;
        }
        std::printf("  %d surfaces, %3.0f MB: %llu vs %llu drops%s\n",
                    w.count, w.budget_mb, (unsigned long long)w.drops,
                    (unsigned long long)e.drops,
                    constrained ? "  [constrained]" : "");
    }
    std::printf("constrained total: weighted %llu, equal-split %llu\n",
                (unsigned long long)constrained_weighted,
                (unsigned long long)constrained_equal);

    // Root-cause roll-up: every drop in the fleet must carry a cause.
    std::printf("drop causes (all sessions):");
    for (int c = 0; c < kDropCauseCount; ++c) {
        if (cause_totals[c] > 0)
            std::printf(" %s=%llu", to_string(DropCause(c)),
                        (unsigned long long)cause_totals[c]);
    }
    std::printf(" | injected %llu of %llu drops\n",
                (unsigned long long)injected_drops,
                (unsigned long long)total_drops);

    std::printf("total: %llu violations, %d failed runs\n",
                (unsigned long long)total_violations, total_errors);
    if (!golden)
        std::printf("throughput: %zu sessions in %.2f s (%.1f/s, "
                    "jobs=%d)\n",
                    tasks.size(), wall_s, double(tasks.size()) / wall_s,
                    runner.jobs());

    if (out_path != "-") {
        bench::BenchJson record("fleet_campaign");
        record.i64("seeds", seeds);
        record.u64("sessions", tasks.size());
        record.u64("total_violations", total_violations);
        record.i64("failed_runs", total_errors);
        record.u64("constrained_drops_weighted", constrained_weighted);
        record.u64("constrained_drops_equal_split", constrained_equal);
        record.num("wall_seconds", wall_s, 3);
        record.num("throughput_sessions_per_sec",
                   double(tasks.size()) / wall_s, 1);
        record.i64("jobs", runner.jobs());
        std::string cell_json = "[\n";
        char buf[512];
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            std::snprintf(
                buf, sizeof(buf),
                "    {\"surfaces\": %d, \"budget_mb\": %.0f, "
                "\"policy\": \"%s\", \"runs\": %d, \"violations\": %llu, "
                "\"drops\": %llu, \"presents\": %llu, "
                "\"degradations\": %llu, \"rearbitrations\": %llu, "
                "\"peak_used_mb\": %.0f, \"fdps\": %.4f, \"errors\": %d, "
                "\"per_surface\": [",
                c.count, c.budget_mb, to_string(c.policy), c.runs,
                (unsigned long long)c.violations,
                (unsigned long long)c.drops, (unsigned long long)c.presents,
                (unsigned long long)c.degradations,
                (unsigned long long)c.rearbitrations, c.peak_used_mb,
                c.fdps_sum / double(c.runs), c.errors);
            cell_json += buf;
            for (std::size_t j = 0; j < c.surfaces.size(); ++j) {
                const SurfaceAgg &agg = c.surfaces[j];
                std::snprintf(buf, sizeof(buf),
                              "{\"name\": \"%s\", \"drops\": %llu, "
                              "\"due\": %llu, \"fdps\": %.4f}%s",
                              agg.name.c_str(),
                              (unsigned long long)agg.drops,
                              (unsigned long long)agg.due,
                              agg.fdps_sum / double(c.runs),
                              j + 1 < c.surfaces.size() ? ", " : "");
                cell_json += buf;
            }
            cell_json += "]}";
            cell_json += i + 1 < cells.size() ? ",\n" : "\n";
        }
        cell_json += "  ]";
        record.raw("cells", cell_json);
        record.write(out_path);
        std::printf("fleet record written to %s\n", out_path.c_str());
    }

    bool failed = total_violations > 0 || total_errors > 0;
    if (cause_totals[int(DropCause::kUnknown)] > 0) {
        std::printf("UNATTRIBUTED DROPS: %llu frames carry no cause\n",
                    (unsigned long long)
                        cause_totals[int(DropCause::kUnknown)]);
        failed = true;
    }
    if (constrained_weighted >= constrained_equal) {
        std::printf("ARBITER DID NOT BEAT EQUAL-SPLIT (constrained "
                    "budgets)\n");
        failed = true;
    }
    if (failed) {
        std::printf("FLEET CAMPAIGN FAILED\n");
        return 1;
    }
    return 0;
}
