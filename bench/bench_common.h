/**
 * @file
 * Shared helpers for the bench binaries.
 *
 * Every bench regenerates one table or figure of the paper: it builds the
 * workload the paper describes, runs it under the baseline VSync and/or
 * D-VSync configurations, and prints the same rows/series the paper
 * reports (with the paper's numbers alongside for comparison).
 *
 * Sweeps execute through the parallel experiment harness: a bench
 * assembles its (config, scenario, seed) points, hands the batch to an
 * ExperimentRunner, and formats the returned RunReports. Results are
 * index-aligned with the submitted points, so output is identical at any
 * --jobs / $DVS_JOBS setting.
 */

#ifndef DVS_BENCH_BENCH_COMMON_H
#define DVS_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/render_system.h"
#include "harness/experiment_runner.h"
#include "metrics/latency.h"
#include "metrics/run_report.h"
#include "metrics/stutter_model.h"
#include "workload/app_profiles.h"

namespace dvs::bench {

/** Compatibility alias: the old condensed result type is now RunReport. */
using BenchRun = RunReport;

/** Parameters of the §6.1 swipe methodology. */
struct SwipeSetup {
    int swipes = 40;          ///< two per second for 20 s
    Time swipe_period = 500'000'000;
    double active_fraction = 0.7;
    int repeats = 3;          ///< paper: averages over several runs
    /** D-VSync pre-render limit (-1 = derive from the buffer count). */
    int prerender_limit = -1;

    /** The OS-use-case methodology: short one-shot operations (§A.2)
     *  with the OpenHarmony render service's 3-back-buffer pre-render
     *  limit (§5.1). */
    static SwipeSetup os_cases()
    {
        SwipeSetup s;
        s.swipes = 40;
        s.swipe_period = 560'000'000;
        s.active_fraction = 0.5;
        s.prerender_limit = 3;
        return s;
    }
};

/** The shared bench runner; jobs from $DVS_JOBS (see default_jobs). */
const ExperimentRunner &bench_runner();

/** A `--shard=K/N` slice: global session indices congruent to K mod N. */
struct ShardSpec {
    std::uint64_t index = 0;
    std::uint64_t count = 1;

    /** Sessions of this shard for a campaign of @p total sessions. */
    std::uint64_t size(std::uint64_t total) const
    {
        return index >= total ? 0 : (total - index - 1) / count + 1;
    }
    /** Global session index of this shard's local position @p p. */
    std::uint64_t global(std::uint64_t p) const { return index + p * count; }
};

/**
 * Uniform flag parsing for the bench binaries. Flags use the repo-wide
 * `--name=value` convention (presence flags take no value); each typed
 * accessor *consumes* its flag, and finish() rejects anything left over,
 * so a typo'd flag is a hard error in every bench instead of a silent
 * no-op in some of them.
 *
 *   bench::ArgParser args(argc, argv);
 *   const int seeds = args.int_flag("seeds", 50);
 *   const bool golden = args.bool_flag("golden");
 *   const int jobs = args.jobs();
 *   args.finish(); // fatal() on unknown flags / stray positionals
 *
 * Accessors fatal() on malformed values (non-numeric, missing `=`),
 * which exits 1 — or throws ConfigError under a FatalThrowsScope, which
 * is how the tests pin the behavior.
 */
class ArgParser
{
  public:
    ArgParser(int argc, char **argv);

    /** `--name=N` as int; @p def when absent. */
    int int_flag(const char *name, int def);

    /** `--name=N` as a non-negative 64-bit count; @p def when absent. */
    std::uint64_t u64_flag(const char *name, std::uint64_t def);

    /** `--name=X` as double; @p def when absent. */
    double double_flag(const char *name, double def);

    /** `--name=S` as string; @p def when absent. */
    std::string string_flag(const char *name, std::string def = "");

    /** Presence flag `--name` (no value). */
    bool bool_flag(const char *name);

    /** `--name=K/N` with 0 <= K < N; {0, 1} when absent. */
    ShardSpec shard_flag(const char *name);

    /** Worker count: `--jobs=N`, then $DVS_JOBS, then all cores. */
    int jobs();

    /** Claim up to @p max positional (non-flag) arguments, in order. */
    std::vector<std::string> positional(std::size_t max);

    /** Reject unconsumed flags and positionals. Call after all accessors. */
    void finish();

  private:
    struct Arg {
        std::string name;  ///< flag name (empty for positionals)
        std::string value; ///< value text (or the positional itself)
        bool has_value = false;
        bool consumed = false;
    };
    Arg *find(const char *name);

    std::string prog_;
    std::vector<Arg> args_;
};

/**
 * Uniform BENCH_*.json emitter. Every bench record opens with the same
 * provenance stamp — `schema_version`, the bench name, and the
 * `git describe` string of the working tree — then appends fields in
 * call order, so downstream tooling can parse any record the same way
 * instead of each campaign hand-rolling its JSON.
 *
 *   BenchJson record("megafleet_campaign");
 *   record.u64("sessions", agg.sessions());
 *   record.num("wall_s", wall_s, 3);
 *   record.write(out_path); // "-" suppresses the file
 */
class BenchJson
{
  public:
    /** Schema stamped into every record. */
    static constexpr int kSchemaVersion = 2;

    explicit BenchJson(const std::string &bench_name);

    void u64(const char *name, std::uint64_t value);
    void i64(const char *name, std::int64_t value);
    /** Fixed-point double with @p decimals digits. */
    void num(const char *name, double value, int decimals);
    void str(const char *name, const std::string &value);
    void boolean(const char *name, bool value);
    /** Pre-formatted JSON value (nested arrays/objects). */
    void raw(const char *name, const std::string &json);

    std::string to_string() const;

    /** Write the record to @p path; "-" (or empty) is a silent no-op.
     *  fatal() on I/O failure. Callers print their own "written to"
     *  note, keeping every bench's existing output byte-stable. */
    void write(const std::string &path) const;

  private:
    void key(const char *name);

    std::string body_;
};

/**
 * `git describe --always --dirty` of the working tree, cached after the
 * first call; "unknown" when git or the repo is unavailable.
 */
const std::string &git_describe();

/** Run one configuration once and summarize. */
RunReport run_system(const SystemConfig &config, const Scenario &scenario);

/**
 * The experiment points of one profile cell: the swipe scenario repeated
 * over `setup.repeats` seeds under one (device, mode, buffers) tuple.
 */
std::vector<Experiment>
profile_experiments(const ProfileSpec &spec, const DeviceConfig &device,
                    RenderMode mode, int buffers, const SwipeSetup &setup,
                    std::uint64_t seed_base = 1);

/**
 * Run an app/os-case profile through the swipe methodology, averaging
 * over `setup.repeats` seeds.
 */
RunReport run_profile(const ProfileSpec &spec, const DeviceConfig &device,
                      RenderMode mode, int buffers, const SwipeSetup &setup,
                      std::uint64_t seed_base = 1);

/**
 * Collapse a flat report list into per-cell averages: every consecutive
 * @p group_size entries (one cell's repeats) become one averaged report.
 */
std::vector<RunReport> average_groups(const std::vector<RunReport> &reports,
                                      int group_size);

/**
 * Streaming counterpart of average_groups: a sink that folds every
 * @p group_size consecutive reports (one cell's repeats) into one
 * averaged cell on delivery. Peak retention is the finished cells plus
 * at most one partial group — not the raw report list.
 */
class GroupAverageSink final : public ReportSink
{
  public:
    explicit GroupAverageSink(int group_size);

    void consume(std::size_t index, RunReport &&report) override;

    /** Finished cells (averaging any trailing partial group). */
    std::vector<RunReport> take();

  private:
    std::size_t group_size_;
    std::vector<RunReport> pending_; ///< current group, < group_size_
    std::vector<RunReport> cells_;
};

/** Percentage reduction from a to b (positive = improvement). */
double reduction_percent(double a, double b);

/**
 * Calibrate a profile's key-frame rate so its *baseline VSync* FDPS
 * matches the paper's reported value on the given device (secant
 * iteration on heavy_per_sec). The D-VSync results are then measured,
 * not encoded: only the baseline is anchored, exactly as described in
 * DESIGN.md. Returns the spec unchanged when paper_fdps == 0.
 */
ProfileSpec calibrate_baseline(const ProfileSpec &spec,
                               const DeviceConfig &device,
                               int vsync_buffers, const SwipeSetup &setup,
                               std::uint64_t seed);

} // namespace dvs::bench

#endif // DVS_BENCH_BENCH_COMMON_H
