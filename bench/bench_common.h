/**
 * @file
 * Shared helpers for the bench binaries.
 *
 * Every bench regenerates one table or figure of the paper: it builds the
 * workload the paper describes, runs it under the baseline VSync and/or
 * D-VSync configurations, and prints the same rows/series the paper
 * reports (with the paper's numbers alongside for comparison).
 */

#ifndef DVS_BENCH_BENCH_COMMON_H
#define DVS_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <string>

#include "core/render_system.h"
#include "metrics/latency.h"
#include "metrics/stutter_model.h"
#include "workload/app_profiles.h"

namespace dvs::bench {

/** Condensed outcome of one simulated run. */
struct BenchRun {
    double fdps = 0.0;
    std::uint64_t drops = 0;
    std::int64_t frames_due = 0;
    std::uint64_t presents = 0;
    double latency_mean_ms = 0.0;
    double latency_p95_ms = 0.0;
    double fd_percent = 0.0;
    std::uint64_t direct = 0;
    std::uint64_t stuffed = 0;
    std::uint64_t stutters = 0;
    double pipeline_busy_s = 0.0;
    std::uint64_t frames_produced = 0;
    std::uint64_t predicted_frames = 0;
};

/** Parameters of the §6.1 swipe methodology. */
struct SwipeSetup {
    int swipes = 40;          ///< two per second for 20 s
    Time swipe_period = 500'000'000;
    double active_fraction = 0.7;
    int repeats = 3;          ///< paper: averages over several runs
    /** D-VSync pre-render limit (-1 = derive from the buffer count). */
    int prerender_limit = -1;

    /** The OS-use-case methodology: short one-shot operations (§A.2)
     *  with the OpenHarmony render service's 3-back-buffer pre-render
     *  limit (§5.1). */
    static SwipeSetup os_cases()
    {
        SwipeSetup s;
        s.swipes = 40;
        s.swipe_period = 560'000'000;
        s.active_fraction = 0.5;
        s.prerender_limit = 3;
        return s;
    }
};

/** Run one configuration once and summarize. */
BenchRun run_system(const SystemConfig &config, const Scenario &scenario);

/**
 * Run an app/os-case profile through the swipe methodology, averaging
 * over `setup.repeats` seeds.
 */
BenchRun run_profile(const ProfileSpec &spec, const DeviceConfig &device,
                     RenderMode mode, int buffers, const SwipeSetup &setup,
                     std::uint64_t seed_base = 1);

/** Percentage reduction from a to b (positive = improvement). */
double reduction_percent(double a, double b);

/**
 * Calibrate a profile's key-frame rate so its *baseline VSync* FDPS
 * matches the paper's reported value on the given device (secant
 * iteration on heavy_per_sec). The D-VSync results are then measured,
 * not encoded: only the baseline is anchored, exactly as described in
 * DESIGN.md. Returns the spec unchanged when paper_fdps == 0.
 */
ProfileSpec calibrate_baseline(const ProfileSpec &spec,
                               const DeviceConfig &device,
                               int vsync_buffers, const SwipeSetup &setup,
                               std::uint64_t seed);

} // namespace dvs::bench

#endif // DVS_BENCH_BENCH_COMMON_H
