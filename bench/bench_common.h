/**
 * @file
 * Shared helpers for the bench binaries.
 *
 * Every bench regenerates one table or figure of the paper: it builds the
 * workload the paper describes, runs it under the baseline VSync and/or
 * D-VSync configurations, and prints the same rows/series the paper
 * reports (with the paper's numbers alongside for comparison).
 *
 * Sweeps execute through the parallel experiment harness: a bench
 * assembles its (config, scenario, seed) points, hands the batch to an
 * ExperimentRunner, and formats the returned RunReports. Results are
 * index-aligned with the submitted points, so output is identical at any
 * --jobs / $DVS_JOBS setting.
 */

#ifndef DVS_BENCH_BENCH_COMMON_H
#define DVS_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/render_system.h"
#include "harness/experiment_runner.h"
#include "metrics/latency.h"
#include "metrics/run_report.h"
#include "metrics/stutter_model.h"
#include "workload/app_profiles.h"

namespace dvs::bench {

/** Compatibility alias: the old condensed result type is now RunReport. */
using BenchRun = RunReport;

/** Parameters of the §6.1 swipe methodology. */
struct SwipeSetup {
    int swipes = 40;          ///< two per second for 20 s
    Time swipe_period = 500'000'000;
    double active_fraction = 0.7;
    int repeats = 3;          ///< paper: averages over several runs
    /** D-VSync pre-render limit (-1 = derive from the buffer count). */
    int prerender_limit = -1;

    /** The OS-use-case methodology: short one-shot operations (§A.2)
     *  with the OpenHarmony render service's 3-back-buffer pre-render
     *  limit (§5.1). */
    static SwipeSetup os_cases()
    {
        SwipeSetup s;
        s.swipes = 40;
        s.swipe_period = 560'000'000;
        s.active_fraction = 0.5;
        s.prerender_limit = 3;
        return s;
    }
};

/** The shared bench runner; jobs from --jobs=N (see parse_jobs) / $DVS_JOBS. */
const ExperimentRunner &bench_runner();

/** Parse a --jobs=N argument; falls back to $DVS_JOBS, then all cores. */
int parse_jobs(int argc, char **argv);

/** Run one configuration once and summarize. */
RunReport run_system(const SystemConfig &config, const Scenario &scenario);

/**
 * The experiment points of one profile cell: the swipe scenario repeated
 * over `setup.repeats` seeds under one (device, mode, buffers) tuple.
 */
std::vector<Experiment>
profile_experiments(const ProfileSpec &spec, const DeviceConfig &device,
                    RenderMode mode, int buffers, const SwipeSetup &setup,
                    std::uint64_t seed_base = 1);

/**
 * Run an app/os-case profile through the swipe methodology, averaging
 * over `setup.repeats` seeds.
 */
RunReport run_profile(const ProfileSpec &spec, const DeviceConfig &device,
                      RenderMode mode, int buffers, const SwipeSetup &setup,
                      std::uint64_t seed_base = 1);

/**
 * Collapse a flat report list into per-cell averages: every consecutive
 * @p group_size entries (one cell's repeats) become one averaged report.
 */
std::vector<RunReport> average_groups(const std::vector<RunReport> &reports,
                                      int group_size);

/** Percentage reduction from a to b (positive = improvement). */
double reduction_percent(double a, double b);

/**
 * Calibrate a profile's key-frame rate so its *baseline VSync* FDPS
 * matches the paper's reported value on the given device (secant
 * iteration on heavy_per_sec). The D-VSync results are then measured,
 * not encoded: only the baseline is anchored, exactly as described in
 * DESIGN.md. Returns the spec unchanged when paper_fdps == 0.
 */
ProfileSpec calibrate_baseline(const ProfileSpec &spec,
                               const DeviceConfig &device,
                               int vsync_buffers, const SwipeSetup &setup,
                               std::uint64_t seed);

} // namespace dvs::bench

#endif // DVS_BENCH_BENCH_COMMON_H
