/**
 * @file
 * Observatory overhead record (`BENCH_observatory.json`).
 *
 * The fleet observatory rides the campaign report stream as a second
 * TeeSink branch, so its cost model is simple: every session pays the
 * aggregator's integer folds plus the observatory's SLO evaluation,
 * anomaly scoring, and bounded top-K insert. This bench prices that
 * tax end-to-end — the same fleet slice is swept twice, observatory
 * off then on, and the sessions/sec of both runs land in the record.
 *
 * Two contracts are enforced, not just measured:
 *
 *  - parity: the aggregator checkpoint must be byte-identical with the
 *    observatory on vs off — a passive monitor must not perturb the
 *    stream it watches;
 *  - budget: the best-of-`--repeats` wall-clock overhead must stay
 *    within 5% (the same budget the forensics layer carries in
 *    perf_sim_core), so the monitor stays cheap enough to leave on for
 *    every fleet sweep.
 *
 * Usage: observatory_overhead [--sessions=N] [--repeats=R] [--jobs=N]
 *                             [--seed=S] [--out=PATH]
 *   --sessions=N  fleet sessions per sweep (default 240, the golden
 *                 slice)
 *   --repeats=R   timed sweeps per variant; best wall time wins
 *                 (default 2, damping scheduler noise)
 *   --out=PATH    record path (default BENCH_observatory.json; "-"
 *                 suppresses the file)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/aggregator.h"
#include "obs/observatory.h"
#include "sim/logging.h"
#include "workload/device_population.h"

using namespace dvs;

namespace {

struct Sweep {
    std::string agg_json; ///< aggregator checkpoint after the stream
    double best_wall_s = 0.0;
    std::uint64_t slo_violations = 0; ///< observatory runs only
    std::size_t top = 0;              ///< observatory runs only
};

Sweep
run_sweep(const DevicePopulation &fleet, std::uint64_t sessions,
          const ExperimentRunner &runner, int repeats, bool observatory_on)
{
    Sweep out;
    for (int rep = 0; rep < repeats; ++rep) {
        CampaignAggregator agg;
        std::optional<Observatory> obs;
        std::vector<ReportSink *> branches{&agg};
        if (observatory_on) {
            obs.emplace(ObservatoryConfig{}, nullptr,
                        [](std::size_t i) { return std::uint64_t(i); });
            branches.push_back(&*obs);
        }
        TeeSink sink(std::move(branches));

        const auto t0 = std::chrono::steady_clock::now();
        runner.run_stream(
            sessions,
            [&](std::size_t p) {
                return fleet.experiment(std::uint64_t(p));
            },
            sink);
        const double wall_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();

        if (rep == 0) {
            out.agg_json = agg.to_json();
            out.best_wall_s = wall_s;
            if (obs) {
                for (std::size_t s = 0; s < obs->config().slos.size();
                     ++s)
                    out.slo_violations += obs->violations(s);
                out.top = obs->top().size();
            }
        } else {
            // Determinism is part of the contract too: every repeat
            // must fold to the same integer state.
            if (agg.to_json() != out.agg_json)
                fatal("aggregator state diverged across repeats "
                      "(observatory %s)",
                      observatory_on ? "on" : "off");
            out.best_wall_s = std::min(out.best_wall_s, wall_s);
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ArgParser args(argc, argv);
    const std::uint64_t sessions = args.u64_flag("sessions", 240);
    const int repeats = args.int_flag("repeats", 2);
    const int jobs = args.jobs();
    const std::uint64_t seed = args.u64_flag("seed", 1);
    const std::string out_path =
        args.string_flag("out", "BENCH_observatory.json");
    args.finish();
    if (sessions < 1)
        fatal("--sessions must be >= 1");
    if (repeats < 1)
        fatal("--repeats must be >= 1");

    const DevicePopulation fleet = DevicePopulation::paper_fleet(seed);
    const ExperimentRunner runner(jobs);

    const Sweep off = run_sweep(fleet, sessions, runner, repeats, false);
    const Sweep on = run_sweep(fleet, sessions, runner, repeats, true);

    // Parity: the observatory branch must not change what the
    // aggregator sees. Byte-compare the full checkpoint.
    if (on.agg_json != off.agg_json)
        fatal("aggregator checkpoint differs with the observatory on — "
              "the monitor perturbed the stream it watches");

    const double rate_off = double(sessions) / off.best_wall_s;
    const double rate_on = double(sessions) / on.best_wall_s;
    const double overhead_pct =
        100.0 * (on.best_wall_s / off.best_wall_s - 1.0);

    std::printf("observatory overhead: %llu sessions, best of %d "
                "repeats, jobs=%d\n",
                (unsigned long long)sessions, repeats, runner.jobs());
    std::printf("  off: %.3f s (%.1f sessions/s)\n", off.best_wall_s,
                rate_off);
    std::printf("  on:  %.3f s (%.1f sessions/s), %llu SLO violations, "
                "top-%zu retained\n",
                on.best_wall_s, rate_on,
                (unsigned long long)on.slo_violations, on.top);
    std::printf("  overhead: %+.2f%% (budget 5%%)\n", overhead_pct);
    std::printf("  parity: aggregator checkpoint byte-identical on vs "
                "off\n");

    if (out_path != "-") {
        bench::BenchJson record("observatory_overhead");
        record.u64("sessions", sessions);
        record.i64("repeats", repeats);
        record.i64("jobs", runner.jobs());
        record.num("wall_s_off", off.best_wall_s, 3);
        record.num("wall_s_on", on.best_wall_s, 3);
        record.num("sessions_per_sec_off", rate_off, 1);
        record.num("sessions_per_sec_on", rate_on, 1);
        record.num("overhead_percent", overhead_pct, 2);
        record.u64("slo_violations", on.slo_violations);
        record.u64("top_k_retained", on.top);
        record.boolean("aggregator_parity", true);
        record.write(out_path);
        std::printf("observatory record written to %s\n",
                    out_path.c_str());
    }

    // The 5% budget. Wall-clock on a loaded host is noisy, which the
    // best-of-repeats minimum damps; the budget is generous against the
    // observatory's real cost (a handful of integer compares per
    // session next to a full simulated session).
    if (overhead_pct > 5.0)
        fatal("observatory overhead %.2f%% exceeds the 5%% budget "
              "(%.3f s -> %.3f s)",
              overhead_pct, off.best_wall_s, on.best_wall_s);
    return 0;
}
