/**
 * @file
 * Figure 12: D-VSync FDPS reduction for the common OS use cases with the
 * Vulkan backend on Mate 60 Pro (120 Hz).
 *
 * Paper: the 29 cases with drops average 8.42 FDPS under VSync (4 bufs)
 * and 1.39 under D-VSync (4 bufs) — an 83.5% reduction.
 */

#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"
#include "workload/os_case_profiles.h"

using namespace dvs;
using namespace dvs::bench;

int
main()
{
    print_section("Figure 12: FDPS for OS use cases, Mate 60 Pro "
                  "(120 Hz, Vulkan), VSync 4 bufs vs D-VSync 4 bufs");

    const OsConfig config = OsConfig::kMate60Vk;
    const DeviceConfig device = mate60_pro(Backend::kVulkan);
    SwipeSetup setup = SwipeSetup::os_cases();
    setup.repeats = 3; // paper: averages over five runs

    TableReporter table(
        {"case", "paper", "VSync 4", "D-VSync 4", "reduction"});

    double sum_vs = 0, sum_dv = 0, sum_paper = 0;
    int n = 0;
    for (const OsCase *c : cases_with_drops(config)) {
        const ProfileSpec raw = make_os_case_spec(*c, config);
        const std::uint64_t seed = std::hash<std::string>{}(raw.name);
        const ProfileSpec spec =
            calibrate_baseline(raw, device, 4, setup, seed);
        const BenchRun vs = run_profile(spec, device, RenderMode::kVsync,
                                        4, setup, seed);
        const BenchRun dv = run_profile(spec, device, RenderMode::kDvsync,
                                        4, setup, seed);
        sum_paper += c->fdps_mate60_vk;
        sum_vs += vs.fdps;
        sum_dv += dv.fdps;
        ++n;
        table.add_row({c->abbrev, TableReporter::num(c->fdps_mate60_vk),
                       TableReporter::num(vs.fdps),
                       TableReporter::num(dv.fdps),
                       TableReporter::num(
                           reduction_percent(vs.fdps, dv.fdps), 1) + "%"});
    }
    table.add_row({"AVERAGE", TableReporter::num(sum_paper / n),
                   TableReporter::num(sum_vs / n),
                   TableReporter::num(sum_dv / n),
                   TableReporter::num(
                       reduction_percent(sum_vs, sum_dv), 1) + "%"});
    table.print();

    std::printf("\npaper:    avg 8.42 -> 1.39 (-83.5%%), %d cases\n", 29);
    std::printf("measured: avg %.2f -> %.2f (-%.1f%%), %d cases\n",
                sum_vs / n, sum_dv / n,
                reduction_percent(sum_vs, sum_dv), n);
    return 0;
}
