/**
 * @file
 * RenderSystem: the assembled rendering stack.
 *
 * One-stop facade that wires a complete simulated device — HW-VSync
 * generator, buffer queue, panel, compositor, software vsync distributor,
 * producer — under either the conventional VSync architecture or D-VSync
 * (FPE + DTV + IPL + runtime), runs a scenario, and exposes the metrics.
 * This is the entry point for the examples, tests, and benches.
 */

#ifndef DVS_CORE_RENDER_SYSTEM_H
#define DVS_CORE_RENDER_SYSTEM_H

#include <memory>
#include <optional>

#include "buffer/buffer_queue.h"
#include "governor/governor.h"
#include "core/display_time_virtualizer.h"
#include "core/dvsync_config.h"
#include "core/dvsync_runtime.h"
#include "core/frame_pre_executor.h"
#include "display/device_config.h"
#include "display/hw_vsync.h"
#include "display/panel.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_monitor.h"
#include "metrics/frame_stats.h"
#include "metrics/power_model.h"
#include "metrics/run_report.h"
#include "obs/drop_classifier.h"
#include "obs/frame_forensics.h"
#include "obs/metrics_registry.h"
#include "pipeline/compositor.h"
#include "pipeline/producer.h"
#include "pipeline/swap_interval_pacer.h"
#include "sim/simulator.h"
#include "sim/tracing.h"
#include "vsyncsrc/vsync_distributor.h"
#include "workload/scenario.h"

namespace dvs {

/** Rendering architecture under test. */
enum class RenderMode {
    kVsync,  ///< conventional VSync pipeline (§2)
    kDvsync, ///< decoupled rendering and displaying (§4)
    kPaced,  ///< Swappy-style auto swap-interval pacing (baseline)
};

const char *to_string(RenderMode m);

/**
 * Thermal/DVFS plant configuration. Off by default — the GPU then runs
 * at a fixed nominal clock with zero plant-accounted energy, exactly the
 * pre-plant behavior (goldens stay byte-identical).
 */
struct ThermalSpec {
    bool enabled = false;

    /**
     * Envelope scale applied to the device's §6 thermal budget; < 1
     * models a constrained chassis (thin phone, hot day) where the same
     * workload trips the throttle earlier.
     */
    double envelope_scale = 1.0;

    /** Explicit plant parameters; unset derives them from the device. */
    std::optional<ThermalParams> params;
};

/** Full configuration of a simulated run. */
struct SystemConfig {
    DeviceConfig device;          ///< Table-1 preset (default Pixel 5)
    RenderMode mode = RenderMode::kVsync;

    /**
     * Buffer-queue capacity. 0 = architecture default: the device's
     * vsync_buffers for VSync, vsync_buffers + 1 for D-VSync (the paper's
     * default D-VSync configuration uses one extra buffer).
     */
    int buffers = 0;

    /** Pre-render limit; -1 derives buffers − 2 (D-VSync only). */
    int prerender_limit = -1;

    std::uint64_t seed = 1;

    /** Gaussian HW-VSync jitter (0 = ideal panel). */
    Time vsync_jitter = 0;

    /** DTV calibration interval in edges. */
    int dtv_calibration_interval = 1;

    /** SurfaceFlinger-style latch deadline (0 = direct path). */
    Time latch_lead = 0;

    /** VSync-app / VSync-rs offsets from the hardware edge. */
    Time vsync_app_offset = 0;
    Time vsync_rs_offset = 0;

    /** Predictor fitting cost (decoupling-aware apps). */
    Time predictor_overhead = 151'600;

    /** Swap-interval pacing knobs (kPaced mode only). */
    SwapIntervalConfig pacing;

    /**
     * Fault-injection plan for chaos runs; null = no injection. Shared
     * so a sweep can replay one plan across many configurations.
     */
    std::shared_ptr<const FaultPlan> faults;

    /** Run the always-on invariant monitor (passive; cheap). */
    bool monitor_invariants = true;

    /**
     * Arm the degradation watchdog on the D-VSync runtime. Also armed
     * automatically whenever a fault plan is installed.
     */
    bool watchdog = false;

    /**
     * Enable frame forensics: a MetricsRegistry sampled every
     * metrics_interval (default: one refresh period) and the forensics
     * dump/flow exports. Off by default — the hot path then pays
     * nothing, and the event interleaving is untouched (the sampler
     * schedules simulator events).
     */
    bool forensics = false;

    /**
     * Metrics sampling cadence; 0 derives 16 refresh periods (the
     * low-overhead default — pass device.period() for dense series).
     */
    Time metrics_interval = 0;

    /**
     * Thermal/DVFS plant on the device GPU (closed-loop thermal work).
     */
    ThermalSpec thermal;

    /**
     * Closed-loop governor walking the graded degradation ladder.
     * Requires thermal.enabled (the plant is its primary sensor); arms
     * the watchdog automatically (the ladder's final rung hands off to
     * it).
     */
    GovernorConfig governor;

    /**
     * Parallel lane-dispatch worker count for the simulation core.
     * 0 or 1 = classic serial dispatch. n > 1 executes independent
     * per-surface event lanes on n workers between barriers; results
     * (reports, goldens, dispatch checksums) are byte-identical to
     * serial at any worker count. A single-surface system has one lane,
     * so this mostly matters through MultiSurfaceConfig.
     */
    int sim_workers = 0;

    SystemConfig() : device(pixel5()) {}

    // ----- fluent named setters ----------------------------------------
    //
    // Sweep points read as one expression instead of mutate-after-copy
    // blocks:
    //
    //   SystemConfig().with_device(mate60_pro())
    //                 .with_mode(RenderMode::kDvsync)
    //                 .with_buffers(5)

    SystemConfig &with_device(const DeviceConfig &d)
    {
        device = d;
        return *this;
    }
    SystemConfig &with_mode(RenderMode m)
    {
        mode = m;
        return *this;
    }
    SystemConfig &with_buffers(int n)
    {
        buffers = n;
        return *this;
    }
    SystemConfig &with_prerender_limit(int limit)
    {
        prerender_limit = limit;
        return *this;
    }
    SystemConfig &with_seed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
    SystemConfig &with_vsync_jitter(Time jitter)
    {
        vsync_jitter = jitter;
        return *this;
    }
    SystemConfig &with_dtv_calibration_interval(int edges)
    {
        dtv_calibration_interval = edges;
        return *this;
    }
    SystemConfig &with_latch_lead(Time lead)
    {
        latch_lead = lead;
        return *this;
    }
    SystemConfig &with_offsets(Time app, Time rs)
    {
        vsync_app_offset = app;
        vsync_rs_offset = rs;
        return *this;
    }
    SystemConfig &with_predictor_overhead(Time cost)
    {
        predictor_overhead = cost;
        return *this;
    }
    SystemConfig &with_pacing(const SwapIntervalConfig &p)
    {
        pacing = p;
        return *this;
    }
    SystemConfig &with_faults(std::shared_ptr<const FaultPlan> plan)
    {
        faults = std::move(plan);
        return *this;
    }
    SystemConfig &with_monitor_invariants(bool on)
    {
        monitor_invariants = on;
        return *this;
    }
    SystemConfig &with_watchdog(bool on)
    {
        watchdog = on;
        return *this;
    }
    SystemConfig &with_forensics(bool on)
    {
        forensics = on;
        return *this;
    }
    SystemConfig &with_metrics_interval(Time interval)
    {
        metrics_interval = interval;
        return *this;
    }
    SystemConfig &with_sim_workers(int n)
    {
        sim_workers = n;
        return *this;
    }
    SystemConfig &with_thermal(ThermalSpec t)
    {
        thermal = std::move(t);
        return *this;
    }
    /** Enable the plant with the device envelope at @p envelope_scale. */
    SystemConfig &with_thermal_envelope(double envelope_scale)
    {
        thermal.enabled = true;
        thermal.envelope_scale = envelope_scale;
        return *this;
    }
    SystemConfig &with_governor(const GovernorConfig &g)
    {
        governor = g;
        return *this;
    }
};

/**
 * The assembled stack. Construct, optionally customize (register IPL
 * predictors via runtime()), then run().
 */
class RenderSystem
{
  public:
    RenderSystem(const SystemConfig &config, Scenario scenario);
    ~RenderSystem();

    RenderSystem(const RenderSystem &) = delete;
    RenderSystem &operator=(const RenderSystem &) = delete;

    /**
     * Run the scenario to completion (plus a drain margin so in-flight
     * frames present) and return the unified result.
     */
    RunReport run();

    /**
     * The unified result of the finished run. Valid only after run();
     * components stay accessible for callers that need raw logs.
     */
    RunReport report() const;

    // ----- component access -------------------------------------------

    Simulator &sim() { return sim_; }
    const SystemConfig &config() const { return config_; }
    BufferQueue &queue() { return *queue_; }
    Panel &panel() { return *panel_; }
    HwVsyncGenerator &hw_vsync() { return *hw_; }
    VsyncDistributor &distributor() { return *dist_; }
    Producer &producer() { return *producer_; }
    Compositor &compositor() { return *compositor_; }
    FrameStats &stats() { return *stats_; }

    /** D-VSync components; null under the VSync baseline. */
    DvsyncRuntime *runtime() { return runtime_.get(); }
    DisplayTimeVirtualizer *dtv() { return dtv_.get(); }
    FramePreExecutor *fpe() { return fpe_.get(); }

    /** The swap-interval pacer; null unless mode == kPaced. */
    SwapIntervalPacer *pacer() { return swap_pacer_.get(); }

    /** Invariant monitor; null when monitor_invariants is off. */
    InvariantMonitor *monitor() { return monitor_.get(); }
    const InvariantMonitor *monitor() const { return monitor_.get(); }

    /** Fault injector; null unless a plan was installed. */
    FaultInjector *fault_injector() { return injector_.get(); }

    /** Drop root-cause classifier (always on; costs only per drop). */
    const DropClassifier &classifier() const { return *classifier_; }

    /** Metrics registry; null unless forensics or the governor is on. */
    MetricsRegistry *metrics() { return metrics_.get(); }
    const MetricsRegistry *metrics() const { return metrics_.get(); }

    /** Thermal/DVFS plant; null unless config.thermal.enabled. */
    ThermalPlant *plant() { return plant_.get(); }
    const ThermalPlant *plant() const { return plant_.get(); }

    /** Governor; null unless config.governor.enabled. */
    Governor *governor() { return governor_.get(); }
    const Governor *governor() const { return governor_.get(); }

    /** Activity summary for the power model. */
    RunActivity activity() const;

    /** Effective queue capacity of the run. */
    int buffers() const { return buffers_; }

    /** Effective pre-render limit (D-VSync; 0 under VSync). */
    int prerender_limit() const;

    /**
     * Export the finished run as Chrome trace events (UI/render stage
     * durations, queue waits, presents, and frame drops) — loadable in
     * chrome://tracing or the Perfetto UI.
     */
    void export_trace(TraceLog &log) const;

    /**
     * Build the per-frame causal chains of the finished run (span
     * records + attributed drops); pure post-run derivation.
     */
    FrameForensics forensics() const;

    /**
     * Write the forensics dump (chains, drops with causes, metric time
     * series when forensics is on) as JSON to @p path.
     */
    bool save_forensics(const std::string &path) const;

  private:
    SystemConfig config_;
    int buffers_;
    Simulator sim_;
    std::unique_ptr<BufferQueue> queue_;
    std::unique_ptr<HwVsyncGenerator> hw_;
    std::unique_ptr<Panel> panel_;
    std::unique_ptr<Compositor> compositor_;
    std::unique_ptr<VsyncDistributor> dist_;
    std::unique_ptr<Producer> producer_;
    std::unique_ptr<FramePacer> vsync_pacer_;
    std::unique_ptr<SwapIntervalPacer> swap_pacer_;
    std::unique_ptr<DvsyncRuntime> runtime_;
    std::unique_ptr<DisplayTimeVirtualizer> dtv_;
    std::unique_ptr<FramePreExecutor> fpe_;
    std::unique_ptr<FrameStats> stats_;
    std::unique_ptr<DropClassifier> classifier_;
    std::unique_ptr<InvariantMonitor> monitor_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<ThermalPlant> plant_;
    std::unique_ptr<Governor> governor_;
    bool ran_ = false;
};

/**
 * One-call entry point: run @p scenario under @p config and return the
 * unified report.
 */
RunReport run_experiment(const SystemConfig &config,
                         const Scenario &scenario);

} // namespace dvs

#endif // DVS_CORE_RENDER_SYSTEM_H
