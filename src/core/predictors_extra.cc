#include "core/predictors_extra.h"

#include <cmath>

#include "sim/logging.h"

namespace dvs {
namespace {

double
last_value_or_zero(const TouchStream &stream, Time now)
{
    const TouchEvent *ev = stream.latest_at(now);
    return ev ? touch_value(*ev) : 0.0;
}

} // namespace

AlphaBetaPredictor::AlphaBetaPredictor(double alpha, double beta,
                                       Time window)
    : alpha_(alpha), beta_(beta), window_(window)
{
    if (alpha <= 0 || alpha > 1 || beta <= 0 || beta > alpha)
        fatal("alpha-beta gains must satisfy 0 < beta <= alpha <= 1");
    if (window <= 0)
        fatal("predictor window must be positive");
}

double
AlphaBetaPredictor::predict(const TouchStream &stream, Time now,
                            Time target) const
{
    const auto events = stream.window(now - window_, now);
    if (events.size() < 2)
        return last_value_or_zero(stream, now);

    double x = touch_value(events.front());
    double v = 0.0;
    Time prev = events.front().timestamp;
    for (std::size_t i = 1; i < events.size(); ++i) {
        const double dt = to_seconds(events[i].timestamp - prev);
        if (dt <= 0)
            continue;
        const double predicted = x + v * dt;
        const double residual = touch_value(events[i]) - predicted;
        x = predicted + alpha_ * residual;
        v += beta_ / dt * residual;
        prev = events[i].timestamp;
    }
    return x + v * to_seconds(target - prev);
}

DampedTrendPredictor::DampedTrendPredictor(double level_gain,
                                           double trend_gain, double phi,
                                           Time window)
    : level_gain_(level_gain), trend_gain_(trend_gain), phi_(phi),
      window_(window)
{
    if (level_gain <= 0 || level_gain > 1 || trend_gain <= 0 ||
        trend_gain > 1 || phi <= 0 || phi > 1) {
        fatal("damped-trend gains must lie in (0, 1]");
    }
    if (window <= 0)
        fatal("predictor window must be positive");
}

double
DampedTrendPredictor::predict(const TouchStream &stream, Time now,
                              Time target) const
{
    const auto events = stream.window(now - window_, now);
    if (events.size() < 3)
        return last_value_or_zero(stream, now);

    // Initialize level/trend from the first two samples.
    double level = touch_value(events[0]);
    double trend = touch_value(events[1]) - touch_value(events[0]);
    Time step = events[1].timestamp - events[0].timestamp;
    if (step <= 0)
        step = 8'000'000;

    for (std::size_t i = 1; i < events.size(); ++i) {
        const double z = touch_value(events[i]);
        const double prev_level = level;
        level = level_gain_ * z +
                (1.0 - level_gain_) * (level + phi_ * trend);
        trend = trend_gain_ * (level - prev_level) +
                (1.0 - trend_gain_) * phi_ * trend;
    }

    // Damped multi-step forecast: sum_{k=1..h} phi^k * trend.
    const double h =
        double(target - events.back().timestamp) / double(step);
    double damp_sum = 0.0;
    double phi_k = phi_;
    for (int k = 0; k < int(std::ceil(h)) && k < 64; ++k) {
        const double frac = std::min(1.0, h - k);
        damp_sum += phi_k * frac;
        phi_k *= phi_;
    }
    return level + trend * damp_sum;
}

} // namespace dvs
