#include "core/input_prediction_layer.h"

#include <array>
#include <cmath>

#include "sim/logging.h"

namespace dvs {
namespace {

/** Gather the (t_seconds, value) points of the fitting window. */
std::vector<std::pair<double, double>>
fit_points(const TouchStream &stream, Time now, Time window)
{
    std::vector<std::pair<double, double>> pts;
    for (const TouchEvent &ev : stream.window(now - window, now))
        pts.emplace_back(to_seconds(ev.timestamp - now), touch_value(ev));
    return pts;
}

double
last_value(const TouchStream &stream, Time now)
{
    const TouchEvent *ev = stream.latest_at(now);
    return ev ? touch_value(*ev) : 0.0;
}

/**
 * Solve a symmetric 3x3 system via Gaussian elimination; returns false
 * when singular.
 */
bool
solve3(std::array<std::array<double, 3>, 3> a, std::array<double, 3> &b)
{
    for (int col = 0; col < 3; ++col) {
        int pivot = col;
        for (int r = col + 1; r < 3; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        if (std::abs(a[pivot][col]) < 1e-12)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (int r = 0; r < 3; ++r) {
            if (r == col)
                continue;
            const double f = a[r][col] / a[col][col];
            for (int c = col; c < 3; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    for (int i = 0; i < 3; ++i)
        b[i] /= a[i][i];
    return true;
}

} // namespace

double
LastValuePredictor::predict(const TouchStream &stream, Time now,
                            Time) const
{
    return last_value(stream, now);
}

LinearPredictor::LinearPredictor(Time window) : window_(window)
{
    if (window <= 0)
        fatal("predictor window must be positive");
}

double
LinearPredictor::predict(const TouchStream &stream, Time now,
                         Time target) const
{
    const auto pts = fit_points(stream, now, window_);
    if (pts.size() < 2)
        return last_value(stream, now);

    // Ordinary least squares y = a + b t (t relative to `now`).
    double st = 0, sy = 0, stt = 0, sty = 0;
    for (const auto &[t, y] : pts) {
        st += t;
        sy += y;
        stt += t * t;
        sty += t * y;
    }
    const double n = double(pts.size());
    const double denom = n * stt - st * st;
    if (std::abs(denom) < 1e-12)
        return last_value(stream, now);
    const double b = (n * sty - st * sy) / denom;
    const double a = (sy - b * st) / n;
    return a + b * to_seconds(target - now);
}

QuadraticPredictor::QuadraticPredictor(Time window) : window_(window)
{
    if (window <= 0)
        fatal("predictor window must be positive");
}

double
QuadraticPredictor::predict(const TouchStream &stream, Time now,
                            Time target) const
{
    const auto pts = fit_points(stream, now, window_);
    if (pts.size() < 3) {
        return LinearPredictor(window_).predict(stream, now, target);
    }

    // Normal equations for y = c0 + c1 t + c2 t^2.
    double s[5] = {0, 0, 0, 0, 0};
    double r[3] = {0, 0, 0};
    for (const auto &[t, y] : pts) {
        double p = 1.0;
        for (int k = 0; k < 5; ++k) {
            s[k] += p;
            if (k < 3)
                r[k] += p * y;
            p *= t;
        }
    }
    std::array<std::array<double, 3>, 3> a{{{s[0], s[1], s[2]},
                                            {s[1], s[2], s[3]},
                                            {s[2], s[3], s[4]}}};
    std::array<double, 3> b{r[0], r[1], r[2]};
    if (!solve3(a, b))
        return LinearPredictor(window_).predict(stream, now, target);
    const double dt = to_seconds(target - now);
    return b[0] + b[1] * dt + b[2] * dt * dt;
}

void
InputPredictionLayer::register_predictor(
    const std::string &label, std::shared_ptr<const InputPredictor> p)
{
    if (!p)
        fatal("cannot register a null predictor for '%s'", label.c_str());
    registry_[label] = std::move(p);
}

void
InputPredictionLayer::unregister_predictor(const std::string &label)
{
    registry_.erase(label);
}

const InputPredictor *
InputPredictionLayer::find(const std::string &label) const
{
    auto it = registry_.find(label);
    return it == registry_.end() ? nullptr : it->second.get();
}

double
InputPredictionLayer::predict(const std::string &label,
                              const TouchStream &stream, Time now,
                              Time target)
{
    const InputPredictor *p = find(label);
    if (!p)
        panic("no predictor registered for '%s'", label.c_str());
    ++predictions_;
    return p->predict(stream, now, target);
}

} // namespace dvs
