/**
 * @file
 * D-VSync runtime controller and dual-channel decoupling APIs (§4.5).
 *
 * The runtime is the switchboard between the OS rendering framework and
 * the D-VSync modules:
 *
 *  - Decoupling-oblivious channel: unmodified apps get pre-rendering for
 *    framework-tagged deterministic animations automatically; the runtime
 *    decides per segment whether decoupling applies.
 *
 *  - Decoupling-aware channel: apps that bypass the OS framework (games,
 *    browsers, maps) use the exposed capabilities — (1) registering input
 *    predictors on the IPL for interactive scenarios, (2) configuring the
 *    pre-rendering limit, (3) retrieving the frame display time, and
 *    (4) switching D-VSync on/off at runtime.
 */

#ifndef DVS_CORE_DVSYNC_RUNTIME_H
#define DVS_CORE_DVSYNC_RUNTIME_H

#include <memory>
#include <string>

#include "buffer/buffer_queue.h"
#include "core/display_time_virtualizer.h"
#include "core/dvsync_config.h"
#include "core/input_prediction_layer.h"
#include "pipeline/producer.h"

namespace dvs {

class FramePreExecutor;

/**
 * Runtime controller + public API surface of D-VSync.
 */
class DvsyncRuntime
{
  public:
    explicit DvsyncRuntime(const DvsyncConfig &config);

    /**
     * Wire the runtime to the pipeline. Installs the IPL content sampler
     * and predictor-overhead hook on the producer.
     */
    void bind(Producer &producer, DisplayTimeVirtualizer &dtv,
              FramePreExecutor &fpe, BufferQueue &queue);

    // ----- runtime switch (API capability 4) ---------------------------

    bool enabled() const { return enabled_; }
    void set_enabled(bool on) { enabled_ = on; }

    // ----- decoupling decision (oblivious channel) ----------------------

    /**
     * Whether decoupled pre-rendering applies to @p seg: deterministic
     * animations always; interactions only with a registered predictor;
     * real-time content never (§4.2).
     */
    bool can_decouple(const Segment &seg) const;

    // ----- IPL (API capability 1) ---------------------------------------

    InputPredictionLayer &ipl() { return ipl_; }
    const InputPredictionLayer &ipl() const { return ipl_; }

    /** Register a predictor for interaction segments labelled @p label. */
    void register_predictor(const std::string &label,
                            std::shared_ptr<const InputPredictor> p);

    // ----- pre-rendering limit (API capability 2) ------------------------

    /**
     * Reconfigure the pre-rendering limit; the buffer queue is resized to
     * limit + 2 slots to hold the accumulated frames.
     */
    void set_prerender_limit(int limit);
    int prerender_limit() const;

    // ----- frame display time (API capability 3) --------------------------

    /**
     * The display timestamp the next frame would receive — what a
     * custom-rendering app samples its own animations with.
     */
    Time query_display_time() const;

    const DvsyncConfig &config() const { return config_; }

  private:
    DvsyncConfig config_;
    bool enabled_ = true;
    InputPredictionLayer ipl_;

    Producer *producer_ = nullptr;
    DisplayTimeVirtualizer *dtv_ = nullptr;
    FramePreExecutor *fpe_ = nullptr;
    BufferQueue *queue_ = nullptr;
};

} // namespace dvs

#endif // DVS_CORE_DVSYNC_RUNTIME_H
