/**
 * @file
 * D-VSync runtime controller and dual-channel decoupling APIs (§4.5).
 *
 * The runtime is the switchboard between the OS rendering framework and
 * the D-VSync modules:
 *
 *  - Decoupling-oblivious channel: unmodified apps get pre-rendering for
 *    framework-tagged deterministic animations automatically; the runtime
 *    decides per segment whether decoupling applies.
 *
 *  - Decoupling-aware channel: apps that bypass the OS framework (games,
 *    browsers, maps) use the exposed capabilities — (1) registering input
 *    predictors on the IPL for interactive scenarios, (2) configuring the
 *    pre-rendering limit, (3) retrieving the frame display time, and
 *    (4) switching D-VSync on/off at runtime.
 */

#ifndef DVS_CORE_DVSYNC_RUNTIME_H
#define DVS_CORE_DVSYNC_RUNTIME_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_queue.h"
#include "core/display_time_virtualizer.h"
#include "core/dvsync_config.h"
#include "core/input_prediction_layer.h"
#include "pipeline/producer.h"

namespace dvs {

class FramePreExecutor;
class InvariantMonitor;

/**
 * Runtime controller + public API surface of D-VSync.
 */
class DvsyncRuntime
{
  public:
    explicit DvsyncRuntime(const DvsyncConfig &config);

    /**
     * Wire the runtime to the pipeline. Installs the IPL content sampler
     * and predictor-overhead hook on the producer.
     */
    void bind(Producer &producer, DisplayTimeVirtualizer &dtv,
              FramePreExecutor &fpe, BufferQueue &queue);

    // ----- runtime switch (API capability 4) ---------------------------

    bool enabled() const { return enabled_; }
    void set_enabled(bool on) { enabled_ = on; }

    // ----- graceful degradation (robustness) ---------------------------

    /**
     * Arm the degradation watchdog: on every present-fence event the
     * runtime checks for sustained invariant pressure (via @p monitor,
     * may be null), display stalls, and DTV desync. When a trigger fires
     * it *degrades* — switches D-VSync off so the FPE falls back to
     * conventional VSync pacing — and resyncs the DTV promise chain.
     * After watchdog_stable_presents clean presents it *re-promotes*
     * back to decoupled operation. Call after bind(); thresholds come
     * from DvsyncConfig. Off unless attached.
     */
    void attach_watchdog(Panel &panel, const InvariantMonitor *monitor);

    /**
     * Operator kill switch: degrade to the VSync fallback immediately,
     * exactly as if a watchdog trigger fired (D-VSync off, DTV promise
     * chain resynced, transition recorded). Vendors ship this to
     * force-disable a feature in the field; tests use it to pin the
     * degraded-path behavior deterministically. If the watchdog is
     * armed it re-promotes after the usual stable streak. No-op when
     * already degraded.
     */
    void force_degrade(Time now, const std::string &detail);

    /** Currently running on the VSync fallback path? */
    bool degraded() const { return degraded_; }

    /** D-VSync -> VSync fall-backs performed by the watchdog. */
    std::uint64_t degradations() const { return degradations_; }

    /** VSync -> D-VSync re-promotions performed by the watchdog. */
    std::uint64_t repromotions() const { return repromotions_; }

    /**
     * Current re-promotion backoff multiplier (1 = no backoff). Each
     * degradation within watchdog_backoff_window of the previous one
     * doubles it up to watchdog_backoff_cap, lengthening the stable
     * streak the next re-promotion must earn.
     */
    int backoff_multiplier() const { return wd_backoff_mult_; }

    /**
     * Human-readable degrade/re-promote transition log ("t=<ns> ..."),
     * surfaced as RunReport::timeline. Capped at kMaxTransitions.
     */
    const std::vector<std::string> &transitions() const
    {
        return transitions_;
    }

    static constexpr int kMaxTransitions = 256;

    // ----- decoupling decision (oblivious channel) ----------------------

    /**
     * Whether decoupled pre-rendering applies to @p seg: deterministic
     * animations always; interactions only with a registered predictor;
     * real-time content never (§4.2).
     */
    bool can_decouple(const Segment &seg) const;

    // ----- IPL (API capability 1) ---------------------------------------

    InputPredictionLayer &ipl() { return ipl_; }
    const InputPredictionLayer &ipl() const { return ipl_; }

    /** Register a predictor for interaction segments labelled @p label. */
    void register_predictor(const std::string &label,
                            std::shared_ptr<const InputPredictor> p);

    // ----- pre-rendering limit (API capability 2) ------------------------

    /**
     * Reconfigure the pre-rendering limit; the buffer queue is resized to
     * limit + 2 slots to hold the accumulated frames.
     */
    void set_prerender_limit(int limit);
    int prerender_limit() const;

    // ----- frame display time (API capability 3) --------------------------

    /**
     * The display timestamp the next frame would receive — what a
     * custom-rendering app samples its own animations with.
     */
    Time query_display_time() const;

    const DvsyncConfig &config() const { return config_; }

  private:
    void on_watchdog_present(const PresentEvent &ev);
    void degrade(Time now, const char *reason, const std::string &detail);
    void repromote(Time now);
    void record_transition(std::string line);

    DvsyncConfig config_;
    bool enabled_ = true;
    InputPredictionLayer ipl_;

    Producer *producer_ = nullptr;
    DisplayTimeVirtualizer *dtv_ = nullptr;
    FramePreExecutor *fpe_ = nullptr;
    BufferQueue *queue_ = nullptr;

    // ----- watchdog state ----------------------------------------------
    bool watchdog_armed_ = false;
    const InvariantMonitor *monitor_ = nullptr;
    bool degraded_ = false;
    std::uint64_t degradations_ = 0;
    std::uint64_t repromotions_ = 0;
    Time wd_last_present_ = kTimeNone;
    int desync_streak_ = 0;
    int stable_streak_ = 0;
    int wd_backoff_mult_ = 1;
    int wd_required_streak_ = 0; ///< set on each degrade()
    Time wd_last_degrade_ = kTimeNone;
    std::uint64_t streak_violation_base_ = 0;
    std::vector<std::string> transitions_;
};

} // namespace dvs

#endif // DVS_CORE_DVSYNC_RUNTIME_H
