#include "core/frame_pre_executor.h"

#include <algorithm>

#include "core/dvsync_runtime.h"
#include "sim/logging.h"

namespace dvs {

const char *
to_string(FpeStage s)
{
    return s == FpeStage::kAccumulation ? "accumulation" : "sync";
}

FramePreExecutor::FramePreExecutor(DisplayTimeVirtualizer &dtv,
                                   BufferQueue &queue, Panel &panel,
                                   DvsyncRuntime &runtime,
                                   const DvsyncConfig &config)
    : dtv_(dtv), queue_(queue), runtime_(runtime),
      config_(config.normalized())
{
    dtv_.set_slip_listener([this](int periods) {
        // Drop elasticity: the timeline lost `periods` display slots;
        // skip them so subsequent frames realign (§5.1).
        if (producer_)
            producer_->skip_slots(periods);
    });
    // Sync-stage pacing: when pre-execution sits at the limit, the next
    // frame starts in alignment with the screen display — the present
    // fence. (Registered after the DTV's fence listener, so promises see
    // the already-updated fence floor.)
    panel.add_present_listener([this](const PresentEvent &) {
        if (waiting_for_slot_) {
            waiting_for_slot_ = false;
            maybe_pre_render();
        }
    });
}

void
FramePreExecutor::set_prerender_limit(int limit)
{
    if (limit < 1)
        fatal("prerender limit must be >= 1, got %d", limit);
    config_.prerender_limit = limit;
}

int
FramePreExecutor::frames_ahead() const
{
    return queue_.queued_count() + producer_->in_flight();
}

int
FramePreExecutor::accumulated() const
{
    // The pre-render limit bounds the accumulated buffers: frames queued
    // plus frames in production that will take a slot when they finish.
    return frames_ahead();
}

Time
FramePreExecutor::vsync_content_timestamp(Time edge) const
{
    // Decoupled segments render all content against the virtualized
    // display time; segments on the traditional path keep the edge.
    const int i = producer_->current_segment();
    if (i >= 0 &&
        runtime_.can_decouple(producer_->scenario().segments()[i])) {
        return dtv_.vsync_path_timestamp(edge);
    }
    return edge;
}

void
FramePreExecutor::on_segment_start(int)
{
    // The first frame of a segment is not pre-renderable: nothing has
    // announced the upcoming animation yet. It flows through the
    // conventional vsync path and anchors the segment timeline.
    stage_ = FpeStage::kAccumulation;
    waiting_for_slot_ = false;
    producer_->request_vsync_trigger();
}

void
FramePreExecutor::on_ui_complete(const FrameRecord &rec)
{
    if (!rec.pre_rendered) {
        // A vsync-path frame anchors DTV's promise chain at its own
        // expected present.
        dtv_.anchor_timeline(rec.timeline_timestamp +
                             Time(config_.pipeline_depth) * dtv_.period());
    }
    maybe_pre_render();
}

void
FramePreExecutor::set_stage(FpeStage stage)
{
    if (stage == FpeStage::kSync && stage_ != FpeStage::kSync)
        ++sync_entries_;
    stage_ = stage;
}

void
FramePreExecutor::maybe_pre_render()
{
    const int seg_idx = producer_->current_segment();
    if (!producer_->segment_has_more(seg_idx))
        return;
    if (producer_->segment_state(seg_idx).anchor == kTimeNone) {
        // The segment's first frame is still on its way through the
        // vsync path (requested at segment start); nothing to chain yet.
        return;
    }

    const Segment &seg = producer_->scenario().segments()[seg_idx];
    if (!runtime_.can_decouple(seg)) {
        // Runtime controller: fall back to the traditional VSync path
        // (§4.5, "the frame timing management defaults to the
        // traditional VSync path").
        ++fallbacks_;
        producer_->request_vsync_trigger();
        return;
    }

    const int ahead = accumulated();
    if (ahead > config_.prerender_limit) {
        // `ahead` counts queued buffers plus the frame still in
        // production; the limit itself bounds the *accumulated* (queued)
        // buffers, so one in-flight frame rides on top ("there are still
        // empty slots available in the buffer queue", §4.3).
        // Pre-execution reached the limit: sync stage. The next frame
        // starts when the screen consumes a buffer, re-aligning
        // production with the display (§4.3).
        set_stage(FpeStage::kSync);
        waiting_for_slot_ = true;
        return;
    }

    // Pacing at exactly the limit means the display is driving frame
    // starts (sync stage); anything below means we are still banking.
    set_stage(ahead == config_.prerender_limit ? FpeStage::kSync
                                               : FpeStage::kAccumulation);
    // The D-Timestamp depends on every frame ahead in FIFO order,
    // including the ones inside the pipeline stages.
    const Time d_timestamp = dtv_.promise_next(frames_ahead());
    ++pre_rendered_;
    producer_->begin_pre_rendered(d_timestamp);
}

} // namespace dvs
