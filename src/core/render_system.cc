#include "core/render_system.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "metrics/stutter_model.h"
#include "sim/logging.h"

namespace dvs {

namespace {

/** Nanosecond timestamp of a "t=<ns> ..." timeline line. */
long long
timeline_ts(const std::string &line)
{
    return std::atoll(line.c_str() + 2);
}

} // namespace

const char *
to_string(RenderMode m)
{
    switch (m) {
      case RenderMode::kVsync:
        return "VSync";
      case RenderMode::kDvsync:
        return "D-VSync";
      case RenderMode::kPaced:
        return "SwapInterval";
    }
    return "?";
}

RenderSystem::RenderSystem(const SystemConfig &config, Scenario scenario)
    : config_(config), sim_(config.seed)
{
    buffers_ = config.buffers;
    if (buffers_ == 0) {
        buffers_ = config.device.vsync_buffers;
        if (config.mode == RenderMode::kDvsync)
            buffers_ += 1; // the paper's default: one extra buffer
    }

    queue_ = std::make_unique<BufferQueue>(buffers_);
    hw_ = std::make_unique<HwVsyncGenerator>(sim_,
                                             config.device.refresh_hz);
    if (config.vsync_jitter > 0)
        hw_->set_jitter(config.vsync_jitter, &sim_.rng());

    // Registration order matters: the panel must latch before software
    // consumers observe the same edge.
    panel_ = std::make_unique<Panel>(*hw_, *queue_);
    compositor_ = std::make_unique<Compositor>(*panel_, config.latch_lead);
    dist_ = std::make_unique<VsyncDistributor>(sim_, *hw_);
    dist_->set_offset(VsyncChannel::kApp, config.vsync_app_offset);
    dist_->set_offset(VsyncChannel::kRs, config.vsync_rs_offset);

    producer_ = std::make_unique<Producer>(sim_, std::move(scenario),
                                           *queue_, *dist_);
    // Single surface = one lane; degenerate under parallel dispatch but
    // keeps the single- and multi-surface stacks on the same code path.
    producer_->pin_lane(1);
    sim_.set_sim_workers(config.sim_workers);
    // Typical runs keep a few hundred events live; pre-sizing the heap
    // and slot map keeps the hot loop out of the allocator.
    sim_.events().reserve(256);

    if (config.mode == RenderMode::kDvsync) {
        DvsyncConfig dc;
        dc.prerender_limit = config.prerender_limit >= 0
                                 ? config.prerender_limit
                                 : prerender_limit_for_buffers(buffers_);
        dc.calibration_interval = config.dtv_calibration_interval;
        dc.predictor_overhead = config.predictor_overhead;

        runtime_ = std::make_unique<DvsyncRuntime>(dc);
        dtv_ = std::make_unique<DisplayTimeVirtualizer>(sim_, *hw_,
                                                        *panel_, dc);
        fpe_ = std::make_unique<FramePreExecutor>(*dtv_, *queue_, *panel_,
                                                  *runtime_, dc);
        runtime_->bind(*producer_, *dtv_, *fpe_, *queue_);
        producer_->set_pacer(fpe_.get());
    } else if (config.mode == RenderMode::kPaced) {
        swap_pacer_ = std::make_unique<SwapIntervalPacer>(config.pacing);
        producer_->set_pacer(swap_pacer_.get());
    } else {
        vsync_pacer_ = std::make_unique<VsyncPacer>();
        producer_->set_pacer(vsync_pacer_.get());
    }

    if (config.governor.enabled && !config.thermal.enabled)
        fatal("the governor needs the thermal plant (its primary sensor); "
              "enable config.thermal");
    if (config.thermal.enabled) {
        const ThermalParams tp =
            config.thermal.params
                ? *config.thermal.params
                : thermal_params_for(config.device.thermal_budget_mw,
                                     config.device.thermal_headroom_c,
                                     config.thermal.envelope_scale);
        plant_ = std::make_unique<ThermalPlant>(tp);
        ExecResource &gpu = producer_->gpu();
        // Registered before the fault injector's transforms, so an
        // injected throttle multiplies the DVFS-scaled duration.
        gpu.add_cost_transform([this](Time, Time duration) {
            return plant_->scale_duration(duration);
        });
        gpu.add_usage_listener([this](Time start, Time end) {
            plant_->on_busy(start, end);
        });
        // Frame-coherence factor (Anglada-style dynamic sampling): a
        // deterministic animation's follow-up frames re-render mostly
        // coherent content at a fraction of the nominal GPU cost;
        // interactions are partially coherent; real-time content is
        // always new. Depends only on the record, so it is identical at
        // any worker count.
        producer_->set_gpu_cost_shaper(
            [this](const FrameRecord &rec, Time nominal) {
                const double lo = plant_->params().coherent_scale;
                double scale = 1.0;
                if (rec.slot > 0) {
                    if (rec.kind == SegmentKind::kAnimation)
                        scale = lo;
                    else if (rec.kind == SegmentKind::kInteraction)
                        scale = (lo + 1.0) / 2.0;
                }
                return Time(double(nominal) * scale);
            });
    }

    stats_ = std::make_unique<FrameStats>(*producer_, *panel_);

    // The classifier reads the RefreshLog FrameStats appends, so it must
    // register its present listener after stats_. It schedules no events
    // and never reads the RNG — always-on is free for determinism.
    DropClassifier::Context cc;
    cc.producer = producer_.get();
    cc.queue = queue_.get();
    cc.stats = stats_.get();
    cc.runtime = runtime_.get();
    cc.dtv = dtv_.get();
    cc.plan = config.faults.get();
    cc.gpu = &producer_->gpu();
    cc.shared_gpu = false;
    cc.plant = plant_.get();
    if (config.governor.enabled) {
        // governor_ is constructed below; the classifier only calls the
        // closure during the run, when it exists.
        cc.governor_capped = [this] {
            return governor_ && governor_->capping();
        };
    }
    classifier_ = std::make_unique<DropClassifier>(cc, *panel_);

    if (config.monitor_invariants) {
        monitor_ = std::make_unique<InvariantMonitor>();
        // The FPE's limit bounds accumulated (queued) pre-rendered
        // buffers; one frame in flight when the limit was checked may
        // land on top, hence +1. VSync/paced runs have no depth bound.
        const int depth = config.mode == RenderMode::kDvsync
                              ? prerender_limit() + 1
                              : 0;
        monitor_->attach(*producer_, *panel_, depth);
    }
    if (config.faults) {
        injector_ = std::make_unique<FaultInjector>(sim_, config.faults);
        injector_->arm(*hw_, *queue_, *compositor_, *producer_);
    }
    // Chaos runs always get the safety net; outside them it is opt-in so
    // fault-free goldens keep their exact behavior. The governor's final
    // rung hands off to the watchdog, so enabling it arms the watchdog.
    if (runtime_ &&
        (config.watchdog || config.faults || config.governor.enabled))
        runtime_->attach_watchdog(*panel_, monitor_.get());

    if (config.forensics || config.governor.enabled) {
        metrics_ = std::make_unique<MetricsRegistry>();
        metrics_->register_gauge("queue.depth", [this] {
            return double(queue_->queued_count());
        });
        metrics_->register_gauge("queue.free", [this] {
            return double(queue_->free_count());
        });
        metrics_->register_counter("ui.busy_ns", [this] {
            return double(producer_->ui_thread().total_busy());
        });
        metrics_->register_counter("render.busy_ns", [this] {
            return double(producer_->render_thread().total_busy());
        });
        metrics_->register_counter("gpu.busy_ns", [this] {
            return double(producer_->gpu().total_busy());
        });
        metrics_->register_counter("panel.presents", [this] {
            return double(panel_->presented());
        });
        metrics_->register_counter("panel.repeats", [this] {
            return double(panel_->repeats());
        });
        metrics_->register_counter("compositor.latch_misses", [this] {
            return double(compositor_->missed_deadline());
        });
        metrics_->register_counter("stats.drops", [this] {
            return double(stats_->frame_drops());
        });
        if (runtime_) {
            metrics_->register_gauge("runtime.degraded", [this] {
                return runtime_->degraded() ? 1.0 : 0.0;
            });
        }
        if (fpe_) {
            metrics_->register_counter("fpe.pre_rendered", [this] {
                return double(fpe_->pre_rendered_frames());
            });
        }
        if (plant_) {
            metrics_->register_gauge("thermal.temp_c", [this] {
                return plant_->temperature_at(sim_.now());
            });
            metrics_->register_gauge("thermal.level", [this] {
                return double(plant_->level());
            });
            metrics_->register_counter("thermal.trips", [this] {
                return double(plant_->throttle_trips());
            });
            metrics_->register_counter("power.gpu_mj", [this] {
                return plant_->gpu_energy_mj();
            });
        }
        // Default cadence: 16 refresh periods. Dense per-period sampling
        // is available via with_metrics_interval(device.period()), but
        // idle-heavy runs would then pay for a tick per refresh — the
        // sparse default keeps the measured overhead within the 5%
        // budget perf_sim_core enforces. Series sampling stays a
        // forensics feature: a governor-only registry is a passive
        // sensor bus, polled on the governor's cadence instead.
        if (config.forensics) {
            const Time interval = config.metrics_interval > 0
                                      ? config.metrics_interval
                                      : config.device.period() * 16;
            metrics_->install(sim_, interval);
        }
    }

    if (config.governor.enabled) {
        GovernorHooks hooks;
        if (fpe_) {
            const int nominal = fpe_->prerender_limit();
            hooks.trim_prerender = [this, nominal](bool on) {
                runtime_->set_prerender_limit(on ? 1 : nominal);
            };
        }
        if (!config.device.ltpo_rates.empty()) {
            const double lowest = config.device.ltpo_rates.back();
            const double native = config.device.refresh_hz;
            hooks.ltpo_cap = [this, lowest, native](bool on) {
                hw_->request_rate(on ? lowest : native);
            };
        }
        if (plant_ && plant_->level_count() > 1) {
            const int floor = std::min(2, plant_->level_count() - 1);
            hooks.dvfs_cap = [this, floor](bool on) {
                plant_->set_governor_floor(on ? floor : 0);
            };
        }
        if (runtime_) {
            hooks.handoff = [this](Time now) {
                runtime_->force_degrade(now, "governor handoff");
            };
            hooks.handoff_cleared = [this] {
                return !runtime_->degraded();
            };
        }
        governor_ = std::make_unique<Governor>(config.governor,
                                               std::move(hooks));
        const Time interval = config.governor.control_interval > 0
                                  ? config.governor.control_interval
                                  : config.device.period() * 4;
        governor_->install(sim_, *metrics_, interval);
    }
}

RenderSystem::~RenderSystem() = default;

RunReport
RenderSystem::run()
{
    if (ran_)
        panic("RenderSystem::run called twice");
    ran_ = true;

    hw_->start();
    producer_->start(0);

    // Drain margin: enough refreshes for the pipeline and any accumulated
    // buffers to reach the panel after the last segment ends.
    const Time tail = Time(buffers_ + 4) * config_.device.period();
    sim_.run_until(producer_->scenario().total_duration() + tail);
    hw_->stop();
    if (monitor_)
        monitor_->finalize(sim_.now());
    return report();
}

RunReport
RenderSystem::report() const
{
    if (!ran_)
        panic("RenderSystem::report before run");

    RunReport r;
    r.scenario = producer_->scenario().name();
    r.config.mode = to_string(config_.mode);
    r.config.device = config_.device.name;
    r.config.refresh_hz = config_.device.refresh_hz;
    r.config.buffers = buffers_;
    r.config.prerender_limit = prerender_limit();
    r.config.seed = config_.seed;

    const FrameStats &s = *stats_;
    r.fdps = s.fdps();
    r.fd_percent = s.frame_drop_percent();
    r.fps = s.fps();
    r.drops = s.frame_drops();
    r.frames_due = s.frames_due();
    r.presents = s.presents();
    r.direct = s.direct_composition();
    r.stuffed = s.buffer_stuffing();
    r.latency_mean_ms = to_ms(Time(s.latency().mean()));
    // percentile() is NaN on an empty sample set; a run that presented no
    // frames reports 0 latency explicitly so reports stay comparable
    // (and debug_string() stays byte-stable).
    if (s.latency().count() > 0) {
        r.latency_p50_ms = to_ms(Time(s.latency().percentile(50)));
        r.latency_p95_ms = to_ms(Time(s.latency().percentile(95)));
        r.latency_p99_ms = to_ms(Time(s.latency().percentile(99)));
    }
    r.latency_max_ms = to_ms(Time(s.latency().max()));
    r.stutters = count_stutters(s);
    r.deadline_misses = compositor_->missed_deadline();

    r.activity = activity();
    r.energy_mj = PowerModel().energy_mj(r.activity);
    r.pipeline_busy_s = to_seconds(r.activity.pipeline_busy);
    r.frames_produced = r.activity.frames_produced;
    r.predicted_frames = r.activity.predicted_frames;

    if (monitor_)
        r.invariant_violations = monitor_->violations();
    if (injector_)
        r.faults_injected = injector_->injected_total();
    if (runtime_) {
        r.degradations = runtime_->degradations();
        r.repromotions = runtime_->repromotions();
        r.timeline = runtime_->transitions();
    }
    if (dtv_)
        r.dtv_resyncs = dtv_->resyncs();
    if (plant_) {
        r.thermal_on = true;
        r.peak_temp_c = plant_->peak_temp_c();
        r.final_temp_c = plant_->temperature_c();
        r.thermal_trips = plant_->throttle_trips();
        r.dvfs_level_end = plant_->level();
        r.gpu_energy_mj = plant_->gpu_energy_mj();
    }
    if (governor_) {
        r.governor_demotions = governor_->demotions();
        r.governor_promotions = governor_->promotions();
        r.governor_rung_end = governor_->rung();
        // Merge governor transitions into the watchdog timeline in time
        // order (both inputs are already sorted; ties keep the watchdog
        // line first).
        const std::vector<std::string> &gov = governor_->transitions();
        std::vector<std::string> merged;
        merged.reserve(r.timeline.size() + gov.size());
        std::merge(r.timeline.begin(), r.timeline.end(), gov.begin(),
                   gov.end(), std::back_inserter(merged),
                   [](const std::string &a, const std::string &b) {
                       return timeline_ts(a) < timeline_ts(b);
                   });
        r.timeline = std::move(merged);
    }

    r.drop_causes = classifier_->counts();
    r.drops_injected = classifier_->injected_drops();
    std::uint64_t attributed = 0;
    for (int c = 0; c < kDropCauseCount; ++c)
        attributed += r.drop_causes[c];
    if (attributed != r.drops) {
        panic("drop attribution out of sync: %llu causes vs %llu drops",
              (unsigned long long)attributed,
              (unsigned long long)r.drops);
    }
    return r;
}

RunActivity
RenderSystem::activity() const
{
    RunActivity a;
    a.wall_time = producer_->scenario().total_duration();
    a.pipeline_busy = producer_->ui_thread().total_busy() +
                      producer_->render_thread().total_busy();
    a.frames_produced = producer_->frames_started();
    a.dvsync_on = config_.mode == RenderMode::kDvsync;
    a.predictor_overhead = config_.predictor_overhead;
    if (runtime_)
        a.predicted_frames = runtime_->ipl().predictions();
    if (plant_)
        a.gpu_mj = plant_->gpu_energy_mj();
    return a;
}

int
RenderSystem::prerender_limit() const
{
    return fpe_ ? fpe_->prerender_limit() : 0;
}

void
RenderSystem::export_trace(TraceLog &log) const
{
    char name[64];
    for (const FrameRecord &rec : producer_->records()) {
        std::snprintf(name, sizeof(name), "frame %lld.%lld%s",
                      (long long)rec.segment_index, (long long)rec.slot,
                      rec.pre_rendered ? " (pre)" : "");
        if (rec.ui_start != kTimeNone)
            log.duration("ui thread", name, rec.ui_start, rec.ui_end);
        if (rec.render_start != kTimeNone) {
            log.duration("render thread", name, rec.render_start,
                         rec.render_end);
        }
        if (rec.gpu_start != kTimeNone)
            log.duration("gpu", name, rec.gpu_start, rec.gpu_end);
        if (rec.queue_time != kTimeNone && rec.present_time != kTimeNone) {
            log.duration("buffer queue", name, rec.queue_time,
                         rec.present_time);
        }
    }
    for (const RefreshLog &r : stats_->refreshes()) {
        if (r.presented)
            log.instant("display", "present", r.time);
        else if (r.drop)
            log.instant("display", "FRAME DROP", r.time);
        log.counter("queued buffers", r.time,
                    double(queue_->queued_count()));
    }
    // Flow events link each frame's slices across the tracks above, so
    // one frame can be followed UI -> render -> GPU -> queue -> display.
    forensics().export_flows(log);
}

FrameForensics
RenderSystem::forensics() const
{
    if (!ran_)
        panic("RenderSystem::forensics before run");
    FrameForensics f;
    f.add_surface("", *producer_, *stats_, classifier_.get());
    return f;
}

bool
RenderSystem::save_forensics(const std::string &path) const
{
    return forensics().save(path, producer_->scenario().name(),
                            to_string(config_.mode), metrics_.get());
}

RunReport
run_experiment(const SystemConfig &config, const Scenario &scenario)
{
    RenderSystem system(config, scenario);
    return system.run();
}

} // namespace dvs
