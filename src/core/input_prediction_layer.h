/**
 * @file
 * Input Prediction Layer (IPL, §4.6).
 *
 * During continuous interactions (a fingertip on the screen) D-VSync
 * executes frames several vsync periods before display, so the input
 * state that will hold at display time does not exist yet. The IPL
 * corrects the current input status to the anticipated status at the
 * frame's D-Timestamp through curve fitting. Apps register predictors per
 * interaction label through the decoupling-aware APIs — e.g. the map app
 * registers a linear Zooming Distance Predictor (ZDP) for its pinch
 * gesture (§6.5).
 */

#ifndef DVS_CORE_INPUT_PREDICTION_LAYER_H
#define DVS_CORE_INPUT_PREDICTION_LAYER_H

#include <map>
#include <memory>
#include <string>

#include "input/touch_event.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dvs {

/**
 * A fitted input predictor. predict() sees the event history up to the
 * execution time and extrapolates the salient value (touch_value) to the
 * target display time.
 */
class InputPredictor
{
  public:
    virtual ~InputPredictor() = default;

    virtual const char *name() const = 0;

    /**
     * Predict the input value at @p target given events up to @p now.
     * Times are relative to the gesture's stream.
     */
    virtual double predict(const TouchStream &stream, Time now,
                           Time target) const = 0;
};

/** Baseline: repeat the latest observed value (what VSync renders). */
class LastValuePredictor : public InputPredictor
{
  public:
    const char *name() const override { return "last-value"; }
    double predict(const TouchStream &stream, Time now,
                   Time target) const override;
};

/**
 * Least-squares line over a trailing window — the paper's ZDP: "a linear
 * line fitting of current (and historical) data of the distance".
 */
class LinearPredictor : public InputPredictor
{
  public:
    /** @param window history length used for the fit. */
    explicit LinearPredictor(Time window = 80'000'000);

    const char *name() const override { return "linear"; }
    double predict(const TouchStream &stream, Time now,
                   Time target) const override;

  private:
    Time window_;
};

/** Least-squares quadratic over a trailing window (captures curvature). */
class QuadraticPredictor : public InputPredictor
{
  public:
    explicit QuadraticPredictor(Time window = 120'000'000);

    const char *name() const override { return "quadratic"; }
    double predict(const TouchStream &stream, Time now,
                   Time target) const override;

  private:
    Time window_;
};

/**
 * The registry of per-interaction predictors plus prediction accounting.
 */
class InputPredictionLayer
{
  public:
    /** Register a predictor for interaction segments labelled @p label. */
    void register_predictor(const std::string &label,
                            std::shared_ptr<const InputPredictor> p);

    /** Remove a registration. */
    void unregister_predictor(const std::string &label);

    /** @return nullptr when no predictor covers @p label. */
    const InputPredictor *find(const std::string &label) const;

    bool has(const std::string &label) const { return find(label) != nullptr; }

    /** Run a prediction and account for it. */
    double predict(const std::string &label, const TouchStream &stream,
                   Time now, Time target);

    /** Predictions served. */
    std::uint64_t predictions() const { return predictions_; }

  private:
    std::map<std::string, std::shared_ptr<const InputPredictor>> registry_;
    std::uint64_t predictions_ = 0;
};

} // namespace dvs

#endif // DVS_CORE_INPUT_PREDICTION_LAYER_H
