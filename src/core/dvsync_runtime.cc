#include "core/dvsync_runtime.h"

#include "core/frame_pre_executor.h"
#include "sim/logging.h"

namespace dvs {

DvsyncRuntime::DvsyncRuntime(const DvsyncConfig &config)
    : config_(config.normalized())
{
}

void
DvsyncRuntime::bind(Producer &producer, DisplayTimeVirtualizer &dtv,
                    FramePreExecutor &fpe, BufferQueue &queue)
{
    producer_ = &producer;
    dtv_ = &dtv;
    fpe_ = &fpe;
    queue_ = &queue;

    // Interactive frames sample input through the IPL when a predictor
    // is registered; otherwise they render the latest known input, just
    // like the conventional framework.
    producer.set_content_sampler([this](const SampleContext &ctx) {
        const Segment &seg = *ctx.segment;
        if (seg.touch && enabled_ && ipl_.has(seg.label)) {
            return ipl_.predict(seg.label, *seg.touch, ctx.now_rel,
                                ctx.content_rel);
        }
        if (seg.touch) {
            const TouchEvent *ev = seg.touch->latest_at(ctx.now_rel);
            if (ev)
                return touch_value(*ev);
        }
        return 0.0;
    });

    // Predictor fitting costs UI-thread time (§6.5: ZDP's 151.6 µs).
    producer.set_extra_ui_cost(
        [this](const Segment &seg, const FrameRecord &) -> Time {
            if (seg.kind == SegmentKind::kInteraction && enabled_ &&
                ipl_.has(seg.label)) {
                return config_.predictor_overhead;
            }
            return 0;
        });
}

bool
DvsyncRuntime::can_decouple(const Segment &seg) const
{
    if (!enabled_)
        return false;
    switch (seg.kind) {
      case SegmentKind::kAnimation:
        return true; // deterministic: oblivious channel
      case SegmentKind::kInteraction:
        return ipl_.has(seg.label); // aware channel via IPL
      case SegmentKind::kRealtime:
      case SegmentKind::kIdle:
        return false;
    }
    return false;
}

void
DvsyncRuntime::register_predictor(const std::string &label,
                                  std::shared_ptr<const InputPredictor> p)
{
    ipl_.register_predictor(label, std::move(p));
}

void
DvsyncRuntime::set_prerender_limit(int limit)
{
    if (!fpe_ || !queue_)
        fatal("set_prerender_limit before bind()");
    fpe_->set_prerender_limit(limit);
    queue_->set_capacity(limit + 2);
    config_.prerender_limit = limit;
}

int
DvsyncRuntime::prerender_limit() const
{
    return fpe_ ? fpe_->prerender_limit() : config_.prerender_limit;
}

Time
DvsyncRuntime::query_display_time() const
{
    if (!dtv_ || !producer_)
        fatal("query_display_time before bind()");
    const int ahead = queue_->queued_count() + producer_->in_flight();
    return dtv_->peek_next(ahead);
}

} // namespace dvs
