#include "core/dvsync_runtime.h"

#include <algorithm>
#include <cmath>

#include "core/frame_pre_executor.h"
#include "fault/invariant_monitor.h"
#include "sim/logging.h"

namespace dvs {

DvsyncRuntime::DvsyncRuntime(const DvsyncConfig &config)
    : config_(config.normalized())
{
}

void
DvsyncRuntime::bind(Producer &producer, DisplayTimeVirtualizer &dtv,
                    FramePreExecutor &fpe, BufferQueue &queue)
{
    producer_ = &producer;
    dtv_ = &dtv;
    fpe_ = &fpe;
    queue_ = &queue;

    // Interactive frames sample input through the IPL when a predictor
    // is registered; otherwise they render the latest known input, just
    // like the conventional framework.
    producer.set_content_sampler([this](const SampleContext &ctx) {
        const Segment &seg = *ctx.segment;
        if (seg.touch && enabled_ && ipl_.has(seg.label)) {
            return ipl_.predict(seg.label, *seg.touch, ctx.now_rel,
                                ctx.content_rel);
        }
        if (seg.touch) {
            const TouchEvent *ev = seg.touch->latest_at(ctx.now_rel);
            if (ev)
                return touch_value(*ev);
        }
        return 0.0;
    });

    // Predictor fitting costs UI-thread time (§6.5: ZDP's 151.6 µs).
    producer.set_extra_ui_cost(
        [this](const Segment &seg, const FrameRecord &) -> Time {
            if (seg.kind == SegmentKind::kInteraction && enabled_ &&
                ipl_.has(seg.label)) {
                return config_.predictor_overhead;
            }
            return 0;
        });
}

bool
DvsyncRuntime::can_decouple(const Segment &seg) const
{
    if (!enabled_)
        return false;
    switch (seg.kind) {
      case SegmentKind::kAnimation:
        return true; // deterministic: oblivious channel
      case SegmentKind::kInteraction:
        return ipl_.has(seg.label); // aware channel via IPL
      case SegmentKind::kRealtime:
      case SegmentKind::kIdle:
        return false;
    }
    return false;
}

void
DvsyncRuntime::register_predictor(const std::string &label,
                                  std::shared_ptr<const InputPredictor> p)
{
    ipl_.register_predictor(label, std::move(p));
}

void
DvsyncRuntime::set_prerender_limit(int limit)
{
    if (!fpe_ || !queue_)
        fatal("set_prerender_limit before bind()");
    fpe_->set_prerender_limit(limit);
    queue_->set_capacity(limit + 2);
    config_.prerender_limit = limit;
}

int
DvsyncRuntime::prerender_limit() const
{
    return fpe_ ? fpe_->prerender_limit() : config_.prerender_limit;
}

void
DvsyncRuntime::attach_watchdog(Panel &panel, const InvariantMonitor *monitor)
{
    if (!dtv_)
        fatal("attach_watchdog before bind()");
    if (watchdog_armed_)
        fatal("attach_watchdog called twice");
    watchdog_armed_ = true;
    monitor_ = monitor;
    // Registered after the DTV's and the monitor's present listeners, so
    // a present's own violations are already recorded when the pressure
    // check runs.
    panel.add_present_listener(
        [this](const PresentEvent &ev) { on_watchdog_present(ev); });
}

void
DvsyncRuntime::on_watchdog_present(const PresentEvent &ev)
{
    const double period = double(dtv_->period());
    const Time prev = wd_last_present_;
    wd_last_present_ = ev.present_time;
    const bool stalled =
        prev != kTimeNone &&
        double(ev.present_time - prev) >
            config_.watchdog_stall_periods * period;

    if (!degraded_) {
        const char *reason = nullptr;
        std::string detail;
        if (config_.watchdog_pressure_threshold > 0 && monitor_) {
            const std::uint64_t recent = monitor_->violations_since(
                ev.present_time - config_.watchdog_pressure_window);
            if (recent >= std::uint64_t(config_.watchdog_pressure_threshold)) {
                reason = "invariant-pressure";
                detail = std::to_string(recent) + " recent violations";
            }
        }
        if (!reason && stalled) {
            reason = "display-stall";
            detail = std::to_string(ev.present_time - prev) +
                     " ns since last present";
        }
        if (!reason && !ev.repeat && ev.meta.pre_rendered &&
            ev.meta.content_timestamp != kTimeNone) {
            const double err = std::abs(
                double(ev.present_time - ev.meta.content_timestamp));
            if (err > config_.watchdog_desync_periods * period) {
                if (++desync_streak_ >= config_.watchdog_desync_streak) {
                    reason = "dtv-desync";
                    detail = std::to_string(desync_streak_) +
                             " consecutive off-promise presents";
                }
            } else {
                desync_streak_ = 0;
            }
        } else if (!ev.repeat) {
            desync_streak_ = 0;
        }
        if (reason)
            degrade(ev.present_time, reason, detail);
        return;
    }

    // Degraded: wait for the pipeline to prove itself stable again.
    bool stable = !stalled;
    const std::uint64_t seen = monitor_ ? monitor_->violations() : 0;
    if (seen != streak_violation_base_) {
        streak_violation_base_ = seen;
        stable = false;
    }
    stable_streak_ = stable ? stable_streak_ + 1 : 0;
    if (stable_streak_ >= wd_required_streak_)
        repromote(ev.present_time);
}

void
DvsyncRuntime::force_degrade(Time now, const std::string &detail)
{
    if (!degraded_)
        degrade(now, "forced", detail);
}

void
DvsyncRuntime::degrade(Time now, const char *reason,
                       const std::string &detail)
{
    degraded_ = true;
    ++degradations_;
    enabled_ = false; // FPE falls back to conventional VSync pacing
    // Exponential re-promotion backoff: a degradation soon after the
    // last one means the previous re-promotion was premature — the next
    // stable streak must be twice as long (capped). A degradation after
    // a long healthy stretch starts fresh.
    if (wd_last_degrade_ != kTimeNone &&
        now - wd_last_degrade_ <= config_.watchdog_backoff_window) {
        wd_backoff_mult_ =
            std::min(wd_backoff_mult_ * 2, config_.watchdog_backoff_cap);
    } else {
        wd_backoff_mult_ = 1;
    }
    wd_last_degrade_ = now;
    wd_required_streak_ = config_.watchdog_stable_presents * wd_backoff_mult_;
    // The promise chain refers to a timeline segment that no longer
    // matches reality; drop it so re-promotion re-anchors cleanly.
    dtv_->resync();
    desync_streak_ = 0;
    stable_streak_ = 0;
    streak_violation_base_ = monitor_ ? monitor_->violations() : 0;
    std::string line = "t=" + std::to_string(now) + " degrade [" + reason +
                       "] " + detail + " -> VSync pacing, DTV resync";
    // Make the backoff timeline-visible, but keep the text byte-identical
    // to the pre-backoff format when no backoff is in force.
    if (wd_backoff_mult_ > 1) {
        line += " (backoff x" + std::to_string(wd_backoff_mult_) + ": " +
                std::to_string(wd_required_streak_) +
                " stable presents to re-promote)";
    }
    record_transition(std::move(line));
}

void
DvsyncRuntime::repromote(Time now)
{
    degraded_ = false;
    ++repromotions_;
    enabled_ = true;
    stable_streak_ = 0;
    record_transition("t=" + std::to_string(now) + " repromote after " +
                      std::to_string(wd_required_streak_) +
                      " stable presents -> D-VSync");
}

void
DvsyncRuntime::record_transition(std::string line)
{
    if (int(transitions_.size()) < kMaxTransitions)
        transitions_.push_back(std::move(line));
}

Time
DvsyncRuntime::query_display_time() const
{
    if (!dtv_ || !producer_)
        fatal("query_display_time before bind()");
    const int ahead = queue_->queued_count() + producer_->in_flight();
    return dtv_->peek_next(ahead);
}

} // namespace dvs
