/**
 * @file
 * D-VSync × LTPO co-design (§5.3).
 *
 * LTPO panels lower the refresh rate when on-screen motion slows. With
 * D-VSync, buffers rendered for rate X may still be accumulated in the
 * queue when LTPO decides to switch to rate Y; displaying an X-rate frame
 * for a Y-rate period would break pacing ("frames rendered at X Hz are
 * not displayed at Y Hz"). The co-design:
 *
 *  - binds a rendering rate to every produced buffer (FrameMeta's
 *    render_rate_hz, stamped by the producer through the rate source this
 *    module installs);
 *  - switches the *rendering* rate immediately when LTPO decides;
 *  - defers the *screen* rate switch until every buffer bound to the old
 *    rate has been consumed — each refresh period simply follows the rate
 *    bound to the buffer being latched.
 */

#ifndef DVS_CORE_LTPO_CODESIGN_H
#define DVS_CORE_LTPO_CODESIGN_H

#include <cstdint>

#include "buffer/buffer_queue.h"
#include "display/hw_vsync.h"
#include "display/ltpo.h"
#include "pipeline/producer.h"

namespace dvs {

/**
 * Coordinates rendering-rate and refresh-rate changes.
 */
class LtpoCodesign
{
  public:
    LtpoCodesign(HwVsyncGenerator &hw, BufferQueue &queue,
                 LtpoController &ltpo, Producer &producer);

    /** Rate newly produced frames are rendered for. */
    double render_rate() const { return render_rate_; }

    /** Screen rate switches performed. */
    std::uint64_t switches() const { return switches_; }

    /**
     * Edges at which a desired switch was deferred because accumulated
     * buffers at the old rate had not drained yet.
     */
    std::uint64_t deferred() const { return deferred_; }

  private:
    double on_edge(const VsyncEdge &edge);

    BufferQueue &queue_;
    LtpoController &ltpo_;
    double render_rate_ = 0.0;
    std::uint64_t switches_ = 0;
    std::uint64_t deferred_ = 0;
};

} // namespace dvs

#endif // DVS_CORE_LTPO_CODESIGN_H
