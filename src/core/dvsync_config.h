/**
 * @file
 * Configuration of the D-VSync architecture.
 */

#ifndef DVS_CORE_DVSYNC_CONFIG_H
#define DVS_CORE_DVSYNC_CONFIG_H

#include "sim/time.h"

namespace dvs {

/** Tunables of the D-VSync core modules. */
struct DvsyncConfig {
    /**
     * Pre-rendering limit: maximum frames allowed ahead of the display
     * (queued + in production). The paper's OpenHarmony deployment allows
     * at most 3 back buffers for pre-rendering (§5.1); the Fig. 11 sweep
     * maps "D-VSync N bufs" to a queue of N slots with a limit of N − 2.
     */
    int prerender_limit = 3;

    /**
     * Nominal depth of the rendering pipeline in refresh periods: the lag
     * between a frame's timeline slot and its present (§2: "the
     * end-to-end rendering procedure usually spans at least two VSync
     * periods").
     */
    int pipeline_depth = 2;

    /**
     * DTV calibration interval: resample the hardware vsync into the
     * timing model every N edges ("calibrates the issued D-Timestamp
     * every few frames", §5.1). 1 = every edge.
     */
    int calibration_interval = 1;

    /**
     * UI-stage cost added to frames that run a registered input
     * predictor (the map app's ZDP measures 151.6 µs, §6.5).
     */
    Time predictor_overhead = 151'600;

    // ----- degradation watchdog (robustness) ---------------------------
    //
    // Thresholds of the runtime's graceful-degradation policy (see
    // DvsyncRuntime::attach_watchdog). Expressed in refresh periods where
    // a time is involved, so the policy survives LTPO rate switches.

    /**
     * Degrade when this many invariant violations land within
     * watchdog_pressure_window. <= 0 disables the pressure trigger.
     */
    int watchdog_pressure_threshold = 3;

    /** Window for counting recent invariant violations. */
    Time watchdog_pressure_window = 50'000'000; // 50 ms

    /**
     * Degrade when the gap between consecutive present-fence events
     * exceeds this many periods (the display stalled: screen off, HW
     * vsync lost, or the pipeline wedged).
     */
    double watchdog_stall_periods = 8.0;

    /**
     * Degrade when this many consecutive pre-rendered frames present
     * more than watchdog_desync_periods away from their D-Timestamp
     * (DTV's promise chain lost the real timeline).
     */
    double watchdog_desync_periods = 4.0;
    int watchdog_desync_streak = 5;

    /**
     * Re-promote to D-VSync after this many consecutive stable presents
     * (no stall-sized gap, no new invariant violations).
     */
    int watchdog_stable_presents = 32;

    /**
     * Exponential re-promotion backoff: a degradation landing within
     * this window of the previous one doubles the stable-streak
     * requirement (up to watchdog_backoff_cap ×), so a marginal
     * pipeline cannot ping-pong degrade/re-promote forever. A
     * degradation outside the window resets the multiplier to 1.
     */
    Time watchdog_backoff_window = 2'000'000'000; // 2 s

    /** Cap on the backoff multiplier. */
    int watchdog_backoff_cap = 8;

    /** Validate and return a normalized copy. */
    DvsyncConfig normalized() const;
};

/** Derive the pre-render limit for a queue of @p buffers slots. */
int prerender_limit_for_buffers(int buffers);

} // namespace dvs

#endif // DVS_CORE_DVSYNC_CONFIG_H
