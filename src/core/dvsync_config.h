/**
 * @file
 * Configuration of the D-VSync architecture.
 */

#ifndef DVS_CORE_DVSYNC_CONFIG_H
#define DVS_CORE_DVSYNC_CONFIG_H

#include "sim/time.h"

namespace dvs {

/** Tunables of the D-VSync core modules. */
struct DvsyncConfig {
    /**
     * Pre-rendering limit: maximum frames allowed ahead of the display
     * (queued + in production). The paper's OpenHarmony deployment allows
     * at most 3 back buffers for pre-rendering (§5.1); the Fig. 11 sweep
     * maps "D-VSync N bufs" to a queue of N slots with a limit of N − 2.
     */
    int prerender_limit = 3;

    /**
     * Nominal depth of the rendering pipeline in refresh periods: the lag
     * between a frame's timeline slot and its present (§2: "the
     * end-to-end rendering procedure usually spans at least two VSync
     * periods").
     */
    int pipeline_depth = 2;

    /**
     * DTV calibration interval: resample the hardware vsync into the
     * timing model every N edges ("calibrates the issued D-Timestamp
     * every few frames", §5.1). 1 = every edge.
     */
    int calibration_interval = 1;

    /**
     * UI-stage cost added to frames that run a registered input
     * predictor (the map app's ZDP measures 151.6 µs, §6.5).
     */
    Time predictor_overhead = 151'600;

    /** Validate and return a normalized copy. */
    DvsyncConfig normalized() const;
};

/** Derive the pre-render limit for a queue of @p buffers slots. */
int prerender_limit_for_buffers(int buffers);

} // namespace dvs

#endif // DVS_CORE_DVSYNC_CONFIG_H
