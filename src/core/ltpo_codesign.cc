#include "core/ltpo_codesign.h"

namespace dvs {

LtpoCodesign::LtpoCodesign(HwVsyncGenerator &hw, BufferQueue &queue,
                           LtpoController &ltpo, Producer &producer)
    : queue_(queue), ltpo_(ltpo), render_rate_(hw.rate_hz())
{
    hw.set_rate_policy(
        [this](const VsyncEdge &e) { return on_edge(e); });
    // New frames are stamped with the co-design's rendering rate, not the
    // (possibly lagging) screen rate.
    producer.set_rate_source([this] { return render_rate_; });
}

double
LtpoCodesign::on_edge(const VsyncEdge &edge)
{
    // Rendering follows the LTPO decision immediately.
    const double desired = ltpo_.decide();
    render_rate_ = desired;

    // The screen follows the buffer it is about to latch: each rendered
    // buffer's bound rate controls its own display duration.
    const FrameBuffer *head = queue_.peek_queued();
    if (head && head->meta().render_rate_hz > 0) {
        const double bound = head->meta().render_rate_hz;
        if (bound != edge.rate_hz) {
            ++switches_;
            return bound;
        }
        if (desired != edge.rate_hz)
            ++deferred_; // old-rate frames still draining
        return 0.0;
    }

    // Queue empty (static content): switch directly.
    if (desired != edge.rate_hz) {
        ++switches_;
        return desired;
    }
    return 0.0;
}

} // namespace dvs
