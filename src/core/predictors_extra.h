/**
 * @file
 * Additional input predictors beyond the paper's linear ZDP.
 *
 * §4.6 frames the IPL as an extensible interface — "apps can register
 * their specific heuristic curves" — and the related-work section points
 * at richer predictors (Outatime's Markov model, motion prediction in
 * VR). These implementations cover the next steps up from a plain
 * least-squares line:
 *
 *  - AlphaBetaPredictor: a fixed-gain alpha-beta tracker (position +
 *    velocity state), robust to noise and cheap — the classic choice for
 *    touch trajectory smoothing in input pipelines.
 *  - DampedTrendPredictor: double exponential smoothing with a damped
 *    trend, which keeps long-horizon extrapolations conservative (a
 *    fling's velocity decays; a raw linear fit overshoots).
 */

#ifndef DVS_CORE_PREDICTORS_EXTRA_H
#define DVS_CORE_PREDICTORS_EXTRA_H

#include "core/input_prediction_layer.h"

namespace dvs {

/**
 * Fixed-gain alpha-beta tracker over the touch stream.
 *
 * State (position, velocity) updates per sample:
 *   residual = z - (x + v dt);  x += v dt + alpha * residual;
 *   v += beta / dt * residual.
 */
class AlphaBetaPredictor : public InputPredictor
{
  public:
    /**
     * @param alpha position gain in (0, 1]
     * @param beta velocity gain in (0, alpha]
     * @param window history replayed into the filter per prediction
     */
    AlphaBetaPredictor(double alpha = 0.85, double beta = 0.35,
                       Time window = 120'000'000);

    const char *name() const override { return "alpha-beta"; }
    double predict(const TouchStream &stream, Time now,
                   Time target) const override;

  private:
    double alpha_;
    double beta_;
    Time window_;
};

/**
 * Damped-trend double exponential smoothing (Holt's method with a
 * damping factor phi): long-horizon forecasts approach a plateau rather
 * than extrapolating the instantaneous velocity forever.
 */
class DampedTrendPredictor : public InputPredictor
{
  public:
    /**
     * @param level_gain smoothing of the level (0, 1]
     * @param trend_gain smoothing of the trend (0, 1]
     * @param phi trend damping per step in (0, 1]
     * @param window history replayed per prediction
     */
    DampedTrendPredictor(double level_gain = 0.7, double trend_gain = 0.4,
                         double phi = 0.9, Time window = 150'000'000);

    const char *name() const override { return "damped-trend"; }
    double predict(const TouchStream &stream, Time now,
                   Time target) const override;

  private:
    double level_gain_;
    double trend_gain_;
    double phi_;
    Time window_;
};

} // namespace dvs

#endif // DVS_CORE_PREDICTORS_EXTRA_H
