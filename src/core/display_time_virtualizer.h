/**
 * @file
 * Display Time Virtualizer (DTV, §4.4 / §5.1).
 *
 * DTV decouples the timestamp a frame renders its content for from the
 * time its code executes. It keeps a model of the hardware vsync timeline
 * (period + phase, recalibrated from HW-VSync samples every few edges) and
 * computes, for every frame the FPE is about to trigger, the Frame Display
 * Timestamp (D-Timestamp): the vsync edge at which that frame will
 * physically reach the panel, given how many buffers are already queued or
 * in production ahead of it.
 *
 * DTV is elastic to residual frame drops: when a present fence reveals
 * that frames are reaching the screen later than promised, it slips its
 * promise chain forward by whole periods and tells the FPE how many
 * timeline slots to skip, so subsequent frames realign instead of running
 * permanently late (the VSync architecture's buffer-stuffing pathology).
 */

#ifndef DVS_CORE_DISPLAY_TIME_VIRTUALIZER_H
#define DVS_CORE_DISPLAY_TIME_VIRTUALIZER_H

#include <cstdint>
#include <deque>
#include <functional>

#include "core/dvsync_config.h"
#include "display/hw_vsync.h"
#include "display/panel.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "vsyncsrc/vsync_model.h"

namespace dvs {

/**
 * Computes and maintains Frame Display Timestamps.
 */
class DisplayTimeVirtualizer
{
  public:
    /** Notified when presents slipped @p periods behind the promises. */
    using SlipListener = std::function<void(int periods)>;

    DisplayTimeVirtualizer(Simulator &sim, HwVsyncGenerator &hw,
                           Panel &panel, const DvsyncConfig &config);

    /** Current period estimate of the vsync timeline model. */
    Time period() const { return model_.period(); }

    const VsyncModel &model() const { return model_; }

    /**
     * D-Timestamp of a frame triggered by the conventional vsync path at
     * edge @p trigger_edge: it will present pipeline_depth periods later.
     */
    Time vsync_path_timestamp(Time trigger_edge) const;

    /**
     * Anchor the promise chain: called when a vsync-path frame starts a
     * segment, with that frame's expected present.
     */
    void anchor_timeline(Time promised_present);

    /**
     * Compute (and commit) the D-Timestamp of the next pre-rendered
     * frame. @p frames_ahead is the number of frames that will present
     * before it (queued buffers + frames in production).
     */
    Time promise_next(int frames_ahead);

    /** Preview promise_next without committing (decoupling-aware API). */
    Time peek_next(int frames_ahead) const;

    /** Listener for drop-elasticity slips. */
    void set_slip_listener(SlipListener fn) { on_slip_ = std::move(fn); }

    /**
     * Drop the promise chain and outstanding promises, keeping the vsync
     * model and the fence floor (both still track hardware truth). Used
     * by the degradation path after a long stall, when the chain refers
     * to a timeline segment that no longer exists: the next promise
     * re-anchors from the fence floor and the predicted next edge.
     */
    void resync();

    // ----- introspection / stats ---------------------------------------

    /** Promises issued so far. */
    std::uint64_t promises() const { return promises_; }

    /** Whole-period slips performed (drop elasticity). */
    std::uint64_t slips() const { return slips_; }

    /** |present − promised| of pre-rendered frames, in ns. */
    const SampleStat &promise_error() const { return promise_error_; }

    /** Calibration samples consumed from the hardware. */
    std::uint64_t calibrations() const { return calibrations_; }

    /** Times resync() dropped the promise chain. */
    std::uint64_t resyncs() const { return resyncs_; }

    /** Promised display timestamps not yet matched by a present. */
    std::size_t pending_promises() const { return pending_.size(); }

  private:
    void on_edge(const VsyncEdge &edge);
    void on_present(const PresentEvent &ev);
    Time compute_next(int frames_ahead) const;

    Simulator &sim_;
    DvsyncConfig config_;
    VsyncModel model_;
    Time last_promised_ = kTimeNone;
    /** Present time of the most recent latched frame (fence floor). */
    Time fence_floor_ = kTimeNone;
    /** Outstanding promised display timestamps, in FIFO order. */
    std::deque<Time> pending_;
    std::uint64_t edge_counter_ = 0;
    std::uint64_t promises_ = 0;
    std::uint64_t slips_ = 0;
    std::uint64_t calibrations_ = 0;
    std::uint64_t resyncs_ = 0;
    SampleStat promise_error_;
    SlipListener on_slip_;
};

} // namespace dvs

#endif // DVS_CORE_DISPLAY_TIME_VIRTUALIZER_H
