#include "core/display_time_virtualizer.h"

#include <cmath>

#include "sim/logging.h"

namespace dvs {

DisplayTimeVirtualizer::DisplayTimeVirtualizer(Simulator &sim,
                                               HwVsyncGenerator &hw,
                                               Panel &panel,
                                               const DvsyncConfig &config)
    : sim_(sim), config_(config.normalized()), model_(hw.period())
{
    hw.add_listener([this](const VsyncEdge &e) { on_edge(e); });
    panel.add_present_listener(
        [this](const PresentEvent &ev) { on_present(ev); });
}

void
DisplayTimeVirtualizer::on_edge(const VsyncEdge &edge)
{
    // "Calibrates the issued D-Timestamp every few frames with hardware
    // VSync signals to avoid error accumulation" (§5.1).
    if (edge_counter_++ % std::uint64_t(config_.calibration_interval) == 0) {
        model_.add_sample(edge.timestamp, config_.calibration_interval);
        ++calibrations_;
    }
}

Time
DisplayTimeVirtualizer::vsync_path_timestamp(Time trigger_edge) const
{
    return trigger_edge + Time(config_.pipeline_depth) * model_.period();
}

void
DisplayTimeVirtualizer::anchor_timeline(Time promised_present)
{
    last_promised_ = promised_present;
}

Time
DisplayTimeVirtualizer::compute_next(int frames_ahead) const
{
    const Time period = model_.period();
    // Three lower bounds on when the frame can reach the panel:
    //  - it cannot present before the next vsync edge;
    //  - every frame ahead of it in FIFO order (queued + in production)
    //    occupies one edge after the frame currently on screen (the
    //    fence floor) — this bound tracks reality and self-corrects
    //    after residual drops;
    //  - it presents after the previously promised frame (pacing).
    Time t = model_.predict_next(sim_.now());
    if (fence_floor_ != kTimeNone) {
        t = std::max(t,
                     fence_floor_ + Time(frames_ahead + 1) * period);
    }
    if (last_promised_ != kTimeNone)
        t = std::max(t, last_promised_ + period);
    return t;
}

Time
DisplayTimeVirtualizer::promise_next(int frames_ahead)
{
    const Time t = compute_next(frames_ahead);
    last_promised_ = t;
    ++promises_;
    pending_.push_back(t);
    return t;
}

Time
DisplayTimeVirtualizer::peek_next(int frames_ahead) const
{
    return compute_next(frames_ahead);
}

void
DisplayTimeVirtualizer::resync()
{
    last_promised_ = kTimeNone;
    pending_.clear();
    ++resyncs_;
}

void
DisplayTimeVirtualizer::on_present(const PresentEvent &ev)
{
    const Time period = model_.period();
    if (ev.repeat) {
        // Elasticity to residual frame drops (§5.1): the screen repeated
        // at a refresh an outstanding promise was due at — that display
        // slot is irrecoverably missed. Skip exactly one timeline slot
        // so content realigns, and no more: repeats before any promise
        // is due (pipeline warm-up, idle) are not drops.
        if (!pending_.empty() &&
            pending_.front() <= ev.present_time + period / 2) {
            ++slips_;
            if (on_slip_)
                on_slip_(1);
        }
        return;
    }

    fence_floor_ = ev.present_time;
    if (!ev.meta.pre_rendered)
        return;
    if (!pending_.empty())
        pending_.pop_front();
    if (ev.meta.content_timestamp == kTimeNone)
        return;
    promise_error_.add(
        double(std::abs(ev.present_time - ev.meta.content_timestamp)));
}

} // namespace dvs
