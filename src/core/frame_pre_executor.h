/**
 * @file
 * Frame Pre-Executor (FPE, §4.3).
 *
 * The FPE performs decoupled pre-rendering: when the previous frame's UI
 * stage finishes and the scenario is deterministic (or covered by a
 * registered input predictor), it posts the D-VSync event that starts the
 * next frame immediately — ahead of the screen's VSync — with a
 * D-Timestamp obtained from the Display Time Virtualizer.
 *
 * It runs the two-stage state machine of Fig. 10:
 *  - Accumulation stage: frames chain back-to-back while the buffer queue
 *    has room below the pre-rendering limit, banking the idle time of
 *    short frames.
 *  - Sync stage: at the limit, frame starts re-align with the display —
 *    each latch frees a slot and immediately triggers the next frame.
 *
 * Scenarios that cannot be decoupled (real-time content, interactions
 * without a predictor) fall back to the conventional VSync path through
 * the runtime controller.
 */

#ifndef DVS_CORE_FRAME_PRE_EXECUTOR_H
#define DVS_CORE_FRAME_PRE_EXECUTOR_H

#include <cstdint>

#include "buffer/buffer_queue.h"
#include "core/display_time_virtualizer.h"
#include "core/dvsync_config.h"
#include "display/panel.h"
#include "pipeline/producer.h"

namespace dvs {

class DvsyncRuntime;

/** Execution stage of the FPE (Fig. 10). */
enum class FpeStage {
    kAccumulation,
    kSync,
};

const char *to_string(FpeStage s);

/**
 * The D-VSync frame pacer.
 */
class FramePreExecutor : public FramePacer
{
  public:
    /**
     * @param panel sync-stage frame starts align with its present fence
     *        ("FPE triggers the execution of every frame in alignment
     *        with the screen display", §4.3)
     */
    FramePreExecutor(DisplayTimeVirtualizer &dtv, BufferQueue &queue,
                     Panel &panel, DvsyncRuntime &runtime,
                     const DvsyncConfig &config);

    // ----- FramePacer -----------------------------------------------

    const char *name() const override { return "d-vsync"; }
    void on_segment_start(int segment_index) override;
    void on_ui_complete(const FrameRecord &rec) override;
    bool align_render(const FrameRecord &rec) const override
    {
        return !rec.pre_rendered;
    }
    Time vsync_content_timestamp(Time edge) const override;

    // ----- introspection ----------------------------------------------

    FpeStage stage() const { return stage_; }

    /** Frames started ahead of VSync. */
    std::uint64_t pre_rendered_frames() const { return pre_rendered_; }

    /** Frames that fell back to the VSync path. */
    std::uint64_t fallback_frames() const { return fallbacks_; }

    /** Transitions into the sync stage. */
    std::uint64_t sync_entries() const { return sync_entries_; }

    int prerender_limit() const { return config_.prerender_limit; }
    void set_prerender_limit(int limit);

  private:
    void maybe_pre_render();
    void set_stage(FpeStage stage);
    int frames_ahead() const;
    int accumulated() const;

    DisplayTimeVirtualizer &dtv_;
    BufferQueue &queue_;
    DvsyncRuntime &runtime_;
    DvsyncConfig config_;

    FpeStage stage_ = FpeStage::kAccumulation;
    bool waiting_for_slot_ = false;
    std::uint64_t pre_rendered_ = 0;
    std::uint64_t fallbacks_ = 0;
    std::uint64_t sync_entries_ = 0;
};

} // namespace dvs

#endif // DVS_CORE_FRAME_PRE_EXECUTOR_H
