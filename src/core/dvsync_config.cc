#include "core/dvsync_config.h"

#include <algorithm>

#include "sim/logging.h"

namespace dvs {

DvsyncConfig
DvsyncConfig::normalized() const
{
    DvsyncConfig c = *this;
    if (c.prerender_limit < 1)
        fatal("prerender_limit must be >= 1, got %d", c.prerender_limit);
    if (c.pipeline_depth < 1)
        fatal("pipeline_depth must be >= 1, got %d", c.pipeline_depth);
    c.calibration_interval = std::max(1, c.calibration_interval);
    c.predictor_overhead = std::max<Time>(0, c.predictor_overhead);
    c.watchdog_pressure_window = std::max<Time>(0, c.watchdog_pressure_window);
    c.watchdog_stall_periods = std::max(1.0, c.watchdog_stall_periods);
    c.watchdog_desync_periods = std::max(1.0, c.watchdog_desync_periods);
    c.watchdog_desync_streak = std::max(1, c.watchdog_desync_streak);
    c.watchdog_stable_presents = std::max(1, c.watchdog_stable_presents);
    c.watchdog_backoff_window = std::max<Time>(0, c.watchdog_backoff_window);
    c.watchdog_backoff_cap = std::max(1, c.watchdog_backoff_cap);
    return c;
}

int
prerender_limit_for_buffers(int buffers)
{
    // One slot is the front buffer and one stays free for the frame in
    // production; the rest may accumulate.
    return std::max(1, buffers - 2);
}

} // namespace dvs
