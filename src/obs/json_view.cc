#include "obs/json_view.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dvs {

namespace {
const JsonValue kNullValue;
} // namespace

const JsonValue &
JsonValue::at(const std::string &key) const
{
    auto it = members_.find(key);
    return it == members_.end() ? kNullValue : it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return members_.find(key) != members_.end();
}

double
JsonValue::number_at(const std::string &key, double fallback) const
{
    const JsonValue &v = at(key);
    return v.is_number() ? v.as_number() : fallback;
}

std::string
JsonValue::string_at(const std::string &key,
                     const std::string &fallback) const
{
    const JsonValue &v = at(key);
    return v.is_string() ? v.as_string() : fallback;
}

/** Recursive-descent parser over the RFC 8259 grammar. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    JsonValue run()
    {
        JsonValue v;
        if (!parse_value(v))
            return JsonValue();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing content");
            return JsonValue();
        }
        return v;
    }

  private:
    void fail(const char *msg)
    {
        if (error_ && error_->empty()) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "offset %zu: %s", pos_, msg);
            *error_ = buf;
        }
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        std::size_t i = 0;
        while (word[i]) {
            if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i]) {
                fail("invalid literal");
                return false;
            }
            ++i;
        }
        pos_ += i;
        return true;
    }

    bool parse_string(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size()) {
                fail("dangling escape");
                return false;
            }
            const char e = text_[pos_ + 1];
            pos_ += 2;
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size()) {
                      fail("truncated \\u escape");
                      return false;
                  }
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_ + std::size_t(i)];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= unsigned(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= unsigned(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= unsigned(h - 'A' + 10);
                      else {
                          fail("bad hex digit in \\u escape");
                          return false;
                      }
                  }
                  pos_ += 4;
                  // UTF-8 encode (BMP only; surrogate pairs are not
                  // produced by our exporter).
                  if (code < 0x80) {
                      out += char(code);
                  } else if (code < 0x800) {
                      out += char(0xC0 | (code >> 6));
                      out += char(0x80 | (code & 0x3F));
                  } else {
                      out += char(0xE0 | (code >> 12));
                      out += char(0x80 | ((code >> 6) & 0x3F));
                      out += char(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool parse_number(JsonValue &v)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_]))) {
            fail("invalid number");
            return false;
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required after decimal point");
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required in exponent");
                return false;
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        v.kind_ = JsonValue::Kind::kNumber;
        v.number_ = std::strtod(text_.c_str() + start, nullptr);
        return true;
    }

    bool parse_value(JsonValue &v)
    {
        skip_ws();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        switch (c) {
          case '{': {
              ++pos_;
              v.kind_ = JsonValue::Kind::kObject;
              skip_ws();
              if (pos_ < text_.size() && text_[pos_] == '}') {
                  ++pos_;
                  return true;
              }
              while (true) {
                  skip_ws();
                  if (pos_ >= text_.size() || text_[pos_] != '"') {
                      fail("object key must be a string");
                      return false;
                  }
                  std::string key;
                  if (!parse_string(key))
                      return false;
                  skip_ws();
                  if (pos_ >= text_.size() || text_[pos_] != ':') {
                      fail("expected ':' after object key");
                      return false;
                  }
                  ++pos_;
                  JsonValue member;
                  if (!parse_value(member))
                      return false;
                  v.members_[key] = std::move(member);
                  skip_ws();
                  if (pos_ < text_.size() && text_[pos_] == ',') {
                      ++pos_;
                      continue;
                  }
                  if (pos_ < text_.size() && text_[pos_] == '}') {
                      ++pos_;
                      return true;
                  }
                  fail("expected ',' or '}' in object");
                  return false;
              }
          }
          case '[': {
              ++pos_;
              v.kind_ = JsonValue::Kind::kArray;
              skip_ws();
              if (pos_ < text_.size() && text_[pos_] == ']') {
                  ++pos_;
                  return true;
              }
              while (true) {
                  JsonValue item;
                  if (!parse_value(item))
                      return false;
                  v.items_.push_back(std::move(item));
                  skip_ws();
                  if (pos_ < text_.size() && text_[pos_] == ',') {
                      ++pos_;
                      continue;
                  }
                  if (pos_ < text_.size() && text_[pos_] == ']') {
                      ++pos_;
                      return true;
                  }
                  fail("expected ',' or ']' in array");
                  return false;
              }
          }
          case '"': {
              v.kind_ = JsonValue::Kind::kString;
              return parse_string(v.string_);
          }
          case 't':
              v.kind_ = JsonValue::Kind::kBool;
              v.bool_ = true;
              return literal("true");
          case 'f':
              v.kind_ = JsonValue::Kind::kBool;
              v.bool_ = false;
              return literal("false");
          case 'n':
              v.kind_ = JsonValue::Kind::kNull;
              return literal("null");
          default:
              return parse_number(v);
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return JsonParser(text, error).run();
}

} // namespace dvs
