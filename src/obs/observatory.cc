#include "obs/observatory.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/render_system.h"
#include "obs/json_view.h"
#include "sim/logging.h"
#include "trace/dvst_io.h"
#include "trace/session_recorder.h"

namespace dvs {

const char *
to_string(SloMetric m)
{
    switch (m) {
      case SloMetric::kDropRatePercent:
        return "drop-rate";
      case SloMetric::kLatencyP99Ms:
        return "p99-latency";
      case SloMetric::kStutters:
        return "stutters";
      case SloMetric::kInvariantViolations:
        return "invariants";
      case SloMetric::kEnergyPerFrameMj:
        return "energy/frame";
    }
    return "?";
}

double
slo_metric_value(const RunReport &r, SloMetric metric)
{
    switch (metric) {
      case SloMetric::kDropRatePercent:
        return r.frames_due > 0
                   ? 100.0 * double(r.drops) / double(r.frames_due)
                   : 0.0;
      case SloMetric::kLatencyP99Ms:
        return r.latency_p99_ms;
      case SloMetric::kStutters:
        return double(r.stutters);
      case SloMetric::kInvariantViolations:
        return double(r.invariant_violations);
      case SloMetric::kEnergyPerFrameMj:
        return r.presents > 0 ? r.energy_mj / double(r.presents) : 0.0;
    }
    return 0.0;
}

std::vector<SloSpec>
default_slos()
{
    return {
        {"drop-rate", SloMetric::kDropRatePercent, 10.0},
        {"p99-latency", SloMetric::kLatencyP99Ms, 100.0},
        {"stutters", SloMetric::kStutters, 3.0},
        {"invariants", SloMetric::kInvariantViolations, 0.0},
        {"energy/frame", SloMetric::kEnergyPerFrameMj, 60.0},
    };
}

std::int64_t
anomaly_score_milli(const RunReport &r, const CohortBaseline &b,
                    const ScoreWeights &w)
{
    // Relative excess over the baseline expectation; 0 when at or below.
    const auto excess = [](double value, double base) {
        return value > base ? (value - base) / std::max(base, 1e-9) : 0.0;
    };
    const double score =
        w.drop * excess(slo_metric_value(r, SloMetric::kDropRatePercent),
                        b.drop_rate_percent) +
        w.latency * excess(r.latency_p99_ms, b.latency_p99_ms) +
        w.stutter * excess(double(r.stutters), b.stutters) +
        w.energy * excess(slo_metric_value(r, SloMetric::kEnergyPerFrameMj),
                          b.energy_per_frame_mj) +
        w.violation * double(r.invariant_violations);
    return std::llround(1000.0 * score);
}

const CohortBaseline &
ObservatoryConfig::baseline_for(const std::string &cohort) const
{
    const auto it = baselines.find(cohort);
    return it != baselines.end() ? it->second : baseline;
}

std::string
ObservatoryConfig::canonical() const
{
    char buf[256];
    std::string out = "observatory-config v1\n";
    std::snprintf(buf, sizeof(buf), "top_k=%d\n", top_k);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "weights=%.17g,%.17g,%.17g,%.17g,%.17g\n", weights.drop,
                  weights.latency, weights.stutter, weights.energy,
                  weights.violation);
    out += buf;
    const auto baseline_line = [&](const std::string &key,
                                   const CohortBaseline &b) {
        std::snprintf(buf, sizeof(buf), "baseline[%s]=%.17g,%.17g,%.17g,%.17g\n",
                      key.c_str(), b.drop_rate_percent, b.latency_p99_ms,
                      b.stutters, b.energy_per_frame_mj);
        out += buf;
    };
    baseline_line("", baseline);
    for (const auto &[cohort, b] : baselines)
        baseline_line(cohort, b);
    for (const SloSpec &slo : slos) {
        std::snprintf(buf, sizeof(buf), "slo[%s]=%d,%.17g\n",
                      slo.name.c_str(), int(slo.metric), slo.threshold);
        out += buf;
    }
    return out;
}

Observatory::Observatory(ObservatoryConfig config, CohortFn cohort_of,
                         IndexFn global_index)
    : config_(std::move(config)), cohort_of_(std::move(cohort_of)),
      global_index_(std::move(global_index))
{
    if (config_.slos.empty() || config_.slos.size() > 32)
        fatal("observatory: need 1..32 SLOs, got %zu",
              config_.slos.size());
    if (config_.top_k < 1)
        fatal("observatory: --top-k must be >= 1");
    config_fnv_ = fnv1a(config_.canonical());
}

void
Observatory::consume(std::size_t index, RunReport &&report)
{
    observe(global_index_ ? global_index_(index) : index, report);
    // Delivery is in submission order (the runner's sink contract), so
    // a count of consumed reports is exactly the resume watermark.
    ++resume_pos_;
}

void
Observatory::observe(std::uint64_t session, const RunReport &report)
{
    ++sessions_;
    const std::string cohort =
        cohort_of_ ? cohort_of_(report) : report.label;
    CohortMonitor &c = cohorts_[cohort];
    if (c.violations.empty())
        c.violations.resize(config_.slos.size(), 0);
    ++c.sessions;
    if (!report.error.empty()) {
        // A failed run has every metric zeroed; checking zeros against
        // the SLOs (or scoring them) would mark it perfectly healthy.
        ++errors_;
        ++c.errors;
        return;
    }

    SessionVerdict v;
    v.session = session;
    v.cohort = cohort;
    v.label = report.label;
    for (std::size_t i = 0; i < config_.slos.size(); ++i) {
        const SloSpec &slo = config_.slos[i];
        if (slo_metric_value(report, slo.metric) > slo.threshold) {
            v.violated |= std::uint32_t(1) << i;
            ++c.violations[i];
        }
    }
    v.score_milli = anomaly_score_milli(
        report, config_.baseline_for(cohort), config_.weights);
    v.drops = report.drops;
    v.frames_due = report.frames_due;
    v.presents = report.presents;
    v.stutters = report.stutters;
    v.invariant_violations = report.invariant_violations;
    v.latency_p99_us = std::llround(report.latency_p99_ms * 1e3);
    v.energy_uj = std::llround(report.energy_mj * 1e3);
    v.drop_causes = report.drop_causes;
    rank_insert(std::move(v));
}

void
Observatory::rank_insert(SessionVerdict &&v)
{
    const auto pos = std::lower_bound(
        top_.begin(), top_.end(), v,
        [](const SessionVerdict &a, const SessionVerdict &b) {
            return a.ranks_before(b);
        });
    if (top_.size() >= std::size_t(config_.top_k) && pos == top_.end())
        return;
    top_.insert(pos, std::move(v));
    if (top_.size() > std::size_t(config_.top_k))
        top_.pop_back();
}

void
Observatory::merge(const Observatory &other)
{
    if (config_fnv_ != other.config_fnv_)
        fatal("observatory merge: configuration mismatch (the shards "
              "were monitored under different SLOs/weights)");
    for (const auto &[key, mon] : other.cohorts_) {
        CohortMonitor &c = cohorts_[key];
        if (c.violations.empty())
            c.violations.resize(config_.slos.size(), 0);
        c.sessions += mon.sessions;
        c.errors += mon.errors;
        for (std::size_t i = 0; i < c.violations.size(); ++i)
            c.violations[i] += mon.violations[i];
    }
    // The global top-K is a subset of the union of per-shard top-Ks
    // (any globally retained verdict is in its own shard's top-K), so
    // rank-merge-truncate loses nothing.
    for (const SessionVerdict &v : other.top_)
        rank_insert(SessionVerdict(v));
    sessions_ += other.sessions_;
    errors_ += other.errors_;
    resume_pos_ += other.resume_pos_;
}

std::uint64_t
Observatory::violations(std::size_t slo) const
{
    std::uint64_t total = 0;
    for (const auto &[_, c] : cohorts_)
        total += slo < c.violations.size() ? c.violations[slo] : 0;
    return total;
}

std::string
Observatory::summary() const
{
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "observatory: %llu sessions (%llu errors) across %zu "
                  "cohorts | %zu SLOs | top-%d offenders\n",
                  (unsigned long long)sessions_,
                  (unsigned long long)errors_, cohorts_.size(),
                  config_.slos.size(), config_.top_k);
    out += buf;

    std::uint64_t completed_total = 0;
    for (const auto &[_, c] : cohorts_)
        completed_total += c.sessions - c.errors;

    out += "slo burn-rates (violations / completed sessions):\n";
    for (std::size_t i = 0; i < config_.slos.size(); ++i) {
        const std::uint64_t viol = violations(i);
        const double burn =
            completed_total ? 100.0 * double(viol) / double(completed_total)
                            : 0.0;
        std::snprintf(buf, sizeof(buf), "  %-14s %8llu / %llu  (%.2f%%)\n",
                      config_.slos[i].name.c_str(),
                      (unsigned long long)viol,
                      (unsigned long long)completed_total, burn);
        out += buf;
    }

    std::size_t key_width = std::string("cohort").size();
    for (const auto &[key, _] : cohorts_)
        key_width = std::max(key_width, key.size());
    std::snprintf(buf, sizeof(buf), "%-*s %9s", int(key_width), "cohort",
                  "sessions");
    out += buf;
    for (const SloSpec &slo : config_.slos) {
        std::snprintf(buf, sizeof(buf), " %12s", slo.name.c_str());
        out += buf;
    }
    out += "\n";
    for (const auto &[key, c] : cohorts_) {
        const std::uint64_t completed = c.sessions - c.errors;
        std::snprintf(buf, sizeof(buf), "%-*s %9llu", int(key_width),
                      key.c_str(), (unsigned long long)c.sessions);
        out += buf;
        for (std::size_t i = 0; i < config_.slos.size(); ++i) {
            if (completed == 0) {
                std::snprintf(buf, sizeof(buf), " %12s", "n/a");
            } else {
                std::snprintf(buf, sizeof(buf), " %11.2f%%",
                              100.0 * double(c.violations[i]) /
                                  double(completed));
            }
            out += buf;
        }
        out += "\n";
    }

    if (top_.empty()) {
        out += "top offenders: none\n";
        return out;
    }
    out += "top offenders (score desc, session asc):\n";
    for (std::size_t r = 0; r < top_.size(); ++r) {
        const SessionVerdict &v = top_[r];
        std::string slos;
        for (std::size_t i = 0; i < config_.slos.size(); ++i) {
            if (v.violated & (std::uint32_t(1) << i)) {
                if (!slos.empty())
                    slos += ",";
                slos += config_.slos[i].name;
            }
        }
        if (slos.empty())
            slos = "-";
        std::snprintf(
            buf, sizeof(buf),
            "  #%zu session %llu  score %.3f  cohort %s  slos [%s]  "
            "drops %llu/%lld  stutters %llu  p99 %.2fms  "
            "energy/frame %.1fmJ\n",
            r + 1, (unsigned long long)v.session,
            double(v.score_milli) / 1e3, v.cohort.c_str(), slos.c_str(),
            (unsigned long long)v.drops, (long long)v.frames_due,
            (unsigned long long)v.stutters, double(v.latency_p99_us) / 1e3,
            v.presents ? double(v.energy_uj) / 1e3 / double(v.presents)
                       : 0.0);
        out += buf;
    }
    return out;
}

std::string
Observatory::to_json() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "{\n  \"schema\": %d,\n"
                  "  \"source\": \"dvsync-observatory\",\n"
                  "  \"config_fnv\": \"%016llx\",\n"
                  "  \"sessions\": %llu,\n  \"errors\": %llu,\n"
                  "  \"resume_pos\": %llu,\n  \"slos\": [",
                  kSchema, (unsigned long long)config_fnv_,
                  (unsigned long long)sessions_,
                  (unsigned long long)errors_,
                  (unsigned long long)resume_pos_);
    out += buf;
    for (std::size_t i = 0; i < config_.slos.size(); ++i) {
        out += i ? ", " : "";
        out += "\"" + config_.slos[i].name + "\"";
    }
    out += "],\n  \"cohorts\": [\n";
    std::size_t n = 0;
    for (const auto &[key, c] : cohorts_) {
        std::snprintf(buf, sizeof(buf),
                      "    {\"key\": \"%s\", \"sessions\": %llu, "
                      "\"errors\": %llu, \"violations\": [",
                      key.c_str(), (unsigned long long)c.sessions,
                      (unsigned long long)c.errors);
        out += buf;
        for (std::size_t i = 0; i < c.violations.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%s%llu", i ? "," : "",
                          (unsigned long long)c.violations[i]);
            out += buf;
        }
        out += "]}";
        out += ++n < cohorts_.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"top\": [\n";
    for (std::size_t r = 0; r < top_.size(); ++r) {
        const SessionVerdict &v = top_[r];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"session\": %llu, \"score_milli\": %lld, "
            "\"violated\": %llu, \"cohort\": \"%s\", \"label\": \"%s\", ",
            (unsigned long long)v.session, (long long)v.score_milli,
            (unsigned long long)v.violated, v.cohort.c_str(),
            v.label.c_str());
        out += buf;
        std::snprintf(
            buf, sizeof(buf),
            "\"drops\": %llu, \"frames_due\": %lld, \"presents\": %llu, "
            "\"stutters\": %llu, \"invariant_violations\": %llu, "
            "\"latency_p99_us\": %lld, \"energy_uj\": %lld, "
            "\"drop_causes\": [",
            (unsigned long long)v.drops, (long long)v.frames_due,
            (unsigned long long)v.presents, (unsigned long long)v.stutters,
            (unsigned long long)v.invariant_violations,
            (long long)v.latency_p99_us, (long long)v.energy_uj);
        out += buf;
        for (int c = 0; c < kDropCauseCount; ++c) {
            std::snprintf(buf, sizeof(buf), "%s%llu", c ? "," : "",
                          (unsigned long long)
                              v.drop_causes[std::size_t(c)]);
            out += buf;
        }
        out += "]}";
        out += r + 1 < top_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

bool
Observatory::save(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return false;
    f << to_json();
    return bool(f.flush());
}

bool
Observatory::load(const std::string &path, std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    std::string parse_error;
    const JsonValue root = JsonValue::parse(ss.str(), &parse_error);
    if (!root.is_object()) {
        if (error)
            *error = path + ": " + (parse_error.empty() ? "not an object"
                                                        : parse_error);
        return false;
    }
    if (int(root.number_at("schema", -1)) != kSchema) {
        if (error)
            *error = path + ": unsupported observatory schema " +
                     std::to_string(int(root.number_at("schema", -1)));
        return false;
    }
    char fnv_hex[32];
    std::snprintf(fnv_hex, sizeof(fnv_hex), "%016llx",
                  (unsigned long long)config_fnv_);
    if (root.string_at("config_fnv") != fnv_hex) {
        if (error)
            *error = path + ": checkpoint was written under a different "
                            "observatory configuration";
        return false;
    }

    cohorts_.clear();
    top_.clear();
    sessions_ = std::uint64_t(root.number_at("sessions"));
    errors_ = std::uint64_t(root.number_at("errors"));
    resume_pos_ = std::uint64_t(root.number_at("resume_pos"));
    for (const JsonValue &node : root.at("cohorts").items()) {
        CohortMonitor &c = cohorts_[node.string_at("key")];
        c.sessions = std::uint64_t(node.number_at("sessions"));
        c.errors = std::uint64_t(node.number_at("errors"));
        const auto &viol = node.at("violations").items();
        if (viol.size() != config_.slos.size()) {
            if (error)
                *error = path + ": violations arity mismatch";
            return false;
        }
        c.violations.resize(config_.slos.size(), 0);
        for (std::size_t i = 0; i < viol.size(); ++i)
            c.violations[i] = std::uint64_t(viol[i].as_number());
    }
    for (const JsonValue &node : root.at("top").items()) {
        SessionVerdict v;
        v.session = std::uint64_t(node.number_at("session"));
        v.score_milli = std::int64_t(node.number_at("score_milli"));
        v.violated = std::uint32_t(node.number_at("violated"));
        v.cohort = node.string_at("cohort");
        v.label = node.string_at("label");
        v.drops = std::uint64_t(node.number_at("drops"));
        v.frames_due = std::int64_t(node.number_at("frames_due"));
        v.presents = std::uint64_t(node.number_at("presents"));
        v.stutters = std::uint64_t(node.number_at("stutters"));
        v.invariant_violations =
            std::uint64_t(node.number_at("invariant_violations"));
        v.latency_p99_us = std::int64_t(node.number_at("latency_p99_us"));
        v.energy_uj = std::int64_t(node.number_at("energy_uj"));
        const auto &causes = node.at("drop_causes").items();
        if (int(causes.size()) != kDropCauseCount) {
            if (error)
                *error = path + ": drop_causes arity mismatch";
            return false;
        }
        for (int i = 0; i < kDropCauseCount; ++i)
            v.drop_causes[std::size_t(i)] =
                std::uint64_t(causes[std::size_t(i)].as_number());
        rank_insert(std::move(v));
    }
    return true;
}

bool
capture_specimens(const Observatory &obs,
                  const std::function<Experiment(std::uint64_t)>
                      &materialize,
                  const std::string &dir, std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    ::mkdir(dir.c_str(), 0755); // existing directory is fine

    char buf[512];
    std::string manifest = "{\n  \"schema\": 1,\n"
                           "  \"source\": \"dvsync-observatory\",\n"
                           "  \"specimens\": [\n";
    const std::vector<SessionVerdict> &top = obs.top();
    for (std::size_t r = 0; r < top.size(); ++r) {
        const SessionVerdict &v = top[r];

        // Re-simulate the offender from its index alone — the campaign
        // contract that every session is a pure function of (seed, index).
        const Experiment point = materialize(v.session);
        RenderSystem sys(point.config, point.scenario);
        RunReport report = sys.run();
        report.label = point.label;
        const std::int64_t rescore = anomaly_score_milli(
            report, obs.config().baseline_for(v.cohort),
            obs.config().weights);
        if (report.drops != v.drops || report.frames_due != v.frames_due ||
            report.presents != v.presents ||
            report.stutters != v.stutters || rescore != v.score_milli) {
            std::snprintf(buf, sizeof(buf),
                          "session %llu re-simulation diverged from its "
                          "verdict (score %lld vs %lld, drops %llu vs "
                          "%llu) — not a pure function of its index?",
                          (unsigned long long)v.session,
                          (long long)rescore, (long long)v.score_milli,
                          (unsigned long long)report.drops,
                          (unsigned long long)v.drops);
            return fail(buf);
        }

        std::snprintf(buf, sizeof(buf), "specimen-%02zu-session-%llu.dvst",
                      r + 1, (unsigned long long)v.session);
        const std::string file = buf;
        const std::string path = dir + "/" + file;
        const std::string label =
            "observatory/session-" + std::to_string(v.session) + "/" +
            v.cohort;
        SessionCapture cap;
        std::string verify_error;
        if (!SessionRecorder::capture_verified(sys, label, path,
                                               &verify_error, &cap))
            return fail(verify_error);

        std::snprintf(
            buf, sizeof(buf),
            "    {\"rank\": %zu, \"file\": \"%s\", \"session\": %llu, "
            "\"score_milli\": %lld, \"cohort\": \"%s\", "
            "\"label\": \"%s\", \"slos\": [",
            r + 1, file.c_str(), (unsigned long long)v.session,
            (long long)v.score_milli, v.cohort.c_str(), v.label.c_str());
        manifest += buf;
        bool first = true;
        for (std::size_t i = 0; i < obs.config().slos.size(); ++i) {
            if (v.violated & (std::uint32_t(1) << i)) {
                manifest += first ? "\"" : ", \"";
                manifest += obs.config().slos[i].name + "\"";
                first = false;
            }
        }
        std::snprintf(
            buf, sizeof(buf),
            "], \"drops\": %llu, \"frames_due\": %lld, "
            "\"presents\": %llu, \"stutters\": %llu, "
            "\"invariant_violations\": %llu, \"latency_p99_ms\": %.3f, "
            "\"energy_mj\": %.3f, \"drop_causes\": {",
            (unsigned long long)v.drops, (long long)v.frames_due,
            (unsigned long long)v.presents, (unsigned long long)v.stutters,
            (unsigned long long)v.invariant_violations,
            double(v.latency_p99_us) / 1e3, double(v.energy_uj) / 1e3);
        manifest += buf;
        first = true;
        for (int c = 0; c < kDropCauseCount; ++c) {
            if (v.drop_causes[std::size_t(c)] == 0)
                continue;
            std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                          first ? "" : ", ", to_string(DropCause(c)),
                          (unsigned long long)
                              v.drop_causes[std::size_t(c)]);
            manifest += buf;
            first = false;
        }
        std::snprintf(buf, sizeof(buf),
                      "}, \"dispatch_hash\": \"%016llx\"}%s\n",
                      (unsigned long long)cap.source_dispatch_hash,
                      r + 1 < top.size() ? "," : "");
        manifest += buf;
    }
    manifest += "  ]\n}\n";

    const std::string manifest_path = dir + "/manifest.json";
    std::ofstream f(manifest_path, std::ios::trunc);
    if (!f)
        return fail("cannot write " + manifest_path);
    f << manifest;
    if (!f.flush())
        return fail("cannot write " + manifest_path);
    return true;
}

} // namespace dvs
