/**
 * @file
 * MetricsRegistry: typed counters/gauges/histograms, sampled on a cadence.
 *
 * Components register a metric once (a name plus a sampler closure);
 * the registry polls every sampler at a configurable interval on the
 * simulated clock and keeps the time series, exported as JSON alongside
 * the trace. Counters must be non-decreasing (monotonic totals like
 * busy nanoseconds or presents); gauges are instantaneous levels
 * (queue depth, degraded flag); histograms accumulate value
 * distributions pushed by the owning component.
 *
 * Sampling schedules simulator events, so it is only installed when
 * forensics is enabled — an idle registry costs nothing on the hot path.
 */

#ifndef DVS_OBS_METRICS_REGISTRY_H
#define DVS_OBS_METRICS_REGISTRY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "sim/time.h"

namespace dvs {

class Simulator;

/** Metric flavor; serialized into the JSON export. */
enum class MetricKind { kCounter, kGauge, kHistogram };

const char *to_string(MetricKind k);

/** One (time, value) sample of a counter or gauge. */
struct MetricSample {
    Time at = 0;
    double value = 0.0;
};

class MetricsRegistry
{
  public:
    using Sampler = std::function<double()>;

    /** Register a monotonic counter. Duplicate names are fatal(). */
    void register_counter(const std::string &name, Sampler fn);

    /** Register an instantaneous gauge. Duplicate names are fatal(). */
    void register_gauge(const std::string &name, Sampler fn);

    /**
     * Register a histogram over [lo, hi) with @p bins equal bins; the
     * returned reference stays valid for the registry's lifetime and
     * the owning component pushes samples into it directly.
     */
    Histogram &register_histogram(const std::string &name, double lo,
                                  double hi, int bins);

    /** Poll every counter/gauge sampler once at time @p now. */
    void sample(Time now);

    /**
     * Sample every @p interval on @p sim's clock (first pass at
     * @p interval). Runs at kMetrics priority so a sample sees the
     * tick's settled state. @p interval must be > 0.
     */
    void install(Simulator &sim, Time interval);

    std::size_t size() const { return metrics_.size(); }
    std::uint64_t samples_taken() const { return samples_taken_; }

    /** Series of metric @p name; null when unknown or a histogram. */
    const std::vector<MetricSample> *series(const std::string &name) const;

    /**
     * Poll metric @p name's sampler once, without recording a sample —
     * the governor's sensor-bus read. Returns false (leaving @p out
     * untouched) for unknown names and histograms.
     */
    bool read(const std::string &name, double *out) const;

    /** JSON export: {"interval_ns":..., "metrics":[...]}. */
    std::string to_json() const;

  private:
    struct Metric {
        std::string name;
        MetricKind kind = MetricKind::kGauge;
        Sampler fn;
        std::vector<MetricSample> samples;
        std::unique_ptr<Histogram> histogram;
        double last = 0.0; ///< monotonicity check for counters
    };

    Metric &add(const std::string &name, MetricKind kind);
    void tick();

    std::vector<Metric> metrics_;
    std::uint64_t samples_taken_ = 0;
    bool installed_ = false;
    Simulator *sim_ = nullptr;   ///< set by install()
    Time interval_ = 0;          ///< set by install()
};

} // namespace dvs

#endif // DVS_OBS_METRICS_REGISTRY_H
