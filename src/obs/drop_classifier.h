/**
 * @file
 * Root-cause attribution for frame drops.
 *
 * The DropClassifier listens on the present fence *after* FrameStats and
 * attributes every refresh FrameStats flagged as a drop to exactly one
 * DropCause, by inspecting the live pipeline at the dropped edge: the
 * oldest unqueued frame's stage timestamps, the buffer queue, the
 * D-VSync runtime/DTV state, and the active FaultPlan (so chaos runs
 * can tell injected drops from emergent ones). Because it only reacts
 * to drops FrameStats already decided on, its per-cause counts sum to
 * FrameStats::frame_drops() by construction — RenderSystem still
 * panics if they ever disagree.
 *
 * The classifier schedules no events and never touches the RNG stream,
 * so enabling it cannot perturb simulation results.
 */

#ifndef DVS_OBS_DROP_CLASSIFIER_H
#define DVS_OBS_DROP_CLASSIFIER_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/drop_cause.h"
#include "sim/time.h"

namespace dvs {

class BufferQueue;
class DisplayTimeVirtualizer;
class DvsyncRuntime;
class ExecResource;
class FaultPlan;
class FrameStats;
class Panel;
class Producer;
class ThermalPlant;
struct PresentEvent;

/** One attributed drop. */
struct DropRecord {
    Time at = kTimeNone;             ///< the dropped refresh edge
    std::uint64_t refresh_index = 0; ///< index into FrameStats::refreshes()
    DropCause cause = DropCause::kUnknown;
    /** A fault window overlapped the mechanism (chaos attribution). */
    bool injected = false;
    /** Oldest in-flight frame at the drop; UINT64_MAX when none. */
    std::uint64_t frame_hint = UINT64_MAX;
};

/**
 * Attributes frame drops to causes as they happen.
 *
 * Construct AFTER the surface's FrameStats (listener order on the
 * present fence is registration order; the classifier reads the
 * RefreshLog FrameStats just appended).
 */
class DropClassifier
{
  public:
    /** The components the classifier inspects; optional ones may be null. */
    struct Context {
        Producer *producer = nullptr;       ///< required
        BufferQueue *queue = nullptr;       ///< required
        FrameStats *stats = nullptr;        ///< required, attached first
        DvsyncRuntime *runtime = nullptr;   ///< null under VSync
        DisplayTimeVirtualizer *dtv = nullptr;
        const FaultPlan *plan = nullptr;    ///< null outside chaos runs
        /** GPU the producer submits to (shared on multi-surface). */
        ExecResource *gpu = nullptr;
        bool shared_gpu = false;
        /** Thermal/DVFS plant on the GPU; null when the plant is off. */
        const ThermalPlant *plant = nullptr;
        /**
         * Is a governor rung engaged right now? A closure rather than a
         * Governor pointer so obs does not depend on the governor
         * library; null when no governor runs.
         */
        std::function<bool()> governor_capped;
    };

    DropClassifier(Context ctx, Panel &panel);

    const std::vector<DropRecord> &drops() const { return drops_; }
    const std::array<std::uint64_t, kDropCauseCount> &counts() const
    {
        return counts_;
    }
    std::uint64_t total() const { return drops_.size(); }
    std::uint64_t injected_drops() const { return injected_; }
    std::uint64_t unknown_drops() const
    {
        return counts_[int(DropCause::kUnknown)];
    }

  private:
    void on_present(const PresentEvent &ev);
    DropCause classify(Time t, bool &injected, std::uint64_t &hint);
    bool fault_since(int kind, Time t) const;
    bool plant_hot() const;

    Context ctx_;
    Time prev_present_ = kTimeNone;   ///< previous refresh edge seen
    std::size_t oldest_unqueued_ = 0; ///< cursor into producer records
    std::uint64_t resyncs_seen_ = 0;
    std::uint64_t degradations_seen_ = 0;
    std::uint64_t thermal_trips_seen_ = 0;
    Time ui_busy_seen_ = 0;
    Time render_busy_seen_ = 0;
    Time gpu_busy_seen_ = 0;
    std::array<std::uint64_t, kDropCauseCount> counts_{};
    std::vector<DropRecord> drops_;
    std::uint64_t injected_ = 0;
};

} // namespace dvs

#endif // DVS_OBS_DROP_CLASSIFIER_H
