/**
 * @file
 * Drop root-cause taxonomy.
 *
 * Every refresh at which due content was missing (a frame drop, §3.2)
 * gets attributed to exactly one mechanistic cause by the
 * DropClassifier. The enum is deliberately header-only so RunReport can
 * carry per-cause counters without a link-time dependency on the
 * observability library.
 */

#ifndef DVS_OBS_DROP_CAUSE_H
#define DVS_OBS_DROP_CAUSE_H

namespace dvs {

/**
 * Why a frame drop happened. Ordered roughly by pipeline stage; keep
 * kUnknown first (the "classifier gave up" bucket, which campaigns
 * assert stays empty) and kDropCauseCount in sync.
 */
enum class DropCause : int {
    kUnknown = 0,     ///< no mechanism identified (should not happen)
    kSlowUi,          ///< UI stage of the owed frame still running/waiting
    kSlowRender,      ///< render/GPU-execute stage still running
    kGpuContention,   ///< owed frame waiting behind other GPU work
    kQueueStuffed,    ///< producer stalled on a full buffer queue
    kLatchMiss,       ///< buffer was queued but the compositor refused it
    kDtvDesync,       ///< DTV promise-chain reset / slot elasticity skip
    kDegraded,        ///< watchdog fell back to VSync pacing
    kInjectedFault,   ///< consumer-side fault with no pipeline mechanism
    kThermalThrottle, ///< GPU slowed by the DVFS plant's thermal trip
    kGovernorCapped,  ///< governor rung capped throughput (trim/LTPO/DVFS)
};

constexpr int kDropCauseCount = 11;

/**
 * Causes that existed before the thermal/governor work. Reports print
 * these unconditionally but newer causes only when nonzero, so runs
 * that can't produce them (no plant, no governor) stay byte-identical
 * to their pinned goldens.
 */
constexpr int kDropCauseLegacyCount = 9;

/** Stable short name ("slow-ui", "latch-miss", ...) for reports. */
constexpr const char *
to_string(DropCause c)
{
    switch (c) {
      case DropCause::kUnknown:
        return "unknown";
      case DropCause::kSlowUi:
        return "slow-ui";
      case DropCause::kSlowRender:
        return "slow-render";
      case DropCause::kGpuContention:
        return "gpu-contention";
      case DropCause::kQueueStuffed:
        return "queue-stuffed";
      case DropCause::kLatchMiss:
        return "latch-miss";
      case DropCause::kDtvDesync:
        return "dtv-desync";
      case DropCause::kDegraded:
        return "degraded";
      case DropCause::kInjectedFault:
        return "injected-fault";
      case DropCause::kThermalThrottle:
        return "thermal-throttle";
      case DropCause::kGovernorCapped:
        return "governor-capped";
    }
    return "?";
}

} // namespace dvs

#endif // DVS_OBS_DROP_CAUSE_H
