/**
 * @file
 * Observatory: streaming SLO monitors, anomaly scoring, and tail-based
 * auto-capture for fleet campaigns.
 *
 * A megafleet sweep reduces a million sessions to per-cohort means and
 * percentile surfaces (CampaignAggregator) — which answers "how is the
 * fleet doing?" but not "*which* sessions were pathological, and can I
 * hold one in my hand?". The Observatory is the second sink on the same
 * report stream, and closes that gap in three layers:
 *
 *  1. **SLO monitors.** A declarative list of thresholds over RunReport
 *     fields (drop rate, p99 latency, stutters, invariant violations,
 *     energy per presented frame). Each session is checked against every
 *     SLO and per-(cohort, SLO) violation counters accumulate; a burn
 *     rate is just violations/sessions, derived at read time.
 *
 *  2. **Anomaly scoring + bounded top-K.** Every completed session gets
 *     a pure score of (RunReport, cohort baseline): the weighted sum of
 *     its relative excess over the baseline expectations, plus a large
 *     fixed penalty per invariant violation. Scores are kept in
 *     fixed-point millis and ranked with a total order — (score desc,
 *     session index asc) — in a bounded sorted list of at most K
 *     verdicts, so the retained state is O(K), not O(sessions).
 *
 *  3. **Tail auto-capture.** Because a fleet session is a pure function
 *     of (campaign seed, index) via DevicePopulation, the final top-K
 *     offenders can be re-simulated after the campaign and snapshotted
 *     through SessionRecorder into an `observatory/` specimen directory
 *     (one verified-bit-exact .dvst per offender plus a manifest), ready
 *     for `trace_campaign` replay and bisection.
 *
 * Determinism contract (the same bar as CampaignAggregator, DESIGN.md
 * §5j): all monitor state is integral, merging is associative and
 * commutative over disjoint session sets, and the bounded top-K is
 * merge-stable because the global top-K is always a subset of the union
 * of per-shard top-Ks. Running a campaign at any --jobs, sharded
 * --shard K/N + --merge, resumed from a checkpoint, or at any
 * --sim-workers therefore yields byte-identical summary() and to_json()
 * output. CI enforces this by byte-comparing a merged 2-way-sharded
 * smoke against the unsharded run.
 *
 * (Like DevicePopulation, the sources live where they belong
 * conceptually — src/obs/ — but compile into the harness library: the
 * observatory consumes RunReports and re-simulates sessions, which sit
 * above dvs_obs in the layer stack.)
 */

#ifndef DVS_OBS_OBSERVATORY_H
#define DVS_OBS_OBSERVATORY_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment_runner.h"
#include "harness/report_sink.h"
#include "metrics/run_report.h"
#include "obs/drop_cause.h"

namespace dvs {

/** RunReport field an SLO thresholds on. */
enum class SloMetric : int {
    kDropRatePercent = 0, ///< 100 * drops / frames_due
    kLatencyP99Ms,        ///< rendering latency p99 (ms)
    kStutters,            ///< perceived stutter events
    kInvariantViolations, ///< InvariantMonitor total
    kEnergyPerFrameMj,    ///< energy_mj / presents
};

/** Stable short name ("drop-rate", "p99-latency", ...) for reports. */
const char *to_string(SloMetric m);

/** The metric value of one finished session (0 on empty denominators). */
double slo_metric_value(const RunReport &report, SloMetric metric);

/** One service-level objective: violated when value > threshold. */
struct SloSpec {
    std::string name; ///< stable tag used in summaries and checkpoints
    SloMetric metric = SloMetric::kDropRatePercent;
    double threshold = 0.0;
};

/**
 * The default fleet SLOs, calibrated so a healthy paper-fleet cohort
 * burns a few percent (tail sessions, not the steady state): drop rate
 * over 10% of due, p99 latency over 100 ms, more than 3 stutters, any
 * invariant violation, over 60 mJ per presented frame.
 */
std::vector<SloSpec> default_slos();

/** Expected per-cohort session shape the anomaly score measures against. */
struct CohortBaseline {
    double drop_rate_percent = 2.0;
    double latency_p99_ms = 30.0;
    double stutters = 1.0;
    double energy_per_frame_mj = 45.0;
};

/** Weights of the anomaly-score terms. */
struct ScoreWeights {
    double drop = 1.0;
    double latency = 1.0;
    double stutter = 1.0;
    double energy = 0.5;
    /** Flat penalty per invariant violation (dominates every rate term). */
    double violation = 1000.0;
};

/**
 * Pure anomaly score of one session in fixed-point millis: the weighted
 * sum of each metric's relative excess over the baseline, plus the
 * violation penalty. >= 0; identical inputs give identical scores on
 * every shard, which is what makes the top-K mergeable.
 */
std::int64_t anomaly_score_milli(const RunReport &report,
                                 const CohortBaseline &baseline,
                                 const ScoreWeights &weights);

/**
 * The retained record of one scored session — everything the manifest
 * and the summary need, in integral fields only (fixed-point micros for
 * the latency/energy figures) so shard composition stays byte-exact.
 */
struct SessionVerdict {
    std::uint64_t session = 0;    ///< global campaign session index
    std::int64_t score_milli = 0; ///< anomaly_score_milli()
    std::uint32_t violated = 0;   ///< bitmask over the config's SLOs
    std::string cohort;
    std::string label;
    std::uint64_t drops = 0;
    std::int64_t frames_due = 0;
    std::uint64_t presents = 0;
    std::uint64_t stutters = 0;
    std::uint64_t invariant_violations = 0;
    std::int64_t latency_p99_us = 0; ///< llround(latency_p99_ms * 1e3)
    std::int64_t energy_uj = 0;      ///< llround(energy_mj * 1e3)
    std::array<std::uint64_t, kDropCauseCount> drop_causes{};

    /** Ranking order: score desc, then session asc (total, stable). */
    bool ranks_before(const SessionVerdict &other) const
    {
        if (score_milli != other.score_milli)
            return score_milli > other.score_milli;
        return session < other.session;
    }

    friend bool operator==(const SessionVerdict &,
                           const SessionVerdict &) = default;
};

/**
 * Observatory configuration. Checkpoints embed a fingerprint of this
 * (SLO list, weights, baselines, K); load() and merge() refuse state
 * produced under a different configuration — mixed-config merges would
 * silently compare incomparable scores.
 */
struct ObservatoryConfig {
    std::vector<SloSpec> slos = default_slos(); ///< at most 32 (bitmask)
    int top_k = 8;                              ///< >= 1
    ScoreWeights weights;
    CohortBaseline baseline; ///< default for cohorts without an override
    std::map<std::string, CohortBaseline> baselines; ///< per-cohort

    const CohortBaseline &baseline_for(const std::string &cohort) const;

    /** Canonical textual form (the fingerprint input). */
    std::string canonical() const;
};

/**
 * A ReportSink that monitors SLOs, scores every session, and retains
 * the bounded top-K — the streaming observability side of a campaign.
 * See the file comment for the merge/shard determinism contract.
 */
class Observatory final : public ReportSink
{
  public:
    /** Checkpoint schema version written by to_json()/save(). */
    static constexpr int kSchema = 1;

    using CohortFn = std::function<std::string(const RunReport &)>;

    /**
     * Maps a sink delivery index to the global campaign session index —
     * a sharded/resumed run passes `shard.global(done + i)` so verdicts
     * carry re-materializable indices. Null means identity.
     */
    using IndexFn = std::function<std::uint64_t(std::size_t)>;

    explicit Observatory(ObservatoryConfig config = {},
                         CohortFn cohort_of = nullptr,
                         IndexFn global_index = nullptr);

    /** Sink entry: observe and advance the resume watermark. */
    void consume(std::size_t index, RunReport &&report) override;

    /** Score/monitor one session without touching the watermark. */
    void observe(std::uint64_t session, const RunReport &report);

    /**
     * Fold @p other in: counters sum, top-Ks merge-rank-truncate.
     * Fatals on a configuration fingerprint mismatch. Merging N shard
     * checkpoints (any order, any grouping) yields the exact state of
     * the unsharded campaign.
     */
    void merge(const Observatory &other);

    // ----- queries ------------------------------------------------------

    const ObservatoryConfig &config() const { return config_; }
    std::uint64_t sessions() const { return sessions_; }
    std::uint64_t errors() const { return errors_; }

    /** Total violations of SLO @p slo across cohorts. */
    std::uint64_t violations(std::size_t slo) const;

    /** In-order delivery watermark (see CampaignAggregator). */
    std::uint64_t resume_pos() const { return resume_pos_; }

    /** Final ranked top-K verdicts (best first). */
    const std::vector<SessionVerdict> &top() const { return top_; }

    /** Per-(cohort, SLO) integer monitor state, in cohort key order. */
    struct CohortMonitor {
        std::uint64_t sessions = 0;
        std::uint64_t errors = 0;
        std::vector<std::uint64_t> violations; ///< one per config SLO
    };
    const std::map<std::string, CohortMonitor> &cohorts() const
    {
        return cohorts_;
    }

    // ----- serialization ------------------------------------------------

    /**
     * Deterministic human-readable roll-up: SLO burn-rate totals, the
     * per-cohort burn-rate table, and the ranked top offenders. Shard
     * composition is byte-stable: merged shards print exactly the
     * unsharded text.
     */
    std::string summary() const;

    /** Versioned JSON checkpoint of the full integer state. */
    std::string to_json() const;

    /** Write to_json() to @p path. @return false on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * Replace this observatory's state with the checkpoint at @p path.
     * @return false (with *error set when non-null) on unreadable files,
     * malformed JSON, a schema mismatch, or a checkpoint written under a
     * different ObservatoryConfig.
     */
    bool load(const std::string &path, std::string *error = nullptr);

  private:
    void rank_insert(SessionVerdict &&v);

    ObservatoryConfig config_;
    std::uint64_t config_fnv_ = 0;
    CohortFn cohort_of_;
    IndexFn global_index_;
    std::map<std::string, CohortMonitor> cohorts_;
    std::vector<SessionVerdict> top_; ///< ranked, size <= top_k
    std::uint64_t sessions_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t resume_pos_ = 0;
};

/**
 * Tail auto-capture: re-simulate every top-K offender of @p obs (each a
 * pure function of its index via @p materialize), cross-check the rerun
 * against the verdict, capture it through SessionRecorder, verify the
 * saved .dvst replays bit-exactly, and write
 * `@p dir/specimen-<rank>-session-<index>.dvst` plus
 * `@p dir/manifest.json` (score, violated SLOs, per-cause drop counts,
 * dispatch hash per specimen). The directory is created if absent.
 *
 * Only meaningful on the *final merged* state: a shard's local top-K is
 * not the campaign's. @return false with *error set on a re-simulation
 * divergence, a replay mismatch, or I/O failure.
 */
bool capture_specimens(const Observatory &obs,
                       const std::function<Experiment(std::uint64_t)>
                           &materialize,
                       const std::string &dir, std::string *error = nullptr);

} // namespace dvs

#endif // DVS_OBS_OBSERVATORY_H
