#include "obs/metrics_registry.h"

#include <cstdio>

#include "sim/logging.h"
#include "sim/simulator.h"

namespace dvs {

const char *
to_string(MetricKind k)
{
    switch (k) {
      case MetricKind::kCounter:
        return "counter";
      case MetricKind::kGauge:
        return "gauge";
      case MetricKind::kHistogram:
        return "histogram";
    }
    return "?";
}

MetricsRegistry::Metric &
MetricsRegistry::add(const std::string &name, MetricKind kind)
{
    for (const Metric &m : metrics_) {
        if (m.name == name)
            fatal("metric '%s' registered twice", name.c_str());
    }
    Metric m;
    m.name = name;
    m.kind = kind;
    metrics_.push_back(std::move(m));
    return metrics_.back();
}

void
MetricsRegistry::register_counter(const std::string &name, Sampler fn)
{
    add(name, MetricKind::kCounter).fn = std::move(fn);
}

void
MetricsRegistry::register_gauge(const std::string &name, Sampler fn)
{
    add(name, MetricKind::kGauge).fn = std::move(fn);
}

Histogram &
MetricsRegistry::register_histogram(const std::string &name, double lo,
                                    double hi, int bins)
{
    Metric &m = add(name, MetricKind::kHistogram);
    m.histogram = std::make_unique<Histogram>(lo, hi, bins);
    return *m.histogram;
}

void
MetricsRegistry::sample(Time now)
{
    for (Metric &m : metrics_) {
        if (!m.fn)
            continue;
        const double v = m.fn();
        if (m.kind == MetricKind::kCounter && v < m.last) {
            panic("counter '%s' went backwards (%g -> %g)",
                  m.name.c_str(), m.last, v);
        }
        m.last = v;
        m.samples.push_back(MetricSample{now, v});
    }
    ++samples_taken_;
}

void
MetricsRegistry::tick()
{
    sample(sim_->now());
    // Capture only `this`: the closure fits std::function's small-buffer
    // storage, so the repeating tick never heap-allocates.
    sim_->events().schedule(sim_->now() + interval_, [this] { tick(); },
                            EventPriority::kMetrics);
}

void
MetricsRegistry::install(Simulator &sim, Time interval)
{
    if (interval <= 0)
        fatal("metrics sampling interval must be > 0");
    if (installed_)
        fatal("MetricsRegistry installed twice");
    installed_ = true;
    sim_ = &sim;
    interval_ = interval;
    sim.events().schedule(sim.now() + interval, [this] { tick(); },
                          EventPriority::kMetrics);
}

bool
MetricsRegistry::read(const std::string &name, double *out) const
{
    for (const Metric &m : metrics_) {
        if (m.name != name)
            continue;
        if (m.kind == MetricKind::kHistogram || !m.fn)
            return false;
        *out = m.fn();
        return true;
    }
    return false;
}

const std::vector<MetricSample> *
MetricsRegistry::series(const std::string &name) const
{
    for (const Metric &m : metrics_) {
        if (m.name == name)
            return m.kind == MetricKind::kHistogram ? nullptr
                                                    : &m.samples;
    }
    return nullptr;
}

std::string
MetricsRegistry::to_json() const
{
    std::string out = "{\"metrics\":[";
    char buf[128];
    bool first_metric = true;
    for (const Metric &m : metrics_) {
        if (!first_metric)
            out += ',';
        first_metric = false;
        out += "\n{\"name\":\"" + m.name + "\",\"type\":\"";
        out += to_string(m.kind);
        out += "\",";
        if (m.kind == MetricKind::kHistogram) {
            const Histogram &h = *m.histogram;
            std::snprintf(buf, sizeof(buf),
                          "\"lo\":%.17g,\"hi\":%.17g,\"underflow\":%llu,"
                          "\"overflow\":%llu,\"bins\":[",
                          h.lo(), h.hi(),
                          (unsigned long long)h.underflow(),
                          (unsigned long long)h.overflow());
            out += buf;
            for (int i = 0; i < h.bins(); ++i) {
                if (i)
                    out += ',';
                std::snprintf(buf, sizeof(buf), "%llu",
                              (unsigned long long)h.bin_count(i));
                out += buf;
            }
            out += "]}";
            continue;
        }
        out += "\"samples\":[";
        for (std::size_t i = 0; i < m.samples.size(); ++i) {
            if (i)
                out += ',';
            std::snprintf(buf, sizeof(buf), "[%lld,%.17g]",
                          (long long)m.samples[i].at,
                          m.samples[i].value);
            out += buf;
        }
        out += "]}";
    }
    out += "\n]}\n";
    return out;
}

} // namespace dvs
