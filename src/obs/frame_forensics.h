/**
 * @file
 * FrameForensics: per-frame causal span chains.
 *
 * Every frame already carries a stable id (FrameRecord::frame_id,
 * assigned at UI-thread wakeup) and the producer timestamps each
 * lifecycle stage as it happens. FrameForensics turns those records
 * into explicit causal chains — input sample / IPL prediction → UI
 * thread → render thread (wait vs. execute) → GPU (wait vs. execute) →
 * BufferQueue dwell → present or drop — links them across tracks in the
 * Chrome/Perfetto export via flow events, and writes a self-contained
 * JSON dump (chains + attributed drops + metric time series) that
 * bench/dvsync_inspect reads back.
 *
 * Building chains is a pure post-run derivation: nothing here runs
 * during the simulation, so the hot path pays zero cost for it.
 */

#ifndef DVS_OBS_FRAME_FORENSICS_H
#define DVS_OBS_FRAME_FORENSICS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/drop_classifier.h"
#include "sim/time.h"

namespace dvs {

class FrameStats;
class MetricsRegistry;
class Producer;
class TraceLog;

/** One stage of a frame's causal chain. */
struct FrameSpan {
    const char *stage = ""; ///< "ui.run", "gpu.wait", "queue.dwell", ...
    Time t0 = kTimeNone;
    Time t1 = kTimeNone; ///< kTimeNone = open at run end
};

/** The full causal chain of one frame. */
struct FrameChain {
    std::uint64_t flow_id = 0;  ///< unique across surfaces
    std::uint64_t frame_id = 0; ///< producer-local stable id
    int segment = -1;
    std::int64_t slot = -1;
    bool pre_rendered = false;
    Time trigger = kTimeNone;
    Time timeline = kTimeNone;
    Time present = kTimeNone; ///< kTimeNone when never displayed
    std::vector<FrameSpan> spans;

    /** Present latency vs. the nominal timeline; kTimeNone when unshown. */
    Time latency() const
    {
        return present == kTimeNone || timeline == kTimeNone
                   ? kTimeNone
                   : present - timeline;
    }
};

/** One surface's forensic record. */
struct SurfaceForensics {
    std::string name; ///< empty for the single-surface system
    std::vector<FrameChain> chains;
    std::vector<DropRecord> drops;
    std::array<std::uint64_t, kDropCauseCount> cause_counts{};
    std::uint64_t injected_drops = 0;
};

class FrameForensics
{
  public:
    /**
     * Derive the chains of one finished surface. @p name prefixes the
     * flow tracks ("name/ui thread") exactly like the trace export;
     * empty for single-surface runs. @p classifier may be null.
     */
    void add_surface(const std::string &name, const Producer &producer,
                     const FrameStats &stats,
                     const DropClassifier *classifier);

    const std::vector<SurfaceForensics> &surfaces() const
    {
        return surfaces_;
    }

    /** Flow events linking each chain's stages across @p log's tracks. */
    void export_flows(TraceLog &log) const;

    /**
     * Self-contained JSON dump. @p scenario / @p mode label the run;
     * @p metrics (may be null) embeds the sampled time series.
     */
    std::string dump_json(const std::string &scenario,
                          const std::string &mode,
                          const MetricsRegistry *metrics) const;

    /** Write dump_json to @p path; warn()s with the OS error on failure. */
    bool save(const std::string &path, const std::string &scenario,
              const std::string &mode,
              const MetricsRegistry *metrics) const;

  private:
    std::vector<SurfaceForensics> surfaces_;
};

} // namespace dvs

#endif // DVS_OBS_FRAME_FORENSICS_H
