#include "obs/frame_forensics.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "metrics/frame_stats.h"
#include "obs/metrics_registry.h"
#include "pipeline/producer.h"
#include "sim/logging.h"
#include "sim/tracing.h"

namespace dvs {
namespace {

/** Flow ids must stay unique across surfaces of one export. */
constexpr std::uint64_t kFlowSurfaceStride = std::uint64_t(1) << 32;

void
span(FrameChain &chain, const char *stage, Time t0, Time t1)
{
    if (t0 == kTimeNone)
        return;
    if (t1 != kTimeNone && t1 < t0)
        return;
    chain.spans.push_back(FrameSpan{stage, t0, t1});
}

FrameChain
build_chain(const FrameRecord &rec, std::uint64_t flow_base)
{
    FrameChain c;
    c.flow_id = flow_base + rec.frame_id;
    c.frame_id = rec.frame_id;
    c.segment = rec.segment_index;
    c.slot = rec.slot;
    c.pre_rendered = rec.pre_rendered;
    c.trigger = rec.trigger_time;
    c.timeline = rec.timeline_timestamp;
    c.present = rec.present_time;

    // Input stage: interactive frames render a sampled (vsync path) or
    // IPL-predicted (pre-render path) input state at wakeup.
    if (rec.has_content_value) {
        span(c, rec.pre_rendered ? "input.predict" : "input.sample",
             rec.trigger_time, rec.trigger_time);
    }
    if (rec.ui_start != kTimeNone && rec.ui_start > rec.trigger_time)
        span(c, "ui.wait", rec.trigger_time, rec.ui_start);
    span(c, "ui.run", rec.ui_start, rec.ui_end);

    // Between UI completion and render start: the VSync-rs alignment
    // wait (conventional pipeline), then possibly a wait for the render
    // thread or a free buffer slot.
    if (rec.render_ready != kTimeNone &&
        rec.render_ready > rec.ui_end)
        span(c, "rs.wait", rec.ui_end, rec.render_ready);
    if (rec.buffer_stall_start != kTimeNone) {
        if (rec.buffer_stall_start > rec.render_ready)
            span(c, "render.wait", rec.render_ready,
                 rec.buffer_stall_start);
        span(c, "buffer.stall", rec.buffer_stall_start,
             rec.render_start);
    } else if (rec.render_ready != kTimeNone &&
               rec.render_start != kTimeNone &&
               rec.render_start > rec.render_ready) {
        span(c, "render.wait", rec.render_ready, rec.render_start);
    }
    span(c, "render.run", rec.render_start, rec.render_end);

    // GPU: the ExecResource wait (submitted, parked behind other jobs)
    // vs. execute split.
    if (rec.gpu_start != kTimeNone && rec.gpu_start > rec.render_end)
        span(c, "gpu.wait", rec.render_end, rec.gpu_start);
    span(c, "gpu.run", rec.gpu_start, rec.gpu_end);

    // FIFO dwell: enqueue until the panel latched it (open when the run
    // ended with the buffer still queued).
    span(c, "queue.dwell", rec.queue_time, rec.present_time);
    if (rec.present_time != kTimeNone)
        span(c, "display.present", rec.present_time, rec.present_time);
    return c;
}

} // namespace

void
FrameForensics::add_surface(const std::string &name,
                            const Producer &producer,
                            const FrameStats &stats,
                            const DropClassifier *classifier)
{
    (void)stats; // present times already live in the frame records
    SurfaceForensics sf;
    sf.name = name;
    const std::uint64_t flow_base =
        kFlowSurfaceStride * (std::uint64_t(surfaces_.size()) + 1);
    sf.chains.reserve(producer.records().size());
    for (const FrameRecord &rec : producer.records())
        sf.chains.push_back(build_chain(rec, flow_base));
    if (classifier) {
        sf.drops = classifier->drops();
        sf.cause_counts = classifier->counts();
        sf.injected_drops = classifier->injected_drops();
    }
    surfaces_.push_back(std::move(sf));
}

void
FrameForensics::export_flows(TraceLog &log) const
{
    char name[64];
    for (const SurfaceForensics &sf : surfaces_) {
        const std::string prefix =
            sf.name.empty() ? std::string() : sf.name + "/";
        for (const FrameChain &c : sf.chains) {
            std::snprintf(name, sizeof(name), "frame %lld.%lld",
                          (long long)c.segment, (long long)c.slot);
            // One flow point per track the frame touched, in lifecycle
            // order; matches the duration slices export_trace() draws.
            std::vector<std::pair<const char *, Time>> points;
            for (const FrameSpan &s : c.spans) {
                if (std::strcmp(s.stage, "ui.run") == 0)
                    points.emplace_back("ui thread", s.t0);
                else if (std::strcmp(s.stage, "render.run") == 0)
                    points.emplace_back("render thread", s.t0);
                else if (std::strcmp(s.stage, "gpu.run") == 0)
                    points.emplace_back("gpu", s.t0);
                else if (std::strcmp(s.stage, "queue.dwell") == 0)
                    points.emplace_back("buffer queue", s.t0);
                else if (std::strcmp(s.stage, "display.present") == 0)
                    points.emplace_back("display", s.t0);
            }
            if (points.empty())
                continue;
            log.flow_begin(prefix + points.front().first, name,
                           points.front().second, c.flow_id);
            for (std::size_t i = 1; i + 1 < points.size(); ++i)
                log.flow_step(prefix + points[i].first, name,
                              points[i].second, c.flow_id);
            log.flow_end(prefix + points.back().first, name,
                         points.back().second, c.flow_id);
        }
    }
}

std::string
FrameForensics::dump_json(const std::string &scenario,
                          const std::string &mode,
                          const MetricsRegistry *metrics) const
{
    std::string out;
    char buf[256];
    out += "{\"schema\":1,\"source\":\"dvsync-forensics\",";
    out += "\"scenario\":\"" + scenario + "\",";
    out += "\"mode\":\"" + mode + "\",";
    out += "\"surfaces\":[";
    for (std::size_t si = 0; si < surfaces_.size(); ++si) {
        const SurfaceForensics &sf = surfaces_[si];
        if (si)
            out += ',';
        out += "\n{\"name\":\"" + sf.name + "\",\"causes\":{";
        for (int ci = 0; ci < kDropCauseCount; ++ci) {
            std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu",
                          ci ? "," : "", to_string(DropCause(ci)),
                          (unsigned long long)sf.cause_counts[ci]);
            out += buf;
        }
        std::snprintf(buf, sizeof(buf), "},\"injected_drops\":%llu,",
                      (unsigned long long)sf.injected_drops);
        out += buf;
        out += "\"drops\":[";
        for (std::size_t di = 0; di < sf.drops.size(); ++di) {
            const DropRecord &d = sf.drops[di];
            std::snprintf(
                buf, sizeof(buf),
                "%s\n{\"t\":%lld,\"refresh\":%llu,\"cause\":\"%s\","
                "\"injected\":%s,\"frame\":%lld}",
                di ? "," : "", (long long)d.at,
                (unsigned long long)d.refresh_index, to_string(d.cause),
                d.injected ? "true" : "false",
                d.frame_hint == UINT64_MAX ? -1LL
                                           : (long long)d.frame_hint);
            out += buf;
        }
        out += "],\"frames\":[";
        for (std::size_t fi = 0; fi < sf.chains.size(); ++fi) {
            const FrameChain &c = sf.chains[fi];
            std::snprintf(
                buf, sizeof(buf),
                "%s\n{\"id\":%llu,\"flow\":%llu,\"seg\":%d,"
                "\"slot\":%lld,\"pre\":%s,\"trigger\":%lld,"
                "\"timeline\":%lld,\"present\":%lld,\"spans\":[",
                fi ? "," : "", (unsigned long long)c.frame_id,
                (unsigned long long)c.flow_id, c.segment,
                (long long)c.slot, c.pre_rendered ? "true" : "false",
                (long long)c.trigger, (long long)c.timeline,
                (long long)c.present);
            out += buf;
            for (std::size_t pi = 0; pi < c.spans.size(); ++pi) {
                const FrameSpan &s = c.spans[pi];
                std::snprintf(buf, sizeof(buf),
                              "%s{\"stage\":\"%s\",\"t0\":%lld,"
                              "\"t1\":%lld}",
                              pi ? "," : "", s.stage, (long long)s.t0,
                              (long long)s.t1);
                out += buf;
            }
            out += "]}";
        }
        out += "]}";
    }
    out += "],\"metrics\":";
    if (metrics)
        out += metrics->to_json();
    else
        out += "null";
    out += "}\n";
    return out;
}

bool
FrameForensics::save(const std::string &path,
                     const std::string &scenario,
                     const std::string &mode,
                     const MetricsRegistry *metrics) const
{
    std::ofstream out(path);
    if (!out) {
        warn("FrameForensics::save: cannot open %s: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    out << dump_json(scenario, mode, metrics);
    if (!out) {
        warn("FrameForensics::save: write to %s failed: %s",
             path.c_str(), std::strerror(errno));
        return false;
    }
    return true;
}

} // namespace dvs
