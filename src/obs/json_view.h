/**
 * @file
 * Minimal JSON parser for the observability tooling.
 *
 * The forensics dump and the Chrome trace export are JSON; the
 * dvsync_inspect CLI and the round-trip tests need to read them back
 * without growing a third-party dependency. This is a small
 * recursive-descent parser over the RFC 8259 grammar — numbers become
 * doubles (exact for the |x| < 2^53 nanosecond timestamps we store),
 * strings handle the escape set our exporter emits plus \uXXXX (decoded
 * as UTF-8).
 */

#ifndef DVS_OBS_JSON_VIEW_H
#define DVS_OBS_JSON_VIEW_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dvs {

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_bool() const { return kind_ == Kind::kBool; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_object() const { return kind_ == Kind::kObject; }

    bool as_bool() const { return bool_; }
    double as_number() const { return number_; }
    const std::string &as_string() const { return string_; }
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object member; null-kind sentinel when absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** Convenience: member @p key as number/string with a default. */
    double number_at(const std::string &key, double fallback = 0.0) const;
    std::string string_at(const std::string &key,
                          const std::string &fallback = "") const;

    bool has(const std::string &key) const;

    /**
     * Parse @p text. On failure returns a null value and sets @p error
     * (when non-null) to "offset N: message".
     */
    static JsonValue parse(const std::string &text,
                           std::string *error = nullptr);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::map<std::string, JsonValue> members_;
};

} // namespace dvs

#endif // DVS_OBS_JSON_VIEW_H
