#include "obs/drop_classifier.h"

#include "buffer/buffer_queue.h"
#include "core/display_time_virtualizer.h"
#include "core/dvsync_runtime.h"
#include "display/panel.h"
#include "fault/fault_plan.h"
#include "metrics/frame_stats.h"
#include "metrics/power_model.h"
#include "pipeline/producer.h"
#include "sim/logging.h"

namespace dvs {

DropClassifier::DropClassifier(Context ctx, Panel &panel) : ctx_(ctx)
{
    if (!ctx_.producer || !ctx_.queue || !ctx_.stats)
        panic("DropClassifier needs producer, queue, and stats");
    panel.add_present_listener(
        [this](const PresentEvent &ev) { on_present(ev); });
}

bool
DropClassifier::fault_since(int kind, Time t) const
{
    return ctx_.plan &&
           ctx_.plan->active_in(FaultKind(kind), prev_present_, t);
}

bool
DropClassifier::plant_hot() const
{
    // The GPU clock is (or was, since the previous refresh) below the
    // governor floor because the DVFS plant tripped thermally.
    return ctx_.plant &&
           (ctx_.plant->throttled() ||
            ctx_.plant->throttle_trips() != thermal_trips_seen_);
}

void
DropClassifier::on_present(const PresentEvent &ev)
{
    const Time t = ev.present_time;
    // FrameStats registered first, so the refresh it just logged is the
    // authoritative drop decision for this edge.
    const std::vector<RefreshLog> &refreshes = ctx_.stats->refreshes();
    if (refreshes.empty() || refreshes.back().time != t)
        panic("DropClassifier attached before FrameStats");
    if (refreshes.back().drop) {
        DropRecord d;
        d.at = t;
        d.refresh_index = refreshes.size() - 1;
        d.cause = classify(t, d.injected, d.frame_hint);
        ++counts_[int(d.cause)];
        if (d.injected)
            ++injected_;
        drops_.push_back(d);
    }

    // Baselines for the next refresh's "since the previous present"
    // questions; updated on every refresh, dropped or not.
    prev_present_ = t;
    if (ctx_.dtv)
        resyncs_seen_ = ctx_.dtv->resyncs();
    if (ctx_.runtime)
        degradations_seen_ = ctx_.runtime->degradations();
    ui_busy_seen_ = ctx_.producer->ui_thread().total_busy();
    render_busy_seen_ = ctx_.producer->render_thread().total_busy();
    if (ctx_.gpu)
        gpu_busy_seen_ = ctx_.gpu->total_busy();
    if (ctx_.plant)
        thermal_trips_seen_ = ctx_.plant->throttle_trips();
}

DropCause
DropClassifier::classify(Time t, bool &injected, std::uint64_t &hint)
{
    injected = false;
    const FaultPlan *plan = ctx_.plan;

    // 1. Consumer-side faults leave no producer-side trace: the screen
    // repeated because the latch itself was sabotaged.
    if (fault_since(int(FaultKind::kQueueStall), t) ||
        fault_since(int(FaultKind::kVsyncEdgeLoss), t)) {
        injected = true;
        return DropCause::kInjectedFault;
    }
    if (plan && plan->active(FaultKind::kDeadlineMiss, t) &&
        ctx_.queue->queued_count() > 0) {
        injected = true;
        return DropCause::kInjectedFault;
    }

    // 2. A buffer sat in the FIFO but the compositor refused to latch it
    // (latch-deadline policy): the frame was ready, the latch missed.
    if (ctx_.queue->queued_count() > 0)
        return DropCause::kLatchMiss;

    // 3. Producer-side: blame the oldest frame that has not reached the
    // queue yet — it is the one the screen is waiting for. The cursor
    // only moves forward, so the scan is amortized O(1) per drop.
    const std::vector<FrameRecord> &records = ctx_.producer->records();
    while (oldest_unqueued_ < records.size() &&
           records[oldest_unqueued_].queue_time != kTimeNone) {
        ++oldest_unqueued_;
    }
    if (oldest_unqueued_ < records.size()) {
        const FrameRecord &rec = records[oldest_unqueued_];
        hint = rec.frame_id;
        if (rec.render_end != kTimeNone) {
            // GPU phase: waiting for the GPU, or executing on it.
            if (rec.gpu_start == kTimeNone) {
                injected = plan && plan->active_in(FaultKind::kGpuHang,
                                                   rec.render_end, t);
                return DropCause::kGpuContention;
            }
            if (plan && plan->active_in(FaultKind::kGpuHang,
                                        rec.gpu_start, t)) {
                injected = true;
                return DropCause::kGpuContention;
            }
            // Emergent throttle (the plant tripped) splits from an
            // injected slowdown via the fault plan, exactly like
            // injected faults elsewhere: a fault window overlapping
            // the drop marks the throttle as injected pressure.
            if (plant_hot()) {
                injected = fault_since(int(FaultKind::kThermalThrottle),
                                       t);
                return DropCause::kThermalThrottle;
            }
            injected =
                plan && plan->active(FaultKind::kThermalThrottle, t);
            return DropCause::kSlowRender;
        }
        if (rec.buffer_stall_start != kTimeNone &&
            rec.render_start == kTimeNone) {
            // Ready to render but no free buffer slot: the queue is
            // stuffed (or allocation was failed under it).
            injected =
                fault_since(int(FaultKind::kBufferAllocFail), t);
            return DropCause::kQueueStuffed;
        }
        if (rec.render_start != kTimeNone ||
            rec.ui_end != kTimeNone) {
            // Render executing, or UI done and waiting for its VSync-rs
            // edge / the render thread.
            injected =
                plan && plan->active(FaultKind::kThermalThrottle, t);
            return DropCause::kSlowRender;
        }
        // UI stage still pending or executing.
        injected = plan &&
                   (plan->active(FaultKind::kThermalThrottle, t) ||
                    fault_since(int(FaultKind::kInputBurst), t));
        return DropCause::kSlowUi;
    }

    // 4. Nothing in flight and nothing queued: the frame was never
    // started. Pacing-level causes.
    if (ctx_.runtime && (ctx_.runtime->degraded() ||
                         ctx_.runtime->degradations() !=
                             degradations_seen_)) {
        return DropCause::kDegraded;
    }
    // A governor rung throttling production (trimmed pre-render depth,
    // capped LTPO rate) makes the pacer skip owed slots on purpose;
    // attribute those before the generic DTV-elasticity bucket.
    if (ctx_.governor_capped && ctx_.governor_capped()) {
        injected = fault_since(int(FaultKind::kThermalThrottle), t);
        return DropCause::kGovernorCapped;
    }
    if (ctx_.dtv && ctx_.dtv->resyncs() != resyncs_seen_)
        return DropCause::kDtvDesync;

    // Echo drops: the pipeline already moved on, but a stage was busy
    // past its slot since the last refresh. Blame the busiest one.
    const Time du = ctx_.producer->ui_thread().total_busy() -
                    ui_busy_seen_;
    const Time dr = ctx_.producer->render_thread().total_busy() -
                    render_busy_seen_;
    const Time dg =
        ctx_.gpu ? ctx_.gpu->total_busy() - gpu_busy_seen_ : 0;
    if (du > 0 || dr > 0 || dg > 0) {
        if (dg >= du && dg >= dr) {
            if (plant_hot()) {
                injected = fault_since(int(FaultKind::kThermalThrottle),
                                       t);
                return DropCause::kThermalThrottle;
            }
            return ctx_.shared_gpu ? DropCause::kGpuContention
                                   : DropCause::kSlowRender;
        }
        return du >= dr ? DropCause::kSlowUi : DropCause::kSlowRender;
    }

    if (plan) {
        for (int k = 0; k < kFaultKindCount; ++k) {
            if (fault_since(k, t)) {
                injected = true;
                return DropCause::kInjectedFault;
            }
        }
    }
    // A D-VSync producer with an idle pipeline only skips owed slots
    // through DTV's drop elasticity (skip_slots).
    if (ctx_.runtime)
        return DropCause::kDtvDesync;
    return DropCause::kUnknown;
}

} // namespace dvs
