#include "fault/invariant_monitor.h"

#include <algorithm>

#include "sim/logging.h"

namespace dvs {

void
InvariantMonitor::attach(Producer &producer, Panel &panel, int max_depth)
{
    producer_ = &producer;
    max_depth_ = max_depth;
    producer.add_queued_listener(
        [this](const FrameRecord &rec) { on_queued(rec); });
    panel.add_present_listener(
        [this](const PresentEvent &ev) { on_present(ev); });
}

void
InvariantMonitor::watch_latches(int surface_id, Panel &panel)
{
    if (surface_id < 0)
        panic("watch_latches with negative surface id %d", surface_id);
    if (int(last_latch_edge_.size()) <= surface_id)
        last_latch_edge_.resize(std::size_t(surface_id) + 1, -1);
    panel.add_present_listener([this, surface_id](const PresentEvent &ev) {
        on_surface_latch(surface_id, ev);
    });
}

void
InvariantMonitor::on_surface_latch(int surface_id, const PresentEvent &ev)
{
    if (ev.repeat)
        return;
    std::int64_t &last = last_latch_edge_[std::size_t(surface_id)];
    if (last >= 0 && std::int64_t(ev.vsync_index) <= last) {
        record(ev.present_time, "surface-double-latch",
               "surface " + std::to_string(surface_id) +
                   " latched twice at edge " +
                   std::to_string(ev.vsync_index));
    }
    last = std::int64_t(ev.vsync_index);
}

void
InvariantMonitor::on_budget(Time now, double used_mb, double budget_mb)
{
    // Tiny epsilon: the budget check compares sums of per-surface costs
    // that were individually admitted against the same budget.
    if (used_mb > budget_mb + 1e-9) {
        record(now, "arbiter-over-budget",
               std::to_string(used_mb) + " MB in use > budget " +
                   std::to_string(budget_mb) + " MB");
    }
}

void
InvariantMonitor::record(Time t, const char *invariant, std::string detail)
{
    ++violation_count_;
    violation_times_.push_back(t);
    if (int(log_.size()) < kMaxLogged)
        log_.push_back({t, invariant, std::move(detail)});
}

std::uint64_t
InvariantMonitor::violations_since(Time since) const
{
    std::uint64_t n = 0;
    for (auto it = violation_times_.rbegin();
         it != violation_times_.rend() && *it >= since; ++it) {
        ++n;
    }
    return n;
}

void
InvariantMonitor::on_queued(const FrameRecord &rec)
{
    ++queued_seen_;

    // Pre-render depth: accumulated pre-rendered buffers stay within
    // the configured limit (+1 for the frame already in flight when the
    // FPE checked the limit).
    if (rec.pre_rendered) {
        ++prerendered_queued_;
        if (max_depth_ > 0 && prerendered_queued_ > max_depth_) {
            record(rec.queue_time, "prerender-depth",
                   std::to_string(prerendered_queued_) +
                       " pre-rendered buffers > limit " +
                       std::to_string(max_depth_));
        }
    }

    // DTV must never virtualize a display time into the past: the
    // D-Timestamp of a pre-rendered frame is a *future* present slot at
    // the moment the frame is triggered.
    if (rec.pre_rendered && rec.content_timestamp != kTimeNone &&
        rec.content_timestamp < rec.trigger_time) {
        record(rec.queue_time, "dtv-past",
               "frame " + std::to_string(rec.frame_id) + " d-timestamp " +
                   std::to_string(rec.content_timestamp) +
                   " < trigger " + std::to_string(rec.trigger_time));
    }
}

void
InvariantMonitor::on_present(const PresentEvent &ev)
{
    // Present timestamps march forward: the panel never scans out two
    // refreshes against the arrow of time, faults or not.
    if (last_present_time_ != kTimeNone &&
        ev.present_time < last_present_time_) {
        record(ev.present_time, "monotonic-present",
               "present " + std::to_string(ev.present_time) +
                   " after " + std::to_string(last_present_time_));
    }
    last_present_time_ = ev.present_time;

    if (!ev.repeat) {
        ++presents_seen_;
        if (ev.meta.pre_rendered && prerendered_queued_ > 0)
            --prerendered_queued_;
        const std::int64_t id = std::int64_t(ev.meta.frame_id);
        if (id >= 0) {
            if (std::size_t(id) >= presented_.size())
                presented_.resize(std::size_t(id) + 1, false);
            if (presented_[std::size_t(id)]) {
                record(ev.present_time, "double-present",
                       "frame " + std::to_string(id) +
                           " latched twice");
            }
            presented_[std::size_t(id)] = true;
            // FIFO: the buffer queue never reorders, so presented frame
            // ids are strictly increasing.
            if (id <= last_presented_frame_) {
                record(ev.present_time, "fifo-order",
                       "frame " + std::to_string(id) + " after frame " +
                           std::to_string(last_presented_frame_));
            }
            last_presented_frame_ =
                std::max(last_presented_frame_, id);
        }
        // Conservation, checked live: the screen cannot present more
        // frames than the producer has queued.
        if (presents_seen_ > queued_seen_) {
            record(ev.present_time, "frame-conservation",
                   std::to_string(presents_seen_) + " presents > " +
                       std::to_string(queued_seen_) + " queued");
        }
    }

}

void
InvariantMonitor::finalize(Time now)
{
    if (finalized_)
        return;
    finalized_ = true;
    if (presents_seen_ > queued_seen_) {
        record(now, "frame-conservation",
               "run end: " + std::to_string(presents_seen_) +
                   " presents > " + std::to_string(queued_seen_) +
                   " queued");
    }
}

} // namespace dvs
