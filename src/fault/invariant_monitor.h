/**
 * @file
 * Runtime invariant watchdog.
 *
 * The InvariantMonitor is a passive observer hooked into the present
 * fence and the producer's queued-frame path. On every event it checks
 * the pipeline invariants that silent corruption would otherwise only
 * surface as subtly wrong metrics:
 *
 *  - present timestamps are monotonic;
 *  - no frame is latched or presented twice, and presented frame ids
 *    are strictly FIFO (no reordering across the buffer queue);
 *  - frame conservation: every presented frame was queued exactly once,
 *    and presents never exceed queued frames (checked per event and at
 *    finalize());
 *  - pre-render depth (queued + in production) never exceeds the
 *    configured limit;
 *  - DTV never virtualizes a display time into the past: a pre-rendered
 *    frame's D-Timestamp is at or after its trigger time.
 *
 * Violations are recorded — never thrown or aborted on — so a chaos run
 * completes and reports them through RunReport instead of corrupting
 * metrics silently. The DvsyncRuntime's degradation policy reads the
 * recent-violation pressure from here.
 */

#ifndef DVS_FAULT_INVARIANT_MONITOR_H
#define DVS_FAULT_INVARIANT_MONITOR_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "display/panel.h"
#include "pipeline/producer.h"
#include "sim/time.h"

namespace dvs {

/** One recorded invariant violation. */
struct InvariantViolation {
    Time time = 0;
    std::string invariant; ///< short stable name, e.g. "monotonic-present"
    std::string detail;

    friend bool operator==(const InvariantViolation &,
                           const InvariantViolation &) = default;
};

/**
 * Always-on pipeline invariant checker (opt out per run for release
 * benches via SystemConfig::monitor_invariants).
 */
class InvariantMonitor
{
  public:
    InvariantMonitor() = default;

    /**
     * Subscribe to the pipeline. @p max_depth bounds the number of
     * pre-rendered frames accumulated in the buffer queue (the FPE's
     * pre-render limit + 1 for the frame in flight when the limit was
     * checked); <= 0 disables the depth check (VSync baseline).
     */
    void attach(Producer &producer, Panel &panel, int max_depth);

    // ----- cross-surface invariants (multi-surface composition) --------
    //
    // A display-level monitor watches every surface of one compositor;
    // the per-surface FIFO/conservation checks stay with each surface's
    // own monitor (attach() above), while the checks below only make
    // sense across surfaces sharing one display.

    /**
     * Watch @p panel as surface @p surface_id of a shared display: no
     * surface may have two buffers latched at the same refresh edge (the
     * compositor latches at most one buffer per surface per refresh).
     */
    void watch_latches(int surface_id, Panel &panel);

    /**
     * Budget invariant of the buffer-memory arbiter: the extra-buffer
     * memory in use must never exceed the device budget. Records an
     * "arbiter-over-budget" violation when @p used_mb > @p budget_mb.
     * Wired to BufferBudgetArbiter::set_budget_check.
     */
    void on_budget(Time now, double used_mb, double budget_mb);

    /** Total violations recorded (the log itself is capped). */
    std::uint64_t violations() const { return violation_count_; }

    /** Violations recorded at or after @p since (watchdog pressure). */
    std::uint64_t violations_since(Time since) const;

    /** The first kMaxLogged violations, with details. */
    const std::vector<InvariantViolation> &log() const { return log_; }

    /**
     * End-of-run conservation check: presents must not exceed queued
     * frames. Records a violation if broken; idempotent.
     */
    void finalize(Time now);

    static constexpr int kMaxLogged = 64;

  private:
    void on_present(const PresentEvent &ev);
    void on_queued(const FrameRecord &rec);
    void on_surface_latch(int surface_id, const PresentEvent &ev);
    void record(Time t, const char *invariant, std::string detail);

    Producer *producer_ = nullptr;
    int max_depth_ = 0;

    /** Per-surface last latched edge index (-1 = none yet). */
    std::vector<std::int64_t> last_latch_edge_;

    Time last_present_time_ = kTimeNone;
    std::int64_t last_presented_frame_ = -1;
    std::uint64_t presents_seen_ = 0;
    std::uint64_t queued_seen_ = 0;
    int prerendered_queued_ = 0;
    /** Per-frame presented flags, indexed by frame id. */
    std::vector<bool> presented_;

    std::uint64_t violation_count_ = 0;
    std::vector<InvariantViolation> log_;
    /** Violation timestamps (all of them) for windowed pressure. */
    std::deque<Time> violation_times_;
    bool finalized_ = false;
};

} // namespace dvs

#endif // DVS_FAULT_INVARIANT_MONITOR_H
