/**
 * @file
 * Fault injector: binds a FaultPlan to a live pipeline.
 *
 * arm() installs the plan on the component fault hooks — HW-VSync edge
 * loss and clock drift on the generator, thermal-throttle and GPU-hang
 * cost transforms on the execution resources, allocation failures and
 * consumer stalls on the buffer queue, forced latch misses on the
 * compositor — and schedules the active event work the hooks cannot
 * express (input-burst UI jobs, producer retry kicks when an
 * allocation-failure window closes).
 *
 * Injection is deterministic: hooks only read the plan and the virtual
 * clock, so a run with the same seed replays byte-for-byte.
 */

#ifndef DVS_FAULT_FAULT_INJECTOR_H
#define DVS_FAULT_FAULT_INJECTOR_H

#include <array>
#include <cstdint>
#include <memory>

#include "buffer/buffer_queue.h"
#include "display/hw_vsync.h"
#include "fault/fault_plan.h"
#include "pipeline/compositor.h"
#include "pipeline/producer.h"
#include "sim/simulator.h"

namespace dvs {

/**
 * Owns the plan bindings for one run. Must outlive the simulation.
 */
class FaultInjector
{
  public:
    FaultInjector(Simulator &sim, std::shared_ptr<const FaultPlan> plan);

    /** Install every hook; call once, before the run starts. */
    void arm(HwVsyncGenerator &hw, BufferQueue &queue,
             Compositor &compositor, Producer &producer);

    const FaultPlan &plan() const { return *plan_; }

    /** Times a fault of @p kind actually fired (hook hit in a window). */
    std::uint64_t injected(FaultKind kind) const
    {
        return counts_[std::size_t(kind)];
    }

    /** Total fault activations across all kinds. */
    std::uint64_t injected_total() const;

  private:
    Simulator &sim_;
    std::shared_ptr<const FaultPlan> plan_;
    std::array<std::uint64_t, kFaultKindCount> counts_{};
    bool armed_ = false;
};

} // namespace dvs

#endif // DVS_FAULT_FAULT_INJECTOR_H
