#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>

#include "sim/logging.h"
#include "sim/random.h"

namespace dvs {

const char *
to_string(FaultKind k)
{
    switch (k) {
      case FaultKind::kVsyncEdgeLoss:
        return "vsync-edge-loss";
      case FaultKind::kClockDrift:
        return "clock-drift";
      case FaultKind::kGpuHang:
        return "gpu-hang";
      case FaultKind::kThermalThrottle:
        return "thermal-throttle";
      case FaultKind::kBufferAllocFail:
        return "buffer-alloc-fail";
      case FaultKind::kQueueStall:
        return "queue-stall";
      case FaultKind::kDeadlineMiss:
        return "deadline-miss";
      case FaultKind::kInputBurst:
        return "input-burst";
    }
    return "?";
}

FaultMix
FaultMix::display()
{
    return {"display",
            {FaultKind::kVsyncEdgeLoss, FaultKind::kClockDrift},
            3};
}

FaultMix
FaultMix::compute()
{
    return {"compute",
            {FaultKind::kGpuHang, FaultKind::kThermalThrottle},
            3};
}

FaultMix
FaultMix::memory()
{
    return {"memory",
            {FaultKind::kBufferAllocFail, FaultKind::kQueueStall},
            3};
}

FaultMix
FaultMix::scheduler()
{
    return {"scheduler",
            {FaultKind::kDeadlineMiss, FaultKind::kInputBurst},
            3};
}

FaultMix
FaultMix::everything()
{
    return {"everything",
            {FaultKind::kVsyncEdgeLoss, FaultKind::kClockDrift,
             FaultKind::kGpuHang, FaultKind::kThermalThrottle,
             FaultKind::kBufferAllocFail, FaultKind::kQueueStall,
             FaultKind::kDeadlineMiss, FaultKind::kInputBurst},
            2};
}

std::vector<FaultMix>
FaultMix::campaign_mixes()
{
    return {display(), compute(), memory(), scheduler(), everything()};
}

namespace {

/** Per-kind window length range, in ns. */
void
length_range(FaultKind kind, Time &lo, Time &hi)
{
    switch (kind) {
      case FaultKind::kClockDrift:
      case FaultKind::kThermalThrottle:
        lo = 100'000'000; // sustained conditions: 100-300 ms
        hi = 300'000'000;
        return;
      case FaultKind::kGpuHang:
        lo = 20'000'000; // a hang is short but brutal
        hi = 60'000'000;
        return;
      default:
        lo = 30'000'000; // transient glitches: 30-120 ms
        hi = 120'000'000;
        return;
    }
}

double
draw_magnitude(FaultKind kind, Rng &rng)
{
    switch (kind) {
      case FaultKind::kClockDrift:
        // ±2% oscillator skew, never exactly 1.0.
        return rng.chance(0.5) ? rng.uniform(0.98, 0.995)
                               : rng.uniform(1.005, 1.02);
      case FaultKind::kGpuHang:
        return rng.uniform(10e6, 40e6); // 10-40 ms stall per job
      case FaultKind::kThermalThrottle:
        return rng.uniform(1.3, 2.5); // 1.3-2.5x slowdown
      case FaultKind::kInputBurst:
        return rng.uniform(0.5e6, 2e6); // 0.5-2 ms of UI work per burst
      default:
        return 0.0;
    }
}

} // namespace

FaultPlan
FaultPlan::generate(std::uint64_t seed, Time horizon, const FaultMix &mix)
{
    if (horizon <= 0)
        fatal("fault plan horizon must be > 0, got %lld",
              (long long)horizon);
    FaultPlan plan;
    plan.seed_ = seed;
    plan.mix_name_ = mix.name;

    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xfau);
    // Kinds iterate in mix order and windows draw in sequence, so the
    // plan is a pure function of (seed, horizon, mix).
    for (FaultKind kind : mix.kinds) {
        Time lo = 0, hi = 0;
        length_range(kind, lo, hi);
        for (int i = 0; i < mix.windows_per_kind; ++i) {
            FaultWindow w;
            w.kind = kind;
            w.start = Time(rng.uniform_int(0, (horizon * 9) / 10));
            const Time len = Time(rng.uniform_int(lo, hi));
            w.end = std::min(w.start + len, horizon);
            w.magnitude = draw_magnitude(kind, rng);
            plan.windows_.push_back(w);
        }
    }
    std::sort(plan.windows_.begin(), plan.windows_.end(),
              [](const FaultWindow &a, const FaultWindow &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  if (a.kind != b.kind)
                      return int(a.kind) < int(b.kind);
                  return a.end < b.end;
              });
    return plan;
}

FaultPlan
FaultPlan::from_windows(std::uint64_t seed, const std::string &mix_name,
                        std::vector<FaultWindow> windows)
{
    FaultPlan plan;
    plan.seed_ = seed;
    plan.mix_name_ = mix_name;
    plan.windows_ = std::move(windows);
    return plan;
}

bool
FaultPlan::active(FaultKind kind, Time now) const
{
    for (const FaultWindow &w : windows_) {
        if (w.start > now)
            break; // sorted by start
        if (w.kind == kind && w.contains(now))
            return true;
    }
    return false;
}

bool
FaultPlan::active_in(FaultKind kind, Time from, Time to) const
{
    if (from == kTimeNone)
        return active(kind, to);
    for (const FaultWindow &w : windows_) {
        if (w.start > to)
            break; // sorted by start
        if (w.kind == kind && w.end > from)
            return true;
    }
    return false;
}

double
FaultPlan::magnitude(FaultKind kind, Time now) const
{
    for (const FaultWindow &w : windows_) {
        if (w.start > now)
            break;
        if (w.kind == kind && w.contains(now))
            return w.magnitude;
    }
    return 0.0;
}

std::string
FaultPlan::debug_string() const
{
    std::string out = "fault-plan seed=" + std::to_string(seed_) +
                      " mix=" + mix_name_ +
                      " windows=" + std::to_string(windows_.size()) + "\n";
    char line[160];
    for (const FaultWindow &w : windows_) {
        std::snprintf(line, sizeof(line),
                      "  %-18s [%lld, %lld) magnitude=%.17g\n",
                      to_string(w.kind), (long long)w.start,
                      (long long)w.end, w.magnitude);
        out += line;
    }
    return out;
}

} // namespace dvs
