/**
 * @file
 * Deterministic fault plans: seeded schedules of injectable faults.
 *
 * A FaultPlan is a list of (time window, fault kind, magnitude) entries
 * generated deterministically from a seed and a FaultMix, in the spirit
 * of record/replay testing: the same (seed, mix, horizon) triple always
 * produces a byte-identical plan, so any chaos-campaign failure replays
 * exactly from its seed. Plans are pure data — the FaultInjector binds
 * them to a live pipeline through the component fault hooks.
 */

#ifndef DVS_FAULT_FAULT_PLAN_H
#define DVS_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dvs {

/** Everything the fault layer knows how to break. */
enum class FaultKind : int {
    kVsyncEdgeLoss,   ///< HW-VSync edges silently dropped
    kClockDrift,      ///< panel oscillator skew (period scale factor)
    kGpuHang,         ///< GPU jobs stall for the window's magnitude (ns)
    kThermalThrottle, ///< ui/render/gpu slowdown multiplier
    kBufferAllocFail, ///< buffer allocation fails transiently
    kQueueStall,      ///< consumer-side latch stalls (screen repeats)
    kDeadlineMiss,    ///< compositor misses its latch deadline
    kInputBurst,      ///< bursts of input work steal UI-thread time
};

constexpr int kFaultKindCount = 8;

const char *to_string(FaultKind k);

/** One scheduled fault: active over [start, end). */
struct FaultWindow {
    FaultKind kind = FaultKind::kVsyncEdgeLoss;
    Time start = 0;
    Time end = 0;
    /**
     * Kind-specific magnitude: drift = period scale factor, hang = stall
     * ns, throttle = slowdown multiplier, burst = per-burst UI work ns;
     * unused (0) for the boolean faults.
     */
    double magnitude = 0.0;

    bool contains(Time t) const { return t >= start && t < end; }

    friend bool operator==(const FaultWindow &,
                           const FaultWindow &) = default;
};

/** Which fault kinds a generated plan draws from. */
struct FaultMix {
    std::string name = "all";
    std::vector<FaultKind> kinds;
    /** Windows generated per kind. */
    int windows_per_kind = 3;

    /** Named mixes of the chaos campaign. */
    static FaultMix display();   ///< edge loss + clock drift
    static FaultMix compute();   ///< GPU hangs + thermal throttle
    static FaultMix memory();    ///< alloc failures + queue stalls
    static FaultMix scheduler(); ///< deadline misses + input bursts
    static FaultMix everything();

    /** The campaign's standard grid, in a fixed order. */
    static std::vector<FaultMix> campaign_mixes();
};

/**
 * A deterministic, replayable fault schedule.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Generate the plan for @p seed: window starts uniform over the first
     * 90% of @p horizon, lengths and magnitudes drawn from per-kind
     * ranges chosen to stress without wedging the pipeline. Byte-for-byte
     * reproducible: generate(s, m, h) == generate(s, m, h), always.
     */
    static FaultPlan generate(std::uint64_t seed, Time horizon,
                              const FaultMix &mix);

    /**
     * Rebuild a plan from previously-generated windows — the trace
     * subsystem's deserialization path. @p windows must already be in
     * generate()'s sort order; a plan round-tripped through its own
     * accessors compares equal to the original.
     */
    static FaultPlan from_windows(std::uint64_t seed,
                                  const std::string &mix_name,
                                  std::vector<FaultWindow> windows);

    std::uint64_t seed() const { return seed_; }
    const std::string &mix_name() const { return mix_name_; }
    const std::vector<FaultWindow> &windows() const { return windows_; }
    bool empty() const { return windows_.empty(); }

    /** Whether any window of @p kind covers @p now. */
    bool active(FaultKind kind, Time now) const;

    /**
     * Whether any window of @p kind overlaps [@p from, @p to] — the
     * classifier's "was this fault in play since the previous refresh"
     * question. @p from == kTimeNone degenerates to active(kind, to).
     */
    bool active_in(FaultKind kind, Time from, Time to) const;

    /** Magnitude of the first active window of @p kind (0 when none). */
    double magnitude(FaultKind kind, Time now) const;

    /**
     * Full-precision dump, one line per window; identical strings iff
     * identical plans (the replay golden pins this).
     */
    std::string debug_string() const;

    friend bool operator==(const FaultPlan &, const FaultPlan &) = default;

  private:
    std::uint64_t seed_ = 0;
    std::string mix_name_;
    std::vector<FaultWindow> windows_;
};

} // namespace dvs

#endif // DVS_FAULT_FAULT_PLAN_H
