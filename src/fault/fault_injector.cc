#include "fault/fault_injector.h"

#include "sim/logging.h"

namespace dvs {

FaultInjector::FaultInjector(Simulator &sim,
                             std::shared_ptr<const FaultPlan> plan)
    : sim_(sim), plan_(std::move(plan))
{
    if (!plan_)
        fatal("FaultInjector needs a plan");
}

std::uint64_t
FaultInjector::injected_total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts_)
        sum += c;
    return sum;
}

void
FaultInjector::arm(HwVsyncGenerator &hw, BufferQueue &queue,
                   Compositor &compositor, Producer &producer)
{
    if (armed_)
        panic("FaultInjector::arm called twice");
    armed_ = true;
    const FaultPlan *plan = plan_.get();

    hw.set_edge_fault([this, plan](const VsyncEdge &edge) {
        if (!plan->active(FaultKind::kVsyncEdgeLoss, edge.timestamp))
            return false;
        ++counts_[std::size_t(FaultKind::kVsyncEdgeLoss)];
        return true;
    });
    hw.set_period_scale([this, plan](Time now) {
        const double mag = plan->magnitude(FaultKind::kClockDrift, now);
        if (mag <= 0.0)
            return 1.0;
        ++counts_[std::size_t(FaultKind::kClockDrift)];
        return mag;
    });

    // Thermal throttle slows every compute stage; a GPU hang adds a
    // fixed stall to GPU jobs on top of any throttle in force.
    auto throttle = [this, plan](Time now, Time duration) {
        const double mag =
            plan->magnitude(FaultKind::kThermalThrottle, now);
        if (mag <= 1.0)
            return duration;
        ++counts_[std::size_t(FaultKind::kThermalThrottle)];
        return Time(double(duration) * mag);
    };
    producer.ui_thread().add_cost_transform(throttle);
    producer.render_thread().add_cost_transform(throttle);
    producer.gpu().add_cost_transform(
        [this, plan, throttle](Time now, Time duration) {
            duration = throttle(now, duration);
            const double hang =
                plan->magnitude(FaultKind::kGpuHang, now);
            if (hang > 0.0) {
                ++counts_[std::size_t(FaultKind::kGpuHang)];
                duration += Time(hang);
            }
            return duration;
        });

    queue.set_alloc_fault([this, plan](Time now) {
        if (!plan->active(FaultKind::kBufferAllocFail, now))
            return false;
        ++counts_[std::size_t(FaultKind::kBufferAllocFail)];
        return true;
    });
    queue.set_stall_fault([this, plan](Time now) {
        if (!plan->active(FaultKind::kQueueStall, now))
            return false;
        ++counts_[std::size_t(FaultKind::kQueueStall)];
        return true;
    });
    compositor.set_forced_miss([this, plan](Time now) {
        if (!plan->active(FaultKind::kDeadlineMiss, now))
            return false;
        ++counts_[std::size_t(FaultKind::kDeadlineMiss)];
        return true;
    });

    // Scheduled work the hooks cannot express.
    for (const FaultWindow &w : plan->windows()) {
        switch (w.kind) {
          case FaultKind::kBufferAllocFail:
            // A producer parked on a failed allocation is only woken by
            // a freed slot; kick a retry when the window closes so a
            // quiet queue cannot wedge it forever.
            sim_.events().schedule(w.end + 1,
                                   [&queue] { queue.notify_free(); });
            break;
          case FaultKind::kInputBurst: {
            // A burst of input delivery steals UI-thread time at a
            // 2 ms cadence across the window, delaying frame UI stages
            // like a flood of MotionEvents would.
            const Time burst_cost = Time(w.magnitude);
            for (Time t = w.start; t < w.end; t += 2'000'000) {
                sim_.events().schedule(t, [this, &producer, burst_cost] {
                    ++counts_[std::size_t(FaultKind::kInputBurst)];
                    producer.ui_thread().run(burst_cost, [] {});
                });
            }
            break;
          }
          default:
            break;
        }
    }
}

} // namespace dvs
