#include "buffer/buffer_queue.h"

#include <cassert>

#include "sim/logging.h"

namespace dvs {

BufferQueue::BufferQueue(int capacity) : capacity_(capacity)
{
    if (capacity < 2)
        fatal("BufferQueue needs at least 2 slots (front + back), got %d",
              capacity);
    for (int i = 0; i < capacity; ++i)
        make_slot();
}

void
BufferQueue::make_slot()
{
    slots_.push_back(std::make_unique<FrameBuffer>(int(slots_.size())));
    free_.push_back(slots_.back().get());
}

int
BufferQueue::dequeued_count() const
{
    int n = 0;
    for (const auto &s : slots_) {
        if (s->state() == BufferState::kDequeued)
            ++n;
    }
    return n;
}

FrameBuffer *
BufferQueue::try_dequeue(Time now)
{
    if (free_.empty())
        return nullptr;
    if (alloc_fault_ && alloc_fault_(now))
        return nullptr;
    FrameBuffer *buf = free_.front();
    free_.pop_front();
    assert(buf->state_ == BufferState::kFree);
    buf->state_ = BufferState::kDequeued;
    buf->dequeue_time_ = now;
    buf->queue_time_ = kTimeNone;
    buf->latch_time_ = kTimeNone;
    buf->meta_ = FrameMeta{};
    return buf;
}

void
BufferQueue::queue(FrameBuffer *buf, Time now)
{
    assert(buf && buf->state_ == BufferState::kDequeued);
    buf->state_ = BufferState::kQueued;
    buf->queue_time_ = now;
    queued_.push_back(buf);
}

void
BufferQueue::cancel(FrameBuffer *buf)
{
    assert(buf && buf->state_ == BufferState::kDequeued);
    release_to_free(buf);
}

FrameBuffer *
BufferQueue::acquire(Time now)
{
    if (queued_.empty())
        return nullptr;
    if (stall_fault_ && stall_fault_(now))
        return nullptr;
    FrameBuffer *next = queued_.front();
    queued_.pop_front();
    assert(next->state_ == BufferState::kQueued);

    FrameBuffer *old = front_;
    front_ = next;
    next->state_ = BufferState::kFront;
    next->latch_time_ = now;

    if (old) {
        assert(old->state_ == BufferState::kFront);
        release_to_free(old);
    }
    return next;
}

void
BufferQueue::release_to_free(FrameBuffer *buf)
{
    if (pending_shrink_ > 0) {
        // A shrink request retires slots as they free up instead of
        // yanking buffers out from under the producer or the screen.
        --pending_shrink_;
        buf->state_ = BufferState::kFree;
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (it->get() == buf) {
                slots_.erase(it);
                break;
            }
        }
        return;
    }
    buf->state_ = BufferState::kFree;
    free_.push_back(buf);
    if (on_free_)
        on_free_();
}

void
BufferQueue::set_capacity(int capacity)
{
    if (capacity < 2)
        fatal("BufferQueue capacity must be >= 2, got %d", capacity);
    pending_shrink_ = 0;
    while (int(slots_.size()) < capacity) {
        make_slot();
        if (on_free_)
            on_free_();
    }
    if (int(slots_.size()) > capacity) {
        int excess = int(slots_.size()) - capacity;
        // Retire free slots immediately; the remainder lazily.
        while (excess > 0 && !free_.empty()) {
            FrameBuffer *buf = free_.back();
            free_.pop_back();
            for (auto it = slots_.begin(); it != slots_.end(); ++it) {
                if (it->get() == buf) {
                    slots_.erase(it);
                    break;
                }
            }
            --excess;
        }
        pending_shrink_ = excess;
    }
    capacity_ = capacity;
}

} // namespace dvs
