/**
 * @file
 * FIFO buffer queue between the rendering pipeline and the screen.
 *
 * Mirrors the producer/consumer model of §2: the producer dequeues a free
 * slot, renders into it, and queues it; the screen acquires queued buffers
 * in FIFO order, one per refresh, releasing the previously displayed
 * buffer. Capacity is configurable: VSync triple buffering uses 3 slots,
 * D-VSync enlarges the queue (the paper's default is 4, up to 7 in the
 * Fig. 11 sweep).
 */

#ifndef DVS_BUFFER_BUFFER_QUEUE_H
#define DVS_BUFFER_BUFFER_QUEUE_H

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/frame_buffer.h"
#include "sim/time.h"

namespace dvs {

/**
 * A fixed-capacity FIFO queue of frame buffers.
 *
 * Invariants (checked in debug builds and by the test suite):
 *  - exactly @c capacity slots exist at all times, partitioned among
 *    free / dequeued / queued / front;
 *  - at most one slot is in the kFront state;
 *  - buffers are acquired in exactly the order they were queued.
 */
class BufferQueue
{
  public:
    /** @param capacity total slot count (1 front + capacity-1 back). */
    explicit BufferQueue(int capacity);

    int capacity() const { return capacity_; }

    /** Slots available for the producer to render into. */
    int free_count() const { return int(free_.size()); }

    /** Rendered frames waiting to be displayed. */
    int queued_count() const { return int(queued_.size()); }

    /** Slots currently held by the producer. */
    int dequeued_count() const;

    /**
     * Producer side: take a free slot for rendering.
     * @return nullptr when no slot is free (producer must wait).
     */
    FrameBuffer *try_dequeue(Time now);

    /**
     * Producer side: submit a rendered buffer to the FIFO.
     * @pre buf was obtained from try_dequeue() and not yet queued.
     */
    void queue(FrameBuffer *buf, Time now);

    /**
     * Producer side: return a dequeued slot unrendered (e.g. a cancelled
     * frame). The slot becomes free again.
     */
    void cancel(FrameBuffer *buf);

    /**
     * Consumer side: latch the oldest queued buffer for display and
     * release the previously displayed buffer (if any) back to the free
     * list.
     * @return nullptr when nothing is queued (the screen repeats the
     *         previous frame).
     */
    FrameBuffer *acquire(Time now);

    /** The buffer currently on screen (nullptr before the first latch). */
    FrameBuffer *front() const { return front_; }

    /** Peek the next buffer that acquire() would return. */
    FrameBuffer *peek_queued() const
    {
        return queued_.empty() ? nullptr : queued_.front();
    }

    /**
     * Register a callback invoked whenever a slot becomes free (after
     * acquire() releases the old front, or cancel()). Used by producers
     * blocked on a full queue.
     */
    void on_slot_free(std::function<void()> cb) { on_free_ = std::move(cb); }

    /**
     * Fire the slot-free callback without freeing anything: a retry kick
     * for producers parked by a transient allocation fault (the fault
     * injector calls this when an allocation-failure window closes).
     */
    void notify_free()
    {
        if (on_free_)
            on_free_();
    }

    // ----- fault-injection hooks (src/fault) ---------------------------

    /**
     * Allocation-failure fault: while the hook returns true, try_dequeue
     * fails even when free slots exist (transient allocator pressure).
     * Pair with notify_free() at window end or the producer stays parked.
     */
    using AllocFault = std::function<bool(Time)>;
    void set_alloc_fault(AllocFault fn) { alloc_fault_ = std::move(fn); }

    /**
     * Transient consumer stall: while the hook returns true, acquire()
     * refuses to latch (the screen repeats its front buffer), modelling a
     * stalled consumer/HWC. Clears itself when the window ends — the next
     * vsync edge latches normally.
     */
    using StallFault = std::function<bool(Time)>;
    void set_stall_fault(StallFault fn) { stall_fault_ = std::move(fn); }

    /**
     * Grow or shrink the total capacity at runtime (decoupling-aware API:
     * pre-render limit reconfiguration). Shrinking below the number of
     * in-use slots takes effect lazily as buffers free up.
     */
    void set_capacity(int capacity);

    /** All slots, for tests and introspection. */
    const std::vector<std::unique_ptr<FrameBuffer>> &slots() const
    {
        return slots_;
    }

  private:
    void make_slot();
    void release_to_free(FrameBuffer *buf);

    int capacity_;
    std::vector<std::unique_ptr<FrameBuffer>> slots_;
    std::deque<FrameBuffer *> free_;
    std::deque<FrameBuffer *> queued_;
    FrameBuffer *front_ = nullptr;
    std::function<void()> on_free_;
    AllocFault alloc_fault_;
    StallFault stall_fault_;
    int pending_shrink_ = 0;
};

} // namespace dvs

#endif // DVS_BUFFER_BUFFER_QUEUE_H
