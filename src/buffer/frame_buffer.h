/**
 * @file
 * Frame buffer: one slot of the producer/consumer buffer queue.
 *
 * A FrameBuffer models a graphics buffer handed between the rendering
 * pipeline (producer) and the screen (consumer). It carries the metadata
 * the D-VSync architecture needs: the content timestamp the frame was
 * rendered for, the nominal timeline slot it belongs to, and the refresh
 * rate it was rendered at (for the LTPO co-design).
 */

#ifndef DVS_BUFFER_FRAME_BUFFER_H
#define DVS_BUFFER_FRAME_BUFFER_H

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace dvs {

/** Lifecycle states of a buffer slot. */
enum class BufferState {
    kFree,     ///< owned by the queue, available for dequeue
    kDequeued, ///< owned by the producer, being rendered into
    kQueued,   ///< rendered, waiting in the FIFO for the screen
    kFront,    ///< latched by the screen, currently displayed
};

/** Human-readable state name (for logs and test diagnostics). */
const char *to_string(BufferState s);

/** Metadata describing the frame content a buffer holds. */
struct FrameMeta {
    /** Monotonic id of the frame across the whole run. */
    std::uint64_t frame_id = 0;

    /** Index of the frame on the content's nominal timeline. */
    std::int64_t nominal_index = -1;

    /**
     * Timestamp the content was computed for: the triggering VSync
     * timestamp under VSync, or the DTV-predicted display timestamp
     * (D-Timestamp) under D-VSync.
     */
    Time content_timestamp = kTimeNone;

    /**
     * Nominal timeline timestamp of this frame: the display slot the
     * frame logically occupies. Latency = present − nominal (§6.3).
     */
    Time timeline_timestamp = kTimeNone;

    /** Refresh rate (Hz) the frame was rendered for (LTPO binding). */
    double render_rate_hz = 0.0;

    /** True when the frame was produced via decoupled pre-rendering. */
    bool pre_rendered = false;
};

/**
 * One buffer slot. Created and owned by a BufferQueue; the pipeline and
 * screen reference slots by pointer while holding them.
 */
class FrameBuffer
{
  public:
    explicit FrameBuffer(int slot) : slot_(slot) {}

    int slot() const { return slot_; }
    BufferState state() const { return state_; }

    const FrameMeta &meta() const { return meta_; }
    FrameMeta &meta() { return meta_; }

    /** Time the producer dequeued the slot (kTimeNone when free). */
    Time dequeue_time() const { return dequeue_time_; }

    /** Time the rendered frame was queued (kTimeNone before queueing). */
    Time queue_time() const { return queue_time_; }

    /** Time the screen latched the buffer (kTimeNone before latch). */
    Time latch_time() const { return latch_time_; }

  private:
    friend class BufferQueue;

    int slot_;
    BufferState state_ = BufferState::kFree;
    FrameMeta meta_;
    Time dequeue_time_ = kTimeNone;
    Time queue_time_ = kTimeNone;
    Time latch_time_ = kTimeNone;
};

} // namespace dvs

#endif // DVS_BUFFER_FRAME_BUFFER_H
