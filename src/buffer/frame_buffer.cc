#include "buffer/frame_buffer.h"

namespace dvs {

const char *
to_string(BufferState s)
{
    switch (s) {
      case BufferState::kFree:
        return "free";
      case BufferState::kDequeued:
        return "dequeued";
      case BufferState::kQueued:
        return "queued";
      case BufferState::kFront:
        return "front";
    }
    return "?";
}

} // namespace dvs
