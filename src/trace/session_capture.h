/**
 * @file
 * SessionCapture: the persisted form of one recorded session (.dvst).
 *
 * A capture stores the *causal* inputs of a run — configuration, fault
 * plan, and per-segment workload (dense cost tables + touch streams) —
 * plus observational streams (per-frame lifecycle samples, the
 * LTPO/governor/watchdog timeline) that replay never consumes but the
 * bisect tooling reads. The causal half is minimal in the record/replay
 * sense: because every cost model in the repo is a pure function of the
 * nominal frame index, recording the table of values a segment *can*
 * query reproduces the run exactly without recording scheduler state.
 *
 * File format (.dvst), schema version 1:
 *
 *   "DVST"  u16 version  u8 kind (0 single / 1 multi)  u8 reserved(0)
 *   then sections, each:  4-byte tag | u32 payload len | payload | u32 CRC
 *
 *   META  provenance: label, verbatim flag, source dispatch hash +
 *         report fingerprint, transform lineage, timeline strings
 *   CONF  SystemConfig (single-surface captures)
 *   MCNF  MultiSurfaceConfig + per-surface descriptors (multi captures)
 *   FALT  fault plan windows (optional; absent = no injection)
 *   SEGS  scenario(s): per-segment kind/duration/label, dense cost
 *         table, touch events
 *   FRMS  observational per-frame samples (optional)
 *
 * Integers are LEB128 varints (zigzag + delta where consecutive values
 * correlate), doubles are raw bit patterns, every section payload is
 * CRC-32 guarded, and loading is strict: unknown tags, duplicate or
 * missing sections, out-of-range enums, trailing bytes, or any CRC
 * mismatch fail with a clear error — never a crash, never a silent
 * misparse. DESIGN.md §5i specifies the format and the replay
 * determinism contract in full.
 */

#ifndef DVS_TRACE_SESSION_CAPTURE_H
#define DVS_TRACE_SESSION_CAPTURE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/render_system.h"
#include "input/touch_event.h"
#include "pipeline/frame.h"
#include "surface/multi_surface.h"
#include "workload/trace.h"

namespace dvs {

/**
 * Observational copy of one FrameRecord's lifecycle — what the producer
 * did, kept for inspection and diffing; replay regenerates these.
 */
struct FrameSample {
    std::int64_t frame_id = 0;
    int segment_index = -1;
    SegmentKind kind = SegmentKind::kIdle;
    std::int64_t slot = -1;
    bool pre_rendered = false;
    FrameCost cost;
    double rate_hz = 0.0;
    Time trigger_time = kTimeNone;
    Time ui_start = kTimeNone;
    Time ui_end = kTimeNone;
    Time render_start = kTimeNone;
    Time render_end = kTimeNone;
    Time gpu_start = kTimeNone;
    Time gpu_end = kTimeNone;
    Time queue_time = kTimeNone;
    Time present_time = kTimeNone;

    static FrameSample from_record(const FrameRecord &rec);

    friend bool operator==(const FrameSample &,
                           const FrameSample &) = default;
};

/** One recorded scenario segment: script + materialized workload. */
struct SegmentCapture {
    SegmentKind kind = SegmentKind::kIdle;
    Time duration = 0;
    std::string label;

    /**
     * Dense per-slot cost table (empty for idle segments): entry s is
     * the value the producer's cost query returns for slot s, so a
     * TraceCostModel in kSegmentSlot mode replays the segment's costs
     * bit-exactly. Sized past the largest slot the segment can anchor
     * to; queries beyond the end clamp to the last entry.
     */
    FrameTrace costs;

    /** Touch events of interaction segments (segment-relative times). */
    std::vector<TouchEvent> touch;
};

/** One scenario: name + ordered segments. */
struct ScenarioCapture {
    std::string name;
    std::vector<SegmentCapture> segments;
};

/** One surface of a multi-surface capture. */
struct SurfaceCapture {
    // SurfaceDesc fields (the scenario is captured separately below).
    std::string name = "surface";
    bool dvsync_aware = true;
    double buffer_mb = 12.0;
    int max_extra_buffers = 4;
    double weight = 1.0;
    Time start_at = 0;

    ScenarioCapture scenario;

    /** Observational per-frame stream of this surface's producer. */
    std::vector<FrameSample> frames;
};

/**
 * A complete recorded session, loadable/savable as .dvst.
 */
struct SessionCapture {
    static constexpr std::uint16_t kSchemaVersion = 1;

    enum class Kind : std::uint8_t { kSingle = 0, kMulti = 1 };
    Kind kind = Kind::kSingle;

    /** Free-form provenance tag (who recorded this, from what run). */
    std::string label;

    /**
     * Whether the bit-exact replay contract holds: replaying the capture
     * unmodified must reproduce source_dispatch_hash and a RunReport
     * whose debug_string() hashes to source_report_fnv. Transforms and
     * mode overrides clear it — a mutated capture is a new scenario, not
     * a recording.
     */
    bool verbatim = false;
    std::uint64_t source_dispatch_hash = 0;
    std::uint64_t source_report_fnv = 0;

    /** Applied transforms, oldest first (empty for raw recordings). */
    std::vector<std::string> lineage;

    /** Recorded degrade/governor/LTPO transition log (observational). */
    std::vector<std::string> timeline;

    // ----- kSingle ------------------------------------------------------

    /**
     * The recorded SystemConfig, fault plan included (shared_ptr rebuilt
     * on load via FaultPlan::from_windows). sim_workers is recorded as
     * run; replay may override it — dispatch is byte-identical at any
     * worker count, so the override preserves the verbatim contract.
     */
    SystemConfig config;
    ScenarioCapture scenario;
    std::vector<FrameSample> frames; ///< observational

    // ----- kMulti -------------------------------------------------------

    MultiSurfaceConfig multi_config;
    std::vector<SurfaceCapture> surfaces;

    // ----- serialization ------------------------------------------------

    /** Serialize to .dvst bytes. */
    std::string encode() const;

    /**
     * Strict decode. @return false with @p error set on any malformed
     * input; @p out is untouched on failure. Never crashes.
     */
    static bool decode(const std::string &bytes, SessionCapture &out,
                       std::string &error);

    /** Write encode() to @p path. @return success. */
    bool save(const std::string &path) const;

    /**
     * Read + decode @p path. @return false with @p error set when the
     * file is unreadable or malformed.
     */
    static bool load(const std::string &path, SessionCapture &out,
                     std::string &error);
};

} // namespace dvs

#endif // DVS_TRACE_SESSION_CAPTURE_H
