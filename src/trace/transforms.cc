#include "trace/transforms.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.h"

namespace dvs {

namespace {

/**
 * A transform output is a new scenario: record what was done, revoke
 * the bit-exact contract, and drop the original run's observations.
 */
void
mark_derived(SessionCapture &cap, const std::string &what)
{
    cap.lineage.push_back(what);
    cap.verbatim = false;
    cap.source_dispatch_hash = 0;
    cap.source_report_fnv = 0;
    cap.frames.clear();
    for (SurfaceCapture &s : cap.surfaces)
        s.frames.clear();
    cap.timeline.clear();
}

Time
scale_time(Time t, double factor)
{
    return Time(std::llround(double(t) * factor));
}

/** Apply @p fn to every scenario of the capture (single or per-surface). */
template <typename Fn>
void
for_each_scenario(SessionCapture &cap, Fn fn)
{
    if (cap.kind == SessionCapture::Kind::kSingle) {
        fn(cap.scenario);
    } else {
        for (SurfaceCapture &s : cap.surfaces)
            fn(s.scenario);
    }
}

/** Rebuild the capture's fault plan from transformed windows. */
void
rewrite_faults(SessionCapture &cap,
               std::vector<FaultWindow> (*fn)(const FaultPlan &, double),
               double arg)
{
    const bool single = cap.kind == SessionCapture::Kind::kSingle;
    const std::shared_ptr<const FaultPlan> &plan =
        single ? cap.config.faults : cap.multi_config.faults;
    if (!plan)
        return;
    auto next = std::make_shared<const FaultPlan>(FaultPlan::from_windows(
        plan->seed(), plan->mix_name(), fn(*plan, arg)));
    if (single)
        cap.config.faults = next;
    else
        cap.multi_config.faults = next;
}

std::string
fmt(const char *pattern, double a, double b = 0.0)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), pattern, a, b);
    return buf;
}

} // namespace

SessionCapture
time_warp(SessionCapture cap, double factor)
{
    if (!(factor > 0.0))
        fatal("time_warp factor must be > 0, got %g", factor);
    for_each_scenario(cap, [&](ScenarioCapture &sc) {
        for (SegmentCapture &seg : sc.segments) {
            seg.duration = scale_time(seg.duration, factor);
            for (TouchEvent &ev : seg.touch)
                ev.timestamp = scale_time(ev.timestamp, factor);
        }
    });
    for (SurfaceCapture &s : cap.surfaces)
        s.start_at = scale_time(s.start_at, factor);
    rewrite_faults(
        cap,
        [](const FaultPlan &plan, double f) {
            std::vector<FaultWindow> windows = plan.windows();
            for (FaultWindow &w : windows) {
                w.start = scale_time(w.start, f);
                w.end = scale_time(w.end, f);
            }
            return windows;
        },
        factor);
    mark_derived(cap, fmt("time-warp x%g", factor));
    return cap;
}

SessionCapture
amplify_heavy_frames(SessionCapture cap, Time threshold, double factor)
{
    if (!(factor > 0.0))
        fatal("amplify factor must be > 0, got %g", factor);
    for_each_scenario(cap, [&](ScenarioCapture &sc) {
        for (SegmentCapture &seg : sc.segments) {
            for (FrameCost &fc : seg.costs.frames) {
                if (fc.total() <= threshold)
                    continue;
                fc.ui_time = scale_time(fc.ui_time, factor);
                fc.render_time = scale_time(fc.render_time, factor);
                fc.gpu_time = scale_time(fc.gpu_time, factor);
            }
        }
    });
    mark_derived(cap, fmt("amplify-heavy >%gms x%g",
                          double(threshold) / 1e6, factor));
    return cap;
}

SessionCapture
splice_input_burst(SessionCapture cap, Time at, Time duration,
                   Time spacing)
{
    if (spacing <= 0)
        fatal("splice_input_burst spacing must be > 0");
    for_each_scenario(cap, [&](ScenarioCapture &sc) {
        for (SegmentCapture &seg : sc.segments) {
            if (seg.kind != SegmentKind::kInteraction ||
                seg.touch.empty())
                continue;
            // Interpolate along the recorded gesture; only timestamps
            // inside the recorded span are eligible, so the segment's
            // derived duration (last - first event) is preserved.
            const TouchStream stream(seg.touch);
            const Time lo = std::max(at, stream.start_time());
            const Time hi =
                std::min(at + duration, stream.end_time());
            for (Time t = lo; t < hi; t += spacing) {
                TouchEvent ev = stream.interpolate(t);
                ev.timestamp = t;
                ev.phase = TouchPhase::kMove;
                seg.touch.push_back(ev);
            }
            std::stable_sort(seg.touch.begin(), seg.touch.end(),
                             [](const TouchEvent &a, const TouchEvent &b) {
                                 return a.timestamp < b.timestamp;
                             });
        }
    });
    mark_derived(cap, fmt("splice-input-burst @%gms for %gms",
                          double(at) / 1e6, double(duration) / 1e6));
    return cap;
}

SessionCapture
truncate_capture(SessionCapture cap, Time keep)
{
    if (keep <= 0)
        fatal("truncate_capture needs keep > 0");
    for_each_scenario(cap, [&](ScenarioCapture &sc) {
        std::vector<SegmentCapture> kept;
        Time cum = 0;
        for (SegmentCapture &seg : sc.segments) {
            if (cum >= keep)
                break;
            const Time rem = keep - cum;
            if (seg.duration <= rem) {
                cum += seg.duration;
                kept.push_back(std::move(seg));
                continue;
            }
            if (seg.kind == SegmentKind::kInteraction) {
                // Keep the touch prefix; the duration is derived from
                // it. A segment cut down to fewer than two samples has
                // no gesture left and is dropped whole.
                const Time start = seg.touch.front().timestamp;
                std::vector<TouchEvent> prefix;
                for (const TouchEvent &ev : seg.touch)
                    if (ev.timestamp - start <= rem)
                        prefix.push_back(ev);
                if (prefix.size() >= 2) {
                    seg.duration =
                        prefix.back().timestamp - prefix.front().timestamp;
                    seg.touch = std::move(prefix);
                    kept.push_back(std::move(seg));
                }
            } else {
                seg.duration = rem;
                kept.push_back(std::move(seg));
            }
            break;
        }
        sc.segments = std::move(kept);
    });
    rewrite_faults(
        cap,
        [](const FaultPlan &plan, double keep_ns) {
            const Time cut = Time(keep_ns);
            std::vector<FaultWindow> windows;
            for (FaultWindow w : plan.windows()) {
                if (w.start >= cut)
                    continue;
                w.end = std::min(w.end, cut);
                windows.push_back(w);
            }
            return windows;
        },
        double(keep));
    mark_derived(cap, fmt("truncate @%gms", double(keep) / 1e6));
    return cap;
}

SessionCapture
loop_capture(SessionCapture cap, int times)
{
    if (times < 1)
        fatal("loop_capture needs times >= 1, got %d", times);
    for_each_scenario(cap, [&](ScenarioCapture &sc) {
        const std::vector<SegmentCapture> once = sc.segments;
        for (int i = 1; i < times; ++i)
            sc.segments.insert(sc.segments.end(), once.begin(),
                               once.end());
    });
    mark_derived(cap, fmt("loop x%g", double(times)));
    return cap;
}

} // namespace dvs
