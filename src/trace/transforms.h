/**
 * @file
 * Trace transforms: mutate a real capture into a new scenario.
 *
 * Each transform is a pure value function SessionCapture -> Session-
 * Capture, so transforms compose by chaining. Every transform:
 *
 *  - appends a description of itself to the capture's lineage, so a
 *    derived trace documents its own provenance;
 *  - clears the verbatim flag and the recorded hashes — a mutated
 *    capture is a *new deterministic scenario*, not a recording, and
 *    claiming the original's bit-exact contract would be a lie;
 *  - drops the observational streams (frame samples, timeline), which
 *    describe the original run, not the mutated one.
 *
 * Replaying a transformed capture is still fully deterministic (same
 * file, same options -> byte-identical run); it just verifies against
 * nothing recorded.
 */

#ifndef DVS_TRACE_TRANSFORMS_H
#define DVS_TRACE_TRANSFORMS_H

#include "trace/session_capture.h"

namespace dvs {

/**
 * Scale the session's time axis by @p factor (> 0): segment durations,
 * touch timestamps, fault windows, and surface start times stretch
 * (factor > 1) or compress (factor < 1). Frame costs are untouched —
 * compressing time against constant costs raises effective load.
 */
SessionCapture time_warp(SessionCapture cap, double factor);

/**
 * Multiply the cost of every recorded frame whose total exceeds
 * @p threshold by @p factor — "what if the heavy frames were worse".
 */
SessionCapture amplify_heavy_frames(SessionCapture cap, Time threshold,
                                    double factor);

/**
 * Densify the touch stream of every interaction segment over the
 * segment-relative window [at, at + duration): insert one interpolated
 * kMove sample every @p spacing where the recorded gesture has a gap,
 * modeling an input burst riding on the captured gesture.
 */
SessionCapture splice_input_burst(SessionCapture cap, Time at,
                                  Time duration, Time spacing);

/**
 * Keep only the first @p keep of the scripted session: later segments
 * are dropped, the segment straddling the cut is trimmed (interaction
 * segments keep the touch prefix; one that loses its whole stream is
 * dropped). Fault windows past the cut go with them.
 */
SessionCapture truncate_capture(SessionCapture cap, Time keep);

/**
 * Repeat the scenario's segment list @p times times (>= 1), turning a
 * short capture into a soak. Fault windows stay where they were
 * recorded (absolute time), so only the first iteration is faulted.
 */
SessionCapture loop_capture(SessionCapture cap, int times);

} // namespace dvs

#endif // DVS_TRACE_TRANSFORMS_H
