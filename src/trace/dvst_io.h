/**
 * @file
 * Binary primitives of the .dvst trace format.
 *
 * The session capture format is a sequence of CRC-guarded sections after
 * a fixed 8-byte header. Everything inside a section payload is built
 * from four primitives:
 *
 *  - fixed-width little-endian integers (header fields, CRCs, raw
 *    64-bit values such as seeds);
 *  - LEB128 varints for unsigned counts and, zigzag-folded, for signed
 *    quantities (timestamps and costs are delta-encoded, so they are
 *    small signed numbers);
 *  - doubles as their raw IEEE-754 bit pattern (8 LE bytes) — the
 *    replay contract is *bit*-exact, so no decimal round-trip is ever
 *    allowed to touch a recorded value;
 *  - length-prefixed UTF-8 strings.
 *
 * ByteReader never throws and never reads out of bounds: the first
 * malformed read latches an error message and every subsequent read
 * returns zero, so decoders can parse straight-line and check ok() once
 * per section. Corrupt inputs must always yield a clean error — the
 * fuzz tests flip every byte of a capture and expect load() to fail.
 */

#ifndef DVS_TRACE_DVST_IO_H
#define DVS_TRACE_DVST_IO_H

#include <cstdint>
#include <string>
#include <string_view>

namespace dvs {

/** CRC-32 (IEEE 802.3, reflected) over @p n bytes. */
std::uint32_t dvst_crc32(const void *data, std::size_t n);

/** FNV-1a over a string — the report-fingerprint hash of the captures. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Appends primitives to a byte buffer. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(char(v)); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);

    /** Unsigned LEB128. */
    void varint(std::uint64_t v);

    /** Zigzag-folded LEB128. */
    void svarint(std::int64_t v);

    /** Raw IEEE-754 bit pattern, 8 LE bytes. */
    void f64(double v);

    /** Varint length + raw bytes. */
    void str(std::string_view s);

    void raw(const void *data, std::size_t n);

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked reader over a byte span. All reads return 0 after the
 * first failure; check ok()/error() at section granularity.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes)
        : p_(bytes.data()), end_(bytes.data() + bytes.size())
    {
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    bool at_end() const { return !ok_ || p_ == end_; }
    std::size_t remaining() const { return std::size_t(end_ - p_); }

    /** Latch a decode error (first one wins). */
    void fail(const std::string &why);

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::uint64_t varint();
    std::int64_t svarint();
    double f64();
    std::string str();

    /**
     * A count that prefixes a repeated group whose elements are at least
     * @p min_element_bytes each: bounded by the remaining payload so a
     * corrupted count can never drive a huge allocation.
     */
    std::uint64_t count(std::size_t min_element_bytes = 1);

  private:
    bool need(std::size_t n);

    const char *p_;
    const char *end_;
    bool ok_ = true;
    std::string error_;
};

/**
 * Append one framed section: 4-byte tag + u32 payload length + payload
 * + u32 CRC-32 of the payload.
 */
void dvst_write_section(std::string &out, const char tag[4],
                        const std::string &payload);

} // namespace dvs

#endif // DVS_TRACE_DVST_IO_H
