/**
 * @file
 * SessionRecorder: turn a finished run into a SessionCapture.
 *
 * The recorder hooks nothing while the run executes — it materializes
 * the capture *after* run() from state the pipeline already keeps: the
 * effective SystemConfig / MultiSurfaceConfig, the fault plan, every
 * producer's FrameRecords, the report's transition timeline, and the
 * event queue's dispatch hash. Post-run capture is equivalent to live
 * hooks here because the simulation is deterministic and the producer
 * retains every frame record; it costs the hot path nothing and cannot
 * perturb the event interleaving it is recording.
 *
 * The one derivation step is the workload: scenario segments carry live
 * FrameCostModel objects, which a file cannot hold. Because every cost
 * model is a pure function of the nominal frame index — the producer
 * queries slot + segment * kCostIndexStride — the recorder evaluates
 * each segment's model over the full slot range the segment can reach
 * and stores the resulting dense table. Replay serves that table back
 * through TraceCostModel in kSegmentSlot mode, reproducing every query
 * the original models would have answered, bit for bit.
 */

#ifndef DVS_TRACE_SESSION_RECORDER_H
#define DVS_TRACE_SESSION_RECORDER_H

#include <string>

#include "trace/session_capture.h"

namespace dvs {

class SessionRecorder
{
  public:
    /**
     * Capture a finished single-surface run. @pre sys.run() returned.
     * The capture is marked verbatim with the run's dispatch hash and
     * report fingerprint — replaying it unmodified must reproduce both.
     */
    static SessionCapture capture(RenderSystem &sys,
                                  const std::string &label = "");

    /** Capture a finished multi-surface run. @pre sys.run() returned. */
    static SessionCapture capture(MultiSurfaceSystem &sys,
                                  const std::string &label = "");

    /**
     * Capture @p sys, save the .dvst to @p path, then *prove* the file:
     * reload it and replay it verbatim, requiring the bit-exact contract
     * (dispatch hash + report fingerprint) to hold. @return false with
     * @p *error set on I/O failure or any replay divergence; on success
     * @p *out (when non-null) receives the reloaded capture. This is the
     * save path for anything that promises its captures replay — the
     * observatory's tail auto-capture pins every specimen through it.
     */
    static bool capture_verified(RenderSystem &sys,
                                 const std::string &label,
                                 const std::string &path,
                                 std::string *error = nullptr,
                                 SessionCapture *out = nullptr);

    /**
     * Derive the replayable form of @p scenario: dense per-segment cost
     * tables sized for @p device (covering the highest rate the panel
     * can anchor a segment at) widened to @p producer's observed slot
     * counts. Exposed for tests; capture() calls this per surface.
     */
    static ScenarioCapture capture_scenario(const Scenario &scenario,
                                            const DeviceConfig &device,
                                            const Producer &producer);
};

} // namespace dvs

#endif // DVS_TRACE_SESSION_RECORDER_H
