#include "trace/session_capture.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/dvst_io.h"

namespace dvs {

namespace {

constexpr char kMagic[4] = {'D', 'V', 'S', 'T'};

// Section tags. Any two differ in at least two bytes, so a single
// corrupted byte can never turn one valid tag into another.
constexpr char kTagMeta[4] = {'M', 'E', 'T', 'A'};
constexpr char kTagConf[4] = {'C', 'O', 'N', 'F'};
constexpr char kTagMultiConf[4] = {'M', 'C', 'N', 'F'};
constexpr char kTagFaults[4] = {'F', 'A', 'L', 'T'};
constexpr char kTagSegments[4] = {'S', 'E', 'G', 'S'};
constexpr char kTagFrames[4] = {'F', 'R', 'M', 'S'};

bool
tag_is(const char *tag, const char expect[4])
{
    return std::memcmp(tag, expect, 4) == 0;
}

// ----- bounded enum / bool reads ---------------------------------------

bool
read_bool(ByteReader &r, const char *what)
{
    const std::uint8_t v = r.u8();
    if (v > 1)
        r.fail(std::string(what) + " flag is not 0/1");
    return v == 1;
}

template <typename E>
E
read_enum(ByteReader &r, int limit, const char *what)
{
    const std::uint8_t v = r.u8();
    if (v >= limit) {
        r.fail(std::string(what) + " out of range");
        return E(0);
    }
    return E(v);
}

// ----- device / config payloads ----------------------------------------

void
encode_device(ByteWriter &w, const DeviceConfig &d)
{
    w.str(d.name);
    w.str(d.os);
    w.u8(std::uint8_t(d.backend));
    w.svarint(d.width);
    w.svarint(d.height);
    w.f64(d.refresh_hz);
    w.svarint(d.vsync_buffers);
    w.varint(d.ltpo_rates.size());
    for (double hz : d.ltpo_rates)
        w.f64(hz);
    w.f64(d.thermal_budget_mw);
    w.f64(d.thermal_headroom_c);
}

void
decode_device(ByteReader &r, DeviceConfig &d)
{
    d.name = r.str();
    d.os = r.str();
    d.backend = read_enum<Backend>(r, 2, "device backend");
    d.width = int(r.svarint());
    d.height = int(r.svarint());
    d.refresh_hz = r.f64();
    d.vsync_buffers = int(r.svarint());
    const std::uint64_t n = r.count(8);
    d.ltpo_rates.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        d.ltpo_rates.push_back(r.f64());
    d.thermal_budget_mw = r.f64();
    d.thermal_headroom_c = r.f64();
}

void
encode_thermal(ByteWriter &w, const ThermalSpec &t)
{
    w.u8(t.enabled ? 1 : 0);
    w.f64(t.envelope_scale);
    w.u8(t.params.has_value() ? 1 : 0);
    if (t.params) {
        const ThermalParams &p = *t.params;
        w.varint(p.levels.size());
        for (const DvfsLevel &lvl : p.levels) {
            w.f64(lvl.clock_ghz);
            w.f64(lvl.speed);
            w.f64(lvl.power_mw);
        }
        w.f64(p.ambient_c);
        w.f64(p.start_c);
        w.f64(p.throttle_c);
        w.f64(p.release_c);
        w.f64(p.resistance_c_per_w);
        w.svarint(p.tau);
        w.f64(p.coherent_scale);
    }
}

void
decode_thermal(ByteReader &r, ThermalSpec &t)
{
    t.enabled = read_bool(r, "thermal.enabled");
    t.envelope_scale = r.f64();
    if (read_bool(r, "thermal.has_params")) {
        ThermalParams p;
        const std::uint64_t n = r.count(24);
        p.levels.clear();
        for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
            DvfsLevel lvl;
            lvl.clock_ghz = r.f64();
            lvl.speed = r.f64();
            lvl.power_mw = r.f64();
            p.levels.push_back(lvl);
        }
        p.ambient_c = r.f64();
        p.start_c = r.f64();
        p.throttle_c = r.f64();
        p.release_c = r.f64();
        p.resistance_c_per_w = r.f64();
        p.tau = r.svarint();
        p.coherent_scale = r.f64();
        t.params = p;
    } else {
        t.params.reset();
    }
}

void
encode_governor(ByteWriter &w, const GovernorConfig &g)
{
    w.u8(g.enabled ? 1 : 0);
    w.svarint(g.control_interval);
    w.f64(g.temp_demote_c);
    w.f64(g.temp_promote_c);
    w.f64(g.energy_budget_mw);
    w.svarint(g.hold_ticks);
    w.svarint(g.promote_ticks);
    w.svarint(g.backoff_cap);
    w.svarint(g.backoff_window);
}

void
decode_governor(ByteReader &r, GovernorConfig &g)
{
    g.enabled = read_bool(r, "governor.enabled");
    g.control_interval = r.svarint();
    g.temp_demote_c = r.f64();
    g.temp_promote_c = r.f64();
    g.energy_budget_mw = r.f64();
    g.hold_ticks = int(r.svarint());
    g.promote_ticks = int(r.svarint());
    g.backoff_cap = int(r.svarint());
    g.backoff_window = r.svarint();
}

std::string
encode_system_config(const SystemConfig &c)
{
    ByteWriter w;
    encode_device(w, c.device);
    w.u8(std::uint8_t(c.mode));
    w.svarint(c.buffers);
    w.svarint(c.prerender_limit);
    w.u64(c.seed);
    w.svarint(c.vsync_jitter);
    w.svarint(c.dtv_calibration_interval);
    w.svarint(c.latch_lead);
    w.svarint(c.vsync_app_offset);
    w.svarint(c.vsync_rs_offset);
    w.svarint(c.predictor_overhead);
    w.svarint(c.pacing.fixed_interval);
    w.svarint(c.pacing.max_interval);
    w.svarint(c.pacing.window);
    w.f64(c.pacing.raise_threshold);
    w.f64(c.pacing.lower_threshold);
    w.u8(c.monitor_invariants ? 1 : 0);
    w.u8(c.watchdog ? 1 : 0);
    w.u8(c.forensics ? 1 : 0);
    w.svarint(c.metrics_interval);
    encode_thermal(w, c.thermal);
    encode_governor(w, c.governor);
    w.svarint(c.sim_workers);
    return w.take();
}

void
decode_system_config(ByteReader &r, SystemConfig &c)
{
    decode_device(r, c.device);
    c.mode = read_enum<RenderMode>(r, 3, "render mode");
    c.buffers = int(r.svarint());
    c.prerender_limit = int(r.svarint());
    c.seed = r.u64();
    c.vsync_jitter = r.svarint();
    c.dtv_calibration_interval = int(r.svarint());
    c.latch_lead = r.svarint();
    c.vsync_app_offset = r.svarint();
    c.vsync_rs_offset = r.svarint();
    c.predictor_overhead = r.svarint();
    c.pacing.fixed_interval = int(r.svarint());
    c.pacing.max_interval = int(r.svarint());
    c.pacing.window = int(r.svarint());
    c.pacing.raise_threshold = r.f64();
    c.pacing.lower_threshold = r.f64();
    c.monitor_invariants = read_bool(r, "monitor_invariants");
    c.watchdog = read_bool(r, "watchdog");
    c.forensics = read_bool(r, "forensics");
    c.metrics_interval = r.svarint();
    decode_thermal(r, c.thermal);
    decode_governor(r, c.governor);
    c.sim_workers = int(r.svarint());
    c.faults.reset(); // FALT section reinstalls a recorded plan
}

std::string
encode_multi_config(const MultiSurfaceConfig &c,
                    const std::vector<SurfaceCapture> &surfaces)
{
    ByteWriter w;
    encode_device(w, c.device);
    w.u64(c.seed);
    w.f64(c.budget_mb);
    w.u8(std::uint8_t(c.policy));
    w.svarint(c.latch_lead);
    w.svarint(c.compose_base);
    w.svarint(c.compose_per_layer);
    w.svarint(c.vsync_jitter);
    w.u8(c.monitor_invariants ? 1 : 0);
    w.u8(c.watchdog ? 1 : 0);
    w.u8(c.forensics ? 1 : 0);
    w.svarint(c.metrics_interval);
    w.u8(c.shared_gpu ? 1 : 0);
    w.svarint(c.sim_workers);
    w.varint(surfaces.size());
    for (const SurfaceCapture &s : surfaces) {
        w.str(s.name);
        w.u8(s.dvsync_aware ? 1 : 0);
        w.f64(s.buffer_mb);
        w.svarint(s.max_extra_buffers);
        w.f64(s.weight);
        w.svarint(s.start_at);
    }
    return w.take();
}

void
decode_multi_config(ByteReader &r, MultiSurfaceConfig &c,
                    std::vector<SurfaceCapture> &surfaces)
{
    decode_device(r, c.device);
    c.seed = r.u64();
    c.budget_mb = r.f64();
    c.policy = read_enum<ArbiterPolicy>(r, 2, "arbiter policy");
    c.latch_lead = r.svarint();
    c.compose_base = r.svarint();
    c.compose_per_layer = r.svarint();
    c.vsync_jitter = r.svarint();
    c.monitor_invariants = read_bool(r, "monitor_invariants");
    c.watchdog = read_bool(r, "watchdog");
    c.forensics = read_bool(r, "forensics");
    c.metrics_interval = r.svarint();
    c.shared_gpu = read_bool(r, "shared_gpu");
    c.sim_workers = int(r.svarint());
    c.faults.reset();
    const std::uint64_t n = r.count(8);
    surfaces.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        SurfaceCapture s;
        s.name = r.str();
        s.dvsync_aware = read_bool(r, "dvsync_aware");
        s.buffer_mb = r.f64();
        s.max_extra_buffers = int(r.svarint());
        s.weight = r.f64();
        s.start_at = r.svarint();
        surfaces.push_back(std::move(s));
    }
}

// ----- fault plan payload ----------------------------------------------

std::string
encode_faults(const FaultPlan &plan, int fault_surface)
{
    ByteWriter w;
    w.u64(plan.seed());
    w.str(plan.mix_name());
    w.svarint(fault_surface);
    w.varint(plan.windows().size());
    Time prev_start = 0;
    for (const FaultWindow &win : plan.windows()) {
        w.u8(std::uint8_t(win.kind));
        w.svarint(win.start - prev_start); // sorted: deltas stay small
        w.svarint(win.end - win.start);
        w.f64(win.magnitude);
        prev_start = win.start;
    }
    return w.take();
}

bool
decode_faults(ByteReader &r, std::shared_ptr<const FaultPlan> &out,
              int &fault_surface)
{
    const std::uint64_t seed = r.u64();
    const std::string mix_name = r.str();
    fault_surface = int(r.svarint());
    const std::uint64_t n = r.count(4);
    std::vector<FaultWindow> windows;
    Time prev_start = 0;
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        FaultWindow win;
        win.kind = read_enum<FaultKind>(r, kFaultKindCount, "fault kind");
        win.start = prev_start + r.svarint();
        win.end = win.start + r.svarint();
        win.magnitude = r.f64();
        prev_start = win.start;
        windows.push_back(win);
    }
    if (!r.ok())
        return false;
    out = std::make_shared<const FaultPlan>(
        FaultPlan::from_windows(seed, mix_name, std::move(windows)));
    return true;
}

// ----- scenario payloads -----------------------------------------------

void
encode_scenario(ByteWriter &w, const ScenarioCapture &sc)
{
    w.str(sc.name);
    w.varint(sc.segments.size());
    for (const SegmentCapture &seg : sc.segments) {
        w.u8(std::uint8_t(seg.kind));
        w.svarint(seg.duration);
        w.str(seg.label);

        w.str(seg.costs.name);
        w.f64(seg.costs.rate_hz);
        w.varint(seg.costs.frames.size());
        FrameCost prev{};
        for (const FrameCost &fc : seg.costs.frames) {
            w.svarint(fc.ui_time - prev.ui_time);
            w.svarint(fc.render_time - prev.render_time);
            w.svarint(fc.gpu_time - prev.gpu_time);
            prev = fc;
        }

        w.varint(seg.touch.size());
        Time prev_ts = 0;
        for (const TouchEvent &ev : seg.touch) {
            w.svarint(ev.timestamp - prev_ts);
            w.u8(std::uint8_t(ev.phase));
            w.f64(ev.x);
            w.f64(ev.y);
            w.f64(ev.pinch_distance);
            prev_ts = ev.timestamp;
        }
    }
}

void
decode_scenario(ByteReader &r, ScenarioCapture &sc)
{
    sc.name = r.str();
    const std::uint64_t nseg = r.count(4);
    sc.segments.clear();
    for (std::uint64_t i = 0; i < nseg && r.ok(); ++i) {
        SegmentCapture seg;
        seg.kind = read_enum<SegmentKind>(r, 4, "segment kind");
        seg.duration = r.svarint();
        seg.label = r.str();

        seg.costs.name = r.str();
        seg.costs.rate_hz = r.f64();
        const std::uint64_t nframes = r.count(3);
        FrameCost prev{};
        for (std::uint64_t k = 0; k < nframes && r.ok(); ++k) {
            FrameCost fc;
            fc.ui_time = prev.ui_time + r.svarint();
            fc.render_time = prev.render_time + r.svarint();
            fc.gpu_time = prev.gpu_time + r.svarint();
            seg.costs.frames.push_back(fc);
            prev = fc;
        }

        const std::uint64_t ntouch = r.count(26);
        Time prev_ts = 0;
        for (std::uint64_t k = 0; k < ntouch && r.ok(); ++k) {
            TouchEvent ev;
            ev.timestamp = prev_ts + r.svarint();
            ev.phase = read_enum<TouchPhase>(r, 3, "touch phase");
            ev.x = r.f64();
            ev.y = r.f64();
            ev.pinch_distance = r.f64();
            seg.touch.push_back(ev);
            prev_ts = ev.timestamp;
        }
        sc.segments.push_back(std::move(seg));
    }
}

// ----- frame sample payloads -------------------------------------------

void
encode_frames(ByteWriter &w, const std::vector<FrameSample> &frames)
{
    w.varint(frames.size());
    FrameSample prev;
    prev.frame_id = 0;
    prev.slot = 0;
    prev.segment_index = 0;
    prev.cost = FrameCost{};
    prev.trigger_time = prev.ui_start = prev.ui_end = 0;
    prev.render_start = prev.render_end = 0;
    prev.gpu_start = prev.gpu_end = 0;
    prev.queue_time = prev.present_time = 0;
    for (const FrameSample &f : frames) {
        w.svarint(f.frame_id - prev.frame_id);
        w.svarint(f.segment_index - prev.segment_index);
        w.u8(std::uint8_t(f.kind));
        w.svarint(f.slot - prev.slot);
        w.u8(f.pre_rendered ? 1 : 0);
        w.svarint(f.cost.ui_time - prev.cost.ui_time);
        w.svarint(f.cost.render_time - prev.cost.render_time);
        w.svarint(f.cost.gpu_time - prev.cost.gpu_time);
        w.f64(f.rate_hz);
        w.svarint(f.trigger_time - prev.trigger_time);
        w.svarint(f.ui_start - prev.ui_start);
        w.svarint(f.ui_end - prev.ui_end);
        w.svarint(f.render_start - prev.render_start);
        w.svarint(f.render_end - prev.render_end);
        w.svarint(f.gpu_start - prev.gpu_start);
        w.svarint(f.gpu_end - prev.gpu_end);
        w.svarint(f.queue_time - prev.queue_time);
        w.svarint(f.present_time - prev.present_time);
        prev = f;
    }
}

void
decode_frames(ByteReader &r, std::vector<FrameSample> &frames)
{
    const std::uint64_t n = r.count(16);
    frames.clear();
    FrameSample prev;
    prev.frame_id = 0;
    prev.slot = 0;
    prev.segment_index = 0;
    prev.cost = FrameCost{};
    prev.trigger_time = prev.ui_start = prev.ui_end = 0;
    prev.render_start = prev.render_end = 0;
    prev.gpu_start = prev.gpu_end = 0;
    prev.queue_time = prev.present_time = 0;
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        FrameSample f;
        f.frame_id = prev.frame_id + r.svarint();
        f.segment_index = int(prev.segment_index + r.svarint());
        f.kind = read_enum<SegmentKind>(r, 4, "frame segment kind");
        f.slot = prev.slot + r.svarint();
        f.pre_rendered = read_bool(r, "pre_rendered");
        f.cost.ui_time = prev.cost.ui_time + r.svarint();
        f.cost.render_time = prev.cost.render_time + r.svarint();
        f.cost.gpu_time = prev.cost.gpu_time + r.svarint();
        f.rate_hz = r.f64();
        f.trigger_time = prev.trigger_time + r.svarint();
        f.ui_start = prev.ui_start + r.svarint();
        f.ui_end = prev.ui_end + r.svarint();
        f.render_start = prev.render_start + r.svarint();
        f.render_end = prev.render_end + r.svarint();
        f.gpu_start = prev.gpu_start + r.svarint();
        f.gpu_end = prev.gpu_end + r.svarint();
        f.queue_time = prev.queue_time + r.svarint();
        f.present_time = prev.present_time + r.svarint();
        frames.push_back(f);
        prev = f;
    }
}

// ----- meta payload -----------------------------------------------------

// Bits of the META section map: which optional sections follow. A file
// truncated at a section boundary would otherwise still parse; the map
// makes whole-section loss detectable.
constexpr std::uint8_t kMapFaults = 1u << 0;
constexpr std::uint8_t kMapFrames = 1u << 1;

std::string
encode_meta(const SessionCapture &cap, std::uint8_t section_map)
{
    ByteWriter w;
    w.u8(section_map);
    w.str(cap.label);
    w.u8(cap.verbatim ? 1 : 0);
    w.u64(cap.source_dispatch_hash);
    w.u64(cap.source_report_fnv);
    w.varint(cap.lineage.size());
    for (const std::string &s : cap.lineage)
        w.str(s);
    w.varint(cap.timeline.size());
    for (const std::string &s : cap.timeline)
        w.str(s);
    return w.take();
}

void
decode_meta(ByteReader &r, SessionCapture &cap, std::uint8_t &section_map)
{
    section_map = r.u8();
    if (section_map & ~(kMapFaults | kMapFrames))
        r.fail("unknown bits in the section map");
    cap.label = r.str();
    cap.verbatim = read_bool(r, "verbatim");
    cap.source_dispatch_hash = r.u64();
    cap.source_report_fnv = r.u64();
    const std::uint64_t nlin = r.count(1);
    cap.lineage.clear();
    for (std::uint64_t i = 0; i < nlin && r.ok(); ++i)
        cap.lineage.push_back(r.str());
    const std::uint64_t ntl = r.count(1);
    cap.timeline.clear();
    for (std::uint64_t i = 0; i < ntl && r.ok(); ++i)
        cap.timeline.push_back(r.str());
}

} // namespace

FrameSample
FrameSample::from_record(const FrameRecord &rec)
{
    FrameSample f;
    f.frame_id = std::int64_t(rec.frame_id);
    f.segment_index = rec.segment_index;
    f.kind = rec.kind;
    f.slot = rec.slot;
    f.pre_rendered = rec.pre_rendered;
    f.cost = rec.cost;
    f.rate_hz = rec.rate_hz;
    f.trigger_time = rec.trigger_time;
    f.ui_start = rec.ui_start;
    f.ui_end = rec.ui_end;
    f.render_start = rec.render_start;
    f.render_end = rec.render_end;
    f.gpu_start = rec.gpu_start;
    f.gpu_end = rec.gpu_end;
    f.queue_time = rec.queue_time;
    f.present_time = rec.present_time;
    return f;
}

std::string
SessionCapture::encode() const
{
    std::string out;
    {
        ByteWriter header;
        header.raw(kMagic, 4);
        header.u16(kSchemaVersion);
        header.u8(std::uint8_t(kind));
        header.u8(0); // reserved
        out += header.bytes();
    }

    const FaultPlan *plan = kind == Kind::kSingle
                                ? config.faults.get()
                                : multi_config.faults.get();
    const int fault_surface =
        kind == Kind::kSingle ? 0 : multi_config.fault_surface;
    const bool any_frames =
        kind == Kind::kSingle
            ? !frames.empty()
            : [&] {
                  for (const SurfaceCapture &s : surfaces)
                      if (!s.frames.empty())
                          return true;
                  return false;
              }();

    const std::uint8_t section_map =
        std::uint8_t((plan ? kMapFaults : 0) | (any_frames ? kMapFrames : 0));
    dvst_write_section(out, kTagMeta, encode_meta(*this, section_map));

    if (kind == Kind::kSingle)
        dvst_write_section(out, kTagConf, encode_system_config(config));
    else
        dvst_write_section(out, kTagMultiConf,
                           encode_multi_config(multi_config, surfaces));

    if (plan)
        dvst_write_section(out, kTagFaults,
                           encode_faults(*plan, fault_surface));

    {
        ByteWriter w;
        if (kind == Kind::kSingle) {
            w.varint(1);
            encode_scenario(w, scenario);
        } else {
            w.varint(surfaces.size());
            for (const SurfaceCapture &s : surfaces)
                encode_scenario(w, s.scenario);
        }
        dvst_write_section(out, kTagSegments, w.take());
    }

    if (any_frames) {
        ByteWriter w;
        if (kind == Kind::kSingle) {
            w.varint(1);
            encode_frames(w, frames);
        } else {
            w.varint(surfaces.size());
            for (const SurfaceCapture &s : surfaces)
                encode_frames(w, s.frames);
        }
        dvst_write_section(out, kTagFrames, w.take());
    }

    return out;
}

bool
SessionCapture::decode(const std::string &bytes, SessionCapture &out,
                       std::string &error)
{
    // Decode into a scratch capture; `out` is only assigned on success.
    SessionCapture cap;

    if (bytes.size() < 8) {
        error = "not a .dvst file: shorter than the 8-byte header";
        return false;
    }
    if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
        error = "not a .dvst file: bad magic";
        return false;
    }
    const std::uint16_t version =
        std::uint16_t(std::uint8_t(bytes[4]) |
                      (std::uint16_t(std::uint8_t(bytes[5])) << 8));
    if (version != kSchemaVersion) {
        error = "unsupported .dvst schema version " +
                std::to_string(version) + " (this build reads version " +
                std::to_string(kSchemaVersion) + ")";
        return false;
    }
    const std::uint8_t kind_byte = std::uint8_t(bytes[6]);
    if (kind_byte > 1) {
        error = "bad capture kind byte " + std::to_string(kind_byte);
        return false;
    }
    cap.kind = Kind(kind_byte);
    if (std::uint8_t(bytes[7]) != 0) {
        error = "nonzero reserved header byte";
        return false;
    }

    // Sections must appear in canonical order: META, CONF|MCNF,
    // [FALT], SEGS, [FRMS] — strictness is what lets the fuzz tests
    // promise that every corrupted byte is caught.
    enum Stage { kWantMeta, kWantConf, kWantSegs, kWantFrames, kDone };
    Stage stage = kWantMeta;
    std::shared_ptr<const FaultPlan> plan;
    int fault_surface = 0;
    bool have_faults = false;
    std::uint8_t section_map = 0;

    std::size_t pos = 8;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < 12) {
            error = "truncated section header";
            return false;
        }
        const char *tag = bytes.data() + pos;
        const std::uint32_t len =
            std::uint32_t(std::uint8_t(bytes[pos + 4])) |
              (std::uint32_t(std::uint8_t(bytes[pos + 5])) << 8) |
              (std::uint32_t(std::uint8_t(bytes[pos + 6])) << 16) |
              (std::uint32_t(std::uint8_t(bytes[pos + 7])) << 24);
        if (bytes.size() - pos - 12 < len) {
            error = "section length exceeds file size";
            return false;
        }
        const char *payload = bytes.data() + pos + 8;
        const std::size_t crc_pos = pos + 8 + len;
        const std::uint32_t stored_crc =
            std::uint32_t(std::uint8_t(bytes[crc_pos])) |
            (std::uint32_t(std::uint8_t(bytes[crc_pos + 1])) << 8) |
            (std::uint32_t(std::uint8_t(bytes[crc_pos + 2])) << 16) |
            (std::uint32_t(std::uint8_t(bytes[crc_pos + 3])) << 24);
        const std::string tag_str(tag, 4);
        if (dvst_crc32(payload, len) != stored_crc) {
            error = "CRC mismatch in section " + tag_str;
            return false;
        }
        ByteReader r(std::string_view(payload, len));

        if (tag_is(tag, kTagMeta)) {
            if (stage != kWantMeta) {
                error = "META section out of order or duplicated";
                return false;
            }
            decode_meta(r, cap, section_map);
            stage = kWantConf;
        } else if (tag_is(tag, kTagConf)) {
            if (stage != kWantConf || cap.kind != Kind::kSingle) {
                error = "CONF section unexpected here";
                return false;
            }
            decode_system_config(r, cap.config);
            stage = kWantSegs;
        } else if (tag_is(tag, kTagMultiConf)) {
            if (stage != kWantConf || cap.kind != Kind::kMulti) {
                error = "MCNF section unexpected here";
                return false;
            }
            decode_multi_config(r, cap.multi_config, cap.surfaces);
            stage = kWantSegs;
        } else if (tag_is(tag, kTagFaults)) {
            if (stage != kWantSegs || have_faults) {
                error = "FALT section out of order or duplicated";
                return false;
            }
            if (!decode_faults(r, plan, fault_surface)) {
                error = "malformed FALT section: " + r.error();
                return false;
            }
            have_faults = true;
        } else if (tag_is(tag, kTagSegments)) {
            if (stage != kWantSegs) {
                error = "SEGS section out of order or duplicated";
                return false;
            }
            const std::uint64_t n = r.count(4);
            if (cap.kind == Kind::kSingle) {
                if (n != 1) {
                    error = "single-surface capture must hold exactly "
                            "one scenario";
                    return false;
                }
                decode_scenario(r, cap.scenario);
            } else {
                if (n != cap.surfaces.size()) {
                    error = "scenario count does not match the declared "
                            "surfaces";
                    return false;
                }
                for (SurfaceCapture &s : cap.surfaces)
                    decode_scenario(r, s.scenario);
            }
            stage = kWantFrames;
        } else if (tag_is(tag, kTagFrames)) {
            if (stage != kWantFrames) {
                error = "FRMS section out of order or duplicated";
                return false;
            }
            const std::uint64_t n = r.count(1);
            if (cap.kind == Kind::kSingle) {
                if (n != 1) {
                    error = "single-surface capture must hold exactly "
                            "one frame stream";
                    return false;
                }
                decode_frames(r, cap.frames);
            } else {
                if (n != cap.surfaces.size()) {
                    error = "frame-stream count does not match the "
                            "declared surfaces";
                    return false;
                }
                for (SurfaceCapture &s : cap.surfaces)
                    decode_frames(r, s.frames);
            }
            stage = kDone;
        } else {
            error = "unknown section tag \"" + tag_str + "\"";
            return false;
        }

        if (!r.ok()) {
            error = "malformed " + tag_str + " section: " + r.error();
            return false;
        }
        if (!r.at_end()) {
            error = "trailing bytes in section " + tag_str;
            return false;
        }
        pos = crc_pos + 4;
    }

    if (stage == kWantMeta || stage == kWantConf) {
        error = "missing required sections (META/CONF)";
        return false;
    }
    if (stage == kWantSegs) {
        error = "missing required SEGS section";
        return false;
    }
    // Cross-check the META section map: a file cut at a section boundary
    // (or one with a bolted-on optional section) is not a valid capture.
    if (have_faults != bool(section_map & kMapFaults)) {
        error = have_faults
                    ? "FALT section present but not declared in META"
                    : "FALT section declared in META but missing";
        return false;
    }
    if ((stage == kDone) != bool(section_map & kMapFrames)) {
        error = stage == kDone
                    ? "FRMS section present but not declared in META"
                    : "FRMS section declared in META but missing";
        return false;
    }

    if (have_faults) {
        if (cap.kind == Kind::kSingle) {
            cap.config.faults = plan;
        } else {
            cap.multi_config.faults = plan;
            cap.multi_config.fault_surface = fault_surface;
        }
    }

    out = std::move(cap);
    return true;
}

bool
SessionCapture::save(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    const std::string bytes = encode();
    f.write(bytes.data(), std::streamsize(bytes.size()));
    return bool(f);
}

bool
SessionCapture::load(const std::string &path, SessionCapture &out,
                     std::string &error)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    if (!decode(buf.str(), out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

} // namespace dvs
