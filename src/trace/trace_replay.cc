#include "trace/trace_replay.h"

#include <memory>

#include "sim/logging.h"
#include "trace/dvst_io.h"

namespace dvs {

namespace {

std::shared_ptr<const TraceCostModel>
table_model(const SegmentCapture &seg)
{
    if (seg.costs.frames.empty())
        fatal("segment \"%s\" has no recorded cost table",
              seg.label.c_str());
    return std::make_shared<const TraceCostModel>(
        seg.costs, TraceIndexMode::kSegmentSlot);
}

} // namespace

Scenario
build_scenario(const ScenarioCapture &sc)
{
    Scenario out(sc.name);
    for (const SegmentCapture &seg : sc.segments) {
        switch (seg.kind) {
          case SegmentKind::kAnimation:
            out.animate(seg.duration, table_model(seg), seg.label);
            break;
          case SegmentKind::kInteraction:
            out.interact(std::make_shared<const TouchStream>(seg.touch),
                         table_model(seg), seg.label);
            break;
          case SegmentKind::kRealtime:
            out.realtime(seg.duration, table_model(seg), seg.label);
            break;
          case SegmentKind::kIdle:
            out.idle(seg.duration);
            break;
        }
    }
    return out;
}

std::vector<SurfaceDesc>
build_surfaces(const SessionCapture &cap)
{
    std::vector<SurfaceDesc> descs;
    for (const SurfaceCapture &s : cap.surfaces) {
        SurfaceDesc d;
        d.name = s.name;
        d.scenario = build_scenario(s.scenario);
        d.dvsync_aware = s.dvsync_aware;
        d.buffer_mb = s.buffer_mb;
        d.max_extra_buffers = s.max_extra_buffers;
        d.weight = s.weight;
        d.start_at = s.start_at;
        descs.push_back(std::move(d));
    }
    return descs;
}

std::uint64_t
ReplayResult::report_fnv() const
{
    return fnv1a(report.debug_string());
}

std::string
ReplayResult::verify_against(const SessionCapture &cap) const
{
    if (!cap.verbatim)
        return "capture is not verbatim (transformed or synthesized); "
               "no recorded hashes to verify against";
    if (!verbatim)
        return "replay overrode the recorded configuration; the "
               "bit-exact contract does not apply";
    if (dispatch_hash != cap.source_dispatch_hash)
        return "dispatch hash diverged: recorded " +
               std::to_string(cap.source_dispatch_hash) + ", replayed " +
               std::to_string(dispatch_hash);
    if (report_fnv() != cap.source_report_fnv)
        return "RunReport diverged: recorded fingerprint " +
               std::to_string(cap.source_report_fnv) + ", replayed " +
               std::to_string(report_fnv());
    return {};
}

ReplayResult
replay_session(const SessionCapture &cap, const ReplayOptions &opts)
{
    ReplayResult result;
    if (cap.kind == SessionCapture::Kind::kSingle) {
        SystemConfig cfg = cap.config;
        if (opts.mode)
            cfg.mode = *opts.mode;
        if (opts.sim_workers >= 0)
            cfg.sim_workers = opts.sim_workers;
        RenderSystem sys(cfg, build_scenario(cap.scenario));
        result.report = sys.run();
        result.dispatch_hash = sys.sim().events().dispatch_hash();
    } else {
        MultiSurfaceConfig cfg = cap.multi_config;
        if (opts.sim_workers >= 0)
            cfg.sim_workers = opts.sim_workers;
        std::vector<SurfaceDesc> descs = build_surfaces(cap);
        if (opts.mode) {
            if (*opts.mode == RenderMode::kPaced)
                fatal("swap-interval pacing cannot be forced onto a "
                      "multi-surface capture");
            for (SurfaceDesc &d : descs)
                d.dvsync_aware = *opts.mode == RenderMode::kDvsync;
        }
        MultiSurfaceSystem sys(std::move(descs), cfg);
        result.report = sys.run();
        result.dispatch_hash = sys.sim().events().dispatch_hash();
    }
    // A sim_workers override alone keeps the contract: lane dispatch is
    // byte-identical to serial at any worker count.
    result.verbatim = cap.verbatim && !opts.mode;
    return result;
}

} // namespace dvs
