/**
 * @file
 * Trace replay: run a SessionCapture as a workload.
 *
 * A capture plugs back into the simulator like any scenario: the
 * recorded per-segment cost tables become TraceCostModels (kSegmentSlot
 * mode), the touch streams are reinstalled verbatim, the recorded
 * SystemConfig / MultiSurfaceConfig (fault plan included) drives the
 * same pipeline assembly, and the run proceeds through the ordinary
 * RenderSystem / MultiSurfaceSystem path.
 *
 * Determinism contract (DESIGN.md §5i): replaying a verbatim capture
 * with no mode override reproduces the recorded session *bit-exactly* —
 * the event queue's FNV dispatch hash equals source_dispatch_hash and
 * the RunReport is field-by-field identical (its debug_string() hashes
 * to source_report_fnv). Overriding sim_workers preserves the contract
 * (parallel lane dispatch is byte-identical to serial at any worker
 * count); overriding the pacing mode yields a deterministic what-if run
 * of the same recorded workload, not a recording.
 */

#ifndef DVS_TRACE_TRACE_REPLAY_H
#define DVS_TRACE_TRACE_REPLAY_H

#include <optional>

#include "trace/session_capture.h"

namespace dvs {

/** Replay knobs. Default-constructed options replay verbatim. */
struct ReplayOptions {
    /**
     * Pacing override. Single-surface: replaces config.mode. Multi:
     * kVsync forces every surface oblivious, kDvsync forces every
     * surface aware (kPaced is single-surface only and fatals on multi).
     * Unset replays as recorded.
     */
    std::optional<RenderMode> mode;

    /** Parallel lane-dispatch workers; -1 replays as recorded. */
    int sim_workers = -1;
};

/** Outcome of one replay. */
struct ReplayResult {
    RunReport report;
    std::uint64_t dispatch_hash = 0;

    /**
     * Whether this run re-executed the capture's own configuration (no
     * mode override on a verbatim capture) and is therefore covered by
     * the bit-exact contract against the recorded hashes.
     */
    bool verbatim = false;

    /** FNV-1a fingerprint of report.debug_string(). */
    std::uint64_t report_fnv() const;

    /**
     * Check the bit-exact contract against @p cap. @return an empty
     * string on success, else a description of the divergence. Always
     * fails (with an explanation) when the run was not verbatim.
     */
    std::string verify_against(const SessionCapture &cap) const;
};

/** Rebuild a live Scenario from a recorded one. */
Scenario build_scenario(const ScenarioCapture &sc);

/** Rebuild the SurfaceDescs of a multi-surface capture. */
std::vector<SurfaceDesc> build_surfaces(const SessionCapture &cap);

/** Run @p cap under @p opts. */
ReplayResult replay_session(const SessionCapture &cap,
                            const ReplayOptions &opts = {});

} // namespace dvs

#endif // DVS_TRACE_TRACE_REPLAY_H
