#include "trace/dvst_io.h"

#include <cstring>

namespace dvs {

namespace {

/** Lazily built reflected CRC-32 table (polynomial 0xEDB88320). */
const std::uint32_t *
crc_table()
{
    static std::uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

} // namespace

std::uint32_t
dvst_crc32(const void *data, std::size_t n)
{
    const std::uint32_t *table = crc_table();
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

// ----- ByteWriter ------------------------------------------------------

void
ByteWriter::u16(std::uint16_t v)
{
    u8(std::uint8_t(v));
    u8(std::uint8_t(v >> 8));
}

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        u8(std::uint8_t(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        u8(std::uint8_t(v >> (8 * i)));
}

void
ByteWriter::varint(std::uint64_t v)
{
    while (v >= 0x80) {
        u8(std::uint8_t(v) | 0x80);
        v >>= 7;
    }
    u8(std::uint8_t(v));
}

void
ByteWriter::svarint(std::int64_t v)
{
    // Zigzag: small magnitudes of either sign stay short.
    varint((std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63));
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
ByteWriter::str(std::string_view s)
{
    varint(s.size());
    raw(s.data(), s.size());
}

void
ByteWriter::raw(const void *data, std::size_t n)
{
    buf_.append(static_cast<const char *>(data), n);
}

// ----- ByteReader ------------------------------------------------------

void
ByteReader::fail(const std::string &why)
{
    if (ok_) {
        ok_ = false;
        error_ = why;
        p_ = end_;
    }
}

bool
ByteReader::need(std::size_t n)
{
    if (!ok_)
        return false;
    if (std::size_t(end_ - p_) < n) {
        fail("truncated payload");
        return false;
    }
    return true;
}

std::uint8_t
ByteReader::u8()
{
    if (!need(1))
        return 0;
    return std::uint8_t(*p_++);
}

std::uint16_t
ByteReader::u16()
{
    const std::uint16_t lo = u8();
    return std::uint16_t(lo | (std::uint16_t(u8()) << 8));
}

std::uint32_t
ByteReader::u32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(u8()) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(u8()) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::varint()
{
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        const std::uint8_t b = u8();
        if (!ok_)
            return 0;
        v |= std::uint64_t(b & 0x7F) << shift;
        if (!(b & 0x80))
            return v;
    }
    fail("varint longer than 64 bits");
    return 0;
}

std::int64_t
ByteReader::svarint()
{
    const std::uint64_t z = varint();
    return std::int64_t(z >> 1) ^ -std::int64_t(z & 1);
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
ByteReader::str()
{
    const std::uint64_t n = varint();
    if (!need(n))
        return {};
    std::string s(p_, n);
    p_ += n;
    return s;
}

std::uint64_t
ByteReader::count(std::size_t min_element_bytes)
{
    const std::uint64_t n = varint();
    if (!ok_)
        return 0;
    if (min_element_bytes < 1)
        min_element_bytes = 1;
    if (n > remaining() / min_element_bytes + 1) {
        fail("element count exceeds payload size");
        return 0;
    }
    return n;
}

// ----- section framing -------------------------------------------------

void
dvst_write_section(std::string &out, const char tag[4],
                   const std::string &payload)
{
    ByteWriter w;
    w.raw(tag, 4);
    w.u32(std::uint32_t(payload.size()));
    w.raw(payload.data(), payload.size());
    w.u32(dvst_crc32(payload.data(), payload.size()));
    out += w.bytes();
}

} // namespace dvs
