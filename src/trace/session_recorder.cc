#include "trace/session_recorder.h"

#include <algorithm>
#include <cmath>

#include "trace/dvst_io.h"
#include "trace/trace_replay.h"

namespace dvs {

namespace {

/** Highest rate the panel can anchor a segment's timeline at. */
double
max_refresh_hz(const DeviceConfig &device)
{
    double hz = device.refresh_hz;
    for (double r : device.ltpo_rates)
        hz = std::max(hz, r);
    return hz;
}

std::vector<FrameSample>
sample_records(const Producer &producer)
{
    std::vector<FrameSample> out;
    out.reserve(producer.records().size());
    for (const FrameRecord &rec : producer.records())
        out.push_back(FrameSample::from_record(rec));
    return out;
}

} // namespace

ScenarioCapture
SessionRecorder::capture_scenario(const Scenario &scenario,
                                  const DeviceConfig &device,
                                  const Producer &producer)
{
    ScenarioCapture sc;
    sc.name = scenario.name();
    const double max_hz = max_refresh_hz(device);
    for (std::size_t i = 0; i < scenario.size(); ++i) {
        const Segment &seg = scenario.segments()[i];
        SegmentCapture cap;
        cap.kind = seg.kind;
        cap.duration = seg.duration;
        cap.label = seg.label;
        if (seg.produces_frames()) {
            // Table bound: a segment anchored at the panel's highest
            // rate owes at most ceil(duration * hz / 1e9) + 1 slots;
            // widen to the slot count this run actually resolved (the
            // anchor lands after the segment start, never before), so
            // the table covers every query replay can make.
            std::int64_t slots = std::int64_t(
                std::ceil(double(seg.duration) * max_hz / 1e9)) + 2;
            const SegmentState &st = producer.segment_state(int(i));
            if (st.total_slots > 0)
                slots = std::max(slots, st.total_slots);
            cap.costs.name = seg.label;
            cap.costs.rate_hz = max_hz;
            cap.costs.frames.reserve(std::size_t(slots));
            for (std::int64_t s = 0; s < slots; ++s)
                cap.costs.frames.push_back(seg.cost->cost_for(
                    s + std::int64_t(i) * kCostIndexStride));
        }
        if (seg.touch)
            cap.touch = seg.touch->events();
        sc.segments.push_back(std::move(cap));
    }
    return sc;
}

SessionCapture
SessionRecorder::capture(RenderSystem &sys, const std::string &label)
{
    SessionCapture cap;
    cap.kind = SessionCapture::Kind::kSingle;
    cap.label = label;
    cap.config = sys.config();
    cap.scenario = capture_scenario(sys.producer().scenario(),
                                    sys.config().device, sys.producer());
    cap.frames = sample_records(sys.producer());

    const RunReport report = sys.report();
    cap.timeline = report.timeline;
    cap.verbatim = true;
    cap.source_dispatch_hash = sys.sim().events().dispatch_hash();
    cap.source_report_fnv = fnv1a(report.debug_string());
    return cap;
}

SessionCapture
SessionRecorder::capture(MultiSurfaceSystem &sys, const std::string &label)
{
    SessionCapture cap;
    cap.kind = SessionCapture::Kind::kMulti;
    cap.label = label;
    cap.multi_config = sys.config();
    for (int i = 0; i < int(sys.size()); ++i) {
        const SurfaceDesc &desc = sys.desc(i);
        SurfaceCapture s;
        s.name = desc.name;
        s.dvsync_aware = desc.dvsync_aware;
        s.buffer_mb = desc.buffer_mb;
        s.max_extra_buffers = desc.max_extra_buffers;
        s.weight = desc.weight;
        s.start_at = desc.start_at;
        s.scenario = capture_scenario(desc.scenario,
                                      sys.config().device,
                                      sys.producer(i));
        s.frames = sample_records(sys.producer(i));
        cap.surfaces.push_back(std::move(s));
    }

    const RunReport report = sys.report();
    cap.timeline = report.timeline;
    cap.verbatim = true;
    cap.source_dispatch_hash = sys.sim().events().dispatch_hash();
    cap.source_report_fnv = fnv1a(report.debug_string());
    return cap;
}

bool
SessionRecorder::capture_verified(RenderSystem &sys,
                                  const std::string &label,
                                  const std::string &path,
                                  std::string *error, SessionCapture *out)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    const SessionCapture cap = capture(sys, label);
    if (!cap.save(path))
        return fail("cannot write " + path);
    // Verify the *file*, not the in-memory capture: a decode bug or a
    // lossy round-trip must fail here, not at the consumer's replay.
    SessionCapture loaded;
    std::string decode_error;
    if (!SessionCapture::load(path, loaded, decode_error))
        return fail(path + ": " + decode_error);
    const ReplayResult replayed = replay_session(loaded);
    const std::string mismatch = replayed.verify_against(loaded);
    if (!mismatch.empty())
        return fail(path + ": " + mismatch);
    if (out)
        *out = std::move(loaded);
    return true;
}

} // namespace dvs
