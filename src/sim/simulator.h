/**
 * @file
 * Top-level simulation context.
 *
 * A Simulator bundles the event queue (which owns the virtual clock) and
 * the root random stream. Every simulated entity receives a reference to
 * the Simulator and schedules its behaviour through it.
 */

#ifndef DVS_SIM_SIMULATOR_H
#define DVS_SIM_SIMULATOR_H

#include <cstdint>
#include <memory>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dvs {

class SimWorkerPool;
class ParallelDispatcher;

/**
 * Simulation context: virtual clock, event queue, and root RNG.
 *
 * The simulator is deterministic: given the same seed and the same set of
 * attached entities, every run produces identical event sequences — in
 * serial mode and, byte-identically, in the parallel lane-dispatch mode
 * enabled by set_sim_workers() (see DESIGN.md §5g).
 */
class Simulator
{
  public:
    explicit Simulator(std::uint64_t seed = 1);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    Time now() const { return events_.now(); }

    /** The event queue used to schedule all behaviour. */
    EventQueue &events() { return events_; }

    /** Root random stream. Entities should fork() their own sub-streams. */
    Rng &rng() { return rng_; }

    /**
     * Dispatch independent event lanes on @p n workers (including the
     * simulation thread; <= 1 reverts to serial dispatch). Dispatch
     * order, results, and the dispatch hash are byte-identical to
     * serial at any worker count.
     */
    void set_sim_workers(int n);

    /** Configured worker count (1 = serial dispatch). */
    int sim_workers() const;

    /** Parallel dispatcher, or null in serial mode (testing hooks). */
    ParallelDispatcher *dispatcher() { return dispatcher_.get(); }

    /** Run until no events remain before @p horizon. */
    void run_until(Time horizon);

    /** Run all pending events to exhaustion. */
    void run();

  private:
    EventQueue events_;
    Rng rng_;
    std::unique_ptr<SimWorkerPool> pool_;
    std::unique_ptr<ParallelDispatcher> dispatcher_;
};

} // namespace dvs

#endif // DVS_SIM_SIMULATOR_H
