/**
 * @file
 * Top-level simulation context.
 *
 * A Simulator bundles the event queue (which owns the virtual clock) and
 * the root random stream. Every simulated entity receives a reference to
 * the Simulator and schedules its behaviour through it.
 */

#ifndef DVS_SIM_SIMULATOR_H
#define DVS_SIM_SIMULATOR_H

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dvs {

/**
 * Simulation context: virtual clock, event queue, and root RNG.
 *
 * The simulator is deterministic: given the same seed and the same set of
 * attached entities, every run produces identical event sequences.
 */
class Simulator
{
  public:
    explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time. */
    Time now() const { return events_.now(); }

    /** The event queue used to schedule all behaviour. */
    EventQueue &events() { return events_; }

    /** Root random stream. Entities should fork() their own sub-streams. */
    Rng &rng() { return rng_; }

    /** Run until no events remain before @p horizon. */
    void run_until(Time horizon) { events_.run_until(horizon); }

    /** Run all pending events to exhaustion. */
    void run() { events_.run(); }

  private:
    EventQueue events_;
    Rng rng_;
};

} // namespace dvs

#endif // DVS_SIM_SIMULATOR_H
