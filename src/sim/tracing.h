/**
 * @file
 * Chrome-trace event logging.
 *
 * Real rendering-system work leans heavily on runtime traces (the paper
 * cites Perfetto; §7 notes that "graphics programmers often rely on
 * runtime traces to locate performance bottlenecks"). This logger
 * records duration, instant, counter, and flow events from a simulation
 * and exports the Chrome trace-event JSON format, loadable in
 * chrome://tracing or the Perfetto UI, with one track per simulated
 * thread. Flow events (ph "s"/"t"/"f") link one frame's spans across
 * tracks so a frame can be followed UI → render → GPU → queue → display.
 */

#ifndef DVS_SIM_TRACING_H
#define DVS_SIM_TRACING_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace dvs {

/**
 * Collects trace events during a run and serializes them as Chrome
 * trace-event JSON.
 */
class TraceLog
{
  public:
    /** Record a complete duration event on a named track. */
    void duration(const std::string &track, const std::string &name,
                  Time start, Time end);

    /** Record an instant event (vertical marker). */
    void instant(const std::string &track, const std::string &name,
                 Time at);

    /** Record a counter sample (e.g. buffer-queue depth). */
    void counter(const std::string &name, Time at, double value);

    // ----- flow events (frame linkage across tracks) -------------------

    /** Start flow @p id on @p track (ph "s"). */
    void flow_begin(const std::string &track, const std::string &name,
                    Time at, std::uint64_t id);

    /** Continue flow @p id through @p track (ph "t"). */
    void flow_step(const std::string &track, const std::string &name,
                   Time at, std::uint64_t id);

    /** Terminate flow @p id on @p track (ph "f", binds enclosing). */
    void flow_end(const std::string &track, const std::string &name,
                  Time at, std::uint64_t id);

    /**
     * Cap the number of stored events (0 = unbounded, the default).
     * Events recorded past the cap are counted in dropped_events()
     * instead of growing the log — long fleet exports stay bounded.
     */
    void set_event_cap(std::size_t cap) { event_cap_ = cap; }
    std::uint64_t dropped_events() const { return dropped_events_; }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    void clear();

    /** Serialize as Chrome trace-event JSON (an array of event objects). */
    std::string to_json() const;

    /**
     * Write the JSON to @p path. @return success; failures warn() with
     * the OS error so a silently unwritable path is diagnosable.
     */
    bool save(const std::string &path) const;

  private:
    struct Event {
        char phase; // 'X' duration, 'i' instant, 'C' counter,
                    // 's'/'t'/'f' flow
        int tid;    // resolved track id (0 for counters)
        std::string name;
        Time start;
        Time duration;
        double value;       // counter value
        std::uint64_t id;   // flow id
    };

    bool admit();
    int track_id(const std::string &track);

    std::vector<Event> events_;
    std::vector<std::string> tracks_;
    std::unordered_map<std::string, int> track_ids_;
    std::size_t event_cap_ = 0;
    std::uint64_t dropped_events_ = 0;
};

} // namespace dvs

#endif // DVS_SIM_TRACING_H
