/**
 * @file
 * Chrome-trace event logging.
 *
 * Real rendering-system work leans heavily on runtime traces (the paper
 * cites Perfetto; §7 notes that "graphics programmers often rely on
 * runtime traces to locate performance bottlenecks"). This logger
 * records duration and instant events from a simulation and exports the
 * Chrome trace-event JSON format, loadable in chrome://tracing or the
 * Perfetto UI, with one track per simulated thread.
 */

#ifndef DVS_SIM_TRACING_H
#define DVS_SIM_TRACING_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dvs {

/**
 * Collects trace events during a run and serializes them as Chrome
 * trace-event JSON.
 */
class TraceLog
{
  public:
    /** Record a complete duration event on a named track. */
    void duration(const std::string &track, const std::string &name,
                  Time start, Time end);

    /** Record an instant event (vertical marker). */
    void instant(const std::string &track, const std::string &name,
                 Time at);

    /** Record a counter sample (e.g. buffer-queue depth). */
    void counter(const std::string &name, Time at, double value);

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    void clear() { events_.clear(); }

    /** Serialize as Chrome trace-event JSON (an array of event objects). */
    std::string to_json() const;

    /** Write the JSON to @p path. @return success. */
    bool save(const std::string &path) const;

  private:
    struct Event {
        char phase;        // 'X' duration, 'i' instant, 'C' counter
        std::string track; // becomes the tid
        std::string name;
        Time start;
        Time duration;
        double value;
    };

    int track_id(const std::string &track);

    std::vector<Event> events_;
    std::vector<std::string> tracks_;
};

} // namespace dvs

#endif // DVS_SIM_TRACING_H
