#include "sim/parallel_dispatch.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <utility>

#include "sim/logging.h"

namespace dvs {

// ----- intercept hooks (declared in lane.h) ---------------------------

EventId
lane_intercept_schedule(LaneExecContext &ctx, Time when,
                        std::function<void()> fn, int prio)
{
    return ctx.intercept_schedule(when, std::move(fn), prio);
}

bool
lane_intercept_cancel(LaneExecContext &ctx, EventId id)
{
    return ctx.intercept_cancel(id);
}

void
lane_defer_port(LaneExecContext &ctx, std::function<void()> op)
{
    ctx.ports.push_back(std::move(op));
}

// ----- LaneExecContext ------------------------------------------------

void
LaneExecContext::begin_window()
{
    bucket.clear();
    emits.clear();
    log.clear();
    ports.clear();
    deferred_cancels.clear();
    heap_.clear();
    cursor = 0;
    error = nullptr;
}

EventId
LaneExecContext::intercept_schedule(Time when, EventQueue::Callback fn,
                                    int prio)
{
    assert(when >= now && "cannot schedule events in the past");
    const LaneId elane = current_lane();
    const EventId prov = EventQueue::kProvisionalBit |
                         (EventId(lane) << 40) | EventId(prov_counter++);
    const bool inw = in_window(when, prio);
    const std::uint32_t idx = std::uint32_t(emits.size());
    Emit e;
    e.when = when;
    e.prio = prio;
    e.lane = elane;
    e.prov = prov;
    e.fn = std::move(fn);
    e.in_window = inw;
    emits.push_back(std::move(e));
    if (inw && elane == lane) {
        heap_.push_back(Node{when, prio, 1, idx, idx});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
    // An in-window emission into another lane (or the shared lane) is a
    // discipline violation; it is detected during barrier replay, where
    // the canonical order makes the report exact.
    return prov;
}

bool
LaneExecContext::intercept_cancel(EventId id)
{
    if (id & EventQueue::kProvisionalBit) {
        // Own emission from this window?
        for (Emit &e : emits) {
            if (e.prov != id)
                continue;
            if (e.dead || e.dispatched)
                return false;
            e.dead = true;
            return true;
        }
        // A deferred emission from an earlier window has a real id by
        // now; resolve and fall through to the real-id path.
        id = queue->translate(id);
        if (id == 0)
            return false;
    }
    // Own bucket event of this window?
    for (BucketEv &b : bucket) {
        if (b.id != id)
            continue;
        if (b.dead || b.dispatched)
            return false;
        b.dead = true;
        return true;
    }
    // An event still in the real heap: it lies at or beyond the window
    // bound, so cancelling it at the barrier (in canonical order) is
    // serial-equivalent. Liveness reads are safe — nothing mutates the
    // slot map during a window.
    if (!queue->is_live(id))
        return false;
    for (EventId seen : deferred_cancels) {
        if (seen == id)
            return false; // second cancel of the same pending event
    }
    deferred_cancels.push_back(id);
    return true;
}

void
LaneExecContext::run_window()
{
    // RAII: route this thread's schedule/cancel/now through this context
    // for the duration of the window.
    struct AmbientGuard {
        lane_detail::Ambient &a;
        lane_detail::Ambient saved;
        explicit AmbientGuard(LaneExecContext *ctx)
            : a(lane_detail::ambient()), saved(a)
        {
            a.lane = ctx->lane;
            a.ctx = ctx;
            a.lane_now = ctx->now;
        }
        ~AmbientGuard() { a = saved; }
    } guard(this);

    // Seed the lane-local order with the bucket (already sorted — heap
    // extraction pops in ascending order — but a heap is cheap and
    // uniform with emission inserts).
    for (std::uint32_t i = 0; i < std::uint32_t(bucket.size()); ++i) {
        heap_.push_back(
            Node{bucket[i].when, bucket[i].prio, 0, bucket[i].seq, i});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }

    try {
        while (!heap_.empty()) {
            const Node n = heap_.front();
            std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
            heap_.pop_back();

            EventQueue::Callback fn;
            if (n.cls == 0) {
                BucketEv &b = bucket[n.idx];
                if (b.dead)
                    continue;
                b.dispatched = true;
                fn = std::move(b.fn);
            } else {
                Emit &e = emits[n.idx];
                if (e.dead)
                    continue;
                e.dispatched = true;
                fn = std::move(e.fn);
            }
            now = n.when;
            guard.a.lane_now = n.when;

            const std::uint32_t eb = std::uint32_t(emits.size());
            const std::uint32_t pb = std::uint32_t(ports.size());
            fn();
            log.push_back(Rec{n.when, n.prio, n.cls, n.idx, eb,
                              std::uint32_t(emits.size()), pb,
                              std::uint32_t(ports.size())});
        }
    } catch (...) {
        error = std::current_exception();
    }
}

// ----- ParallelDispatcher ---------------------------------------------

ParallelDispatcher::ParallelDispatcher(EventQueue &queue,
                                       SimWorkerPool &pool)
    : q_(queue), pool_(pool)
{
}

LaneExecContext &
ParallelDispatcher::ctx_for(LaneId lane)
{
    auto it = ctx_of_lane_.find(lane);
    if (it == ctx_of_lane_.end()) {
        auto ctx = std::make_unique<LaneExecContext>();
        ctx->lane = lane;
        ctx->queue = &q_;
        ctxs_.push_back(std::move(ctx));
        it = ctx_of_lane_
                 .emplace(lane, std::uint32_t(ctxs_.size() - 1))
                 .first;
    }
    return *ctxs_[it->second];
}

void
ParallelDispatcher::dispatch_top_serial()
{
    const EventQueue::Entry e = q_.heap_.front();
    std::pop_heap(q_.heap_.begin(), q_.heap_.end(), std::greater<>{});
    q_.heap_.pop_back();
    EventQueue::Callback fn = q_.release_slot(EventQueue::slot_of(e.id));
    q_.now_ = e.when;
    --q_.live_count_;
    ++q_.dispatched_;
    q_.fold_dispatch(e.when, e.prio, e.lane, e.seq);
    fn();
}

std::uint64_t
ParallelDispatcher::run_until(Time horizon, bool advance_to_horizon)
{
    std::uint64_t n = 0;
    for (;;) {
        q_.prune_dead_top();
        if (q_.heap_.empty() || q_.heap_.front().when > horizon)
            break;
        if (q_.heap_.front().lane == kSharedLane) {
            dispatch_top_serial();
            ++n;
            continue;
        }

        // ---- extract a window: all lane events up to the next shared
        // event (or the horizon), in heap order ----------------------
        ++epoch_;
        active_.clear();
        Time bound_when = horizon;
        int bound_prio = INT_MAX;
        std::size_t count = 0;
        for (;;) {
            if (q_.heap_.empty())
                break;
            const EventQueue::Entry &t = q_.heap_.front();
            if (!q_.is_live(t.id)) {
                std::pop_heap(q_.heap_.begin(), q_.heap_.end(),
                              std::greater<>{});
                q_.heap_.pop_back();
                --q_.heap_dead_;
                continue;
            }
            if (t.when > horizon)
                break;
            if (t.lane == kSharedLane ||
                (max_window_ && count >= max_window_)) {
                bound_when = t.when;
                bound_prio = t.prio;
                break;
            }
            const EventQueue::Entry e = t;
            std::pop_heap(q_.heap_.begin(), q_.heap_.end(),
                          std::greater<>{});
            q_.heap_.pop_back();
            LaneExecContext &c = ctx_for(e.lane);
            if (c.window_epoch != epoch_) {
                c.window_epoch = epoch_;
                c.begin_window();
                active_.push_back(ctx_of_lane_[e.lane]);
            }
            // The slot stays held (is_live == true) until the barrier;
            // only the callback moves out for lane execution.
            c.bucket.push_back(LaneExecContext::BucketEv{
                e.when, e.prio, e.seq, e.id,
                std::move(q_.slots_[EventQueue::slot_of(e.id)].fn)});
            ++count;
        }
        if (active_.empty())
            continue; // everything at the top was dead

        for (std::uint32_t ci : active_) {
            LaneExecContext &c = *ctxs_[ci];
            c.bound_when = bound_when;
            c.bound_prio = bound_prio;
            c.now = q_.now_;
        }

        // ---- execute lanes concurrently ----------------------------
        ++windows_;
        if (active_.size() == 1) {
            ctxs_[active_[0]]->run_window();
        } else {
            pool_.run(int(active_.size()), [this](int i) {
                ctxs_[active_[std::size_t(i)]]->run_window();
            });
        }
        for (std::uint32_t ci : active_) {
            if (ctxs_[ci]->error)
                std::rethrow_exception(ctxs_[ci]->error);
        }

        // ---- barrier: symbolic serial replay ------------------------
        n += replay_window();
    }
    if (advance_to_horizon && horizon != kTimeMax && q_.now_ < horizon)
        q_.now_ = horizon;
    return n;
}

std::uint64_t
ParallelDispatcher::replay_window()
{
    rheap_.clear();
    for (std::uint32_t ai = 0; ai < std::uint32_t(active_.size()); ++ai) {
        LaneExecContext &c = *ctxs_[active_[ai]];
        c.cursor = 0;
        for (std::uint32_t bi = 0; bi < std::uint32_t(c.bucket.size());
             ++bi) {
            LaneExecContext::BucketEv &b = c.bucket[bi];
            if (b.dead) {
                // Cancelled before its dispatch point; the lane skipped
                // it, the slot is released here.
                q_.release_slot(EventQueue::slot_of(b.id));
                --q_.live_count_;
                continue;
            }
            rheap_.push_back(RNode{b.when, b.prio, b.seq, ai, 0, bi});
        }
    }
    std::make_heap(rheap_.begin(), rheap_.end(), std::greater<>{});

    std::uint64_t counter = q_.next_seq_;
    std::uint64_t fired = 0;
    while (!rheap_.empty()) {
        const RNode rn = rheap_.front();
        std::pop_heap(rheap_.begin(), rheap_.end(), std::greater<>{});
        rheap_.pop_back();

        LaneExecContext &c = *ctxs_[active_[rn.ctx]];
        if (c.cursor >= c.log.size()) {
            fatal("parallel dispatch: lane %u under-dispatched (event at "
                  "t=%lld prio=%d has no log record) — lane discipline "
                  "violation",
                  unsigned(c.lane), (long long)rn.when, rn.prio);
        }
        const LaneExecContext::Rec &r = c.log[c.cursor++];
        if (r.when != rn.when || r.prio != rn.prio ||
            r.is_emission != rn.cls || r.src != rn.idx) {
            fatal("parallel dispatch: lane %u dispatched out of canonical "
                  "order (logged t=%lld prio=%d, canonical t=%lld "
                  "prio=%d) — lane discipline violation",
                  unsigned(c.lane), (long long)r.when, r.prio,
                  (long long)rn.when, rn.prio);
        }

        q_.fold_dispatch(rn.when, rn.prio, c.lane, rn.seq);
        q_.now_ = rn.when;
        ++q_.dispatched_;
        ++fired;
        if (rn.cls == 0) {
            q_.release_slot(
                EventQueue::slot_of(c.bucket[rn.idx].id));
            --q_.live_count_;
        }

        // Emissions of this event, in program order: each consumes the
        // exact sequence number serial dispatch would have assigned.
        for (std::uint32_t ei = r.emit_begin; ei < r.emit_end; ++ei) {
            LaneExecContext::Emit &e = c.emits[ei];
            e.seq = counter++;
            if (e.dead)
                continue; // cancelled in-window; seq consumed, no event
            if (e.in_window) {
                if (e.lane != c.lane) {
                    fatal("parallel dispatch: lane %u emitted an "
                          "in-window event into lane %u at t=%lld — "
                          "cross-lane emission inside a window breaks "
                          "the conservative bound (shared-GPU configs "
                          "must run serial; see DESIGN.md §5g)",
                          unsigned(c.lane), unsigned(e.lane),
                          (long long)e.when);
                }
                rheap_.push_back(
                    RNode{e.when, e.prio, e.seq, rn.ctx, 1, ei});
                std::push_heap(rheap_.begin(), rheap_.end(),
                               std::greater<>{});
            } else {
                const std::uint32_t slot =
                    q_.acquire_slot(std::move(e.fn));
                const EventId id =
                    EventQueue::make_id(slot, q_.slots_[slot].gen);
                q_.heap_.push_back(EventQueue::Entry{e.when, e.prio,
                                                     e.lane, e.seq, id});
                std::push_heap(q_.heap_.begin(), q_.heap_.end(),
                               std::greater<>{});
                ++q_.live_count_;
                q_.prov_to_real_.emplace(e.prov, id);
            }
        }

        // Deferred shared-component side effects, in canonical order.
        for (std::uint32_t pi = r.port_begin; pi < r.port_end; ++pi)
            c.ports[pi]();
    }

    for (std::uint32_t ci : active_) {
        LaneExecContext &c = *ctxs_[ci];
        if (c.cursor != c.log.size()) {
            fatal("parallel dispatch: lane %u over-dispatched (%zu log "
                  "records, %zu replayed) — lane discipline violation",
                  unsigned(c.lane), c.log.size(), c.cursor);
        }
    }
    q_.next_seq_ = counter;

    // Cancels of events beyond the window bound: applying them at the
    // barrier is serial-equivalent (the targets could not have fired).
    for (std::uint32_t ci : active_) {
        for (EventId id : ctxs_[ci]->deferred_cancels)
            q_.cancel(id);
    }
    return fired;
}

} // namespace dvs
