#include "sim/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dvs {
namespace {

LogLevel g_level = LogLevel::kWarn;

std::atomic<bool> g_fatal_throws{[] {
    const char *env = std::getenv("DVS_FATAL_THROWS");
    return env && env[0] == '1';
}()};

void
vlog(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

bool
set_fatal_throws(bool on)
{
    return g_fatal_throws.exchange(on);
}

bool
fatal_throws()
{
    return g_fatal_throws.load();
}

void
fatal(const char *fmt, ...)
{
    if (g_fatal_throws.load()) {
        char buf[512];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        throw ConfigError(buf);
    }
    va_list ap;
    va_start(ap, fmt);
    vlog("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::kWarn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::kInform)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::kDebug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("debug", fmt, ap);
    va_end(ap);
}

} // namespace dvs
