#include "sim/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dvs {
namespace {

LogLevel g_level = LogLevel::kWarn;

void
vlog(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlog("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::kWarn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::kInform)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::kDebug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vlog("debug", fmt, ap);
    va_end(ap);
}

} // namespace dvs
