#include "sim/simulator.h"

#include <cstdio>

#include "sim/time.h"

namespace dvs {

std::string
format_time(Time t)
{
    char buf[48];
    if (t == kTimeNone) {
        std::snprintf(buf, sizeof(buf), "<none>");
    } else if (t < 1000) {
        std::snprintf(buf, sizeof(buf), "%lld ns", (long long)t);
    } else if (t < 1'000'000) {
        std::snprintf(buf, sizeof(buf), "%.3f us", to_us(t));
    } else if (t < 10'000'000'000LL) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", to_ms(t));
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f s", to_seconds(t));
    }
    return buf;
}

} // namespace dvs
