#include "sim/simulator.h"

#include <cstdio>

#include "sim/parallel_dispatch.h"
#include "sim/time.h"
#include "sim/worker_pool.h"

namespace dvs {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() = default;

void
Simulator::set_sim_workers(int n)
{
    if (n <= 1) {
        dispatcher_.reset();
        pool_.reset();
        return;
    }
    pool_ = std::make_unique<SimWorkerPool>(n);
    dispatcher_ = std::make_unique<ParallelDispatcher>(events_, *pool_);
}

int
Simulator::sim_workers() const
{
    return pool_ ? pool_->workers() : 1;
}

void
Simulator::run_until(Time horizon)
{
    if (dispatcher_)
        dispatcher_->run_until(horizon, true);
    else
        events_.run_until(horizon);
}

void
Simulator::run()
{
    if (dispatcher_)
        dispatcher_->run_until(kTimeMax, false);
    else
        events_.run();
}

std::string
format_time(Time t)
{
    char buf[48];
    if (t == kTimeNone) {
        std::snprintf(buf, sizeof(buf), "<none>");
    } else if (t < 1000) {
        std::snprintf(buf, sizeof(buf), "%lld ns", (long long)t);
    } else if (t < 1'000'000) {
        std::snprintf(buf, sizeof(buf), "%.3f us", to_us(t));
    } else if (t < 10'000'000'000LL) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", to_ms(t));
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f s", to_seconds(t));
    }
    return buf;
}

} // namespace dvs
