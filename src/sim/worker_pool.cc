#include "sim/worker_pool.h"

namespace dvs {

namespace {

/// Spin iterations before a worker parks on the condition variable.
/// Windows arrive every few microseconds of wall time in a hot
/// simulation loop; parking between them would put a condvar wake
/// (~5-15 us) on every barrier, so the spin is sized to outlast the
/// serial replay phase between windows by a comfortable margin.
constexpr int kSpinIters = 100'000;

/// Spin budget when there are more workers than cores: busy-waiting
/// then steals the timeslice of the thread being waited for, so park
/// almost immediately and let the scheduler run whoever has work.
constexpr int kOversubscribedSpinIters = 16;

/// Polite busy-wait hint (PAUSE/YIELD); falls back to a plain loop.
inline void
cpu_relax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

} // namespace

SimWorkerPool::SimWorkerPool(int workers)
{
    const unsigned cores = std::thread::hardware_concurrency();
    oversubscribed_ = cores != 0 && int(cores) < workers;
    const int spawn = workers > 1 ? workers - 1 : 0;
    threads_.reserve(std::size_t(spawn));
    for (int i = 0; i < spawn; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

SimWorkerPool::~SimWorkerPool()
{
    if (threads_.empty())
        return;
    {
        // An empty batch: workers wake, find zero tasks, see shutdown.
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_.store(true, std::memory_order_relaxed);
        task_fn_ = nullptr;
        task_count_ = 0;
        const std::uint64_t gen = generation_of(batch_.load()) + 1;
        batch_.store(gen << 32, std::memory_order_release);
        wake_.notify_all();
    }
    for (std::thread &t : threads_)
        t.join();
}

void
SimWorkerPool::run(int tasks, const std::function<void(int)> &fn)
{
    if (tasks <= 0)
        return;
    if (threads_.empty()) {
        for (int i = 0; i < tasks; ++i)
            fn(i);
        return;
    }
    std::uint64_t gen;
    {
        // The mutex makes (fn, count, batch word) one consistent
        // snapshot for workers; it is held for a handful of stores and
        // is contended only when a worker is entering a batch at this
        // exact moment, so back-to-back windows cost ~100ns here — the
        // expensive condvar path below triggers only if someone parked.
        std::lock_guard<std::mutex> lock(mu_);
        task_fn_ = &fn;
        task_count_ = tasks;
        unfinished_.store(tasks, std::memory_order_relaxed);
        gen = generation_of(batch_.load()) + 1;
        batch_.store(gen << 32, std::memory_order_release);
        if (parked_.load(std::memory_order_relaxed) > 0)
            wake_.notify_all();
    }

    // The caller is a worker too. Tickets are claimed off the batch
    // word; no publish can race these claims (the caller is the only
    // publisher), so the generation of every ticket is `gen`.
    for (;;) {
        const std::uint64_t t =
            batch_.fetch_add(1, std::memory_order_acq_rel);
        if (int(index_of(t)) >= tasks)
            break;
        fn(int(index_of(t)));
        unfinished_.fetch_sub(1, std::memory_order_release);
    }
    // Wait for stragglers; spin — the caller resumes simulation
    // immediately after, so parking would only add wake latency. `fn`
    // must stay alive until the last claimed task finishes, which is
    // exactly what this wait guarantees. On an oversubscribed machine
    // the straggler needs this core: yield instead of burning the
    // timeslice it is waiting on.
    while (unfinished_.load(std::memory_order_acquire) > 0) {
        if (oversubscribed_)
            std::this_thread::yield();
        else
            cpu_relax();
    }
}

void
SimWorkerPool::worker_loop()
{
    std::uint64_t seen = 0; // generation this worker has drained
    for (;;) {
        // Spin on the batch word (loads only — spinning must not inflate
        // the ticket counter), then park.
        const int spin_budget =
            oversubscribed_ ? kOversubscribedSpinIters : kSpinIters;
        int spins = 0;
        while (generation_of(batch_.load(std::memory_order_acquire)) ==
               seen) {
            if (++spins < spin_budget) {
                cpu_relax();
                continue;
            }
            std::unique_lock<std::mutex> lock(mu_);
            parked_.fetch_add(1, std::memory_order_relaxed);
            wake_.wait(lock, [this, seen] {
                return generation_of(batch_.load(
                           std::memory_order_acquire)) != seen;
            });
            parked_.fetch_sub(1, std::memory_order_relaxed);
            break;
        }

        // Claim tickets until the batch is drained. A ticket's
        // generation names the batch its index belongs to; (gen, fn,
        // tasks) snapshots are taken under the mutex — the publisher
        // writes all three while holding it — so a ticket is only ever
        // executed against the state of its own batch.
        std::uint64_t gen = seen;
        const std::function<void(int)> *fn = nullptr;
        int tasks = 0;
        for (;;) {
            const std::uint64_t t =
                batch_.fetch_add(1, std::memory_order_acq_rel);
            if (generation_of(t) != gen) {
                bool down;
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    gen = generation_of(
                        batch_.load(std::memory_order_relaxed));
                    fn = task_fn_;
                    tasks = task_count_;
                    down = shutdown_.load(std::memory_order_relaxed);
                }
                if (down)
                    return;
                // A ticket older than the fresh snapshot comes from a
                // drained batch (an undrained batch blocks the next
                // publish), so its index is past that batch's count —
                // discard it and claim again.
                if (generation_of(t) != gen)
                    continue;
            }
            if (!fn || int(index_of(t)) >= tasks)
                break;
            (*fn)(int(index_of(t)));
            unfinished_.fetch_sub(1, std::memory_order_release);
        }
        seen = gen;
    }
}

} // namespace dvs
