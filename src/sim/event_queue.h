/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are executed in (time, priority, insertion-sequence) order, which
 * makes simulations fully reproducible: two events scheduled for the same
 * tick with the same priority run in the order they were scheduled.
 */

#ifndef DVS_SIM_EVENT_QUEUE_H
#define DVS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dvs {

/**
 * Priorities order events that fire at the same tick. Lower values run
 * first. The defaults encode the natural hardware/software layering: the
 * display latches a buffer before software reacts to the same vsync edge.
 */
enum class EventPriority : int {
    kDisplay = 0,   ///< panel refresh / buffer latch
    kSegment = 5,    ///< scenario segment boundaries
    kVsyncDist = 10, ///< software vsync distribution
    kPipeline = 20,  ///< pipeline stage completions
    kDefault = 50,   ///< everything else
    kMetrics = 90,   ///< end-of-tick bookkeeping
};

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * The queue owns the virtual clock: `now()` advances only as events are
 * dispatched. Callbacks may schedule further events (including at the
 * current time, which run after all currently pending same-tick events of
 * lower or equal ordering).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current virtual time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now()
     * @return an id usable with cancel().
     */
    EventId schedule(Time when, Callback fn,
                     EventPriority prio = EventPriority::kDefault);

    /** Schedule @p fn to run @p delay after the current time. */
    EventId
    schedule_in(Time delay, Callback fn,
                EventPriority prio = EventPriority::kDefault)
    {
        return schedule(now_ + delay, std::move(fn), prio);
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown id is
     * a no-op.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Whether any events remain pending. */
    bool empty() const { return live_count_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_count_; }

    /** Time of the earliest pending event, or kTimeNone when empty. */
    Time next_event_time() const;

    /**
     * Run events until the queue empties or the next event lies beyond
     * @p horizon. The clock is left at the last dispatched event (or moved
     * to @p horizon when @p advance_to_horizon is set).
     * @return number of events dispatched.
     */
    std::uint64_t run_until(Time horizon, bool advance_to_horizon = true);

    /** Run all events to exhaustion. @return number dispatched. */
    std::uint64_t run() { return run_until(kTimeMax, false); }

    /** Total number of events dispatched over the queue's lifetime. */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Entry {
        Time when;
        int prio;
        std::uint64_t seq;
        EventId id;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    // The callback map is kept separate from the heap entries so cancel()
    // is O(1); cancelled entries are skipped lazily at dispatch.
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<std::pair<EventId, Callback>> callbacks_;

    Callback *find_callback(EventId id);

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
    std::uint64_t dispatched_ = 0;
    std::size_t live_count_ = 0;
};

} // namespace dvs

#endif // DVS_SIM_EVENT_QUEUE_H
