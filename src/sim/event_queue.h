/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are executed in (time, priority, insertion-sequence) order, which
 * makes simulations fully reproducible: two events scheduled for the same
 * tick with the same priority run in the order they were scheduled.
 *
 * Complexity guarantees (the simulator's hot path — see DESIGN.md):
 *  - schedule():        O(log n) heap push, O(1) callback storage
 *  - cancel():          O(1) slot lookup + amortized O(log n) pruning
 *  - dispatch:          O(log n) heap pop, O(1) callback lookup
 *  - next_event_time(): O(1), never reports a cancelled event
 *
 * Callback storage is a slot map: an EventId encodes {slot index,
 * generation}, so lookup is an array index plus a generation check, and
 * cancelled slots are recycled through a free list immediately (memory is
 * bounded by the maximum number of *concurrently pending* events, not by
 * the total scheduled over a run). Heap entries of cancelled events are
 * skipped lazily at dispatch; dead entries at the top are pruned eagerly
 * on cancel, and the heap is compacted whenever dead entries outnumber
 * live ones, so cancel-heavy workloads stay O(live) in memory too.
 */

#ifndef DVS_SIM_EVENT_QUEUE_H
#define DVS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/lane.h"
#include "sim/time.h"

namespace dvs {

/**
 * Priorities order events that fire at the same tick. Lower values run
 * first. The defaults encode the natural hardware/software layering: the
 * display latches a buffer before software reacts to the same vsync edge.
 */
enum class EventPriority : int {
    kDisplay = 0,   ///< panel refresh / buffer latch
    kSegment = 5,    ///< scenario segment boundaries
    kVsyncDist = 10, ///< software vsync distribution
    kPipeline = 20,  ///< pipeline stage completions
    kDefault = 50,   ///< everything else
    kMetrics = 90,   ///< end-of-tick bookkeeping
};

/**
 * Handle used to cancel a scheduled event. Encodes {slot, generation};
 * treat it as opaque. A handle goes stale once its event fires or is
 * cancelled — using it afterwards is a detected no-op, even if the
 * underlying slot has been recycled for a newer event.
 */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * The queue owns the virtual clock: `now()` advances only as events are
 * dispatched. Callbacks may schedule further events (including at the
 * current time, which run after all currently pending same-tick events of
 * lower or equal ordering).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Current virtual time. During parallel lane execution this is the
     * executing lane's clock — identical to what serial dispatch would
     * read at the same event.
     */
    Time now() const
    {
        const lane_detail::Ambient &a = lane_detail::ambient();
        return a.ctx ? a.lane_now : now_;
    }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now()
     * @return an id usable with cancel().
     */
    EventId schedule(Time when, Callback fn,
                     EventPriority prio = EventPriority::kDefault);

    /** Schedule @p fn to run @p delay after the current time. */
    EventId
    schedule_in(Time delay, Callback fn,
                EventPriority prio = EventPriority::kDefault)
    {
        return schedule(now() + delay, std::move(fn), prio);
    }

    /**
     * Cancel a pending event. Cancelling an already-fired, already-
     * cancelled, or unknown id is a no-op: stale handles are rejected by
     * the generation check even after their slot is recycled.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Whether any events remain pending. */
    bool empty() const { return live_count_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_count_; }

    /**
     * Time of the earliest pending event, or kTimeNone when empty.
     * Cancelled events are never reported: cancel() eagerly prunes dead
     * entries off the top of the heap.
     */
    Time next_event_time() const;

    /**
     * Run events until the queue empties or the next event lies beyond
     * @p horizon. The clock is left at the last dispatched event (or moved
     * to @p horizon when @p advance_to_horizon is set).
     * @return number of events dispatched.
     */
    std::uint64_t run_until(Time horizon, bool advance_to_horizon = true);

    /** Run all events to exhaustion. @return number dispatched. */
    std::uint64_t run() { return run_until(kTimeMax, false); }

    /** Total number of events dispatched over the queue's lifetime. */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * FNV-style fold of every dispatched event's (when, prio, lane, seq)
     * in dispatch order. Serial and parallel dispatch of the same
     * simulation must produce the same hash — the cross-checksum the
     * parallel mode is held to (perf_sim_core, test_parallel_sim).
     */
    std::uint64_t dispatch_hash() const { return dispatch_hash_; }

    /**
     * Pre-size the slot map and heap (data-layout hint for runs with a
     * known pending-event ceiling; avoids growth reallocations on the
     * hot path).
     */
    void reserve(std::size_t events)
    {
        heap_.reserve(events);
        slots_.reserve(events);
    }

  private:
    friend class ParallelDispatcher;
    friend class LaneExecContext;

    struct Entry {
        Time when;
        int prio;
        LaneId lane; ///< fills the padding hole; 32 bytes either way
        std::uint64_t seq;
        EventId id;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    /**
     * One callback slot. `gen` is bumped every time the slot is released
     * (fire or cancel), which invalidates every EventId minted for a
     * previous occupancy in O(1).
     */
    struct Slot {
        Callback fn;
        std::uint32_t gen = 1;
        std::uint32_t next_free = kNullSlot;
        bool live = false;
    };

    static constexpr std::uint32_t kNullSlot = 0xffffffffu;

    static std::uint32_t slot_of(EventId id)
    {
        return std::uint32_t(id);
    }
    static std::uint32_t gen_of(EventId id)
    {
        return std::uint32_t(id >> 32);
    }
    static EventId make_id(std::uint32_t slot, std::uint32_t gen)
    {
        return (EventId(gen) << 32) | EventId(slot);
    }

    bool is_live(EventId id) const;
    std::uint32_t acquire_slot(Callback fn);
    Callback release_slot(std::uint32_t slot);
    void prune_dead_top();
    void maybe_compact();

    /** Bit 63 marks provisional ids minted during lane execution. */
    static constexpr EventId kProvisionalBit = EventId(1) << 63;

    void fold_dispatch(Time when, int prio, LaneId lane, std::uint64_t seq)
    {
        constexpr std::uint64_t kPrime = 0x100000001b3ULL;
        std::uint64_t h = dispatch_hash_;
        h = (h ^ std::uint64_t(when)) * kPrime;
        h = (h ^ std::uint64_t(std::uint32_t(prio))) * kPrime;
        h = (h ^ std::uint64_t(lane)) * kPrime;
        h = (h ^ seq) * kPrime;
        dispatch_hash_ = h;
    }

    /** Resolve a provisional id to its real heap id (kTimeNone-ish 0 = none). */
    EventId translate(EventId id) const
    {
        auto it = prov_to_real_.find(id);
        return it == prov_to_real_.end() ? 0 : it->second;
    }

    // Min-heap on (when, prio, seq) via the std heap algorithms; a plain
    // vector (rather than std::priority_queue) so compaction can filter
    // dead entries in place.
    std::vector<Entry> heap_;
    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNullSlot;
    std::size_t heap_dead_ = 0; ///< cancelled entries still in heap_

    // Provisional ids handed out during lane execution for emissions
    // that were deferred past the window barrier, mapped to the real ids
    // they received when the barrier replay committed them to the heap.
    // Mutated only on the simulation thread (at barriers); lane threads
    // read it concurrently, which is safe between barriers.
    std::unordered_map<EventId, EventId> prov_to_real_;

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t dispatch_hash_ = 0xcbf29ce484222325ULL;
    std::size_t live_count_ = 0;
};

} // namespace dvs

#endif // DVS_SIM_EVENT_QUEUE_H
