/**
 * @file
 * Persistent worker pool for parallel lane dispatch.
 *
 * Lane windows are short (tens of microseconds of callback work between
 * refresh barriers), so the pool is built for low wake latency: workers
 * spin on an atomic batch word before parking on a condition variable,
 * and the calling thread participates in the work instead of blocking.
 * `SimWorkerPool(n)` means *n total workers including the caller* —
 * n == 1 spawns no threads and degenerates to sequential execution
 * through the same code path.
 *
 * The dispatch word packs (generation << 32 | next-task-index) into one
 * 64-bit atomic: claiming a task is a single fetch_add whose result
 * identifies *both* the batch and the index, so a straggler that claims
 * across a batch boundary re-snapshots the new batch's state instead of
 * touching the stale one. Batch state (fn, count, word) is published
 * under a briefly-held mutex for snapshot consistency; the condvar is
 * only signalled when a worker actually parked — back-to-back windows
 * stay on the spin path.
 */

#ifndef DVS_SIM_WORKER_POOL_H
#define DVS_SIM_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvs {

class SimWorkerPool
{
  public:
    /** @param workers total workers including the calling thread (>= 1). */
    explicit SimWorkerPool(int workers);
    ~SimWorkerPool();

    SimWorkerPool(const SimWorkerPool &) = delete;
    SimWorkerPool &operator=(const SimWorkerPool &) = delete;

    /** Total workers including the caller. */
    int workers() const { return int(threads_.size()) + 1; }

    /**
     * Run fn(i) for every i in [0, tasks). Tasks are claimed atomically;
     * the caller works too. Returns once every task has finished.
     * fn must not throw (lane execution captures its own exceptions).
     */
    void run(int tasks, const std::function<void(int)> &fn);

  private:
    static std::uint64_t generation_of(std::uint64_t word)
    {
        return word >> 32;
    }
    static std::uint32_t index_of(std::uint64_t word)
    {
        return std::uint32_t(word);
    }

    void worker_loop();

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable wake_;

    /** (generation << 32) | next task index. Claim = fetch_add(1). */
    std::atomic<std::uint64_t> batch_{0};
    std::atomic<int> unfinished_{0};
    std::atomic<int> parked_{0};
    std::atomic<bool> shutdown_{false};
    bool oversubscribed_ = false;

    // Guarded by mu_: published together with the batch word so worker
    // snapshots of (generation, fn, count) are internally consistent.
    const std::function<void(int)> *task_fn_ = nullptr;
    int task_count_ = 0;
};

} // namespace dvs

#endif // DVS_SIM_WORKER_POOL_H
