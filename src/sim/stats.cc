#include "sim/stats.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "sim/logging.h"

namespace dvs {

void
SampleStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    if (keep_samples_) {
        samples_.push_back(x);
        sorted_ = false;
    }
}

double
SampleStat::stddev() const
{
    return std::sqrt(variance());
}

double
SampleStat::percentile(double p) const
{
    // A release-mode caller querying a stat that never kept its samples
    // would silently read percentiles of nothing; fail loudly instead of
    // relying on assert() (a no-op under NDEBUG).
    if (!keep_samples_)
        fatal("SampleStat::percentile requires keep_samples=true");
    if (samples_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = p / 100.0 * double(samples_.size() - 1);
    const std::size_t lo = std::size_t(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - double(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void
SampleStat::merge(const SampleStat &other)
{
    if (keep_samples_ != other.keep_samples_)
        fatal("SampleStat::merge requires matching keep_samples modes");
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        n_ = other.n_;
        mean_ = other.mean_;
        m2_ = other.m2_;
        min_ = other.min_;
        max_ = other.max_;
        sum_ = other.sum_;
    } else {
        // Chan et al.: combine (count, mean, M2) of two partitions.
        const double na = double(n_), nb = double(other.n_);
        const double delta = other.mean_ - mean_;
        mean_ += delta * nb / (na + nb);
        m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        sum_ += other.sum_;
        n_ += other.n_;
    }
    if (keep_samples_) {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        sorted_ = false;
    }
}

void
SampleStat::reset()
{
    n_ = 0;
    mean_ = m2_ = min_ = max_ = sum_ = 0.0;
    samples_.clear();
    sorted_ = true;
}

void
StatSet::set(const std::string &name, double value)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        entries_[it->second].second = value;
        return;
    }
    index_[name] = entries_.size();
    entries_.emplace_back(name, value);
}

double
StatSet::get(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? 0.0 : entries_[it->second].second;
}

bool
StatSet::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

std::string
StatSet::to_string() const
{
    std::size_t width = 0;
    for (const auto &[name, _] : entries_)
        width = std::max(width, name.size());
    std::string out;
    char buf[64];
    for (const auto &[name, value] : entries_) {
        out += name;
        out.append(width - name.size() + 2, ' ');
        std::snprintf(buf, sizeof(buf), "%.6g\n", value);
        out += buf;
    }
    return out;
}

} // namespace dvs
