#include "sim/tracing.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "sim/logging.h"

namespace dvs {
namespace {

/**
 * JSON string escaping. Track and event names come from workload and
 * surface declarations, so any byte can show up here; control characters
 * must be escaped or the exported trace is not valid JSON (RFC 8259
 * forbids raw U+0000..U+001F inside strings).
 */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    char buf[8];
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

int
TraceLog::track_id(const std::string &track)
{
    // Hash-map lookup: O(1) per event even on multi-surface exports with
    // dozens of tracks. tracks_ keeps first-use order for the metadata.
    auto [it, inserted] =
        track_ids_.emplace(track, int(tracks_.size()) + 1);
    if (inserted)
        tracks_.push_back(track);
    return it->second;
}

bool
TraceLog::admit()
{
    if (event_cap_ != 0 && events_.size() >= event_cap_) {
        ++dropped_events_;
        return false;
    }
    return true;
}

void
TraceLog::clear()
{
    events_.clear();
    tracks_.clear();
    track_ids_.clear();
    dropped_events_ = 0;
}

void
TraceLog::duration(const std::string &track, const std::string &name,
                   Time start, Time end)
{
    if (!admit())
        return;
    events_.push_back(
        Event{'X', track_id(track), name, start, end - start, 0.0, 0});
}

void
TraceLog::instant(const std::string &track, const std::string &name,
                  Time at)
{
    if (!admit())
        return;
    events_.push_back(Event{'i', track_id(track), name, at, 0, 0.0, 0});
}

void
TraceLog::counter(const std::string &name, Time at, double value)
{
    if (!admit())
        return;
    events_.push_back(
        Event{'C', track_id("counters"), name, at, 0, value, 0});
}

void
TraceLog::flow_begin(const std::string &track, const std::string &name,
                     Time at, std::uint64_t id)
{
    if (!admit())
        return;
    events_.push_back(Event{'s', track_id(track), name, at, 0, 0.0, id});
}

void
TraceLog::flow_step(const std::string &track, const std::string &name,
                    Time at, std::uint64_t id)
{
    if (!admit())
        return;
    events_.push_back(Event{'t', track_id(track), name, at, 0, 0.0, id});
}

void
TraceLog::flow_end(const std::string &track, const std::string &name,
                   Time at, std::uint64_t id)
{
    if (!admit())
        return;
    events_.push_back(Event{'f', track_id(track), name, at, 0, 0.0, id});
}

std::string
TraceLog::to_json() const
{
    // Chrome trace format: timestamps in microseconds, pid/tid tracks.
    std::string out = "[\n";
    char buf[512];
    // Thread-name metadata so tracks render with their labels.
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":"
                      "\"%s\"}},\n",
                      i + 1, escape(tracks_[i]).c_str());
        out += buf;
    }

    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        const double ts = to_us(e.start);
        switch (e.phase) {
          case 'X':
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                          "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                          e.tid, escape(e.name).c_str(), ts,
                          to_us(e.duration));
            break;
          case 'i':
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                          "\"name\":\"%s\",\"ts\":%.3f,\"s\":\"t\"}",
                          e.tid, escape(e.name).c_str(), ts);
            break;
          case 'C':
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\","
                          "\"ts\":%.3f,\"args\":{\"value\":%g}}",
                          escape(e.name).c_str(), ts, e.value);
            break;
          case 's':
          case 't':
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"%c\",\"pid\":1,\"tid\":%d,"
                          "\"name\":\"%s\",\"cat\":\"frame\","
                          "\"id\":%llu,\"ts\":%.3f}",
                          e.phase, e.tid, escape(e.name).c_str(),
                          (unsigned long long)e.id, ts);
            break;
          case 'f':
            // bp:"e" binds the arrow to the enclosing slice.
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"f\",\"pid\":1,\"tid\":%d,"
                          "\"name\":\"%s\",\"cat\":\"frame\","
                          "\"id\":%llu,\"bp\":\"e\",\"ts\":%.3f}",
                          e.tid, escape(e.name).c_str(),
                          (unsigned long long)e.id, ts);
            break;
        }
        out += buf;
        if (i + 1 < events_.size())
            out += ',';
        out += '\n';
    }
    out += "]\n";
    return out;
}

bool
TraceLog::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("TraceLog::save: cannot open %s for writing: %s",
             path.c_str(), std::strerror(errno));
        return false;
    }
    out << to_json();
    if (!out) {
        warn("TraceLog::save: write to %s failed: %s", path.c_str(),
             std::strerror(errno));
        return false;
    }
    return true;
}

} // namespace dvs
