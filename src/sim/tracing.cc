#include "sim/tracing.h"

#include <cstdio>
#include <fstream>

namespace dvs {
namespace {

/**
 * JSON string escaping. Track and event names come from workload and
 * surface declarations, so any byte can show up here; control characters
 * must be escaped or the exported trace is not valid JSON (RFC 8259
 * forbids raw U+0000..U+001F inside strings).
 */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    char buf[8];
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

int
TraceLog::track_id(const std::string &track)
{
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        if (tracks_[i] == track)
            return int(i) + 1;
    }
    tracks_.push_back(track);
    return int(tracks_.size());
}

void
TraceLog::duration(const std::string &track, const std::string &name,
                   Time start, Time end)
{
    events_.push_back(
        Event{'X', track, name, start, end - start, 0.0});
}

void
TraceLog::instant(const std::string &track, const std::string &name,
                  Time at)
{
    events_.push_back(Event{'i', track, name, at, 0, 0.0});
}

void
TraceLog::counter(const std::string &name, Time at, double value)
{
    events_.push_back(Event{'C', "counters", name, at, 0, value});
}

std::string
TraceLog::to_json() const
{
    // Chrome trace format: timestamps in microseconds, pid/tid tracks.
    std::string out = "[\n";
    char buf[512];
    // Thread-name metadata so tracks render with their labels.
    std::vector<std::string> tracks;
    for (const Event &e : events_) {
        bool seen = false;
        for (const auto &t : tracks)
            seen |= t == e.track;
        if (!seen)
            tracks.push_back(e.track);
    }
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":"
                      "\"%s\"}},\n",
                      i + 1, escape(tracks[i]).c_str());
        out += buf;
    }

    auto tid_of = [&](const std::string &track) {
        for (std::size_t i = 0; i < tracks.size(); ++i) {
            if (tracks[i] == track)
                return i + 1;
        }
        return std::size_t(0);
    };

    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        const double ts = to_us(e.start);
        switch (e.phase) {
          case 'X':
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"X\",\"pid\":1,\"tid\":%zu,"
                          "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                          tid_of(e.track), escape(e.name).c_str(), ts,
                          to_us(e.duration));
            break;
          case 'i':
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"i\",\"pid\":1,\"tid\":%zu,"
                          "\"name\":\"%s\",\"ts\":%.3f,\"s\":\"t\"}",
                          tid_of(e.track), escape(e.name).c_str(), ts);
            break;
          case 'C':
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\","
                          "\"ts\":%.3f,\"args\":{\"value\":%g}}",
                          escape(e.name).c_str(), ts, e.value);
            break;
        }
        out += buf;
        if (i + 1 < events_.size())
            out += ',';
        out += '\n';
    }
    out += "]\n";
    return out;
}

bool
TraceLog::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << to_json();
    return bool(out);
}

} // namespace dvs
