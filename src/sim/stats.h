/**
 * @file
 * Lightweight statistics accumulators.
 *
 * Counter and SampleStat are the building blocks used by the metrics
 * module; StatSet groups named statistics for reporting.
 */

#ifndef DVS_SIM_STATS_H
#define DVS_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvs {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming summary of a sample set: count / mean / min / max / variance
 * (Welford), with optional retention of raw samples for percentiles.
 */
class SampleStat
{
  public:
    /** @param keep_samples retain raw values to allow percentile queries */
    explicit SampleStat(bool keep_samples = false)
        : keep_samples_(keep_samples)
    {}

    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
    double stddev() const;
    double sum() const { return sum_; }

    /**
     * p-th percentile (p in [0, 100]) by linear interpolation.
     * Calling without keep_samples = true is a fatal() configuration
     * error (enforced in release builds too, not just via assert).
     * @return NaN when no samples have been added — callers reporting an
     *         empty run must handle it explicitly (see RunReport).
     */
    double percentile(double p) const;

    /**
     * Fold @p other into this accumulator as if its samples had been
     * add()ed here (Chan's parallel-Welford combination for mean/M2;
     * min/max/sum/count combine directly). Merging a sample-keeping
     * stat with one that dropped its samples is a fatal() configuration
     * error — the merged percentile view would silently lose mass.
     * Kept samples are concatenated, so percentile() over the merge
     * equals percentile() over the union.
     */
    void merge(const SampleStat &other);

    bool keeps_samples() const { return keep_samples_; }

    void reset();

  private:
    bool keep_samples_;
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** A named collection of scalar results, printable as an aligned table. */
class StatSet
{
  public:
    /** Record (or overwrite) a named scalar. Insertion order is kept. */
    void set(const std::string &name, double value);

    /** Fetch a named scalar. @return 0.0 when absent. */
    double get(const std::string &name) const;

    bool has(const std::string &name) const;

    /** All (name, value) pairs in insertion order. */
    const std::vector<std::pair<std::string, double>> &entries() const
    {
        return entries_;
    }

    /** Render as an aligned "name: value" listing. */
    std::string to_string() const;

  private:
    std::vector<std::pair<std::string, double>> entries_;
    std::map<std::string, std::size_t> index_;
};

} // namespace dvs

#endif // DVS_SIM_STATS_H
