/**
 * @file
 * Simulation time primitives.
 *
 * All simulation time is expressed as signed 64-bit nanosecond counts on a
 * virtual clock that starts at zero. Durations and points in time share the
 * representation; helpers below make call sites read naturally.
 */

#ifndef DVS_SIM_TIME_H
#define DVS_SIM_TIME_H

#include <cstdint>
#include <string>

namespace dvs {

/** A point in virtual time or a duration, in nanoseconds. */
using Time = std::int64_t;

/** Sentinel for "no time" / unset timestamps. */
inline constexpr Time kTimeNone = -1;

/** Largest representable time, used as an "infinite" horizon. */
inline constexpr Time kTimeMax = INT64_MAX;

namespace time_literals {

constexpr Time operator""_ns(unsigned long long v) { return Time(v); }
constexpr Time operator""_us(unsigned long long v) { return Time(v) * 1000; }
constexpr Time operator""_ms(unsigned long long v)
{
    return Time(v) * 1'000'000;
}
constexpr Time operator""_s(unsigned long long v)
{
    return Time(v) * 1'000'000'000;
}

} // namespace time_literals

/** Convert nanoseconds to (double) milliseconds for reporting. */
constexpr double
to_ms(Time t)
{
    return double(t) / 1e6;
}

/** Convert nanoseconds to (double) microseconds for reporting. */
constexpr double
to_us(Time t)
{
    return double(t) / 1e3;
}

/** Convert nanoseconds to (double) seconds for reporting. */
constexpr double
to_seconds(Time t)
{
    return double(t) / 1e9;
}

/** Convert (double) milliseconds to nanoseconds. */
constexpr Time
from_ms(double ms)
{
    return Time(ms * 1e6);
}

/** Convert (double) microseconds to nanoseconds. */
constexpr Time
from_us(double us)
{
    return Time(us * 1e3);
}

/** Convert (double) seconds to nanoseconds. */
constexpr Time
from_seconds(double s)
{
    return Time(s * 1e9);
}

/** The refresh period of a display running at @p hz refreshes per second. */
constexpr Time
period_from_hz(double hz)
{
    return Time(1e9 / hz);
}

/** Render a time as "12.345 ms" for logs and reports. */
std::string format_time(Time t);

} // namespace dvs

#endif // DVS_SIM_TIME_H
