/**
 * @file
 * Event lanes: the partitioning unit of the parallel-in-time simulator.
 *
 * Every scheduled event carries a LaneId. Lane 0 (`kSharedLane`) is the
 * shared lane — vsync edges, software vsync distribution, the device GPU,
 * arbiter and compositor work, scenario boundaries: everything that can
 * touch cross-surface state. Per-surface work (UI / render / private-GPU
 * stage completions and whatever they schedule) is tagged with the
 * surface's lane so the parallel dispatcher can execute disjoint lanes
 * concurrently between shared-lane barriers (see DESIGN.md §5g).
 *
 * Tagging is ambient: schedule() stamps the new event with the current
 * thread's ambient lane. The ambient lane defaults to kSharedLane; an
 * ExecResource pinned to a lane raises it around its completion schedule
 * (LaneScope), and during parallel lane execution the dispatcher sets it
 * to the executing lane so emissions inherit their parent's lane.
 * Serial dispatch ignores lanes entirely — the tag only ever affects
 * *where* an event executes, never *when*: dispatch order stays
 * (time, priority, sequence) in both modes, byte-identical.
 */

#ifndef DVS_SIM_LANE_H
#define DVS_SIM_LANE_H

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace dvs {

/** Lane tag carried by every event. 0 = shared lane. */
using LaneId = std::uint32_t;

inline constexpr LaneId kSharedLane = 0;

/** Event handle; mirrors the alias in event_queue.h (same type). */
using EventId = std::uint64_t;

class LaneExecContext; // parallel_dispatch.h

namespace lane_detail {

/**
 * Per-thread execution state. `ctx` is non-null only while the parallel
 * dispatcher is executing a lane's window on this thread; `lane_now` then
 * mirrors the lane's virtual clock so EventQueue::now() stays exact
 * without a context indirection on the hot path.
 */
struct Ambient {
    LaneId lane = kSharedLane;
    LaneExecContext *ctx = nullptr;
    Time lane_now = 0;
};

inline Ambient &
ambient()
{
    thread_local Ambient a;
    return a;
}

} // namespace lane_detail

/** Ambient lane new events are stamped with on this thread. */
inline LaneId
current_lane()
{
    return lane_detail::ambient().lane;
}

/** Lane-execution context of this thread; null outside lane windows. */
inline LaneExecContext *
current_lane_ctx()
{
    return lane_detail::ambient().ctx;
}

/** RAII: stamp events scheduled in this scope with lane @p l. */
class LaneScope
{
  public:
    explicit LaneScope(LaneId l) : prev_(lane_detail::ambient().lane)
    {
        lane_detail::ambient().lane = l;
    }
    ~LaneScope() { lane_detail::ambient().lane = prev_; }

    LaneScope(const LaneScope &) = delete;
    LaneScope &operator=(const LaneScope &) = delete;

  private:
    LaneId prev_;
};

// ----- lane-execution intercepts (defined in parallel_dispatch.cc) -----
//
// While a lane window is executing, EventQueue::schedule / cancel and
// shared-component ports route through the thread's LaneExecContext so
// lane threads never mutate shared structures mid-window.

EventId lane_intercept_schedule(LaneExecContext &ctx, Time when,
                                std::function<void()> fn, int prio);
bool lane_intercept_cancel(LaneExecContext &ctx, EventId id);

/**
 * Defer a shared-component side effect (e.g. a VsyncDistributor callback
 * request) to the next barrier, where it is applied in the canonical
 * serial dispatch order. Only callable when current_lane_ctx() != null.
 */
void lane_defer_port(LaneExecContext &ctx, std::function<void()> op);

} // namespace dvs

#endif // DVS_SIM_LANE_H
