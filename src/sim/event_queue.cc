#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>

namespace dvs {

bool
EventQueue::is_live(EventId id) const
{
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].live &&
           slots_[slot].gen == gen_of(id);
}

std::uint32_t
EventQueue::acquire_slot(Callback fn)
{
    std::uint32_t slot;
    if (free_head_ != kNullSlot) {
        slot = free_head_;
        free_head_ = slots_[slot].next_free;
    } else {
        slot = std::uint32_t(slots_.size());
        slots_.emplace_back();
    }
    Slot &s = slots_[slot];
    s.fn = std::move(fn);
    s.live = true;
    s.next_free = kNullSlot;
    return slot;
}

EventQueue::Callback
EventQueue::release_slot(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    Callback fn = std::move(s.fn);
    s.fn = nullptr;
    s.live = false;
    ++s.gen; // stale EventIds for this slot now fail the generation check
    s.next_free = free_head_;
    free_head_ = slot;
    return fn;
}

void
EventQueue::prune_dead_top()
{
    while (!heap_.empty() && !is_live(heap_.front().id)) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
        --heap_dead_;
    }
}

void
EventQueue::maybe_compact()
{
    // Cancelled entries buried below the top are skipped lazily; rebuild
    // the heap once they outnumber the live ones so a cancel-heavy
    // workload stays O(live) in memory. The comparator is a strict total
    // order (seq is unique), so rebuilding cannot perturb dispatch order.
    if (heap_dead_ <= 64 || heap_dead_ <= heap_.size() / 2)
        return;
    std::erase_if(heap_, [this](const Entry &e) { return !is_live(e.id); });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_dead_ = 0;
}

EventId
EventQueue::schedule(Time when, Callback fn, EventPriority prio)
{
    lane_detail::Ambient &a = lane_detail::ambient();
    if (a.ctx) {
        // Inside a parallel lane window: the emission is recorded in the
        // lane's log and either executed locally (own lane, inside the
        // window) or committed to the heap at the barrier with its exact
        // serial sequence number.
        return lane_intercept_schedule(*a.ctx, when, std::move(fn),
                                       static_cast<int>(prio));
    }
    assert(when >= now_ && "cannot schedule events in the past");
    const std::uint32_t slot = acquire_slot(std::move(fn));
    const EventId id = make_id(slot, slots_[slot].gen);
    heap_.push_back(
        Entry{when, static_cast<int>(prio), a.lane, next_seq_++, id});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    ++live_count_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    lane_detail::Ambient &a = lane_detail::ambient();
    if (a.ctx)
        return lane_intercept_cancel(*a.ctx, id);
    if (id & kProvisionalBit) {
        // Provisional handle from an earlier lane window. If the event
        // was deferred to the heap it has a real id by now; otherwise it
        // already fired or was cancelled in-window, so the handle is
        // stale — same contract as a recycled real id.
        id = translate(id);
        if (id == 0)
            return false;
    }
    if (!is_live(id))
        return false;
    release_slot(slot_of(id));
    --live_count_;
    ++heap_dead_; // the heap entry is now dead; pruned below or at dispatch
    prune_dead_top();
    maybe_compact();
    return true;
}

Time
EventQueue::next_event_time() const
{
    // Dead entries never rest on top: cancel() prunes eagerly and
    // run_until() pops them before checking its horizon, so the top entry
    // is always a live event.
    return heap_.empty() ? kTimeNone : heap_.front().when;
}

std::uint64_t
EventQueue::run_until(Time horizon, bool advance_to_horizon)
{
    std::uint64_t n = 0;
    for (;;) {
        prune_dead_top();
        if (heap_.empty() || heap_.front().when > horizon)
            break;

        const Entry e = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();

        Callback fn = release_slot(slot_of(e.id));
        now_ = e.when;
        --live_count_;
        ++dispatched_;
        fold_dispatch(e.when, e.prio, e.lane, e.seq);
        ++n;
        fn();
    }
    if (advance_to_horizon && horizon != kTimeMax && now_ < horizon)
        now_ = horizon;
    return n;
}

} // namespace dvs
