#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace dvs {

EventId
EventQueue::schedule(Time when, Callback fn, EventPriority prio)
{
    assert(when >= now_ && "cannot schedule events in the past");
    EventId id = next_id_++;
    heap_.push(Entry{when, static_cast<int>(prio), next_seq_++, id});
    callbacks_.emplace_back(id, std::move(fn));
    ++live_count_;
    return id;
}

EventQueue::Callback *
EventQueue::find_callback(EventId id)
{
    for (auto &kv : callbacks_) {
        if (kv.first == id)
            return &kv.second;
    }
    return nullptr;
}

bool
EventQueue::cancel(EventId id)
{
    Callback *cb = find_callback(id);
    if (!cb || !*cb)
        return false;
    *cb = nullptr; // heap entry is skipped lazily at dispatch
    --live_count_;
    return true;
}

Time
EventQueue::next_event_time() const
{
    // Cancelled entries may sit at the top of the heap; they are rare and
    // only make this bound conservative (an earlier, dead entry). Callers
    // use this for horizons, where conservative is fine.
    return heap_.empty() ? kTimeNone : heap_.top().when;
}

std::uint64_t
EventQueue::run_until(Time horizon, bool advance_to_horizon)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= horizon) {
        Entry e = heap_.top();
        heap_.pop();

        Callback fn;
        for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
            if (it->first == e.id) {
                fn = std::move(it->second);
                callbacks_.erase(it);
                break;
            }
        }
        if (!fn)
            continue; // cancelled

        now_ = e.when;
        --live_count_;
        ++dispatched_;
        ++n;
        fn();
    }
    if (advance_to_horizon && horizon != kTimeMax && now_ < horizon)
        now_ = horizon;
    return n;
}

} // namespace dvs
