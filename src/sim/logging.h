/**
 * @file
 * Minimal leveled logging for the simulator.
 *
 * Follows the gem5 split: panic() for internal invariant violations (bugs),
 * fatal() for user/configuration errors, warn()/inform() for status. Trace
 * logging is off by default and gated by a global level so hot paths pay a
 * single branch.
 */

#ifndef DVS_SIM_LOGGING_H
#define DVS_SIM_LOGGING_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace dvs {

/**
 * A user/configuration error surfaced by fatal() when fatal-throws mode
 * is on. Batch drivers (the ExperimentRunner) enable that mode so one
 * bad sweep point fails its own RunReport slot instead of exiting the
 * whole multi-threaded process.
 */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

enum class LogLevel : int {
    kNone = 0,
    kWarn = 1,
    kInform = 2,
    kDebug = 3,
    kTrace = 4,
};

/** Set the global log verbosity (default: kWarn). */
void set_log_level(LogLevel level);
LogLevel log_level();

/** Abort with a message: an internal simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user/configuration error: exit(1) by default, or throw
 * ConfigError when fatal-throws mode is on (set_fatal_throws). panic()
 * is unaffected — genuine internal invariant breaks always abort.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Toggle fatal-throws mode (process-wide, also via $DVS_FATAL_THROWS=1
 * at first use). Returns the previous value so scoped users can restore.
 */
bool set_fatal_throws(bool on);
bool fatal_throws();

/** RAII scope for fatal-throws mode. */
class FatalThrowsScope
{
  public:
    explicit FatalThrowsScope(bool on) : saved_(set_fatal_throws(on)) {}
    ~FatalThrowsScope() { set_fatal_throws(saved_); }
    FatalThrowsScope(const FatalThrowsScope &) = delete;
    FatalThrowsScope &operator=(const FatalThrowsScope &) = delete;

  private:
    bool saved_;
};

/** Non-fatal warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose debugging output (only when level >= kDebug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace dvs

#endif // DVS_SIM_LOGGING_H
