/**
 * @file
 * Minimal leveled logging for the simulator.
 *
 * Follows the gem5 split: panic() for internal invariant violations (bugs),
 * fatal() for user/configuration errors, warn()/inform() for status. Trace
 * logging is off by default and gated by a global level so hot paths pay a
 * single branch.
 */

#ifndef DVS_SIM_LOGGING_H
#define DVS_SIM_LOGGING_H

#include <cstdarg>
#include <string>

namespace dvs {

enum class LogLevel : int {
    kNone = 0,
    kWarn = 1,
    kInform = 2,
    kDebug = 3,
    kTrace = 4,
};

/** Set the global log verbosity (default: kWarn). */
void set_log_level(LogLevel level);
LogLevel log_level();

/** Abort with a message: an internal simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: a user/configuration error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose debugging output (only when level >= kDebug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace dvs

#endif // DVS_SIM_LOGGING_H
