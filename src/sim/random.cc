#include "sim/random.h"

#include <cassert>
#include <cmath>

namespace dvs {
namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1)
    return double(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span = std::uint64_t(hi - lo) + 1;
    return lo + std::int64_t(next_u64() % span);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::normal(double mean, double stddev)
{
    // Box-Muller without the cached spare so the consumed stream length is
    // a deterministic function of the call count.
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) // avoid log(0)
        u1 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::bounded_pareto(double alpha, double lo, double hi)
{
    assert(alpha > 0 && lo > 0 && hi > lo);
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    // Inverse CDF of the bounded Pareto distribution.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    while (u <= 1e-300)
        u = uniform();
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    return Rng(next_u64());
}

} // namespace dvs
