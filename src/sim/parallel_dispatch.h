/**
 * @file
 * Conservative parallel discrete-event dispatch over per-surface lanes.
 *
 * The dispatcher splits the event stream at shared-lane events (vsync
 * edges, software vsync distribution, device-GPU work, arbiter and
 * compositor events — everything tagged kSharedLane). Between two shared
 * events, all pending lane-tagged events form a *window*: they are popped
 * off the heap, partitioned per lane, and executed concurrently — one
 * worker per lane — because events of different lanes inside a window
 * cannot affect each other (surfaces only couple through shared
 * resources, which live on the shared lane; see DESIGN.md §5g).
 *
 * Determinism is not statistical but structural: lane execution is
 * *logged*, and at the barrier the logs are replayed symbolically through
 * a priority queue that reproduces the exact serial heap order —
 * assigning every emission the same sequence number serial dispatch
 * would have, folding the same dispatch hash, and committing deferred
 * work to the real heap at its canonical position. Any discipline
 * violation (an event emitted into another lane or the shared lane
 * inside a window, a lane dispatching out of canonical order) is
 * detected during replay and reported via fatal().
 *
 * This header is internal to the sim layer; users enable the mode with
 * Simulator::set_sim_workers() / SystemConfig::with_sim_workers().
 */

#ifndef DVS_SIM_PARALLEL_DISPATCH_H
#define DVS_SIM_PARALLEL_DISPATCH_H

#include <cstdint>
#include <exception>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/lane.h"
#include "sim/worker_pool.h"

namespace dvs {

/**
 * Per-lane execution state (internal). Persistent across windows so the
 * window buffers act as arenas: flat POD log records and emission arrays
 * are cleared, never freed, and provisional-id counters keep handles
 * unique for the lifetime of the queue.
 */
class LaneExecContext
{
  public:
    /** A bucket event: popped off the real heap for this window. */
    struct BucketEv {
        Time when;
        int prio;
        std::uint64_t seq;
        EventId id;
        EventQueue::Callback fn;
        bool dead = false;       ///< cancelled in-window before dispatch
        bool dispatched = false; ///< executed locally
    };

    /** An emission: a schedule() issued during this window. */
    struct Emit {
        Time when;
        int prio;
        LaneId lane;            ///< ambient lane at schedule time
        EventId prov;           ///< provisional handle returned to caller
        std::uint64_t seq = 0;  ///< canonical seq, assigned at replay
        EventQueue::Callback fn;
        bool in_window = false;
        bool dead = false;
        bool dispatched = false;
    };

    /** Flat POD dispatch-log record: one locally dispatched event. */
    struct Rec {
        Time when;
        int prio;
        std::uint32_t is_emission;
        std::uint32_t src; ///< index into bucket or emits
        std::uint32_t emit_begin, emit_end; ///< range into emits
        std::uint32_t port_begin, port_end; ///< range into ports
    };

    LaneId lane = kSharedLane;
    EventQueue *queue = nullptr;

    // Window bound: an emission executes inside the window iff it sorts
    // strictly before (bound_when, bound_prio) — emissions always carry
    // larger seqs than any pending heap entry, so (when, prio) decides.
    Time bound_when = 0;
    int bound_prio = 0;
    Time now = 0; ///< lane-local virtual clock

    std::vector<BucketEv> bucket;
    std::vector<Emit> emits;
    std::vector<Rec> log;
    std::vector<std::function<void()>> ports;
    std::vector<EventId> deferred_cancels;
    std::uint64_t prov_counter = 0; ///< never reset: handles stay unique
    std::uint64_t window_epoch = 0; ///< dispatcher epoch of last window
    std::size_t cursor = 0;         ///< replay position in log
    std::exception_ptr error;

    /** Reset per-window state (buffers are reused, not freed). */
    void begin_window();

    /** Execute the window's bucket + local emissions on this thread. */
    void run_window();

    bool in_window(Time when, int prio) const
    {
        return when < bound_when ||
               (when == bound_when && prio < bound_prio);
    }

    EventId intercept_schedule(Time when, EventQueue::Callback fn,
                               int prio);
    bool intercept_cancel(EventId id);

  private:
    /** Lane-local dispatch order: the serial order's per-lane projection. */
    struct Node {
        Time when;
        int prio;
        std::uint32_t cls; ///< 0 = bucket (ord = seq), 1 = emission (ord = idx)
        std::uint64_t ord;
        std::uint32_t idx;

        bool operator>(const Node &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            if (cls != o.cls)
                return cls > o.cls;
            return ord > o.ord;
        }
    };

    std::vector<Node> heap_;
};

/**
 * The parallel run loop. Owns the per-lane contexts and the replay
 * machinery; shares the caller-participating worker pool.
 */
class ParallelDispatcher
{
  public:
    ParallelDispatcher(EventQueue &queue, SimWorkerPool &pool);

    /** Serial-identical run_until (same contract as EventQueue's). */
    std::uint64_t run_until(Time horizon, bool advance_to_horizon);

    /**
     * Testing hook: cap the number of bucket events per window, forcing
     * extra barriers at arbitrary points. Any cap is serial-equivalent —
     * a conservative window may always be shortened. 0 = unbounded.
     */
    void set_max_window(std::size_t cap) { max_window_ = cap; }

    /** Windows executed (with >= 1 lane event). */
    std::uint64_t windows() const { return windows_; }

  private:
    /** Replay priority-queue node: mirrors the serial heap exactly. */
    struct RNode {
        Time when;
        int prio;
        std::uint64_t seq;
        std::uint32_t ctx;  ///< index into active_
        std::uint32_t cls;  ///< 0 = bucket, 1 = emission
        std::uint32_t idx;  ///< index into bucket or emits

        bool operator>(const RNode &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return seq > o.seq;
        }
    };

    LaneExecContext &ctx_for(LaneId lane);
    void dispatch_top_serial();
    std::uint64_t replay_window();

    EventQueue &q_;
    SimWorkerPool &pool_;
    std::vector<std::unique_ptr<LaneExecContext>> ctxs_;
    std::unordered_map<LaneId, std::uint32_t> ctx_of_lane_;
    std::vector<std::uint32_t> active_; ///< ctx indices in this window
    std::vector<RNode> rheap_;
    std::uint64_t epoch_ = 0;
    std::uint64_t windows_ = 0;
    std::size_t max_window_ = 0;
};

} // namespace dvs

#endif // DVS_SIM_PARALLEL_DISPATCH_H
