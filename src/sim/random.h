/**
 * @file
 * Deterministic random number generation for simulations.
 *
 * A thin xoshiro256++ generator plus the distribution helpers the workload
 * models need. std::mt19937 and the std <random> distributions are avoided
 * deliberately: their outputs differ across standard library versions,
 * which would break cross-platform reproducibility of the benches.
 */

#ifndef DVS_SIM_RANDOM_H
#define DVS_SIM_RANDOM_H

#include <cstdint>

namespace dvs {

/**
 * Deterministic PRNG (xoshiro256++) with distribution helpers.
 *
 * All simulations take a seed; the same seed always produces the same
 * sequence of frames and therefore the same statistics.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 1);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Standard normal via Box-Muller (deterministic; no cached spare). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /**
     * Lognormal: exp(N(mu, sigma)). Models the bulk of short frames whose
     * cost clusters around a mode with a mild right tail.
     */
    double lognormal(double mu, double sigma);

    /**
     * Bounded Pareto on [lo, hi] with tail index @p alpha. Models the
     * heavy-tailed key frames of the paper's power-law observation:
     * smaller alpha means heavier tail.
     */
    double bounded_pareto(double alpha, double lo, double hi);

    /** Exponential with the given mean. */
    double exponential(double mean);

    /** Fork an independent stream (for per-entity sub-generators). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace dvs

#endif // DVS_SIM_RANDOM_H
