#include "vsyncsrc/choreographer.h"

#include "sim/logging.h"

namespace dvs {

Choreographer::Choreographer(VsyncDistributor &dist, VsyncChannel channel)
    : dist_(dist), channel_(channel)
{
}

void
Choreographer::post_frame_callback()
{
    if (!callback_)
        panic("Choreographer::post_frame_callback before set_callback");
    if (armed_)
        return; // coalesce
    armed_ = true;
    dist_.request_callback(
        channel_,
        [this](const SwVsync &sw) {
            armed_ = false;
            ++delivered_;
            callback_(sw);
        },
        lane_);
}

} // namespace dvs
