/**
 * @file
 * Software model of the hardware VSync timeline (DispSync-style).
 *
 * Consumers of vsync timing (the distributor, and D-VSync's Display Time
 * Virtualizer) do not read the hardware directly; they maintain a model of
 * the vsync period and phase from observed edge timestamps and predict
 * future edges from it. The model is resilient to bounded jitter and is
 * recalibrated as new samples arrive — exactly the "calibrates the issued
 * D-Timestamp every few frames with hardware VSync signals to avoid error
 * accumulation" behaviour of §5.1.
 */

#ifndef DVS_VSYNCSRC_VSYNC_MODEL_H
#define DVS_VSYNCSRC_VSYNC_MODEL_H

#include <cstdint>
#include <deque>

#include "sim/time.h"

namespace dvs {

/**
 * Estimates the vsync grid (period + phase) from observed hardware edges
 * and answers prediction queries against the estimated grid.
 */
class VsyncModel
{
  public:
    /**
     * @param nominal_period initial period estimate before any samples
     * @param window number of recent samples used for estimation
     */
    explicit VsyncModel(Time nominal_period, int window = 16);

    /**
     * Feed an observed hardware edge timestamp. When the caller samples
     * only every Nth edge (sparse calibration), @p grid_steps tells the
     * model how many periods the step spans so the per-edge delta can be
     * recovered without guessing (a 2x delta is otherwise ambiguous with
     * a rate halving).
     */
    void add_sample(Time edge, int grid_steps = 1);

    /** Current period estimate. */
    Time period() const { return period_; }

    /** Timestamp of the most recent observed edge (kTimeNone if none). */
    Time last_edge() const { return last_edge_; }

    /** Predicted first edge strictly after @p t. */
    Time predict_next(Time t) const;

    /** Predicted edge @p k grid steps after the last observed edge. */
    Time predict_after_last(int k) const;

    /**
     * Prediction error of the model against an actual edge (for tests and
     * calibration metrics): actual − predicted, given the model state
     * before @p actual was added.
     */
    Time prediction_error(Time actual) const;

    /** Reset the model to the nominal period with no samples. */
    void reset();

    /** Notify the model of a deliberate rate change (LTPO). */
    void set_nominal_period(Time period);

    std::uint64_t samples() const { return n_samples_; }

  private:
    Time nominal_period_;
    Time period_;
    Time last_edge_ = kTimeNone;
    int window_;
    std::deque<Time> recent_;
    std::uint64_t n_samples_ = 0;
};

} // namespace dvs

#endif // DVS_VSYNCSRC_VSYNC_MODEL_H
