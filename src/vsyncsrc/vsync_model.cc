#include "vsyncsrc/vsync_model.h"

#include <algorithm>
#include <numeric>

#include "sim/logging.h"

namespace dvs {

VsyncModel::VsyncModel(Time nominal_period, int window)
    : nominal_period_(nominal_period), period_(nominal_period),
      window_(window)
{
    if (nominal_period <= 0)
        fatal("VsyncModel period must be positive");
    if (window < 2)
        fatal("VsyncModel window must be >= 2");
}

void
VsyncModel::add_sample(Time edge, int grid_steps)
{
    if (grid_steps < 1)
        fatal("grid_steps must be >= 1");
    ++n_samples_;
    if (last_edge_ != kTimeNone && edge > last_edge_) {
        // A rate change or long gap makes old deltas meaningless: restart
        // the window when the step deviates far from the *recent* deltas
        // (comparing against the stale period estimate would keep
        // rejecting every sample of the new cadence). Sparse calibration
        // steps are normalized to per-edge deltas first.
        const Time delta = (edge - last_edge_) / grid_steps;
        if (!recent_.empty()) {
            const Time ref =
                std::accumulate(recent_.begin(), recent_.end(), Time(0)) /
                Time(recent_.size());
            const Time dev = delta > ref ? delta - ref : ref - delta;
            if (dev > ref / 4)
                recent_.clear();
        }
        recent_.push_back(delta);
        while (int(recent_.size()) > window_)
            recent_.pop_front();
    }
    last_edge_ = edge;

    if (recent_.size() >= 2) {
        const Time sum =
            std::accumulate(recent_.begin(), recent_.end(), Time(0));
        period_ = sum / Time(recent_.size());
    }
}

Time
VsyncModel::predict_next(Time t) const
{
    if (last_edge_ == kTimeNone) {
        // No samples yet: assume the grid is anchored at zero.
        if (t < 0)
            return 0;
        return (t / period_ + 1) * period_;
    }
    if (t < last_edge_)
        return last_edge_;
    const Time k = (t - last_edge_) / period_ + 1;
    return last_edge_ + k * period_;
}

Time
VsyncModel::predict_after_last(int k) const
{
    const Time base = last_edge_ == kTimeNone ? 0 : last_edge_;
    return base + Time(k) * period_;
}

Time
VsyncModel::prediction_error(Time actual) const
{
    if (last_edge_ == kTimeNone)
        return 0;
    // Nearest predicted grid point to the actual edge.
    const Time steps = (actual - last_edge_ + period_ / 2) / period_;
    const Time predicted = last_edge_ + steps * period_;
    return actual - predicted;
}

void
VsyncModel::reset()
{
    period_ = nominal_period_;
    last_edge_ = kTimeNone;
    recent_.clear();
    n_samples_ = 0;
}

void
VsyncModel::set_nominal_period(Time period)
{
    if (period <= 0)
        fatal("VsyncModel period must be positive");
    nominal_period_ = period;
    period_ = period;
    recent_.clear();
}

} // namespace dvs
