/**
 * @file
 * Software VSync distributor.
 *
 * Receives HW-VSync edges and posts software vsync events to pipeline
 * entities at configured offsets — VSync-app for the UI thread, VSync-rs
 * for the render service, VSync-sf for the compositor (§2). Callbacks are
 * one-shot and must be re-requested every frame, matching the Android
 * NativeVSync / Choreographer contract.
 */

#ifndef DVS_VSYNCSRC_VSYNC_DISTRIBUTOR_H
#define DVS_VSYNCSRC_VSYNC_DISTRIBUTOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "display/hw_vsync.h"
#include "sim/lane.h"
#include "sim/simulator.h"
#include "vsyncsrc/vsync_model.h"

namespace dvs {

/** Software vsync channels, by pipeline stage. */
enum class VsyncChannel : int {
    kApp = 0, ///< triggers the app UI thread
    kRs = 1,  ///< triggers the render service / render thread
    kSf = 2,  ///< triggers the compositor (SurfaceFlinger)
};

inline constexpr int kNumVsyncChannels = 3;

/** A software vsync delivery. */
struct SwVsync {
    Time timestamp;      ///< the hardware edge this delivery derives from
    Time delivery_time;  ///< when the callback actually ran (edge+offset)
    std::uint64_t index; ///< hardware edge counter
    double rate_hz;      ///< panel rate at the edge
};

/**
 * Fans HW-VSync out to software channels with per-channel phase offsets.
 */
class VsyncDistributor
{
  public:
    using Callback = std::function<void(const SwVsync &)>;

    VsyncDistributor(Simulator &sim, HwVsyncGenerator &hw);

    /** Set a channel's offset from the hardware edge (>= 0). */
    void set_offset(VsyncChannel ch, Time offset);
    Time offset(VsyncChannel ch) const;

    /**
     * Request a single callback at the next delivery of @p ch. Requests
     * made at the exact delivery time of an edge wait for the next edge.
     * @p lane is the requester's event lane: under per-lane delivery the
     * callback rides a delivery event tagged with that lane, so a
     * surface's frame work executes on its own lane between barriers.
     */
    void request_callback(VsyncChannel ch, Callback fn,
                          LaneId lane = kSharedLane);

    /**
     * Fan each edge out as one delivery event *per requester lane*
     * instead of one combined event per channel. Same deliveries at the
     * same times; only the batching (and thus the cross-surface callback
     * interleaving at equal timestamps) changes, which is why this is a
     * construction-time decision: the multi-surface system enables it
     * exactly when surfaces are decoupled (private GPUs), where the
     * interleaving is unobservable — and it must be identical between
     * serial and parallel runs of the same config (DESIGN.md §5g).
     */
    void set_per_lane_delivery(bool on) { per_lane_delivery_ = on; }
    bool per_lane_delivery() const { return per_lane_delivery_; }

    /** Number of outstanding requests on a channel (for tests). */
    std::size_t pending(VsyncChannel ch) const;

    /** The distributor's model of the hardware timeline. */
    const VsyncModel &model() const { return model_; }

  private:
    /** One outstanding request: callback plus its requester's lane. */
    struct Pending {
        LaneId lane;
        Callback fn;
    };

    void on_edge(const VsyncEdge &edge);

    Simulator &sim_;
    VsyncModel model_;
    std::array<Time, kNumVsyncChannels> offsets_{};
    std::array<std::vector<Pending>, kNumVsyncChannels> pending_;
    bool per_lane_delivery_ = false;
};

} // namespace dvs

#endif // DVS_VSYNCSRC_VSYNC_DISTRIBUTOR_H
