/**
 * @file
 * Choreographer: per-producer frame-callback coalescing.
 *
 * Mirrors Android's Choreographer (§5.2): an app posts a frame callback;
 * the choreographer requests the underlying software vsync and invokes the
 * callback with the frame timestamp. Multiple posts before the next vsync
 * coalesce into a single callback. If the app posts while a previous
 * callback is still executing (UI thread busy), the post simply targets
 * the next vsync — this is how a slow frame naturally skips grid slots.
 */

#ifndef DVS_VSYNCSRC_CHOREOGRAPHER_H
#define DVS_VSYNCSRC_CHOREOGRAPHER_H

#include <functional>

#include "vsyncsrc/vsync_distributor.h"

namespace dvs {

/**
 * Coalescing frame-callback dispatcher on one software vsync channel.
 */
class Choreographer
{
  public:
    /** Callback receives the vsync timestamp the frame is paced by. */
    using FrameCallback = std::function<void(const SwVsync &)>;

    Choreographer(VsyncDistributor &dist, VsyncChannel channel);

    /**
     * Install the single frame callback target (the producer's frame
     * entry point). Must be set before posting.
     */
    void set_callback(FrameCallback fn) { callback_ = std::move(fn); }

    /**
     * Request that the frame callback run at the next vsync. Idempotent
     * between vsyncs: repeated posts coalesce into one delivery.
     */
    void post_frame_callback();

    /**
     * Event lane this choreographer's deliveries belong to (the owning
     * producer's lane). Forwarded with every vsync request so per-lane
     * delivery can tag the delivery event.
     */
    void set_lane(LaneId lane) { lane_ = lane; }
    LaneId lane() const { return lane_; }

    /** Whether a callback is armed for the next vsync. */
    bool armed() const { return armed_; }

    /** Vsync deliveries that actually invoked the callback. */
    std::uint64_t callbacks_delivered() const { return delivered_; }

  private:
    VsyncDistributor &dist_;
    VsyncChannel channel_;
    FrameCallback callback_;
    LaneId lane_ = kSharedLane;
    bool armed_ = false;
    std::uint64_t delivered_ = 0;
};

} // namespace dvs

#endif // DVS_VSYNCSRC_CHOREOGRAPHER_H
