#include "vsyncsrc/vsync_distributor.h"

#include "sim/lane.h"
#include "sim/logging.h"

namespace dvs {

VsyncDistributor::VsyncDistributor(Simulator &sim, HwVsyncGenerator &hw)
    : sim_(sim), model_(hw.period())
{
    hw.add_listener([this](const VsyncEdge &e) { on_edge(e); });
}

void
VsyncDistributor::set_offset(VsyncChannel ch, Time offset)
{
    if (offset < 0)
        fatal("vsync channel offsets must be >= 0");
    offsets_[int(ch)] = offset;
}

Time
VsyncDistributor::offset(VsyncChannel ch) const
{
    return offsets_[int(ch)];
}

void
VsyncDistributor::request_callback(VsyncChannel ch, Callback fn,
                                   LaneId lane)
{
    // The distributor is shared state; a request issued during parallel
    // lane execution is deferred to the barrier, where deferred ports
    // are applied in the canonical serial dispatch order — so the batch
    // a later edge delivers carries the requests in the same order a
    // serial run would have appended them. The lane is passed explicitly
    // (not read from the ambient scope): serial dispatch does not set
    // ambient lanes, and the request's lane must be identical in serial
    // and parallel runs for the delivery structure to match.
    if (LaneExecContext *ctx = current_lane_ctx()) {
        lane_defer_port(*ctx,
                        [this, ch, lane, fn = std::move(fn)]() mutable {
                            pending_[int(ch)].push_back(
                                Pending{lane, std::move(fn)});
                        });
        return;
    }
    pending_[int(ch)].push_back(Pending{lane, std::move(fn)});
}

std::size_t
VsyncDistributor::pending(VsyncChannel ch) const
{
    return pending_[int(ch)].size();
}

void
VsyncDistributor::on_edge(const VsyncEdge &edge)
{
    model_.add_sample(edge.timestamp);

    for (int ch = 0; ch < kNumVsyncChannels; ++ch) {
        if (pending_[ch].empty())
            continue;
        // Snapshot and clear: callbacks requested during delivery belong
        // to the next edge.
        std::vector<Pending> batch;
        batch.swap(pending_[ch]);
        const Time deliver_at = edge.timestamp + offsets_[ch];
        if (!per_lane_delivery_) {
            sim_.events().schedule(
                deliver_at,
                [edge, deliver_at, batch = std::move(batch)] {
                    SwVsync sw{edge.timestamp, deliver_at, edge.index,
                               edge.rate_hz};
                    for (const auto &p : batch)
                        p.fn(sw);
                },
                EventPriority::kVsyncDist);
            continue;
        }
        // Per-lane fan-out: one delivery event per requester lane, in
        // order of first request, each tagged with its lane so the
        // parallel dispatcher can run the surfaces' frame starts
        // concurrently. Request order is preserved within a lane.
        std::vector<LaneId> order;
        for (const Pending &p : batch) {
            bool seen = false;
            for (LaneId l : order)
                seen = seen || l == p.lane;
            if (!seen)
                order.push_back(p.lane);
        }
        for (LaneId lane : order) {
            std::vector<Callback> fns;
            for (Pending &p : batch) {
                if (p.lane == lane)
                    fns.push_back(std::move(p.fn));
            }
            LaneScope scope(lane);
            sim_.events().schedule(
                deliver_at,
                [edge, deliver_at, fns = std::move(fns)] {
                    SwVsync sw{edge.timestamp, deliver_at, edge.index,
                               edge.rate_hz};
                    for (const auto &fn : fns)
                        fn(sw);
                },
                EventPriority::kVsyncDist);
        }
    }
}

} // namespace dvs
