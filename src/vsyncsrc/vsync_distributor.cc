#include "vsyncsrc/vsync_distributor.h"

#include "sim/logging.h"

namespace dvs {

VsyncDistributor::VsyncDistributor(Simulator &sim, HwVsyncGenerator &hw)
    : sim_(sim), model_(hw.period())
{
    hw.add_listener([this](const VsyncEdge &e) { on_edge(e); });
}

void
VsyncDistributor::set_offset(VsyncChannel ch, Time offset)
{
    if (offset < 0)
        fatal("vsync channel offsets must be >= 0");
    offsets_[int(ch)] = offset;
}

Time
VsyncDistributor::offset(VsyncChannel ch) const
{
    return offsets_[int(ch)];
}

void
VsyncDistributor::request_callback(VsyncChannel ch, Callback fn)
{
    pending_[int(ch)].push_back(std::move(fn));
}

std::size_t
VsyncDistributor::pending(VsyncChannel ch) const
{
    return pending_[int(ch)].size();
}

void
VsyncDistributor::on_edge(const VsyncEdge &edge)
{
    model_.add_sample(edge.timestamp);

    for (int ch = 0; ch < kNumVsyncChannels; ++ch) {
        if (pending_[ch].empty())
            continue;
        // Snapshot and clear: callbacks requested during delivery belong
        // to the next edge.
        std::vector<Callback> batch;
        batch.swap(pending_[ch]);
        const Time deliver_at = edge.timestamp + offsets_[ch];
        sim_.events().schedule(
            deliver_at,
            [edge, deliver_at, batch = std::move(batch)] {
                SwVsync sw{edge.timestamp, deliver_at, edge.index,
                           edge.rate_hz};
                for (const auto &fn : batch)
                    fn(sw);
            },
            EventPriority::kVsyncDist);
    }
}

} // namespace dvs
