/**
 * @file
 * Closed-loop thermal/energy governor with a graded degradation ladder.
 *
 * The paper measures D-VSync's power cost open-loop (§6.7); the governor
 * closes the loop: pre-rendering spends joules *now* to avoid stutters
 * *later*, and under thermal pressure something must decide when that
 * trade stops being worth it. Rather than the watchdog's all-or-nothing
 * collapse to VSync pacing, the governor walks a graded ladder, one rung
 * per control decision:
 *
 *   rung 0  nominal        — full pre-render depth, native rate, full clock
 *   rung 1  trim-prerender — cap the pre-render queue at depth 1
 *   rung 2  ltpo-cap       — request the panel's lowest LTPO rate
 *   rung 3  dvfs-cap       — floor the GPU ladder at a slower level
 *   rung 4  handoff        — force the PR 3 watchdog's VSync fallback
 *
 * Sensors come from the MetricsRegistry (the PR 5 sensor bus): die
 * temperature, cumulative GPU energy (differentiated into a rate), and
 * the drop counter. Actions are injected as closures (GovernorHooks) so
 * this library depends only on sim + obs, never on the core runtime.
 *
 * No-flap guarantee: a demotion requires `hold_ticks` consecutive ticks
 * at the current rung (per-rung hysteresis), a promotion requires a calm
 * streak of `promote_ticks * backoff` ticks, and every re-demotion
 * within `backoff_window` of the previous one doubles the backoff (up to
 * `backoff_cap`). A workload that keeps re-triggering pressure therefore
 * pays exponentially longer calm streaks before each retry, so the
 * transition count over any horizon T is O(rungs * log(T)) rather than
 * O(T) — the flap-storm test pins this bound.
 *
 * Determinism: the tick runs at kMetrics priority on the shared event
 * lane (lane 0). Under parallel lane dispatch, shared-lane events are
 * window barriers — every surface lane has retired its window before the
 * tick reads the sensors — so the control loop sees identical sensor
 * values at any --sim-workers count.
 */

#ifndef DVS_GOVERNOR_GOVERNOR_H
#define DVS_GOVERNOR_GOVERNOR_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dvs {

class Simulator;
class MetricsRegistry;

/** Control-loop knobs. */
struct GovernorConfig {
    bool enabled = false;

    /** Control cadence; 0 lets the wiring pick 4 refresh periods. */
    Time control_interval = 0;

    /** Demote while the die is at or above this (°C). */
    double temp_demote_c = 43.0;

    /** Count a tick as calm only at or below this (°C). */
    double temp_promote_c = 39.0;

    /** GPU energy-rate budget (mW); 0 disables the energy sensor. */
    double energy_budget_mw = 0.0;

    /** Consecutive pressured ticks required before each demotion. */
    int hold_ticks = 2;

    /** Calm ticks (scaled by the backoff) required before a promotion. */
    int promote_ticks = 6;

    /** Backoff multiplier cap. */
    int backoff_cap = 8;

    /** Re-demotion within this window doubles the backoff. */
    Time backoff_window = 1'500'000'000; // 1.5 s
};

/**
 * Actuators, injected by the wiring layer (RenderSystem). A null hook
 * turns its rung into a pass-through state: the ladder still walks it,
 * it just does nothing (e.g. ltpo_cap on a fixed-rate panel). A null
 * `handoff` removes rung 4 entirely — the ladder tops out at dvfs-cap.
 */
struct GovernorHooks {
    /** Rung 1: cap (true) / restore (false) the pre-render depth. */
    std::function<void(bool)> trim_prerender;

    /** Rung 2: request lowest LTPO rate (true) / native rate (false). */
    std::function<void(bool)> ltpo_cap;

    /** Rung 3: floor the DVFS ladder (true) / release it (false). */
    std::function<void(bool)> dvfs_cap;

    /** Rung 4 entry: force the watchdog's VSync fallback. */
    std::function<void(Time now)> handoff;

    /** Rung 4 exit gate: has the watchdog re-promoted on its own? */
    std::function<bool()> handoff_cleared;
};

class Governor
{
  public:
    Governor(const GovernorConfig &config, GovernorHooks hooks);

    /**
     * Run the control loop every @p interval on @p sim's clock (first
     * tick at @p interval), reading sensors from @p registry. Must be
     * called at most once; kMetrics priority keeps ticks on settled
     * barrier state.
     */
    void install(Simulator &sim, const MetricsRegistry &registry,
                 Time interval);

    /**
     * One control decision at time @p now. Public so unit tests can
     * drive the ladder against a hand-built registry without a
     * simulator.
     */
    void tick(Time now);

    /** Current ladder rung (0 = nominal). */
    int rung() const { return rung_; }

    /** Highest rung this ladder can reach (4, or 3 without handoff). */
    int max_rung() const { return max_rung_; }

    /** Is any rung engaged (the DropClassifier's governor_capped)? */
    bool capping() const { return rung_ > 0; }

    std::uint64_t demotions() const { return demotions_; }
    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t ticks() const { return ticks_; }

    /** Current re-promotion backoff multiplier (1 = no backoff). */
    int backoff_multiplier() const { return backoff_; }

    /** Timeline lines, "t=<ns> governor demote 0->1 [...] ...". */
    const std::vector<std::string> &transitions() const
    {
        return transitions_;
    }

    const GovernorConfig &config() const { return config_; }

  private:
    struct Sensors {
        double temp_c = 0.0;
        double rate_mw = 0.0;
        double new_drops = 0.0;
        bool have_rate = false;
    };

    Sensors read_sensors(Time now);
    void apply(int rung, bool engage, Time now);
    void demote(Time now, const Sensors &s);
    void promote(Time now, const Sensors &s);
    void record(Time now, const char *verb, int from, int to,
                const Sensors &s);
    static const char *rung_name(int rung);

    GovernorConfig config_;
    GovernorHooks hooks_;
    const MetricsRegistry *registry_ = nullptr;
    bool installed_ = false;
    int max_rung_ = 4;

    int rung_ = 0;
    int pressure_streak_ = 0;
    int calm_streak_ = 0;
    int backoff_ = 1;
    Time last_demote_ = kTimeNone;
    std::uint64_t demotions_ = 0;
    std::uint64_t promotions_ = 0;
    std::uint64_t ticks_ = 0;

    // Previous cumulative sensor values, for differentiation.
    bool have_prev_ = false;
    Time prev_at_ = 0;
    double prev_mj_ = 0.0;
    double prev_drops_ = 0.0;

    std::vector<std::string> transitions_;
};

} // namespace dvs

#endif // DVS_GOVERNOR_GOVERNOR_H
