#include "governor/governor.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics_registry.h"
#include "sim/logging.h"
#include "sim/simulator.h"

namespace dvs {

Governor::Governor(const GovernorConfig &config, GovernorHooks hooks)
    : config_(config), hooks_(std::move(hooks))
{
    if (config_.hold_ticks < 1 || config_.promote_ticks < 1)
        fatal("governor hold/promote ticks must be >= 1");
    if (config_.backoff_cap < 1)
        fatal("governor backoff cap must be >= 1");
    if (config_.temp_promote_c > config_.temp_demote_c)
        fatal("governor promote temperature above demote threshold");
    max_rung_ = hooks_.handoff ? 4 : 3;
}

void
Governor::install(Simulator &sim, const MetricsRegistry &registry,
                  Time interval)
{
    if (installed_)
        fatal("Governor installed twice");
    if (interval <= 0)
        fatal("governor control interval must be > 0");
    installed_ = true;
    registry_ = &registry;
    // Self-rescheduling tick on the shared lane: a barrier under
    // parallel dispatch, so sensor reads see settled cross-lane state.
    struct Rearm {
        Simulator &sim;
        Governor &gov;
        Time interval;
        void operator()() const
        {
            gov.tick(sim.now());
            sim.events().schedule(sim.now() + interval, Rearm{*this},
                                  EventPriority::kMetrics);
        }
    };
    sim.events().schedule(sim.now() + interval,
                          Rearm{sim, *this, interval},
                          EventPriority::kMetrics);
}

Governor::Sensors
Governor::read_sensors(Time now)
{
    Sensors s;
    if (!registry_)
        return s;
    registry_->read("thermal.temp_c", &s.temp_c);
    double mj = 0.0;
    const bool have_mj = registry_->read("power.gpu_mj", &mj);
    double drops = 0.0;
    registry_->read("stats.drops", &drops);
    if (have_prev_) {
        if (have_mj && now > prev_at_) {
            // mJ per second of simulated time is exactly mW.
            s.rate_mw = (mj - prev_mj_) / to_seconds(now - prev_at_);
            s.have_rate = true;
        }
        s.new_drops = drops - prev_drops_;
    }
    have_prev_ = true;
    prev_at_ = now;
    prev_mj_ = mj;
    prev_drops_ = drops;
    return s;
}

const char *
Governor::rung_name(int rung)
{
    switch (rung) {
      case 0:
        return "nominal";
      case 1:
        return "trim-prerender";
      case 2:
        return "ltpo-cap";
      case 3:
        return "dvfs-cap";
      case 4:
        return "handoff";
    }
    return "?";
}

void
Governor::record(Time now, const char *verb, int from, int to,
                 const Sensors &s)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "t=%lld governor %s %d->%d "
                  "[temp=%.1fC rate=%.0fmW drops=+%.0f backoff=x%d] %s",
                  (long long)now, verb, from, to, s.temp_c,
                  s.have_rate ? s.rate_mw : 0.0, s.new_drops, backoff_,
                  rung_name(to));
    transitions_.push_back(buf);
}

void
Governor::apply(int rung, bool engage, Time now)
{
    switch (rung) {
      case 1:
        if (hooks_.trim_prerender)
            hooks_.trim_prerender(engage);
        break;
      case 2:
        if (hooks_.ltpo_cap)
            hooks_.ltpo_cap(engage);
        break;
      case 3:
        if (hooks_.dvfs_cap)
            hooks_.dvfs_cap(engage);
        break;
      case 4:
        // Handoff is enter-only: the watchdog owns its own recovery,
        // the promotion gate just waits for it (handoff_cleared).
        if (engage && hooks_.handoff)
            hooks_.handoff(now);
        break;
      default:
        break;
    }
}

void
Governor::demote(Time now, const Sensors &s)
{
    const int from = rung_;
    ++rung_;
    ++demotions_;
    // Exponential re-promotion backoff: demoting again soon after the
    // last demotion means the previous promotion was premature — double
    // the calm streak the next promotion must earn.
    if (last_demote_ != kTimeNone && now - last_demote_ <= config_.backoff_window)
        backoff_ = std::min(backoff_ * 2, config_.backoff_cap);
    else
        backoff_ = 1;
    last_demote_ = now;
    pressure_streak_ = 0;
    calm_streak_ = 0;
    apply(rung_, true, now);
    record(now, "demote", from, rung_, s);
}

void
Governor::promote(Time now, const Sensors &s)
{
    const int from = rung_;
    apply(rung_, false, now);
    --rung_;
    ++promotions_;
    pressure_streak_ = 0;
    calm_streak_ = 0;
    record(now, "promote", from, rung_, s);
}

void
Governor::tick(Time now)
{
    ++ticks_;
    const Sensors s = read_sensors(now);
    if (ticks_ == 1)
        return; // first tick only primes the differentiated sensors

    const bool over_budget = config_.energy_budget_mw > 0.0 &&
                             s.have_rate &&
                             s.rate_mw > config_.energy_budget_mw;
    const bool pressure = s.temp_c >= config_.temp_demote_c || over_budget;
    const bool calm = s.temp_c <= config_.temp_promote_c &&
                      s.new_drops <= 0.0 && !over_budget;

    if (pressure) {
        calm_streak_ = 0;
        ++pressure_streak_;
        if (rung_ < max_rung_ && pressure_streak_ >= config_.hold_ticks)
            demote(now, s);
        return;
    }
    pressure_streak_ = 0;
    if (!calm) {
        calm_streak_ = 0;
        return;
    }
    ++calm_streak_;
    if (rung_ == 0)
        return;
    if (calm_streak_ < config_.promote_ticks * backoff_)
        return;
    // Leaving the handoff rung additionally waits for the watchdog to
    // have re-promoted on its own — the governor never yanks a degraded
    // runtime back to D-VSync pacing.
    if (rung_ == 4 && hooks_.handoff_cleared && !hooks_.handoff_cleared())
        return;
    promote(now, s);
}

} // namespace dvs
