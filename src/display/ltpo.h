/**
 * @file
 * LTPO variable-refresh controller (§5.3).
 *
 * Models the state-of-the-art LTPO behaviour the paper describes: the
 * panel dynamically lowers its refresh rate when the motion on screen is
 * slow enough that human eyes cannot tell the difference (e.g. a fling
 * that starts at 120 Hz steps down to 90 Hz and then 60 Hz as it
 * decelerates). The controller maps a motion-speed signal to the highest
 * supported rate whose threshold the speed exceeds.
 *
 * The *co-design* with D-VSync (draining accumulated buffers rendered at
 * the old rate before switching) lives in core/ltpo_codesign.h.
 */

#ifndef DVS_DISPLAY_LTPO_H
#define DVS_DISPLAY_LTPO_H

#include <functional>
#include <vector>

#include "sim/time.h"

namespace dvs {

/**
 * Chooses the panel refresh rate from a motion-speed signal.
 *
 * Rates and thresholds are parallel arrays sorted by descending rate: the
 * controller picks the first rate whose threshold the speed meets, falling
 * through to the lowest rate for near-static content.
 */
class LtpoController
{
  public:
    /** Speed source: e.g. current fling velocity in px/s. */
    using SpeedSource = std::function<double()>;

    /**
     * @param rates supported refresh rates, descending (e.g. {120,90,60})
     * @param thresholds speed (px/s) above which each rate is required;
     *        must have the same size as @p rates, descending
     */
    LtpoController(std::vector<double> rates,
                   std::vector<double> thresholds);

    /** Build the conventional thresholds for a device's rate set. */
    static LtpoController for_rates(const std::vector<double> &rates);

    void set_speed_source(SpeedSource s) { speed_ = std::move(s); }

    /** Rate the panel should run at for motion speed @p speed. */
    double rate_for_speed(double speed) const;

    /** Rate decided from the attached speed source (lowest when unset). */
    double decide() const;

    const std::vector<double> &rates() const { return rates_; }

  private:
    std::vector<double> rates_;
    std::vector<double> thresholds_;
    SpeedSource speed_;
};

} // namespace dvs

#endif // DVS_DISPLAY_LTPO_H
