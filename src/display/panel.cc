#include "display/panel.h"

namespace dvs {

Panel::Panel(HwVsyncGenerator &vsync, BufferQueue &queue) : queue_(queue)
{
    vsync.add_listener([this](const VsyncEdge &e) { on_vsync(e); });
}

void
Panel::on_vsync(const VsyncEdge &edge)
{
    PresentEvent ev;
    ev.present_time = edge.timestamp;
    ev.vsync_index = edge.index;
    ev.rate_hz = edge.rate_hz;

    FrameBuffer *head = queue_.peek_queued();
    bool eligible = head && (!latch_policy_ || latch_policy_(*head, edge));
    if (eligible && head->meta().pre_rendered &&
        head->meta().content_timestamp != kTimeNone) {
        // A pre-rendered buffer carries its display timestamp; latching
        // it earlier would make the animation appear fast (§4.4). Hold
        // it until its slot (half a period of tolerance for jitter).
        const Time quarter = period_from_hz(edge.rate_hz) / 2;
        if (head->meta().content_timestamp > edge.timestamp + quarter)
            eligible = false;
    }
    FrameBuffer *buf = eligible ? queue_.acquire(edge.timestamp) : nullptr;
    if (buf) {
        last_meta_ = buf->meta();
        has_content_ = true;
        ++presented_;
        ev.meta = buf->meta();
        ev.queue_time = buf->queue_time();
        ev.dequeue_time = buf->dequeue_time();
    } else {
        ev.repeat = true;
        ev.first = !has_content_;
        ev.meta = last_meta_;
        ++repeats_;
    }

    for (auto &fn : listeners_)
        fn(ev);
}

} // namespace dvs
