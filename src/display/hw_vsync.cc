#include "display/hw_vsync.h"

#include <algorithm>

#include "sim/logging.h"

namespace dvs {

HwVsyncGenerator::HwVsyncGenerator(Simulator &sim, double rate_hz,
                                   Time first_edge)
    : sim_(sim), timing_(rate_hz, first_edge), next_edge_(first_edge)
{
}

void
HwVsyncGenerator::set_jitter(Time stddev, Rng *rng)
{
    if (stddev < 0)
        fatal("vsync jitter stddev must be >= 0, got %lld",
              (long long)stddev);
    if (stddev > 0 && !rng)
        fatal("vsync jitter needs an RNG when stddev > 0");
    jitter_stddev_ = stddev;
    jitter_rng_ = rng;
}

void
HwVsyncGenerator::start()
{
    if (running_)
        return;
    running_ = true;
    // A restart after stop() may find the scheduled edge in the past
    // (screen-off): resume on the grid at the next edge from now.
    if (next_edge_ < sim_.now())
        next_edge_ = timing_.next_edge_after(sim_.now());
    sim_.events().schedule(jittered(next_edge_), [this] { emit_edge(); },
                           EventPriority::kDisplay);
}

Time
HwVsyncGenerator::jittered(Time ideal) const
{
    if (jitter_stddev_ <= 0 || !jitter_rng_)
        return ideal;
    const double draw = jitter_rng_->normal(0.0, double(jitter_stddev_));
    const double bound = 3.0 * double(jitter_stddev_);
    Time t = ideal + Time(std::clamp(draw, -bound, bound));
    // Never emit before "now" or before the previous edge.
    return std::max(t, sim_.now());
}

void
HwVsyncGenerator::stop()
{
    running_ = false;
}

void
HwVsyncGenerator::emit_edge()
{
    if (!running_)
        return;

    const Time now = sim_.now();
    const Time ideal = next_edge_;
    VsyncEdge edge{now, edge_index_++, timing_.rate_hz()};

    // Decide the rate for the period that starts at this edge, *before*
    // notifying listeners, so the edge they see carries the rate that
    // will govern the display duration of whatever is latched now.
    double new_rate = 0.0;
    if (rate_policy_)
        new_rate = rate_policy_(edge);
    if (new_rate == 0.0 && requested_rate_ != 0.0) {
        new_rate = requested_rate_;
        requested_rate_ = 0.0;
    }
    if (new_rate != 0.0 && new_rate != timing_.rate_hz()) {
        // Anchor the new grid at the ideal edge so jitter does not skew
        // the timing base.
        timing_.set_rate(new_rate, ideal);
        edge.rate_hz = new_rate;
    }

    // An edge-loss fault suppresses this edge's notifications (the panel
    // misses the refresh) but never the grid: the next edge still comes.
    if (!edge_fault_ || !edge_fault_(edge)) {
        for (auto &fn : listeners_)
            fn(edge);
    }

    Time step = timing_.period();
    if (period_scale_) {
        const double scale = period_scale_(now);
        if (scale > 0.0 && scale != 1.0)
            step = Time(double(step) * scale);
    }
    next_edge_ = ideal + step;
    sim_.events().schedule(jittered(next_edge_), [this] { emit_edge(); },
                           EventPriority::kDisplay);
}

} // namespace dvs
