#include "display/display_timing.h"

#include "sim/logging.h"

namespace dvs {

DisplayTiming::DisplayTiming(double rate_hz, Time phase)
    : rate_hz_(rate_hz), period_(period_from_hz(rate_hz)), phase_(phase)
{
    if (rate_hz <= 0)
        fatal("refresh rate must be positive, got %f", rate_hz);
}

Time
DisplayTiming::next_edge_after(Time t) const
{
    if (t < phase_)
        return phase_;
    const Time k = (t - phase_) / period_ + 1;
    return phase_ + k * period_;
}

Time
DisplayTiming::edge_at_or_before(Time t) const
{
    if (t < phase_)
        return kTimeNone;
    const Time k = (t - phase_) / period_;
    return phase_ + k * period_;
}

bool
DisplayTiming::is_edge(Time t) const
{
    return t >= phase_ && (t - phase_) % period_ == 0;
}

void
DisplayTiming::set_rate(double rate_hz, Time at)
{
    if (rate_hz <= 0)
        fatal("refresh rate must be positive, got %f", rate_hz);
    if (!is_edge(at))
        warn("rate change at %s is not on a vsync edge",
             format_time(at).c_str());
    rate_hz_ = rate_hz;
    period_ = period_from_hz(rate_hz);
    phase_ = at;
}

} // namespace dvs
