/**
 * @file
 * Device presets matching Table 1 of the paper.
 */

#ifndef DVS_DISPLAY_DEVICE_CONFIG_H
#define DVS_DISPLAY_DEVICE_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dvs {

/** Graphics backend used by the render service. */
enum class Backend { kGles, kVulkan };

const char *to_string(Backend b);

/** Static description of an evaluated device (Table 1). */
struct DeviceConfig {
    std::string name;      ///< marketing name, e.g. "Mate 60 Pro"
    std::string os;        ///< "AOSP 13" or "OH 4.0"
    Backend backend = Backend::kGles;
    int width = 0;         ///< panel width in pixels
    int height = 0;        ///< panel height in pixels
    double refresh_hz = 60.0;
    int vsync_buffers = 3; ///< buffer-queue slots under baseline VSync
    /** Supported LTPO rates, descending (empty: fixed-rate panel). */
    std::vector<double> ltpo_rates;

    // ----- §6 thermal envelope ------------------------------------------
    // Sustained chassis dissipation budget and the die headroom above
    // ambient before throttling; thermal_params_for() turns these into
    // the RC plant of the closed-loop governor work.

    double thermal_budget_mw = 3000.0; ///< sustained GPU budget
    double thermal_headroom_c = 20.0;  ///< throttle point above ambient

    /** Refresh period. */
    Time period() const { return period_from_hz(refresh_hz); }

    /** Size of one RGBA8888 frame buffer in bytes. */
    std::int64_t buffer_bytes() const
    {
        return std::int64_t(width) * height * 4;
    }
};

/** Google Pixel 5: AOSP 13, 60 Hz, GLES, triple buffering. */
DeviceConfig pixel5();

/** Huawei Mate 40 Pro: OpenHarmony 4.0, 90 Hz, GLES, 4 buffers. */
DeviceConfig mate40_pro();

/** Huawei Mate 60 Pro: OpenHarmony 4.0, 120 Hz, GLES or Vulkan, 4 bufs. */
DeviceConfig mate60_pro(Backend backend = Backend::kGles);

/** All Table-1 presets, in paper order. */
std::vector<DeviceConfig> all_devices();

} // namespace dvs

#endif // DVS_DISPLAY_DEVICE_CONFIG_H
