#include "display/device_config.h"

namespace dvs {

const char *
to_string(Backend b)
{
    return b == Backend::kGles ? "GLES" : "Vulkan";
}

DeviceConfig
pixel5()
{
    DeviceConfig d;
    d.name = "Google Pixel 5";
    d.os = "AOSP 13";
    d.backend = Backend::kGles;
    d.width = 1080;
    d.height = 2340;
    d.refresh_hz = 60.0;
    d.vsync_buffers = 3; // Android triple buffering
    d.thermal_budget_mw = 2600.0; // small chassis, modest SoC
    d.thermal_headroom_c = 19.0;
    return d;
}

DeviceConfig
mate40_pro()
{
    DeviceConfig d;
    d.name = "Mate 40 Pro";
    d.os = "OH 4.0";
    d.backend = Backend::kGles;
    d.width = 1344;
    d.height = 2772;
    d.refresh_hz = 90.0;
    d.vsync_buffers = 4; // OpenHarmony render service default
    d.ltpo_rates = {90.0, 60.0};
    d.thermal_budget_mw = 3000.0;
    d.thermal_headroom_c = 20.0;
    return d;
}

DeviceConfig
mate60_pro(Backend backend)
{
    DeviceConfig d;
    d.name = "Mate 60 Pro";
    d.os = "OH 4.0";
    d.backend = backend;
    d.width = 1260;
    d.height = 2720;
    d.refresh_hz = 120.0;
    d.vsync_buffers = 4;
    d.ltpo_rates = {120.0, 90.0, 60.0, 30.0};
    d.thermal_budget_mw = 3400.0; // vapor chamber: more sustained budget
    d.thermal_headroom_c = 21.0;
    return d;
}

std::vector<DeviceConfig>
all_devices()
{
    return {pixel5(), mate40_pro(), mate60_pro(Backend::kGles),
            mate60_pro(Backend::kVulkan)};
}

} // namespace dvs
