#include "display/ltpo.h"

#include "sim/logging.h"

namespace dvs {

LtpoController::LtpoController(std::vector<double> rates,
                               std::vector<double> thresholds)
    : rates_(std::move(rates)), thresholds_(std::move(thresholds))
{
    if (rates_.empty() || rates_.size() != thresholds_.size())
        fatal("LTPO rates/thresholds must be non-empty and equal-sized");
    for (std::size_t i = 1; i < rates_.size(); ++i) {
        if (rates_[i] >= rates_[i - 1] || thresholds_[i] > thresholds_[i - 1])
            fatal("LTPO rates and thresholds must be strictly descending");
    }
}

LtpoController
LtpoController::for_rates(const std::vector<double> &rates)
{
    // Conventional mapping: the top rate engages for fast motion and each
    // step down halves the speed requirement; the lowest rate has no
    // requirement (static content).
    std::vector<double> thresholds(rates.size());
    double t = 2000.0; // px/s for the top rate
    for (std::size_t i = 0; i + 1 < rates.size(); ++i) {
        thresholds[i] = t;
        t /= 2.0;
    }
    thresholds.back() = 0.0;
    return LtpoController(rates, thresholds);
}

double
LtpoController::rate_for_speed(double speed) const
{
    for (std::size_t i = 0; i < rates_.size(); ++i) {
        if (speed >= thresholds_[i])
            return rates_[i];
    }
    return rates_.back();
}

double
LtpoController::decide() const
{
    if (!speed_)
        return rates_.back();
    return rate_for_speed(speed_());
}

} // namespace dvs
