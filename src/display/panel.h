/**
 * @file
 * Screen panel: the buffer-queue consumer.
 *
 * On every HW-VSync edge the panel latches the oldest queued buffer from
 * the buffer queue and scans it out for one refresh period. When nothing
 * new is queued it repeats the previous frame — the raw material of a
 * frame drop (whether the repeat *is* a drop depends on whether content
 * was due, which the metrics layer decides).
 */

#ifndef DVS_DISPLAY_PANEL_H
#define DVS_DISPLAY_PANEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "buffer/buffer_queue.h"
#include "display/hw_vsync.h"

namespace dvs {

/** One refresh of the screen: either a new frame or a repeat. */
struct PresentEvent {
    Time present_time = kTimeNone; ///< the vsync edge of the scan-out
    std::uint64_t vsync_index = 0; ///< hardware edge counter
    double rate_hz = 0.0;          ///< refresh rate for this frame
    bool repeat = false;           ///< true when no new buffer was latched
    bool first = false;            ///< true before any frame was ever shown
    FrameMeta meta;                ///< metadata of the frame on screen
    Time queue_time = kTimeNone;   ///< when the latched buffer was queued
    Time dequeue_time = kTimeNone; ///< when its slot was dequeued
};

/**
 * The display panel. Consumes the buffer queue at the HW-VSync cadence and
 * publishes a PresentEvent per refresh (the "present fence").
 */
class Panel
{
  public:
    using PresentListener = std::function<void(const PresentEvent &)>;

    /**
     * Latch policy: whether the head-of-queue buffer may be latched at
     * this edge. The compositor uses it to model a SurfaceFlinger-style
     * latch deadline (a buffer queued too close to the edge misses it).
     */
    using LatchPolicy =
        std::function<bool(const FrameBuffer &, const VsyncEdge &)>;

    Panel(HwVsyncGenerator &vsync, BufferQueue &queue);

    /** Install a latch policy (default: any queued buffer is eligible). */
    void set_latch_policy(LatchPolicy p) { latch_policy_ = std::move(p); }

    /** Register a present-fence listener (DTV calibration, metrics). */
    void add_present_listener(PresentListener fn)
    {
        listeners_.push_back(std::move(fn));
    }

    /** Metadata of the frame currently on screen. */
    const FrameMeta &front_meta() const { return last_meta_; }

    /** Whether any frame has ever been displayed. */
    bool has_content() const { return has_content_; }

    /** Number of refreshes that latched a new buffer. */
    std::uint64_t presented() const { return presented_; }

    /** Number of refreshes that repeated the previous frame. */
    std::uint64_t repeats() const { return repeats_; }

    BufferQueue &queue() { return queue_; }

  private:
    void on_vsync(const VsyncEdge &edge);

    BufferQueue &queue_;
    std::vector<PresentListener> listeners_;
    LatchPolicy latch_policy_;
    FrameMeta last_meta_;
    bool has_content_ = false;
    std::uint64_t presented_ = 0;
    std::uint64_t repeats_ = 0;
};

} // namespace dvs

#endif // DVS_DISPLAY_PANEL_H
