/**
 * @file
 * Hardware VSync generator.
 *
 * Emits one HW-VSync event per panel refresh on the simulator's event
 * queue, notifying registered listeners (the panel latch, the software
 * vsync distributor, DTV calibration). Supports per-tick rate decisions so
 * an LTPO policy can stretch or shrink the next period.
 */

#ifndef DVS_DISPLAY_HW_VSYNC_H
#define DVS_DISPLAY_HW_VSYNC_H

#include <cstdint>
#include <functional>
#include <vector>

#include "display/display_timing.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace dvs {

/** One hardware vsync edge. */
struct VsyncEdge {
    Time timestamp;      ///< time of the edge
    std::uint64_t index; ///< monotonic edge counter
    double rate_hz;      ///< refresh rate in force for the coming period
};

/**
 * Generates the hardware VSync signal of the screen.
 *
 * Listener order is registration order; the panel must be registered
 * before software consumers so the latch happens first on each edge
 * (matching hardware, where scan-out samples the front buffer).
 */
class HwVsyncGenerator
{
  public:
    using Listener = std::function<void(const VsyncEdge &)>;

    /**
     * A rate policy is consulted on every edge for the rate of the *next*
     * period, enabling LTPO-style dynamic refresh. Returning 0 keeps the
     * current rate.
     */
    using RatePolicy = std::function<double(const VsyncEdge &)>;

    HwVsyncGenerator(Simulator &sim, double rate_hz, Time first_edge = 0);

    /** Register a listener (called on every edge, in order). */
    void add_listener(Listener fn) { listeners_.push_back(std::move(fn)); }

    /** Install the per-edge rate policy (LTPO co-design hook). */
    void set_rate_policy(RatePolicy p) { rate_policy_ = std::move(p); }

    /**
     * Add Gaussian timing jitter to emitted edges (real panels wander by
     * tens of microseconds). Draws are clamped to ±3σ and the ideal grid
     * is preserved, so jitter never accumulates.
     *
     * Edge ordering under jitter: a jittered emission time is clamped to
     * the simulator's `now()` at scheduling time, so an edge never fires
     * before the edge that scheduled it — emitted timestamps are
     * monotonic as long as 3σ stays below half a period (the generator
     * never reorders the grid, only perturbs each edge around it). The
     * same clamp makes a restart after stop() safe: the first resumed
     * edge lands on the grid at or after the restart instant, never in
     * the past.
     *
     * A stddev of 0 disables jitter. Negative stddev is a configuration
     * error, as is a positive stddev without an RNG.
     */
    void set_jitter(Time stddev, Rng *rng);

    // ----- fault-injection hooks (src/fault) ---------------------------

    /**
     * Edge-loss fault hook: consulted per edge; returning true suppresses
     * listener notification for that edge (the panel misses a refresh,
     * software consumers see no tick) while the grid keeps advancing —
     * modelling a lost HW-VSync interrupt.
     */
    using EdgeFault = std::function<bool(const VsyncEdge &)>;
    void set_edge_fault(EdgeFault fn) { edge_fault_ = std::move(fn); }

    /**
     * Clock-drift fault hook: scale factor applied to the grid step after
     * each edge (1.0 = nominal). Sustained scaling accumulates phase
     * drift, exactly like a skewed panel oscillator; DTV must recalibrate
     * its model to follow.
     */
    using PeriodScale = std::function<double(Time)>;
    void set_period_scale(PeriodScale fn)
    {
        period_scale_ = std::move(fn);
    }

    /** Start emitting edges. */
    void start();

    /** Stop after the current edge; no further edges are scheduled. */
    void stop();

    const DisplayTiming &timing() const { return timing_; }
    double rate_hz() const { return timing_.rate_hz(); }
    Time period() const { return timing_.period(); }
    std::uint64_t edges_emitted() const { return edge_index_; }

    /**
     * Request a rate change that takes effect at the next edge (used when
     * no LTPO policy is installed, e.g. scenario-scripted switches).
     */
    void request_rate(double rate_hz) { requested_rate_ = rate_hz; }

  private:
    void emit_edge();
    Time jittered(Time ideal) const;

    Simulator &sim_;
    DisplayTiming timing_;
    Time jitter_stddev_ = 0;
    Rng *jitter_rng_ = nullptr;
    std::vector<Listener> listeners_;
    RatePolicy rate_policy_;
    EdgeFault edge_fault_;
    PeriodScale period_scale_;
    double requested_rate_ = 0.0;
    std::uint64_t edge_index_ = 0;
    Time next_edge_;
    bool running_ = false;
};

} // namespace dvs

#endif // DVS_DISPLAY_HW_VSYNC_H
