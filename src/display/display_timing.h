/**
 * @file
 * Display timing model: the VSync grid of a screen.
 *
 * Encapsulates refresh-rate math (period, edge alignment) and supports
 * runtime rate changes that take effect on a vsync edge, as variable
 * refresh (LTPO) panels do.
 */

#ifndef DVS_DISPLAY_DISPLAY_TIMING_H
#define DVS_DISPLAY_DISPLAY_TIMING_H

#include "sim/time.h"

namespace dvs {

/**
 * The timing grid of a display panel.
 *
 * The grid is anchored at a phase timestamp; edges occur at
 * phase + k * period. Changing the rate re-anchors the grid at the change
 * point, so edges stay contiguous across switches.
 */
class DisplayTiming
{
  public:
    /** @param rate_hz initial refresh rate; @param phase first edge time */
    explicit DisplayTiming(double rate_hz, Time phase = 0);

    double rate_hz() const { return rate_hz_; }
    Time period() const { return period_; }
    Time phase() const { return phase_; }

    /** The first edge strictly after @p t. */
    Time next_edge_after(Time t) const;

    /** The latest edge at or before @p t (kTimeNone if before phase). */
    Time edge_at_or_before(Time t) const;

    /** Whether @p t lies exactly on an edge. */
    bool is_edge(Time t) const;

    /**
     * Switch the refresh rate. The new grid is anchored at @p at, which
     * must be an edge of the current grid (panels switch on refresh
     * boundaries).
     */
    void set_rate(double rate_hz, Time at);

  private:
    double rate_hz_;
    Time period_;
    Time phase_;
};

} // namespace dvs

#endif // DVS_DISPLAY_DISPLAY_TIMING_H
