#include "anim/animation.h"

#include "sim/logging.h"

namespace dvs {

Animation::Animation(std::shared_ptr<const MotionCurve> curve, Time start,
                     Time duration, double from_px, double to_px)
    : curve_(std::move(curve)), start_(start), duration_(duration),
      from_px_(from_px), to_px_(to_px)
{
    if (!curve_)
        fatal("Animation needs a curve");
    if (duration <= 0)
        fatal("Animation duration must be positive");
}

double
Animation::position_at(Time t) const
{
    const double f = double(t - start_) / double(duration_);
    return from_px_ + (to_px_ - from_px_) * curve_->value(f);
}

double
Animation::velocity_at(Time t) const
{
    const double f = double(t - start_) / double(duration_);
    const double v_norm = curve_->velocity(f);
    return v_norm * (to_px_ - from_px_) / to_seconds(duration_);
}

} // namespace dvs
