/**
 * @file
 * Animations: motion curves bound to a time window and a pixel range.
 *
 * An Animation converts a content timestamp into an on-screen position.
 * The rendering pipeline records, for every displayed frame, the position
 * that was *sampled* (at the frame's content timestamp) and the position
 * that *should* be on screen at the actual present time — the difference
 * is the animation-correctness error that the Display Time Virtualizer
 * exists to eliminate (§4.4).
 */

#ifndef DVS_ANIM_ANIMATION_H
#define DVS_ANIM_ANIMATION_H

#include <memory>

#include "anim/curves.h"
#include "sim/time.h"

namespace dvs {

/** A motion curve playing over [start, start+duration] across a range. */
class Animation
{
  public:
    Animation(std::shared_ptr<const MotionCurve> curve, Time start,
              Time duration, double from_px, double to_px);

    Time start() const { return start_; }
    Time duration() const { return duration_; }
    Time end() const { return start_ + duration_; }

    /** Whether the animation is running at @p t. */
    bool active(Time t) const { return t >= start_ && t < end(); }

    /** Position (px) the content should occupy at time @p t (clamped). */
    double position_at(Time t) const;

    /** Velocity (px/s) of the content at time @p t. */
    double velocity_at(Time t) const;

  private:
    std::shared_ptr<const MotionCurve> curve_;
    Time start_;
    Time duration_;
    double from_px_;
    double to_px_;
};

} // namespace dvs

#endif // DVS_ANIM_ANIMATION_H
