/**
 * @file
 * Judder metric: animation-correctness scoring.
 *
 * For each displayed frame we know the timestamp the content was computed
 * for (content_ts) and the time it actually reached the screen (present).
 * Given the animation being played, the *position error* of the frame is
 * |position(content_ts) − position(present)| — how far the on-screen
 * content is from where a perfectly timed frame would be. VSync frames
 * rendered late or displayed after buffer stuffing show large errors;
 * DTV-virtualized frames show near-zero errors (§4.4: "animations never
 * appear fast in accumulation or slow down in long frames").
 */

#ifndef DVS_ANIM_JUDDER_H
#define DVS_ANIM_JUDDER_H

#include <vector>

#include "anim/animation.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dvs {

/** One displayed frame of an animation, for scoring. */
struct DisplayedFrame {
    Time content_timestamp; ///< what the frame sampled
    Time present_time;      ///< when it hit the screen
};

/** Aggregate judder statistics of an animation playback. */
struct JudderReport {
    /**
     * |pos(content) − pos(present − offset)| per refresh, where offset is
     * the playback's median content lag. A constant pipeline lag (VSync's
     * uniform 2 periods) scores zero; frames that sampled the wrong time
     * relative to when they reached the screen (drops, buffer stuffing
     * without DTV) show up as error.
     */
    SampleStat position_error_px;
    SampleStat step_px; ///< inter-frame on-screen motion step
    double max_error_px = 0.0;
    /** Std-dev of motion steps: non-uniform pacing reads as judder. */
    double step_jitter_px = 0.0;
    /** The compensated constant lag (median present − content). */
    Time content_offset = 0;
};

/**
 * Score a playback: @p frames must be ordered by present time; repeats
 * (same content shown again) are included by passing the same
 * content_timestamp with a later present_time.
 */
JudderReport score_playback(const Animation &anim,
                            const std::vector<DisplayedFrame> &frames);

} // namespace dvs

#endif // DVS_ANIM_JUDDER_H
