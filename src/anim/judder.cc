#include "anim/judder.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dvs {

JudderReport
score_playback(const Animation &anim,
               const std::vector<DisplayedFrame> &frames)
{
    JudderReport report;

    // The architecture's constant pipeline lag is not judder: compensate
    // the median content lag before scoring.
    std::vector<Time> lags;
    lags.reserve(frames.size());
    for (const DisplayedFrame &f : frames)
        lags.push_back(f.present_time - f.content_timestamp);
    if (!lags.empty()) {
        std::nth_element(lags.begin(), lags.begin() + lags.size() / 2,
                         lags.end());
        report.content_offset = lags[lags.size() / 2];
    }

    double prev_pos = 0.0;
    bool have_prev = false;

    for (const DisplayedFrame &f : frames) {
        const double shown = anim.position_at(f.content_timestamp);
        const double ideal =
            anim.position_at(f.present_time - report.content_offset);
        const double err = std::abs(shown - ideal);
        report.position_error_px.add(err);
        report.max_error_px = std::max(report.max_error_px, err);

        if (have_prev)
            report.step_px.add(std::abs(shown - prev_pos));
        prev_pos = shown;
        have_prev = true;
    }

    report.step_jitter_px = report.step_px.stddev();
    return report;
}

} // namespace dvs
