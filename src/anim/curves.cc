#include "anim/curves.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace dvs {
namespace {

double
clamp01(double t)
{
    return std::clamp(t, 0.0, 1.0);
}

} // namespace

double
MotionCurve::velocity(double t) const
{
    // Central difference; subclasses with closed forms may override.
    const double h = 1e-5;
    const double lo = clamp01(t - h);
    const double hi = clamp01(t + h);
    if (hi == lo)
        return 0.0;
    return (value(hi) - value(lo)) / (hi - lo);
}

double
LinearCurve::value(double t) const
{
    return clamp01(t);
}

CubicBezierCurve::CubicBezierCurve(double x1, double y1, double x2,
                                   double y2)
    : x1_(x1), y1_(y1), x2_(x2), y2_(y2)
{
    if (x1 < 0 || x1 > 1 || x2 < 0 || x2 > 1)
        fatal("bezier x control points must lie in [0,1]");
}

double
CubicBezierCurve::sample_x(double t) const
{
    // Cubic bezier with endpoints (0,0) and (1,1).
    const double u = 1.0 - t;
    return 3 * u * u * t * x1_ + 3 * u * t * t * x2_ + t * t * t;
}

double
CubicBezierCurve::sample_y(double t) const
{
    const double u = 1.0 - t;
    return 3 * u * u * t * y1_ + 3 * u * t * t * y2_ + t * t * t;
}

double
CubicBezierCurve::solve_t_for_x(double x) const
{
    // Bisection: x(t) is monotone for x control points in [0,1].
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 40; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (sample_x(mid) < x)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
CubicBezierCurve::value(double t) const
{
    t = clamp01(t);
    if (t == 0.0 || t == 1.0)
        return t;
    return sample_y(solve_t_for_x(t));
}

SpringCurve::SpringCurve(double response) : response_(response)
{
    if (response <= 0)
        fatal("spring response must be positive");
    // Normalize so value(1) == 1 exactly.
    norm_ = 1.0 - std::exp(-response_) * (1.0 + response_);
}

double
SpringCurve::value(double t) const
{
    t = clamp01(t);
    // Critically damped step response: 1 - e^{-wt}(1 + wt).
    const double wt = response_ * t;
    const double raw = 1.0 - std::exp(-wt) * (1.0 + wt);
    return raw / norm_;
}

FlingCurve::FlingCurve(double friction) : friction_(friction)
{
    if (friction <= 0)
        fatal("fling friction must be positive");
    norm_ = 1.0 - std::exp(-friction_);
}

double
FlingCurve::value(double t) const
{
    t = clamp01(t);
    // Position under exponentially decaying velocity.
    return (1.0 - std::exp(-friction_ * t)) / norm_;
}

OvershootCurve::OvershootCurve(double tension) : tension_(tension)
{
    if (tension < 0)
        fatal("overshoot tension must be >= 0");
}

double
OvershootCurve::value(double t) const
{
    t = clamp01(t) - 1.0;
    return t * t * ((tension_ + 1.0) * t + tension_) + 1.0;
}

AnticipateCurve::AnticipateCurve(double tension) : tension_(tension)
{
    if (tension < 0)
        fatal("anticipate tension must be >= 0");
}

double
AnticipateCurve::value(double t) const
{
    t = clamp01(t);
    return t * t * ((tension_ + 1.0) * t - tension_);
}

std::shared_ptr<const MotionCurve>
ease_in_out()
{
    static const auto curve =
        std::make_shared<CubicBezierCurve>(0.42, 0.0, 0.58, 1.0);
    return curve;
}

std::shared_ptr<const MotionCurve>
ease_out()
{
    static const auto curve =
        std::make_shared<CubicBezierCurve>(0.0, 0.0, 0.58, 1.0);
    return curve;
}

} // namespace dvs
