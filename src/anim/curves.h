/**
 * @file
 * Motion curves used by UI animations.
 *
 * Animations sample a motion curve at the frame's content timestamp to
 * place content on screen (§4.4: "Animations use the D-Timestamp to
 * sample motion curves for list flinging, app opening, page transition,
 * screen rotation, etc."). The library provides the standard curve
 * families of mobile UI frameworks: cubic-bezier easings, critically
 * damped springs, and friction-based fling/deceleration curves.
 */

#ifndef DVS_ANIM_CURVES_H
#define DVS_ANIM_CURVES_H

#include <memory>

#include "sim/time.h"

namespace dvs {

/**
 * A motion curve: normalized progress as a function of normalized time.
 *
 * value(0) == 0 and value(1) == 1 for curves that settle; inputs outside
 * [0, 1] are clamped.
 */
class MotionCurve
{
  public:
    virtual ~MotionCurve() = default;

    /** Progress in [0, 1] at normalized time @p t in [0, 1]. */
    virtual double value(double t) const = 0;

    /** Instantaneous normalized velocity d(value)/dt at @p t. */
    virtual double velocity(double t) const;
};

/** Linear ramp. */
class LinearCurve : public MotionCurve
{
  public:
    double value(double t) const override;
};

/**
 * Cubic bezier easing with control points (x1,y1), (x2,y2) — the CSS /
 * Android PathInterpolator parameterization. The classic "ease-in-out" is
 * (0.42, 0, 0.58, 1); OpenHarmony's friction curve is (0.2, 0, 0.2, 1).
 */
class CubicBezierCurve : public MotionCurve
{
  public:
    CubicBezierCurve(double x1, double y1, double x2, double y2);

    double value(double t) const override;

  private:
    double solve_t_for_x(double x) const;
    double sample_x(double t) const;
    double sample_y(double t) const;

    double x1_, y1_, x2_, y2_;
};

/**
 * Critically damped spring settling over the curve's duration; the
 * physics-based animation style of modern smartphone UIs.
 */
class SpringCurve : public MotionCurve
{
  public:
    /** @param response stiffness knob: larger settles faster. */
    explicit SpringCurve(double response = 8.0);

    double value(double t) const override;

  private:
    double response_;
    double norm_;
};

/**
 * Fling deceleration: exponential decay of velocity under friction, the
 * curve behind list scrolling after a flick.
 */
class FlingCurve : public MotionCurve
{
  public:
    /** @param friction decay rate; larger stops sooner. */
    explicit FlingCurve(double friction = 4.0);

    double value(double t) const override;

  private:
    double friction_;
    double norm_;
};

/**
 * Overshoot: accelerates past the target and springs back — the Android
 * OvershootInterpolator used by bouncy card/dialog entrances.
 */
class OvershootCurve : public MotionCurve
{
  public:
    /** @param tension overshoot amount; 2.0 matches the platform feel. */
    explicit OvershootCurve(double tension = 2.0);

    double value(double t) const override;

  private:
    double tension_;
};

/**
 * Anticipate: pulls back before launching forward (the Android
 * AnticipateInterpolator); value dips below zero near the start.
 */
class AnticipateCurve : public MotionCurve
{
  public:
    explicit AnticipateCurve(double tension = 2.0);

    double value(double t) const override;

  private:
    double tension_;
};

/** Standard ease-in-out bezier (0.42, 0, 0.58, 1). */
std::shared_ptr<const MotionCurve> ease_in_out();

/** Standard ease-out bezier (0, 0, 0.58, 1). */
std::shared_ptr<const MotionCurve> ease_out();

} // namespace dvs

#endif // DVS_ANIM_CURVES_H
