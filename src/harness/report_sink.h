/**
 * @file
 * ReportSink: the streaming consumer side of the experiment harness.
 *
 * Batch campaigns used to materialize every RunReport in a vector, which
 * caps a sweep at whatever fits in memory. The streaming API inverts the
 * flow: workers finish runs and the runner *emits* each report into a
 * sink exactly once, in submission order, retaining nothing. Aggregating
 * sinks (CampaignAggregator) reduce a million sessions to a few KB of
 * mergeable counters; the legacy vector-returning entry points are thin
 * adapters over a VectorSink.
 */

#ifndef DVS_HARNESS_REPORT_SINK_H
#define DVS_HARNESS_REPORT_SINK_H

#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "metrics/run_report.h"

namespace dvs {

/**
 * Consumer of streamed RunReports.
 *
 * The runner guarantees: consume() is called exactly once per submitted
 * point, with strictly increasing @p index (submission order), and never
 * from two threads at once — sinks need no internal locking. The calling
 * thread is unspecified; sinks must not assume it is the submitter.
 *
 * A consume() that throws aborts the stream: the throwing index still
 * counts as delivered (a watermark-keeping sink should bump its resume
 * position before throwing), later indices are never delivered, and the
 * runner rethrows the exception to its caller once every worker has
 * drained. Workers never deadlock on the backpressure window.
 */
class ReportSink
{
  public:
    virtual ~ReportSink() = default;

    /** Take ownership of the finished report for point @p index. */
    virtual void consume(std::size_t index, RunReport &&report) = 0;
};

/** Collects every report, index-aligned — the legacy batch behaviour. */
class VectorSink final : public ReportSink
{
  public:
    void consume(std::size_t index, RunReport &&report) override
    {
        if (reports_.size() <= index)
            reports_.resize(index + 1);
        reports_[index] = std::move(report);
    }

    std::vector<RunReport> take() { return std::move(reports_); }
    const std::vector<RunReport> &reports() const { return reports_; }

  private:
    std::vector<RunReport> reports_;
};

/** Adapts a callable to the sink interface (campaign roll-up loops). */
class CallbackSink final : public ReportSink
{
  public:
    using Fn = std::function<void(std::size_t, RunReport &&)>;

    explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}

    void consume(std::size_t index, RunReport &&report) override
    {
        fn_(index, std::move(report));
    }

  private:
    Fn fn_;
};

/**
 * Fans one report stream out to several sinks, so independent consumers
 * (e.g. a CampaignAggregator and an Observatory) share a single run.
 *
 * Contract: every branch is offered every report exactly once, in
 * construction order; non-final branches receive a copy so the final
 * branch can take the original by move. Exception safety: a branch that
 * throws does not deprive later branches — every remaining branch is
 * still offered the report — and the *first* exception is rethrown to
 * the runner afterwards (aborting the stream per the ReportSink
 * contract). Branches keeping resume watermarks therefore stay
 * consistent with each other even on the aborting index.
 */
class TeeSink final : public ReportSink
{
  public:
    explicit TeeSink(std::vector<ReportSink *> branches)
        : branches_(std::move(branches))
    {}

    void consume(std::size_t index, RunReport &&report) override
    {
        std::exception_ptr first;
        for (std::size_t b = 0; b < branches_.size(); ++b) {
            try {
                if (b + 1 == branches_.size())
                    branches_[b]->consume(index, std::move(report));
                else
                    branches_[b]->consume(index, RunReport(report));
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
    }

  private:
    std::vector<ReportSink *> branches_;
};

} // namespace dvs

#endif // DVS_HARNESS_REPORT_SINK_H
