#include "harness/aggregator.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json_view.h"
#include "sim/logging.h"

namespace dvs {

namespace {

std::int64_t
milli(double x)
{
    return std::llround(x * 1e3);
}

} // namespace

void
CohortStats::accumulate(const RunReport &r)
{
    ++sessions;
    if (!r.error.empty()) {
        // A rejected configuration has every metric zeroed; folding the
        // zeros into the distributions would fake a perfect session.
        ++errors;
        return;
    }
    drops += r.drops;
    frames_due += r.frames_due > 0 ? std::uint64_t(r.frames_due) : 0;
    presents += r.presents;
    stutters += r.stutters;
    deadline_misses += r.deadline_misses;
    invariant_violations += r.invariant_violations;
    faults_injected += r.faults_injected;
    degradations += r.degradations;
    repromotions += r.repromotions;
    for (int c = 0; c < kDropCauseCount; ++c)
        drop_causes[std::size_t(c)] += r.drop_causes[std::size_t(c)];
    drops_injected += r.drops_injected;

    fdps_milli_sum += milli(r.fdps);
    latency_p95_us_sum += milli(r.latency_p95_ms);
    energy_uj_sum += milli(r.energy_mj);

    fdps_hist.add(r.fdps);
    latency_hist.add(r.latency_p95_ms);
    drops_hist.add(double(r.drops));
}

void
CohortStats::merge(const CohortStats &other)
{
    sessions += other.sessions;
    errors += other.errors;
    drops += other.drops;
    frames_due += other.frames_due;
    presents += other.presents;
    stutters += other.stutters;
    deadline_misses += other.deadline_misses;
    invariant_violations += other.invariant_violations;
    faults_injected += other.faults_injected;
    degradations += other.degradations;
    repromotions += other.repromotions;
    for (int c = 0; c < kDropCauseCount; ++c)
        drop_causes[std::size_t(c)] += other.drop_causes[std::size_t(c)];
    drops_injected += other.drops_injected;
    fdps_milli_sum += other.fdps_milli_sum;
    latency_p95_us_sum += other.latency_p95_us_sum;
    energy_uj_sum += other.energy_uj_sum;
    fdps_hist.merge(other.fdps_hist);
    latency_hist.merge(other.latency_hist);
    drops_hist.merge(other.drops_hist);
}

double
CohortStats::mean_fdps() const
{
    return completed() ? double(fdps_milli_sum) / 1e3 / double(completed())
                       : 0.0;
}

double
CohortStats::mean_latency_p95_ms() const
{
    return completed()
               ? double(latency_p95_us_sum) / 1e3 / double(completed())
               : 0.0;
}

double
CohortStats::mean_energy_mj() const
{
    return completed() ? double(energy_uj_sum) / 1e3 / double(completed())
                       : 0.0;
}

CampaignAggregator::CampaignAggregator(CohortFn cohort_of)
    : cohort_of_(std::move(cohort_of))
{}

CohortStats &
CampaignAggregator::cohort(const std::string &key)
{
    return cohorts_[key];
}

void
CampaignAggregator::add(const RunReport &report)
{
    const std::string key =
        cohort_of_ ? cohort_of_(report) : report.label;
    cohort(key).accumulate(report);
    ++sessions_;
    if (!report.error.empty())
        ++errors_;
}

void
CampaignAggregator::consume(std::size_t, RunReport &&report)
{
    add(report);
    // Delivery is in submission order (the runner's sink contract), so
    // a count of consumed reports is exactly the resume watermark.
    ++resume_pos_;
}

void
CampaignAggregator::merge(const CampaignAggregator &other)
{
    for (const auto &[key, stats] : other.cohorts_)
        cohort(key).merge(stats);
    sessions_ += other.sessions_;
    errors_ += other.errors_;
    resume_pos_ += other.resume_pos_;
}

std::uint64_t
CampaignAggregator::invariant_violations() const
{
    std::uint64_t total = 0;
    for (const auto &[_, c] : cohorts_)
        total += c.invariant_violations;
    return total;
}

std::uint64_t
CampaignAggregator::unattributed_drops() const
{
    std::uint64_t total = 0;
    for (const auto &[_, c] : cohorts_)
        total += c.drop_causes[std::size_t(DropCause::kUnknown)];
    return total;
}

std::string
CampaignAggregator::summary() const
{
    char buf[512];
    std::string out;
    std::size_t key_width = std::string("cohort").size();
    for (const auto &[key, _] : cohorts_)
        key_width = std::max(key_width, key.size());

    std::uint64_t drops = 0, due = 0, violations = 0, injected = 0;
    std::array<std::uint64_t, kDropCauseCount> causes{};
    for (const auto &[_, c] : cohorts_) {
        drops += c.drops;
        due += c.frames_due;
        violations += c.invariant_violations;
        injected += c.drops_injected;
        for (int i = 0; i < kDropCauseCount; ++i)
            causes[std::size_t(i)] += c.drop_causes[std::size_t(i)];
    }

    std::snprintf(buf, sizeof(buf),
                  "campaign: %llu sessions (%llu errors) across %zu "
                  "cohorts | drops %llu of %llu due | violations %llu\n",
                  (unsigned long long)sessions_,
                  (unsigned long long)errors_, cohorts_.size(),
                  (unsigned long long)drops, (unsigned long long)due,
                  (unsigned long long)violations);
    out += buf;

    out += "drop causes:";
    for (int c = 0; c < kDropCauseCount; ++c) {
        if (causes[std::size_t(c)] > 0) {
            std::snprintf(buf, sizeof(buf), " %s=%llu",
                          to_string(DropCause(c)),
                          (unsigned long long)causes[std::size_t(c)]);
            out += buf;
        }
    }
    std::snprintf(buf, sizeof(buf), " | injected %llu of %llu drops\n",
                  (unsigned long long)injected,
                  (unsigned long long)drops);
    out += buf;

    std::snprintf(buf, sizeof(buf),
                  "%-*s %9s %5s %9s %10s %8s | fdps %6s %6s %6s %6s | "
                  "p95lat(ms) %7s %7s | %9s\n",
                  int(key_width), "cohort", "sessions", "errs", "drops",
                  "due", "stutter", "mean", "p50", "p95", "p99", "mean",
                  "p95", "energy_mj");
    out += buf;
    for (const auto &[key, c] : cohorts_) {
        if (c.completed() == 0) {
            // No completed session means no metric surface at all (the
            // histograms are empty and their percentiles are NaN). Say
            // so instead of printing a row of zeros a reader could
            // mistake for a perfectly smooth cohort.
            std::snprintf(
                buf, sizeof(buf),
                "%-*s %9llu %5llu %9llu %10llu %8llu | fdps %6s %6s "
                "%6s %6s | p95lat(ms) %7s %7s | %9s\n",
                int(key_width), key.c_str(),
                (unsigned long long)c.sessions,
                (unsigned long long)c.errors, (unsigned long long)c.drops,
                (unsigned long long)c.frames_due,
                (unsigned long long)c.stutters, "n/a", "n/a", "n/a",
                "n/a", "n/a", "n/a", "n/a");
            out += buf;
            continue;
        }
        std::snprintf(
            buf, sizeof(buf),
            "%-*s %9llu %5llu %9llu %10llu %8llu | fdps %6.3f %6.2f "
            "%6.2f %6.2f | p95lat(ms) %7.2f %7.1f | %9.2f\n",
            int(key_width), key.c_str(), (unsigned long long)c.sessions,
            (unsigned long long)c.errors, (unsigned long long)c.drops,
            (unsigned long long)c.frames_due,
            (unsigned long long)c.stutters, c.mean_fdps(),
            c.fdps_hist.percentile(50), c.fdps_hist.percentile(95),
            c.fdps_hist.percentile(99), c.mean_latency_p95_ms(),
            c.latency_hist.percentile(95), c.mean_energy_mj());
        out += buf;
    }
    return out;
}

namespace {

void
append_histogram(std::string &out, const char *name, const Histogram &h)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"lo\": %.17g, \"hi\": %.17g, "
                  "\"underflow\": %llu, \"overflow\": %llu, \"bins\": [",
                  name, h.lo(), h.hi(), (unsigned long long)h.underflow(),
                  (unsigned long long)h.overflow());
    out += buf;
    for (int i = 0; i < h.bins(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%llu", i ? "," : "",
                      (unsigned long long)h.bin_count(i));
        out += buf;
    }
    out += "]}";
}

/** Restore a histogram from its checkpoint node; false on mismatch. */
bool
load_histogram(const JsonValue &node, Histogram &h, std::string *error)
{
    const auto &bins = node.at("bins");
    if (!node.is_object() || !bins.is_array()) {
        if (error)
            *error = "histogram node malformed";
        return false;
    }
    if (node.number_at("lo") != h.lo() || node.number_at("hi") != h.hi() ||
        int(bins.items().size()) != h.bins()) {
        if (error)
            *error = "histogram layout mismatch (incompatible checkpoint)";
        return false;
    }
    h.add_to_bin(Histogram::kUnderflowBin,
                 std::uint64_t(node.number_at("underflow")));
    h.add_to_bin(Histogram::kOverflowBin,
                 std::uint64_t(node.number_at("overflow")));
    for (int i = 0; i < h.bins(); ++i)
        h.add_to_bin(i, std::uint64_t(bins.items()[std::size_t(i)]
                                          .as_number()));
    return true;
}

} // namespace

std::string
CampaignAggregator::to_json() const
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "{\n  \"schema\": %d,\n  \"sessions\": %llu,\n"
                  "  \"errors\": %llu,\n  \"resume_pos\": %llu,\n"
                  "  \"cohorts\": [\n",
                  kSchema, (unsigned long long)sessions_,
                  (unsigned long long)errors_,
                  (unsigned long long)resume_pos_);
    out += buf;
    std::size_t i = 0;
    for (const auto &[key, c] : cohorts_) {
        out += "    {\"key\": \"" + key + "\", ";
        std::snprintf(
            buf, sizeof(buf),
            "\"sessions\": %llu, \"errors\": %llu, \"drops\": %llu, "
            "\"frames_due\": %llu, \"presents\": %llu, "
            "\"stutters\": %llu, \"deadline_misses\": %llu, ",
            (unsigned long long)c.sessions, (unsigned long long)c.errors,
            (unsigned long long)c.drops, (unsigned long long)c.frames_due,
            (unsigned long long)c.presents,
            (unsigned long long)c.stutters,
            (unsigned long long)c.deadline_misses);
        out += buf;
        std::snprintf(
            buf, sizeof(buf),
            "\"violations\": %llu, \"faults\": %llu, "
            "\"degradations\": %llu, \"repromotions\": %llu, "
            "\"drops_injected\": %llu, ",
            (unsigned long long)c.invariant_violations,
            (unsigned long long)c.faults_injected,
            (unsigned long long)c.degradations,
            (unsigned long long)c.repromotions,
            (unsigned long long)c.drops_injected);
        out += buf;
        out += "\"drop_causes\": [";
        for (int cause = 0; cause < kDropCauseCount; ++cause) {
            std::snprintf(buf, sizeof(buf), "%s%llu", cause ? "," : "",
                          (unsigned long long)
                              c.drop_causes[std::size_t(cause)]);
            out += buf;
        }
        out += "], ";
        std::snprintf(buf, sizeof(buf),
                      "\"fdps_milli_sum\": %lld, "
                      "\"latency_p95_us_sum\": %lld, "
                      "\"energy_uj_sum\": %lld, ",
                      (long long)c.fdps_milli_sum,
                      (long long)c.latency_p95_us_sum,
                      (long long)c.energy_uj_sum);
        out += buf;
        append_histogram(out, "fdps_hist", c.fdps_hist);
        out += ", ";
        append_histogram(out, "latency_hist", c.latency_hist);
        out += ", ";
        append_histogram(out, "drops_hist", c.drops_hist);
        // Derived percentile surface for consumers that do not rebin the
        // histograms. Explicit nulls for empty cohorts (JSON has no NaN);
        // load() ignores the block — the histograms stay authoritative.
        out += ", \"percentiles\": {";
        if (c.completed() == 0) {
            out += "\"fdps_p50\": null, \"fdps_p95\": null, "
                   "\"fdps_p99\": null, \"latency_p95_ms\": null}";
        } else {
            std::snprintf(buf, sizeof(buf),
                          "\"fdps_p50\": %.6g, \"fdps_p95\": %.6g, "
                          "\"fdps_p99\": %.6g, \"latency_p95_ms\": %.6g}",
                          c.fdps_hist.percentile(50),
                          c.fdps_hist.percentile(95),
                          c.fdps_hist.percentile(99),
                          c.latency_hist.percentile(95));
            out += buf;
        }
        out += "}";
        out += ++i < cohorts_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

bool
CampaignAggregator::save(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return false;
    f << to_json();
    return bool(f.flush());
}

bool
CampaignAggregator::load(const std::string &path, std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    std::string parse_error;
    const JsonValue root = JsonValue::parse(ss.str(), &parse_error);
    if (!root.is_object()) {
        if (error)
            *error = path + ": " + (parse_error.empty() ? "not an object"
                                                        : parse_error);
        return false;
    }
    if (int(root.number_at("schema", -1)) != kSchema) {
        if (error)
            *error = path + ": unsupported checkpoint schema " +
                     std::to_string(int(root.number_at("schema", -1)));
        return false;
    }

    cohorts_.clear();
    sessions_ = std::uint64_t(root.number_at("sessions"));
    errors_ = std::uint64_t(root.number_at("errors"));
    resume_pos_ = std::uint64_t(root.number_at("resume_pos"));
    for (const JsonValue &node : root.at("cohorts").items()) {
        CohortStats &c = cohort(node.string_at("key"));
        c.sessions = std::uint64_t(node.number_at("sessions"));
        c.errors = std::uint64_t(node.number_at("errors"));
        c.drops = std::uint64_t(node.number_at("drops"));
        c.frames_due = std::uint64_t(node.number_at("frames_due"));
        c.presents = std::uint64_t(node.number_at("presents"));
        c.stutters = std::uint64_t(node.number_at("stutters"));
        c.deadline_misses =
            std::uint64_t(node.number_at("deadline_misses"));
        c.invariant_violations =
            std::uint64_t(node.number_at("violations"));
        c.faults_injected = std::uint64_t(node.number_at("faults"));
        c.degradations = std::uint64_t(node.number_at("degradations"));
        c.repromotions = std::uint64_t(node.number_at("repromotions"));
        c.drops_injected = std::uint64_t(node.number_at("drops_injected"));
        const auto &causes = node.at("drop_causes").items();
        if (int(causes.size()) != kDropCauseCount) {
            if (error)
                *error = path + ": drop_causes arity mismatch";
            return false;
        }
        for (int i = 0; i < kDropCauseCount; ++i)
            c.drop_causes[std::size_t(i)] =
                std::uint64_t(causes[std::size_t(i)].as_number());
        c.fdps_milli_sum =
            std::int64_t(node.number_at("fdps_milli_sum"));
        c.latency_p95_us_sum =
            std::int64_t(node.number_at("latency_p95_us_sum"));
        c.energy_uj_sum = std::int64_t(node.number_at("energy_uj_sum"));
        if (!load_histogram(node.at("fdps_hist"), c.fdps_hist, error) ||
            !load_histogram(node.at("latency_hist"), c.latency_hist,
                            error) ||
            !load_histogram(node.at("drops_hist"), c.drops_hist, error))
            return false;
    }
    return true;
}

} // namespace dvs
