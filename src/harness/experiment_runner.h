/**
 * @file
 * Parallel experiment harness.
 *
 * Sweeps of (SystemConfig, Scenario, seed) points are embarrassingly
 * parallel: each RenderSystem is a self-contained deterministic
 * simulation with no shared mutable state, so independent points can run
 * on independent worker threads. The ExperimentRunner executes a batch
 * of points on a fixed-size pool — each worker constructs and owns its
 * own RenderSystem — and returns the RunReports in submission order, so
 * the output is bit-identical regardless of the thread count (jobs=1 and
 * jobs=N produce the same byte sequence; the determinism test asserts
 * this).
 */

#ifndef DVS_HARNESS_EXPERIMENT_RUNNER_H
#define DVS_HARNESS_EXPERIMENT_RUNNER_H

#include <functional>
#include <string>
#include <vector>

#include "core/render_system.h"
#include "metrics/run_report.h"
#include "workload/scenario.h"

namespace dvs {

/** One point of a sweep: a configuration applied to a scenario. */
struct Experiment {
    SystemConfig config;
    Scenario scenario;

    /** Carried into RunReport::label so callers can group results. */
    std::string label;
};

/**
 * Fixed-size worker pool over experiment points.
 *
 * Workers pull points off a shared index and write results into the
 * point's submission slot; nothing downstream observes completion order.
 */
class ExperimentRunner
{
  public:
    /** @param jobs worker threads; <= 0 selects the hardware count. */
    explicit ExperimentRunner(int jobs = 0);

    int jobs() const { return jobs_; }

    /**
     * A self-contained unit of work producing its own report — e.g. a
     * multi-surface session, which assembles several pipelines and is
     * not expressible as one (SystemConfig, Scenario) point. Tasks must
     * own all their state: workers invoke them concurrently.
     */
    using Task = std::function<RunReport()>;

    /**
     * Execute every point and return its report, index-aligned with
     * @p points regardless of which worker ran it.
     *
     * A point whose configuration is rejected (fatal() raising
     * ConfigError — e.g. an invalid buffer count in a generated sweep)
     * does not abort the batch: its slot comes back with
     * RunReport::error set and the label/scenario preserved, and every
     * other point still runs.
     */
    std::vector<RunReport> run(const std::vector<Experiment> &points) const;

    /**
     * Execute arbitrary tasks on the same pool with the same guarantees:
     * results in submission order, one ConfigError fails only its own
     * slot (RunReport::error; label/scenario are then whatever the task
     * set before failing — tasks wanting labels on errors catch inside).
     */
    std::vector<RunReport> run_tasks(const std::vector<Task> &tasks) const;

    /** Execute a single point inline on the calling thread. */
    RunReport run_one(const Experiment &point) const;

    /** Execute a single task inline with the ConfigError guard. */
    RunReport run_task(const Task &task) const;

  private:
    int jobs_;
};

/**
 * Jobs count for harness users: @p flag_value if positive (e.g. a parsed
 * --jobs=N flag), else $DVS_JOBS, else 0 (all hardware threads).
 */
int default_jobs(int flag_value = 0);

} // namespace dvs

#endif // DVS_HARNESS_EXPERIMENT_RUNNER_H
