/**
 * @file
 * Parallel experiment harness.
 *
 * Sweeps of (SystemConfig, Scenario, seed) points are embarrassingly
 * parallel: each RenderSystem is a self-contained deterministic
 * simulation with no shared mutable state, so independent points can run
 * on independent worker threads. The ExperimentRunner executes points on
 * a fixed-size pool — each worker constructs and owns its own
 * RenderSystem.
 *
 * Two result paths share that pool:
 *
 *  - the *streaming* path (run_stream / run_tasks_stream) emits each
 *    finished RunReport into a ReportSink in submission order and
 *    retains nothing, so a campaign's footprint is the sink's, not the
 *    sweep's — this is what lets one invocation cover a million
 *    sessions;
 *  - the *batch* path (run / run_tasks) is a thin adapter that streams
 *    into a VectorSink and returns the reports index-aligned with the
 *    submission.
 *
 * Both are bit-identical at any thread count (jobs=1 and jobs=N deliver
 * the same byte sequence to the sink; the determinism tests assert
 * this). Out-of-order completions are reordered through a bounded
 * window with backpressure, so peak retention is O(jobs), never O(sweep).
 */

#ifndef DVS_HARNESS_EXPERIMENT_RUNNER_H
#define DVS_HARNESS_EXPERIMENT_RUNNER_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/render_system.h"
#include "harness/report_sink.h"
#include "metrics/run_report.h"
#include "workload/scenario.h"

namespace dvs {

/** One point of a sweep: a configuration applied to a scenario. */
struct Experiment {
    SystemConfig config;
    Scenario scenario;

    /** Carried into RunReport::label so callers can group results. */
    std::string label;
};

/**
 * Fixed-size worker pool over experiment points.
 *
 * Workers pull points off a shared index; reports are delivered to the
 * sink (or the returned vector) in submission order regardless of which
 * worker ran them or when it finished.
 */
class ExperimentRunner
{
  public:
    /** @param jobs worker threads; <= 0 selects the hardware count. */
    explicit ExperimentRunner(int jobs = 0);

    int jobs() const { return jobs_; }

    /**
     * A self-contained unit of work producing its own report — e.g. a
     * multi-surface session, which assembles several pipelines and is
     * not expressible as one (SystemConfig, Scenario) point. Tasks must
     * own all their state: workers invoke them concurrently.
     */
    using Task = std::function<RunReport()>;

    /**
     * A task plus the submission metadata the runner stamps onto its
     * report: `label` always (mirroring run()'s handling of
     * Experiment::label), and `scenario` on error slots. A ConfigError
     * thrown mid-task therefore never loses its identity — the failed
     * slot carries the submission label/scenario even though the task
     * body never got to set them. (Leave both empty to keep whatever
     * the task itself produced.)
     */
    struct TaskSpec {
        Task run;
        std::string label;
        std::string scenario;
    };

    /**
     * Lazy point source for sweeps too large to materialize: called
     * with each index in [0, count) exactly once, from worker threads
     * (must be safe to call concurrently for distinct indices).
     */
    using PointSource = std::function<Experiment(std::size_t)>;
    using TaskSource = std::function<TaskSpec(std::size_t)>;

    // ----- streaming path ----------------------------------------------

    /**
     * Execute every point, emitting each finished report into @p sink in
     * submission order (see ReportSink for the delivery guarantees).
     *
     * A point whose configuration is rejected (fatal() raising
     * ConfigError — e.g. an invalid buffer count in a generated sweep)
     * does not abort the batch: its slot is delivered with
     * RunReport::error set and the label/scenario preserved, and every
     * other point still runs.
     */
    void run_stream(const std::vector<Experiment> &points,
                    ReportSink &sink) const;

    /** Streaming over a lazy source: @p count points built on demand. */
    void run_stream(std::size_t count, const PointSource &source,
                    ReportSink &sink) const;

    /** Streaming task execution with the same guarantees. */
    void run_tasks_stream(const std::vector<TaskSpec> &tasks,
                          ReportSink &sink) const;

    /** Streaming tasks over a lazy source. */
    void run_tasks_stream(std::size_t count, const TaskSource &source,
                          ReportSink &sink) const;

    // ----- batch adapters ----------------------------------------------

    /**
     * Execute every point and return its report, index-aligned with
     * @p points regardless of which worker ran it. Adapter over
     * run_stream + VectorSink; same error semantics.
     */
    std::vector<RunReport> run(const std::vector<Experiment> &points) const;

    /**
     * Execute labeled tasks and return reports in submission order; an
     * error slot carries its TaskSpec's label/scenario.
     */
    std::vector<RunReport>
    run_tasks(const std::vector<TaskSpec> &tasks) const;

    /**
     * Compatibility shim for bare callables: error slots have empty
     * label/scenario (the task set nothing before failing). Prefer the
     * TaskSpec overload, which preserves submission identity.
     */
    std::vector<RunReport> run_tasks(const std::vector<Task> &tasks) const;

    /** Execute a single point inline on the calling thread. */
    RunReport run_one(const Experiment &point) const;

    /** Execute a single task inline with the ConfigError guard. */
    RunReport run_task(const Task &task) const;

    /** Execute a single labeled task inline (error slots stamped). */
    RunReport run_task(const TaskSpec &task) const;

  private:
    int jobs_;
};

/**
 * Jobs count for harness users: @p flag_value if positive (e.g. a parsed
 * --jobs=N flag), else $DVS_JOBS, else 0 (all hardware threads).
 * Negative flag values and malformed or negative $DVS_JOBS are
 * configuration errors (fatal(), so ConfigError under fatal-throws).
 */
int default_jobs(int flag_value = 0);

} // namespace dvs

#endif // DVS_HARNESS_EXPERIMENT_RUNNER_H
