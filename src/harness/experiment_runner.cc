#include "harness/experiment_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "sim/logging.h"

namespace dvs {

ExperimentRunner::ExperimentRunner(int jobs)
{
    if (jobs <= 0)
        jobs = int(std::thread::hardware_concurrency());
    jobs_ = std::max(1, jobs);
}

RunReport
ExperimentRunner::run_one(const Experiment &point) const
{
    // fatal() throws ConfigError for the scope of the run, so one bad
    // generated sweep point reports its error instead of killing the
    // whole batch process.
    FatalThrowsScope recoverable(true);
    try {
        RenderSystem sys(point.config, point.scenario);
        RunReport report = sys.run();
        report.label = point.label;
        return report;
    } catch (const ConfigError &e) {
        RunReport failed;
        failed.label = point.label;
        failed.scenario = point.scenario.name();
        failed.error = e.what();
        return failed;
    }
}

RunReport
ExperimentRunner::run_task(const Task &task) const
{
    FatalThrowsScope recoverable(true);
    try {
        return task();
    } catch (const ConfigError &e) {
        RunReport failed;
        failed.error = e.what();
        return failed;
    }
}

std::vector<RunReport>
ExperimentRunner::run(const std::vector<Experiment> &points) const
{
    std::vector<Task> tasks;
    tasks.reserve(points.size());
    for (const Experiment &point : points)
        tasks.push_back([this, &point] { return run_one(point); });
    return run_tasks(tasks);
}

std::vector<RunReport>
ExperimentRunner::run_tasks(const std::vector<Task> &tasks) const
{
    // Hold fatal-throws for the whole batch: the per-task scopes then
    // save/restore `true`, so a worker finishing early cannot flip the
    // mode off under a sibling mid-run.
    FatalThrowsScope recoverable(true);
    std::vector<RunReport> reports(tasks.size());
    const int workers =
        int(std::min<std::size_t>(std::size_t(jobs_), tasks.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            reports[i] = run_task(tasks[i]);
        return reports;
    }

    // Dynamic self-scheduling: tasks vary wildly in cost (a 60 s game
    // trace vs. a 400 ms transition), so workers pull the next index
    // instead of owning a static stripe. Each slot is written by exactly
    // one worker, so the only synchronization needed is the counter and
    // the joins.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(std::size_t(workers));
    for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < tasks.size();
                 i = next.fetch_add(1)) {
                reports[i] = run_task(tasks[i]);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    return reports;
}

int
default_jobs(int flag_value)
{
    if (flag_value > 0)
        return flag_value;
    if (const char *env = std::getenv("DVS_JOBS"))
        return std::atoi(env);
    return 0;
}

} // namespace dvs
