#include "harness/experiment_runner.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "sim/logging.h"

namespace dvs {

ExperimentRunner::ExperimentRunner(int jobs)
{
    if (jobs <= 0)
        jobs = int(std::thread::hardware_concurrency());
    jobs_ = std::max(1, jobs);
}

RunReport
ExperimentRunner::run_one(const Experiment &point) const
{
    // fatal() throws ConfigError for the scope of the run, so one bad
    // generated sweep point reports its error instead of killing the
    // whole batch process.
    FatalThrowsScope recoverable(true);
    try {
        RenderSystem sys(point.config, point.scenario);
        RunReport report = sys.run();
        report.label = point.label;
        return report;
    } catch (const ConfigError &e) {
        RunReport failed;
        failed.label = point.label;
        failed.scenario = point.scenario.name();
        failed.error = e.what();
        return failed;
    }
}

RunReport
ExperimentRunner::run_task(const Task &task) const
{
    FatalThrowsScope recoverable(true);
    try {
        return task();
    } catch (const ConfigError &e) {
        RunReport failed;
        failed.error = e.what();
        return failed;
    }
}

RunReport
ExperimentRunner::run_task(const TaskSpec &task) const
{
    FatalThrowsScope recoverable(true);
    try {
        RunReport report = task.run();
        if (!task.label.empty())
            report.label = task.label;
        return report;
    } catch (const ConfigError &e) {
        // The task died before (or while) labeling its own report: stamp
        // the submission identity so the error slot is attributable,
        // exactly as run() does for a rejected Experiment point.
        RunReport failed;
        failed.label = task.label;
        failed.scenario = task.scenario;
        failed.error = e.what();
        return failed;
    }
}

namespace {

/**
 * Reorder buffer between out-of-order worker completions and the
 * in-order sink. Workers park finished reports here; whichever worker
 * holds the lock flushes the contiguous prefix into the sink. A bounded
 * window applies backpressure on the *claim* side: no worker starts
 * point i until fewer than `window` submissions are undelivered, so
 * peak retention is O(window) regardless of sweep size or task skew.
 */
class OrderedDelivery
{
  public:
    OrderedDelivery(std::size_t count, std::size_t window, ReportSink &sink)
        : count_(count), window_(std::max<std::size_t>(window, 1)),
          sink_(sink)
    {}

    /**
     * Claim the next index to run, or count() when exhausted. After a
     * sink failure every claim returns count() so workers drain out
     * instead of blocking on a window that will never reopen.
     */
    std::size_t claim()
    {
        std::unique_lock<std::mutex> lock(mu_);
        can_claim_.wait(lock, [this] {
            return stopped_ || next_claim_ - next_deliver_ < window_;
        });
        if (stopped_)
            return count_;
        return next_claim_ < count_ ? next_claim_++ : count_;
    }

    /** Park a finished report; flush the ready prefix into the sink. */
    void deliver(std::size_t index, RunReport &&report)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (stopped_)
            return; // the stream is dead; in-flight results are dropped
        pending_.emplace(index, std::move(report));
        bool advanced = false;
        for (auto it = pending_.find(next_deliver_); it != pending_.end();
             it = pending_.find(next_deliver_)) {
            // The sink runs under the lock: delivery is serial and
            // in-order by construction, which is exactly the contract
            // ReportSink documents.
            //
            // A throwing consume() counts as delivered: its slot is
            // retired before the exception is recorded, so a resumed
            // stream never re-delivers the report the sink already saw
            // (watermark sinks bumped their resume position first).
            // Without the catch the exception would unwind a worker
            // thread (std::terminate) and, were it swallowed instead,
            // the unflushed slot would wedge claim() forever.
            try {
                sink_.consume(it->first, std::move(it->second));
            } catch (...) {
                pending_.erase(it);
                ++next_deliver_;
                failure_ = std::current_exception();
                stopped_ = true;
                can_claim_.notify_all();
                return;
            }
            pending_.erase(it);
            ++next_deliver_;
            advanced = true;
        }
        if (advanced)
            can_claim_.notify_all();
    }

    /** First sink exception, if delivery was aborted by one. */
    std::exception_ptr failure()
    {
        std::unique_lock<std::mutex> lock(mu_);
        return failure_;
    }

  private:
    const std::size_t count_;
    const std::size_t window_;
    ReportSink &sink_;
    std::mutex mu_;
    std::condition_variable can_claim_;
    std::size_t next_claim_ = 0;
    std::size_t next_deliver_ = 0;
    bool stopped_ = false;
    std::exception_ptr failure_;
    std::map<std::size_t, RunReport> pending_;
};

} // namespace

void
ExperimentRunner::run_tasks_stream(std::size_t count,
                                   const TaskSource &source,
                                   ReportSink &sink) const
{
    // Hold fatal-throws for the whole batch: the per-task scopes then
    // save/restore `true`, so a worker finishing early cannot flip the
    // mode off under a sibling mid-run.
    FatalThrowsScope recoverable(true);
    const int workers =
        int(std::min<std::size_t>(std::size_t(jobs_), count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            sink.consume(i, run_task(source(i)));
        return;
    }

    // Dynamic self-scheduling: tasks vary wildly in cost (a 60 s game
    // trace vs. a 400 ms transition), so workers pull the next index
    // instead of owning a static stripe. The window bounds how far the
    // fastest worker may run ahead of the slowest undelivered slot.
    OrderedDelivery delivery(count, std::size_t(workers) * 4, sink);
    std::vector<std::thread> pool;
    pool.reserve(std::size_t(workers));
    for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = delivery.claim(); i < count;
                 i = delivery.claim()) {
                delivery.deliver(i, run_task(source(i)));
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    // A sink that threw aborted the stream; surface its exception to the
    // caller after every worker has drained, same as the serial path.
    if (std::exception_ptr failure = delivery.failure())
        std::rethrow_exception(failure);
}

void
ExperimentRunner::run_tasks_stream(const std::vector<TaskSpec> &tasks,
                                   ReportSink &sink) const
{
    run_tasks_stream(
        tasks.size(),
        [&tasks](std::size_t i) { return tasks[i]; }, sink);
}

void
ExperimentRunner::run_stream(std::size_t count, const PointSource &source,
                             ReportSink &sink) const
{
    run_tasks_stream(
        count,
        [this, &source](std::size_t i) {
            Experiment point = source(i);
            TaskSpec spec;
            spec.label = point.label;
            spec.scenario = point.scenario.name();
            spec.run = [this, point = std::move(point)] {
                return run_one(point);
            };
            return spec;
        },
        sink);
}

void
ExperimentRunner::run_stream(const std::vector<Experiment> &points,
                             ReportSink &sink) const
{
    run_tasks_stream(
        points.size(),
        [this, &points](std::size_t i) {
            const Experiment &point = points[i];
            TaskSpec spec;
            spec.label = point.label;
            spec.scenario = point.scenario.name();
            spec.run = [this, &point] { return run_one(point); };
            return spec;
        },
        sink);
}

std::vector<RunReport>
ExperimentRunner::run(const std::vector<Experiment> &points) const
{
    VectorSink sink;
    run_stream(points, sink);
    std::vector<RunReport> reports = sink.take();
    reports.resize(points.size());
    return reports;
}

std::vector<RunReport>
ExperimentRunner::run_tasks(const std::vector<TaskSpec> &tasks) const
{
    VectorSink sink;
    run_tasks_stream(tasks, sink);
    std::vector<RunReport> reports = sink.take();
    reports.resize(tasks.size());
    return reports;
}

std::vector<RunReport>
ExperimentRunner::run_tasks(const std::vector<Task> &tasks) const
{
    std::vector<TaskSpec> specs;
    specs.reserve(tasks.size());
    for (const Task &task : tasks)
        specs.push_back(TaskSpec{task, "", ""});
    return run_tasks(specs);
}

int
default_jobs(int flag_value)
{
    if (flag_value < 0)
        fatal("jobs count must be >= 0, got %d", flag_value);
    if (flag_value > 0)
        return flag_value;
    if (const char *env = std::getenv("DVS_JOBS")) {
        // Strict parse: std::atoi would silently turn "abc" into 0 (all
        // cores) and accept negatives, so a typo'd DVS_JOBS changed the
        // parallelism instead of failing the run.
        errno = 0;
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || errno == ERANGE || v < 0 ||
            v > INT_MAX) {
            fatal("DVS_JOBS must be a non-negative integer, got \"%s\"",
                  env);
        }
        return int(v);
    }
    return 0;
}

} // namespace dvs
