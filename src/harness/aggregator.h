/**
 * @file
 * CampaignAggregator: sharded, mergeable campaign accumulators.
 *
 * The streaming counterpart of "collect every RunReport in a vector":
 * an aggregator consumes reports one at a time, folds each into the
 * per-cohort accumulators of its cohort label, and drops it. State is a
 * few KB per cohort regardless of campaign size, which is what lets one
 * invocation cover a million sessions with bounded RSS.
 *
 * Everything the aggregator stores is an *integer*: event counts,
 * histogram bins, and fixed-point sums of the per-session rates
 * (milli-FDPS, microsecond latency, micro-joule energy). Integer
 * addition is associative and commutative, so
 *
 *   - consuming reports in any delivery order,
 *   - splitting a campaign into --shard K/N slices, and
 *   - merging the shard checkpoints in any order
 *
 * all produce *bit-identical* aggregator state — and therefore
 * byte-identical summary() and to_json() output — compared to the
 * unsharded run. Derived floating-point figures (means, percentile
 * surfaces) are computed from the merged integers at read time only.
 * CI enforces the guarantee by byte-comparing a merged 2-way-sharded
 * smoke against the unsharded run.
 *
 * Checkpoints are versioned JSON (kSchema); save/load round-trips the
 * exact integer state, so a campaign can stop, resume (resume_pos is
 * the in-order delivery watermark), and compose across invocations.
 */

#ifndef DVS_HARNESS_AGGREGATOR_H
#define DVS_HARNESS_AGGREGATOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "harness/report_sink.h"
#include "metrics/histogram.h"
#include "metrics/run_report.h"
#include "obs/drop_cause.h"

namespace dvs {

/**
 * Per-cohort accumulators. All stored state is integral (see file
 * comment); doubles appear only in the derived accessors.
 */
struct CohortStats {
    std::uint64_t sessions = 0;
    std::uint64_t errors = 0; ///< failed runs (RunReport::error set)

    // ----- event counts (plain sums) -----------------------------------
    std::uint64_t drops = 0;
    std::uint64_t frames_due = 0;
    std::uint64_t presents = 0;
    std::uint64_t stutters = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t invariant_violations = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t degradations = 0;
    std::uint64_t repromotions = 0;
    std::array<std::uint64_t, kDropCauseCount> drop_causes{};
    std::uint64_t drops_injected = 0;

    // ----- fixed-point sums of per-session rates -----------------------
    std::int64_t fdps_milli_sum = 0;      ///< llround(fdps * 1e3)
    std::int64_t latency_p95_us_sum = 0;  ///< llround(latency_p95_ms * 1e3)
    std::int64_t energy_uj_sum = 0;       ///< llround(energy_mj * 1e3)

    // ----- per-session distributions (percentile surfaces) -------------
    Histogram fdps_hist{0.0, 16.0, 64};      ///< session FDPS
    Histogram latency_hist{0.0, 120.0, 60};  ///< session p95 latency (ms)
    Histogram drops_hist{0.0, 64.0, 64};     ///< session drop count

    /** Fold one finished run in (error runs count sessions+errors only). */
    void accumulate(const RunReport &r);

    /** Fold another cohort's accumulators in (integer sums throughout). */
    void merge(const CohortStats &other);

    // ----- derived views -----------------------------------------------
    double mean_fdps() const;
    double mean_latency_p95_ms() const;
    double mean_energy_mj() const;
    /** Sessions that completed (entered the distributions). */
    std::uint64_t completed() const { return sessions - errors; }
};

/**
 * A ReportSink that reduces a campaign to per-cohort CohortStats, keyed
 * by a caller-supplied cohort labeling of each report (default: the
 * report's `label`). See the file comment for the merge/shard
 * determinism contract.
 */
class CampaignAggregator final : public ReportSink
{
  public:
    /** Checkpoint schema version written by to_json()/save(). */
    static constexpr int kSchema = 1;

    using CohortFn = std::function<std::string(const RunReport &)>;

    /** @param cohort_of cohort label per report; null uses the label. */
    explicit CampaignAggregator(CohortFn cohort_of = nullptr);

    /** Sink entry: accumulate and advance the resume watermark. */
    void consume(std::size_t index, RunReport &&report) override;

    /** Accumulate a report without touching the watermark. */
    void add(const RunReport &report);

    /**
     * Fold @p other in: cohorts merge by key, watermarks and totals
     * sum. Merging N shard checkpoints (any order, any grouping) yields
     * the exact state of the unsharded campaign.
     */
    void merge(const CampaignAggregator &other);

    // ----- queries ------------------------------------------------------
    std::uint64_t sessions() const { return sessions_; }
    std::uint64_t errors() const { return errors_; }
    std::uint64_t invariant_violations() const;
    std::uint64_t unattributed_drops() const;

    /**
     * In-order delivery watermark: number of reports consumed via the
     * sink interface (plus any restored by load()/merge()). A resumed
     * shard skips this many positions of its session stream.
     */
    std::uint64_t resume_pos() const { return resume_pos_; }

    /** Cohorts in key order (deterministic iteration). */
    const std::map<std::string, CohortStats> &cohorts() const
    {
        return cohorts_;
    }

    // ----- serialization ------------------------------------------------

    /**
     * Deterministic human-readable roll-up: totals, per-cohort rows
     * with mean/percentile surfaces, and the drop-cause tally. Shard
     * composition is byte-stable: merged shards print exactly the
     * unsharded text.
     */
    std::string summary() const;

    /** Versioned JSON checkpoint of the full integer state. */
    std::string to_json() const;

    /** Write to_json() to @p path. @return false on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * Replace this aggregator's state with the checkpoint at @p path.
     * @return false (with *error set when non-null) on unreadable
     * files, malformed JSON, or a schema mismatch.
     */
    bool load(const std::string &path, std::string *error = nullptr);

  private:
    CohortStats &cohort(const std::string &key);

    CohortFn cohort_of_;
    std::map<std::string, CohortStats> cohorts_;
    std::uint64_t sessions_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t resume_pos_ = 0;
};

} // namespace dvs

#endif // DVS_HARNESS_AGGREGATOR_H
