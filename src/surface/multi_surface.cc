#include "surface/multi_surface.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "core/dvsync_config.h"
#include "metrics/power_model.h"
#include "metrics/stutter_model.h"
#include "sim/logging.h"

namespace dvs {

// ----- MultiSurfaceCompositor ----------------------------------------

MultiSurfaceCompositor::MultiSurfaceCompositor(HwVsyncGenerator &hw,
                                               ExecResource &gpu,
                                               Time base_cost,
                                               Time per_layer_cost)
    : gpu_(gpu), base_cost_(base_cost), per_layer_cost_(per_layer_cost)
{
    if (base_cost < 0 || per_layer_cost < 0)
        fatal("composition costs must be >= 0");
    hw.add_listener([this](const VsyncEdge &edge) { on_edge(edge); });
}

void
MultiSurfaceCompositor::observe(Panel &panel)
{
    panel.add_present_listener([this](const PresentEvent &ev) {
        if (!ev.repeat)
            ++latched_this_edge_;
    });
}

void
MultiSurfaceCompositor::on_edge(const VsyncEdge &)
{
    // Runs after every panel's latch for this edge (panels registered
    // their HW listeners first). Composition only costs GPU time when at
    // least one layer changed; a fully-static screen re-scans the old
    // composition.
    const int layers = latched_this_edge_;
    latched_this_edge_ = 0;
    if (layers == 0)
        return;
    ++compositions_;
    layers_latched_ += std::uint64_t(layers);
    peak_layers_ = std::max(peak_layers_, layers);
    const Time cost = base_cost_ + per_layer_cost_ * Time(layers);
    gpu_time_ += cost;
    if (cost > 0)
        gpu_.run(cost, [] {});
}

// ----- MultiSurfaceSystem --------------------------------------------

MultiSurfaceSystem::MultiSurfaceSystem(std::vector<SurfaceDesc> descs,
                                       const MultiSurfaceConfig &config)
    : config_(config), base_buffers_(config.device.vsync_buffers),
      sim_(config.seed)
{
    if (descs.empty())
        fatal("multi-surface session needs at least one surface");

    hw_ = std::make_unique<HwVsyncGenerator>(sim_,
                                             config.device.refresh_hz);
    if (config.vsync_jitter > 0)
        hw_->set_jitter(config.vsync_jitter, &sim_.rng());

    // Pass 1: queues and panels. Panels register their HW-VSync
    // listeners here, so every layer latches before the software
    // distributor, the DTVs, and the display compositor see the edge —
    // the same ordering contract RenderSystem keeps for one surface.
    surfaces_.reserve(descs.size());
    for (SurfaceDesc &d : descs) {
        Surface s;
        s.desc = std::move(d);
        s.queue = std::make_unique<BufferQueue>(base_buffers_);
        s.panel = std::make_unique<Panel>(*hw_, *s.queue);
        s.latch = std::make_unique<Compositor>(*s.panel,
                                               config.latch_lead);
        surfaces_.push_back(std::move(s));
    }

    dist_ = std::make_unique<VsyncDistributor>(sim_, *hw_);
    // With private GPUs the surfaces are fully decoupled, so each edge
    // fans out as one delivery event per surface lane — frame starts
    // (cost sampling, UI scheduling) then execute inside lane windows
    // instead of serializing on the shared lane. Tied to the GPU config,
    // not the worker count: serial and parallel runs of one config must
    // dispatch identically.
    if (!config.shared_gpu)
        dist_->set_per_lane_delivery(true);
    gpu_ = std::make_unique<ExecResource>(sim_, "device gpu");
    // A producer only pumps its own GPU backlog when its own job
    // finishes; on a shared GPU the finishing job may belong to another
    // surface, so every completion re-kicks all of them.
    gpu_->add_done_listener([this] {
        for (Surface &s : surfaces_)
            s.producer->kick_gpu();
    });

    // Pass 2: the per-surface pipelines.
    for (std::size_t i = 0; i < surfaces_.size(); ++i) {
        Surface &s = surfaces_[i];
        s.producer = std::make_unique<Producer>(sim_, s.desc.scenario,
                                                *s.queue, *dist_);
        if (config.shared_gpu)
            s.producer->use_shared_gpu(*gpu_);
        // Lane 0 is the shared lane (vsync edges, device GPU, arbiter,
        // compositor); surface i owns lane i + 1.
        s.producer->pin_lane(LaneId(i) + 1);

        if (s.desc.dvsync_aware) {
            DvsyncConfig dc;
            dc.prerender_limit = prerender_limit_for_buffers(base_buffers_);
            s.runtime = std::make_unique<DvsyncRuntime>(dc);
            s.dtv = std::make_unique<DisplayTimeVirtualizer>(sim_, *hw_,
                                                             *s.panel, dc);
            s.fpe = std::make_unique<FramePreExecutor>(
                *s.dtv, *s.queue, *s.panel, *s.runtime, dc);
            s.runtime->bind(*s.producer, *s.dtv, *s.fpe, *s.queue);
            s.producer->set_pacer(s.fpe.get());
        } else {
            s.vsync_pacer = std::make_unique<VsyncPacer>();
            s.producer->set_pacer(s.vsync_pacer.get());
        }

        s.stats = std::make_unique<FrameStats>(*s.producer, *s.panel);

        // Per-surface drop attribution; after stats (listener order on
        // the present fence). Only the fault surface sees the plan.
        const int fault_target =
            config.faults ? std::clamp(config.fault_surface, 0,
                                       int(surfaces_.size()) - 1)
                          : -1;
        DropClassifier::Context cc;
        cc.producer = s.producer.get();
        cc.queue = s.queue.get();
        cc.stats = s.stats.get();
        cc.runtime = s.runtime.get();
        cc.dtv = s.dtv.get();
        cc.plan = int(i) == fault_target ? config.faults.get() : nullptr;
        cc.gpu = config.shared_gpu ? gpu_.get() : &s.producer->gpu();
        cc.shared_gpu = config.shared_gpu;
        s.classifier = std::make_unique<DropClassifier>(cc, *s.panel);

        if (config.monitor_invariants) {
            s.monitor = std::make_unique<InvariantMonitor>();
            // The arbiter may deepen the queue up to max_extra_buffers,
            // raising the FPE limit with it; the depth bound must admit
            // the deepest configuration (+1 for the in-flight frame).
            const int depth =
                s.desc.dvsync_aware
                    ? prerender_limit_for_buffers(
                          base_buffers_ + s.desc.max_extra_buffers) +
                          1
                    : 0;
            s.monitor->attach(*s.producer, *s.panel, depth);
        }
        if (s.runtime && (config.watchdog || config.faults))
            s.runtime->attach_watchdog(*s.panel, s.monitor.get());
        if (s.runtime) {
            // Registered after the watchdog's own listener, so the
            // degradation state is already updated for this present when
            // the arbiter hears about it.
            const int id = int(i);
            s.panel->add_present_listener(
                [this, id](const PresentEvent &ev) {
                    on_surface_present(id, ev);
                });
        }
    }

    compositor_ = std::make_unique<MultiSurfaceCompositor>(
        *hw_, *gpu_, config.compose_base, config.compose_per_layer);
    for (Surface &s : surfaces_)
        compositor_->observe(*s.panel);

    if (config.monitor_invariants) {
        display_monitor_ = std::make_unique<InvariantMonitor>();
        for (std::size_t i = 0; i < surfaces_.size(); ++i)
            display_monitor_->watch_latches(int(i), *surfaces_[i].panel);
    }

    arbiter_ = std::make_unique<BufferBudgetArbiter>(config.budget_mb,
                                                     config.policy);
    for (const Surface &s : surfaces_) {
        arbiter_->add_surface(s.desc.name, s.desc.buffer_mb,
                              s.desc.max_extra_buffers, s.desc.weight,
                              s.desc.dvsync_aware);
    }
    arbiter_->set_apply(
        [this](int id, int extra) { apply_extra(id, extra); });
    arbiter_->set_budget_check(
        [this](Time now, double used_mb, double budget_mb) {
            if (display_monitor_)
                display_monitor_->on_budget(now, used_mb, budget_mb);
            AllocSample sample;
            sample.at = now;
            sample.used_mb = used_mb;
            alloc_log_.push_back(sample);
        });

    if (config.faults) {
        const int fi = std::clamp(config.fault_surface, 0,
                                  int(surfaces_.size()) - 1);
        Surface &s = surfaces_[std::size_t(fi)];
        injector_ = std::make_unique<FaultInjector>(sim_, config.faults);
        injector_->arm(*hw_, *s.queue, *s.latch, *s.producer);
    }

    for (const Surface &s : surfaces_) {
        session_end_ = std::max(
            session_end_,
            s.desc.start_at + s.desc.scenario.total_duration());
    }

    if (config.forensics) {
        metrics_ = std::make_unique<MetricsRegistry>();
        metrics_->register_counter("gpu.busy_ns", [this] {
            return double(gpu_->total_busy());
        });
        metrics_->register_gauge("arbiter.used_mb", [this] {
            return arbiter_->used_mb();
        });
        metrics_->register_counter("arbiter.rearbitrations", [this] {
            return double(arbiter_->rearbitrations());
        });
        for (std::size_t i = 0; i < surfaces_.size(); ++i) {
            Surface *sp = &surfaces_[i];
            const std::string p = sp->desc.name + ".";
            metrics_->register_gauge(p + "queue.depth", [sp] {
                return double(sp->queue->queued_count());
            });
            metrics_->register_counter(p + "presents", [sp] {
                return double(sp->panel->presented());
            });
            metrics_->register_counter(p + "drops", [sp] {
                return double(sp->stats->frame_drops());
            });
            if (sp->runtime) {
                metrics_->register_gauge(p + "degraded", [sp] {
                    return sp->runtime->degraded() ? 1.0 : 0.0;
                });
            }
        }
        // Same sparse default cadence as RenderSystem (16 refresh
        // periods); dense sampling is opt-in via with_metrics_interval.
        const Time interval = config.metrics_interval > 0
                                  ? config.metrics_interval
                                  : config.device.period() * 16;
        metrics_->install(sim_, interval);
    }

    if (config.sim_workers > 1) {
        if (config.shared_gpu) {
            // A shared device GPU couples every surface's pacing through
            // its busy horizon: one surface's gpu-done chain mutates what
            // another surface reads mid-window, so the conservative
            // lookahead collapses to nothing. Fall back loudly rather
            // than crawl window-by-window (results are identical).
            // Campaigns construct thousands of sessions, possibly from
            // worker threads — warn once per process, not per session.
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                std::fprintf(stderr,
                             "multi-surface: sim_workers=%d needs private "
                             "GPUs (shared_gpu=false); using serial "
                             "dispatch\n",
                             config.sim_workers);
        } else {
            sim_.set_sim_workers(config.sim_workers);
        }
    }
    sim_.events().reserve(128 * surfaces_.size());
}

MultiSurfaceSystem::~MultiSurfaceSystem() = default;

void
MultiSurfaceSystem::apply_extra(int id, int extra)
{
    Surface &s = surfaces_[std::size_t(id)];
    const int capacity = base_buffers_ + extra;
    s.queue->set_capacity(capacity);
    // Oblivious surfaces just get a deeper FIFO (their pacing never
    // fills it); aware surfaces convert the extra slots into pre-render
    // depth. Revocation shrinks lazily as the display drains slots.
    if (s.fpe)
        s.fpe->set_prerender_limit(prerender_limit_for_buffers(capacity));
    AllocSample sample;
    sample.at = sim_.now();
    sample.surface = id;
    sample.extra = extra;
    alloc_log_.push_back(sample);
}

void
MultiSurfaceSystem::on_surface_present(int id, const PresentEvent &)
{
    Surface &s = surfaces_[std::size_t(id)];
    if (!s.runtime || !arbiter_)
        return;
    const bool degraded = s.runtime->degraded();
    if (degraded != s.degraded_seen) {
        s.degraded_seen = degraded;
        arbiter_->on_surface_degraded(id, degraded, sim_.now());
    }
}

RunReport
MultiSurfaceSystem::run()
{
    if (ran_)
        panic("MultiSurfaceSystem::run called twice");
    ran_ = true;

    hw_->start();
    // Initial allocation happens before any frame renders, so surfaces
    // start with their arbitrated depth instead of growing mid-segment.
    arbiter_->arbitrate(0);

    int max_extra = 0;
    for (std::size_t i = 0; i < surfaces_.size(); ++i) {
        Surface &s = surfaces_[i];
        s.producer->start(s.desc.start_at);
        max_extra = std::max(max_extra, s.desc.max_extra_buffers);
        // The surface leaves the arbiter's pool when its scenario ends;
        // its grant returns to the budget and the survivors re-split it.
        const Time ends = s.desc.start_at + s.desc.scenario.total_duration();
        const int id = int(i);
        sim_.events().schedule(
            ends, [this, id] { arbiter_->on_surface_exit(id, sim_.now()); },
            EventPriority::kDefault);
    }

    const Time tail =
        Time(base_buffers_ + max_extra + 4) * config_.device.period();
    sim_.run_until(session_end_ + tail);
    hw_->stop();
    for (Surface &s : surfaces_) {
        if (s.monitor)
            s.monitor->finalize(sim_.now());
    }
    if (display_monitor_)
        display_monitor_->finalize(sim_.now());
    return report();
}

RunReport
MultiSurfaceSystem::report() const
{
    if (!ran_)
        panic("MultiSurfaceSystem::report before run");

    RunReport r;
    r.scenario = "multi[";
    for (std::size_t i = 0; i < surfaces_.size(); ++i) {
        if (i > 0)
            r.scenario += '+';
        r.scenario += surfaces_[i].desc.name;
    }
    r.scenario += ']';
    r.config.mode = std::string("Multi/") + to_string(config_.policy);
    r.config.device = config_.device.name;
    r.config.refresh_hz = config_.device.refresh_hz;
    r.config.buffers = base_buffers_;
    r.config.prerender_limit = 0;
    r.config.seed = config_.seed;

    r.activity.wall_time = session_end_;
    r.activity.dvsync_on = false;

    for (std::size_t i = 0; i < surfaces_.size(); ++i) {
        const Surface &s = surfaces_[i];
        const FrameStats &st = *s.stats;

        SurfaceReport sr;
        sr.name = s.desc.name;
        sr.mode = s.desc.dvsync_aware ? "D-VSync" : "VSync";
        sr.buffers = s.queue->capacity();
        sr.extra_buffers = arbiter_->peak_extra_of(int(i));
        sr.buffer_mb = s.desc.buffer_mb;
        sr.fdps = st.fdps();
        sr.fd_percent = st.frame_drop_percent();
        sr.drops = st.frame_drops();
        sr.frames_due = st.frames_due();
        sr.presents = st.presents();
        if (st.latency().count() > 0)
            sr.latency_p95_ms = to_ms(Time(st.latency().percentile(95)));
        if (s.monitor)
            sr.invariant_violations = s.monitor->violations();
        if (s.runtime) {
            sr.degradations = s.runtime->degradations();
            sr.repromotions = s.runtime->repromotions();
        }
        sr.drop_causes = s.classifier->counts();
        sr.drops_injected = s.classifier->injected_drops();
        std::uint64_t attributed = 0;
        for (int c = 0; c < kDropCauseCount; ++c) {
            attributed += sr.drop_causes[c];
            r.drop_causes[c] += sr.drop_causes[c];
        }
        if (attributed != st.frame_drops()) {
            panic("surface %s drop attribution out of sync: "
                  "%llu causes vs %llu drops",
                  s.desc.name.c_str(), (unsigned long long)attributed,
                  (unsigned long long)st.frame_drops());
        }
        r.drops_injected += sr.drops_injected;
        r.surfaces.push_back(std::move(sr));

        r.drops += st.frame_drops();
        r.frames_due += st.frames_due();
        r.presents += st.presents();
        r.direct += st.direct_composition();
        r.stuffed += st.buffer_stuffing();
        r.stutters += count_stutters(st);
        r.deadline_misses += s.latch->missed_deadline();
        r.invariant_violations += s.monitor ? s.monitor->violations() : 0;
        if (s.runtime) {
            r.degradations += s.runtime->degradations();
            r.repromotions += s.runtime->repromotions();
            r.activity.predicted_frames += s.runtime->ipl().predictions();
            r.activity.dvsync_on = true;
            for (const std::string &line : s.runtime->transitions())
                r.timeline.push_back("[" + s.desc.name + "] " + line);
        }
        if (s.dtv)
            r.dtv_resyncs += s.dtv->resyncs();
        r.activity.pipeline_busy += s.producer->ui_thread().total_busy() +
                                    s.producer->render_thread().total_busy();
        r.activity.frames_produced += s.producer->frames_started();
    }

    // Display aggregates: total drops per second of session wall time
    // (per-surface FDPS stays normalized to each surface's own active
    // duration, the paper's definition).
    const double wall_s = to_seconds(session_end_);
    r.fdps = wall_s > 0 ? double(r.drops) / wall_s : 0.0;
    r.fd_percent =
        r.frames_due > 0 ? 100.0 * double(r.drops) / double(r.frames_due)
                         : 0.0;
    r.fps = wall_s > 0 ? double(r.presents) / wall_s : 0.0;

    r.energy_mj = PowerModel().energy_mj(r.activity);
    r.pipeline_busy_s = to_seconds(r.activity.pipeline_busy);
    r.frames_produced = r.activity.frames_produced;
    r.predicted_frames = r.activity.predicted_frames;

    if (display_monitor_)
        r.invariant_violations += display_monitor_->violations();
    if (injector_)
        r.faults_injected = injector_->injected_total();

    r.budget_mb = arbiter_->budget_mb();
    r.budget_used_mb = arbiter_->peak_used_mb();
    r.rearbitrations = arbiter_->rearbitrations();
    return r;
}

void
MultiSurfaceSystem::export_trace(TraceLog &log) const
{
    char name[64];
    for (const Surface &s : surfaces_) {
        const std::string prefix = s.desc.name + "/";
        for (const FrameRecord &rec : s.producer->records()) {
            std::snprintf(name, sizeof(name), "frame %lld.%lld%s",
                          (long long)rec.segment_index,
                          (long long)rec.slot,
                          rec.pre_rendered ? " (pre)" : "");
            if (rec.ui_start != kTimeNone) {
                log.duration(prefix + "ui thread", name, rec.ui_start,
                             rec.ui_end);
            }
            if (rec.render_start != kTimeNone) {
                log.duration(prefix + "render thread", name,
                             rec.render_start, rec.render_end);
            }
            if (rec.gpu_start != kTimeNone) {
                log.duration(prefix + "gpu", name, rec.gpu_start,
                             rec.gpu_end);
            }
            if (rec.queue_time != kTimeNone &&
                rec.present_time != kTimeNone) {
                log.duration(prefix + "buffer queue", name,
                             rec.queue_time, rec.present_time);
            }
        }
        for (const RefreshLog &ref : s.stats->refreshes()) {
            if (ref.presented)
                log.instant(prefix + "display", "present", ref.time);
            else if (ref.drop)
                log.instant(prefix + "display", "FRAME DROP", ref.time);
        }

        // Queue-depth counter reconstructed from the frame records: a
        // buffer occupies the FIFO from queue_time until its latch.
        std::vector<std::pair<Time, int>> deltas;
        for (const FrameRecord &rec : s.producer->records()) {
            if (rec.queue_time == kTimeNone)
                continue;
            deltas.emplace_back(rec.queue_time, +1);
            if (rec.present_time != kTimeNone)
                deltas.emplace_back(rec.present_time, -1);
        }
        std::sort(deltas.begin(), deltas.end());
        int depth = 0;
        for (std::size_t k = 0; k < deltas.size(); ++k) {
            depth += deltas[k].second;
            if (k + 1 < deltas.size() &&
                deltas[k + 1].first == deltas[k].first)
                continue; // coalesce same-instant changes
            log.counter("queue depth " + s.desc.name, deltas[k].first,
                        double(depth));
        }
    }

    // Flow events: follow one frame across its surface's tracks.
    forensics().export_flows(log);

    // Arbiter history: per-surface grants and the budget line.
    for (const AllocSample &sample : alloc_log_) {
        if (sample.surface >= 0) {
            log.counter("extra buffers " +
                            surfaces_[std::size_t(sample.surface)].desc.name,
                        sample.at, double(sample.extra));
        } else {
            log.counter("arbiter used MB", sample.at, sample.used_mb);
            log.counter("arbiter budget MB", sample.at,
                        arbiter_->budget_mb());
        }
    }
}

FrameForensics
MultiSurfaceSystem::forensics() const
{
    if (!ran_)
        panic("MultiSurfaceSystem::forensics before run");
    FrameForensics f;
    for (const Surface &s : surfaces_) {
        f.add_surface(s.desc.name, *s.producer, *s.stats,
                      s.classifier.get());
    }
    return f;
}

bool
MultiSurfaceSystem::save_forensics(const std::string &path) const
{
    std::string scenario = "multi[";
    for (std::size_t i = 0; i < surfaces_.size(); ++i) {
        if (i > 0)
            scenario += '+';
        scenario += surfaces_[i].desc.name;
    }
    scenario += ']';
    return forensics().save(path, scenario,
                            std::string("Multi/") +
                                to_string(config_.policy),
                            metrics_.get());
}

RunReport
run_multi_surface(std::vector<SurfaceDesc> descs,
                  const MultiSurfaceConfig &config)
{
    MultiSurfaceSystem system(std::move(descs), config);
    return system.run();
}

} // namespace dvs
