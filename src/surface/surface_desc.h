/**
 * @file
 * SurfaceDesc: one producer layer of a shared display.
 *
 * The paper evaluates D-VSync as an OS service: on a real device several
 * apps — the foreground app, the status bar, an overlay, a game — render
 * concurrently into their own buffer queues and one compositor
 * (SurfaceFlinger / the OpenHarmony render service) latches one buffer
 * per surface per refresh. A SurfaceDesc declares one such producer: its
 * workload, whether it is D-VSync-aware (decoupling-aware channel, may
 * be granted extra pre-render buffers) or oblivious (conventional VSync
 * pacing), and the §6.4 memory cost of each extra buffer the
 * BufferBudgetArbiter may grant it.
 */

#ifndef DVS_SURFACE_SURFACE_DESC_H
#define DVS_SURFACE_SURFACE_DESC_H

#include <string>

#include "sim/time.h"
#include "workload/scenario.h"

namespace dvs {

/** Declaration of one surface of a multi-surface session. */
struct SurfaceDesc {
    std::string name = "surface";
    Scenario scenario;

    /**
     * D-VSync-aware surfaces run the decoupled FPE/DTV stack and compete
     * for extra pre-render buffers; oblivious surfaces pace with
     * conventional software VSync and never receive extras.
     */
    bool dvsync_aware = true;

    /**
     * Memory cost of ONE extra buffer for this surface, in MB (§6.4
     * budgets ~10-15 MB per extra buffer per surface, resolution- and
     * format-dependent).
     */
    double buffer_mb = 12.0;

    /** Cap on extra buffers this surface can use beyond its baseline. */
    int max_extra_buffers = 4;

    /**
     * Arbitration weight: the surface's demand hint (e.g. the profile's
     * baseline FDPS). The weighted arbiter grants extras by descending
     * weight per MB.
     */
    double weight = 1.0;

    /** Absolute time the surface appears and its scenario starts. */
    Time start_at = 0;

    // ----- fluent named setters ----------------------------------------

    SurfaceDesc &with_name(std::string n)
    {
        name = std::move(n);
        return *this;
    }
    SurfaceDesc &with_scenario(Scenario sc)
    {
        scenario = std::move(sc);
        return *this;
    }
    SurfaceDesc &with_dvsync_aware(bool aware)
    {
        dvsync_aware = aware;
        return *this;
    }
    SurfaceDesc &with_buffer_mb(double mb)
    {
        buffer_mb = mb;
        return *this;
    }
    SurfaceDesc &with_max_extra_buffers(int n)
    {
        max_extra_buffers = n;
        return *this;
    }
    SurfaceDesc &with_weight(double w)
    {
        weight = w;
        return *this;
    }
    SurfaceDesc &with_start_at(Time at)
    {
        start_at = at;
        return *this;
    }
};

} // namespace dvs

#endif // DVS_SURFACE_SURFACE_DESC_H
