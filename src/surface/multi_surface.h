/**
 * @file
 * Multi-surface composition: several producers sharing one display.
 *
 * RenderSystem assembles one producer against one panel — the paper's
 * single-app evaluation setup. A real device runs D-VSync as an OS
 * service: the foreground app, the status bar, an overlay, a game each
 * render into their own BufferQueue through their own UI/render pipeline,
 * contend for one device GPU, and a display-level compositor latches at
 * most one buffer per surface per refresh, paying a per-layer
 * composition cost. MultiSurfaceSystem assembles that device:
 *
 *  - one HwVsyncGenerator and one VsyncDistributor drive every surface;
 *  - each surface owns its queue, panel (its layer's latch point),
 *    latch-deadline compositor, producer, metrics, and invariant
 *    monitor; D-VSync-aware surfaces get a full FPE/DTV/runtime stack,
 *    oblivious ones pace with conventional software VSync;
 *  - every producer's GPU stage is routed to one shared ExecResource
 *    (Producer::use_shared_gpu); a done-listener re-pumps the other
 *    surfaces so work parked behind a contender's job resumes;
 *  - the MultiSurfaceCompositor charges the shared GPU a base + per-layer
 *    cost on every refresh that latched at least one buffer;
 *  - a BufferBudgetArbiter allocates extra pre-render buffers across the
 *    aware surfaces under a device-wide §6.4 memory budget,
 *    re-arbitrating online when a surface exits or is degraded to the
 *    VSync fallback by its runtime watchdog;
 *  - a display-level InvariantMonitor checks the cross-surface
 *    invariants (one latch per surface per refresh, arbiter never over
 *    budget) while each surface's own monitor keeps the per-surface
 *    FIFO/conservation/depth checks.
 *
 * The result is one RunReport with display aggregates plus a
 * SurfaceReport slice per surface.
 */

#ifndef DVS_SURFACE_MULTI_SURFACE_H
#define DVS_SURFACE_MULTI_SURFACE_H

#include <memory>
#include <vector>

#include "buffer/buffer_queue.h"
#include "core/display_time_virtualizer.h"
#include "core/dvsync_runtime.h"
#include "core/frame_pre_executor.h"
#include "display/device_config.h"
#include "display/hw_vsync.h"
#include "display/panel.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_monitor.h"
#include "metrics/frame_stats.h"
#include "metrics/run_report.h"
#include "obs/drop_classifier.h"
#include "obs/frame_forensics.h"
#include "obs/metrics_registry.h"
#include "pipeline/compositor.h"
#include "pipeline/producer.h"
#include "sim/simulator.h"
#include "sim/tracing.h"
#include "surface/budget_arbiter.h"
#include "surface/surface_desc.h"
#include "vsyncsrc/vsync_distributor.h"

namespace dvs {

/** Device-level configuration of a multi-surface session. */
struct MultiSurfaceConfig {
    DeviceConfig device; ///< shared display (default Pixel 5)
    std::uint64_t seed = 1;

    /** Extra-buffer memory budget shared by all surfaces (§6.4), MB. */
    double budget_mb = 0.0;
    ArbiterPolicy policy = ArbiterPolicy::kWeighted;

    /** Per-surface SurfaceFlinger-style latch deadline (0 = direct). */
    Time latch_lead = 0;

    /**
     * Display composition cost charged to the shared GPU per refresh
     * that latched at least one layer: base + per_layer × layers.
     */
    Time compose_base = 200'000;      ///< 0.2 ms
    Time compose_per_layer = 100'000; ///< 0.1 ms per latched layer

    /** Gaussian HW-VSync jitter (0 = ideal panel). */
    Time vsync_jitter = 0;

    /** Run the per-surface and display-level invariant monitors. */
    bool monitor_invariants = true;

    /**
     * Arm the degradation watchdog on every aware surface's runtime.
     * Also armed automatically whenever a fault plan is installed.
     */
    bool watchdog = false;

    /** Fault plan injected into fault_surface; null = no injection. */
    std::shared_ptr<const FaultPlan> faults;
    int fault_surface = 0;

    /** Enable the metrics registry + forensic exports (see SystemConfig). */
    bool forensics = false;

    /** Metrics sampling cadence; 0 derives the device refresh period. */
    Time metrics_interval = 0;

    /**
     * Whether all surfaces contend for one shared device GPU (the
     * default, and the physics every existing golden pins) or each
     * surface renders on a private GPU. Private GPUs decouple the
     * surfaces' pipelines, which is what gives the parallel dispatcher
     * its lookahead — see sim_workers.
     */
    bool shared_gpu = true;

    /**
     * Parallel lane-dispatch worker count; 0 or 1 = serial. Requires
     * shared_gpu = false: a shared device GPU couples every surface's
     * frame pacing through its busy horizon, which collapses the
     * conservative lookahead window (see DESIGN.md §5g). When both are
     * set the system warns and falls back to serial dispatch — results
     * are identical either way.
     */
    int sim_workers = 0;

    MultiSurfaceConfig() : device(pixel5()) {}

    // ----- fluent named setters ----------------------------------------

    MultiSurfaceConfig &with_device(const DeviceConfig &d)
    {
        device = d;
        return *this;
    }
    MultiSurfaceConfig &with_seed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }
    MultiSurfaceConfig &with_budget_mb(double mb)
    {
        budget_mb = mb;
        return *this;
    }
    MultiSurfaceConfig &with_policy(ArbiterPolicy p)
    {
        policy = p;
        return *this;
    }
    MultiSurfaceConfig &with_latch_lead(Time lead)
    {
        latch_lead = lead;
        return *this;
    }
    MultiSurfaceConfig &with_compose_cost(Time base, Time per_layer)
    {
        compose_base = base;
        compose_per_layer = per_layer;
        return *this;
    }
    MultiSurfaceConfig &with_vsync_jitter(Time jitter)
    {
        vsync_jitter = jitter;
        return *this;
    }
    MultiSurfaceConfig &with_monitor_invariants(bool on)
    {
        monitor_invariants = on;
        return *this;
    }
    MultiSurfaceConfig &with_watchdog(bool on)
    {
        watchdog = on;
        return *this;
    }
    MultiSurfaceConfig &with_faults(std::shared_ptr<const FaultPlan> plan,
                                    int surface = 0)
    {
        faults = std::move(plan);
        fault_surface = surface;
        return *this;
    }
    MultiSurfaceConfig &with_forensics(bool on)
    {
        forensics = on;
        return *this;
    }
    MultiSurfaceConfig &with_metrics_interval(Time interval)
    {
        metrics_interval = interval;
        return *this;
    }
    MultiSurfaceConfig &with_shared_gpu(bool on)
    {
        shared_gpu = on;
        return *this;
    }
    MultiSurfaceConfig &with_sim_workers(int n)
    {
        sim_workers = n;
        return *this;
    }
};

/**
 * Display-level composition stage: counts the layers latched at each
 * refresh (via the per-surface present fences) and charges the shared
 * GPU the composition cost after the latch pass of every edge.
 */
class MultiSurfaceCompositor
{
  public:
    /**
     * Registers an HW-VSync listener; construct AFTER every Panel so the
     * charge lands once all layers of the edge have latched.
     */
    MultiSurfaceCompositor(HwVsyncGenerator &hw, ExecResource &gpu,
                           Time base_cost, Time per_layer_cost);

    /** Observe @p panel as one layer of the display. */
    void observe(Panel &panel);

    /** Refreshes that latched at least one layer (composition ran). */
    std::uint64_t compositions() const { return compositions_; }

    /** Total layers latched across all refreshes. */
    std::uint64_t layers_latched() const { return layers_latched_; }

    /** Most layers latched at one refresh. */
    int peak_layers() const { return peak_layers_; }

    /** GPU time consumed by composition (nominal, pre-fault). */
    Time gpu_time() const { return gpu_time_; }

  private:
    void on_edge(const VsyncEdge &edge);

    ExecResource &gpu_;
    Time base_cost_;
    Time per_layer_cost_;
    int latched_this_edge_ = 0;
    std::uint64_t compositions_ = 0;
    std::uint64_t layers_latched_ = 0;
    int peak_layers_ = 0;
    Time gpu_time_ = 0;
};

/**
 * The assembled multi-surface device. Construct from the surface
 * declarations and the device config, run(), read the report.
 */
class MultiSurfaceSystem
{
  public:
    MultiSurfaceSystem(std::vector<SurfaceDesc> descs,
                       const MultiSurfaceConfig &config);
    ~MultiSurfaceSystem();

    MultiSurfaceSystem(const MultiSurfaceSystem &) = delete;
    MultiSurfaceSystem &operator=(const MultiSurfaceSystem &) = delete;

    /**
     * Run every surface's scenario to completion (plus a drain margin)
     * and return the unified report. Surfaces start at their
     * SurfaceDesc::start_at and leave the arbiter's pool when their
     * scenario ends.
     */
    RunReport run();

    /** The unified result of the finished run. Valid only after run(). */
    RunReport report() const;

    // ----- component access -------------------------------------------

    std::size_t size() const { return surfaces_.size(); }
    const MultiSurfaceConfig &config() const { return config_; }
    Simulator &sim() { return sim_; }
    HwVsyncGenerator &hw_vsync() { return *hw_; }
    ExecResource &gpu() { return *gpu_; }
    BufferBudgetArbiter &arbiter() { return *arbiter_; }
    MultiSurfaceCompositor &compositor() { return *compositor_; }

    const SurfaceDesc &desc(int i) const { return surfaces_[i].desc; }
    BufferQueue &queue(int i) { return *surfaces_[i].queue; }
    Panel &panel(int i) { return *surfaces_[i].panel; }
    Producer &producer(int i) { return *surfaces_[i].producer; }
    FrameStats &stats(int i) { return *surfaces_[i].stats; }

    /** D-VSync components of surface @p i; null when oblivious. */
    DvsyncRuntime *runtime(int i) { return surfaces_[i].runtime.get(); }
    FramePreExecutor *fpe(int i) { return surfaces_[i].fpe.get(); }

    /** Per-surface monitor; null when monitoring is off. */
    InvariantMonitor *monitor(int i)
    {
        return surfaces_[i].monitor.get();
    }

    /** Cross-surface monitor; null when monitoring is off. */
    InvariantMonitor *display_monitor() { return display_monitor_.get(); }
    const InvariantMonitor *display_monitor() const
    {
        return display_monitor_.get();
    }

    /** Baseline queue capacity every surface starts with. */
    int base_buffers() const { return base_buffers_; }

    /**
     * Export the finished run as Chrome trace events: one set of tracks
     * per surface (UI/render/GPU stages, buffer-queue residency,
     * presents and drops), a queue-depth counter per surface, and the
     * arbiter's allocation history (extra buffers per surface and the
     * memory in use against the budget).
     */
    void export_trace(TraceLog &log) const;

    /** Drop classifier of surface @p i (always on). */
    const DropClassifier &classifier(int i) const
    {
        return *surfaces_[std::size_t(i)].classifier;
    }

    /** Metrics registry; null unless config.forensics is on. */
    MetricsRegistry *metrics() { return metrics_.get(); }

    /** Per-frame causal chains of every surface (post-run). */
    FrameForensics forensics() const;

    /** Write the forensics dump as JSON to @p path. */
    bool save_forensics(const std::string &path) const;

  private:
    struct Surface {
        SurfaceDesc desc;
        std::unique_ptr<BufferQueue> queue;
        std::unique_ptr<Panel> panel;
        std::unique_ptr<Compositor> latch;
        std::unique_ptr<Producer> producer;
        std::unique_ptr<FramePacer> vsync_pacer;
        std::unique_ptr<DvsyncRuntime> runtime;
        std::unique_ptr<DisplayTimeVirtualizer> dtv;
        std::unique_ptr<FramePreExecutor> fpe;
        std::unique_ptr<FrameStats> stats;
        std::unique_ptr<DropClassifier> classifier;
        std::unique_ptr<InvariantMonitor> monitor;
        bool degraded_seen = false; ///< last watchdog state forwarded
    };

    /** One arbiter decision, kept for the trace export. */
    struct AllocSample {
        Time at = 0;
        int surface = -1;   ///< -1 for budget (used_mb) samples
        int extra = 0;
        double used_mb = 0.0;
    };

    void apply_extra(int i, int extra);
    void on_surface_present(int i, const PresentEvent &ev);

    MultiSurfaceConfig config_;
    int base_buffers_;
    Simulator sim_;
    std::unique_ptr<HwVsyncGenerator> hw_;
    std::unique_ptr<VsyncDistributor> dist_;
    std::unique_ptr<ExecResource> gpu_;
    std::vector<Surface> surfaces_;
    std::unique_ptr<MultiSurfaceCompositor> compositor_;
    std::unique_ptr<InvariantMonitor> display_monitor_;
    std::unique_ptr<BufferBudgetArbiter> arbiter_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<MetricsRegistry> metrics_;
    std::vector<AllocSample> alloc_log_;
    Time session_end_ = 0; ///< last scenario's end time
    bool ran_ = false;
};

/**
 * One-call entry point: assemble @p descs under @p config, run, report.
 */
RunReport run_multi_surface(std::vector<SurfaceDesc> descs,
                            const MultiSurfaceConfig &config);

} // namespace dvs

#endif // DVS_SURFACE_MULTI_SURFACE_H
