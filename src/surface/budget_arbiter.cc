#include "surface/budget_arbiter.h"

#include <cmath>

#include "sim/logging.h"

namespace dvs {

const char *
to_string(ArbiterPolicy p)
{
    switch (p) {
      case ArbiterPolicy::kWeighted:
        return "Arbiter";
      case ArbiterPolicy::kEqualSplit:
        return "EqualSplit";
    }
    return "?";
}

BufferBudgetArbiter::BufferBudgetArbiter(double budget_mb,
                                         ArbiterPolicy policy)
    : budget_mb_(budget_mb), policy_(policy)
{
    if (budget_mb < 0 || std::isnan(budget_mb))
        fatal("arbiter budget must be >= 0 MB, got %g", budget_mb);
}

int
BufferBudgetArbiter::add_surface(const std::string &name, double buffer_mb,
                                 int max_extra, double weight,
                                 bool dvsync_aware)
{
    if (buffer_mb <= 0)
        fatal("surface %s: buffer_mb must be > 0, got %g", name.c_str(),
              buffer_mb);
    if (max_extra < 0)
        fatal("surface %s: max_extra must be >= 0, got %d", name.c_str(),
              max_extra);
    Slot s;
    s.name = name;
    s.buffer_mb = buffer_mb;
    s.max_extra = max_extra;
    s.weight = weight;
    s.aware = dvsync_aware;
    surfaces_.push_back(std::move(s));
    return int(surfaces_.size()) - 1;
}

const BufferBudgetArbiter::Slot &
BufferBudgetArbiter::slot(int id) const
{
    if (id < 0 || id >= int(surfaces_.size()))
        panic("arbiter: unknown surface id %d", id);
    return surfaces_[std::size_t(id)];
}

int
BufferBudgetArbiter::extra_of(int id) const
{
    return slot(id).extra;
}

int
BufferBudgetArbiter::peak_extra_of(int id) const
{
    return slot(id).peak_extra;
}

bool
BufferBudgetArbiter::eligible(int id) const
{
    const Slot &s = slot(id);
    return s.aware && s.active && !s.degraded && s.max_extra > 0;
}

bool
BufferBudgetArbiter::active(int id) const
{
    return slot(id).active;
}

bool
BufferBudgetArbiter::degraded(int id) const
{
    return slot(id).degraded;
}

double
BufferBudgetArbiter::used_mb() const
{
    double used = 0.0;
    for (const Slot &s : surfaces_) {
        if (s.active)
            used += double(s.extra) * s.buffer_mb;
    }
    return used;
}

std::vector<int>
BufferBudgetArbiter::allocate() const
{
    std::vector<int> extra(surfaces_.size(), 0);

    if (policy_ == ArbiterPolicy::kEqualSplit) {
        // The naive baseline: one equal memory share per active surface,
        // demand- and awareness-blind. A share that lands on an
        // oblivious surface still buys buffers (a deeper FIFO), but the
        // memory cannot feed pre-rendering — that waste is exactly what
        // the weighted arbiter avoids.
        int n_active = 0;
        for (const Slot &s : surfaces_)
            n_active += s.active ? 1 : 0;
        if (n_active == 0)
            return extra;
        const double share = budget_mb_ / double(n_active);
        for (std::size_t i = 0; i < surfaces_.size(); ++i) {
            const Slot &s = surfaces_[i];
            if (!s.active)
                continue;
            const int affordable = int(share / s.buffer_mb);
            extra[i] = std::min(s.max_extra, affordable);
        }
        return extra;
    }

    // Weighted greedy: grant one buffer at a time to the eligible
    // surface with the highest weight per MB that still fits. Ties break
    // toward the lower id, so allocation is deterministic.
    double used = 0.0;
    for (;;) {
        int best = -1;
        double best_score = 0.0;
        for (std::size_t i = 0; i < surfaces_.size(); ++i) {
            const Slot &s = surfaces_[i];
            if (!s.active || !s.aware || s.degraded)
                continue;
            if (extra[i] >= s.max_extra)
                continue;
            if (used + s.buffer_mb > budget_mb_ + 1e-9)
                continue;
            const double score = s.weight / s.buffer_mb;
            if (best < 0 || score > best_score) {
                best = int(i);
                best_score = score;
            }
        }
        if (best < 0)
            break;
        ++extra[std::size_t(best)];
        used += surfaces_[std::size_t(best)].buffer_mb;
    }
    return extra;
}

void
BufferBudgetArbiter::arbitrate(Time now)
{
    const std::vector<int> extra = allocate();
    for (std::size_t i = 0; i < surfaces_.size(); ++i) {
        Slot &s = surfaces_[i];
        s.peak_extra = std::max(s.peak_extra, extra[i]);
        if (extra[i] == s.extra)
            continue;
        s.extra = extra[i];
        if (apply_)
            apply_(int(i), s.extra);
    }
    ++rearbitrations_;
    peak_used_mb_ = std::max(peak_used_mb_, used_mb());
    if (check_)
        check_(now, used_mb(), budget_mb_);
}

void
BufferBudgetArbiter::on_surface_exit(int id, Time now)
{
    slot(id); // bounds check
    Slot &s = surfaces_[std::size_t(id)];
    if (!s.active)
        return;
    s.active = false;
    // The exited surface's grant returns to the pool; its queue is not
    // resized (nothing renders into it anymore, and its slots drain as
    // the display consumes them).
    s.extra = 0;
    arbitrate(now);
}

void
BufferBudgetArbiter::on_surface_degraded(int id, bool degraded, Time now)
{
    slot(id); // bounds check
    Slot &s = surfaces_[std::size_t(id)];
    if (s.degraded == degraded)
        return;
    s.degraded = degraded;
    arbitrate(now);
}

} // namespace dvs
