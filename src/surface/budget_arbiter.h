/**
 * @file
 * BufferBudgetArbiter: device-wide extra-buffer memory arbitration.
 *
 * §6.4 prices D-VSync's pre-rendering at ~10-15 MB of buffer memory per
 * extra buffer *per surface*; on a device running several surfaces that
 * memory comes out of one budget, so each surface's pre-render depth
 * trades off against every other surface's. The arbiter owns that
 * trade-off: it allocates extra buffers (beyond each surface's baseline
 * queue capacity) under a device-wide budget and re-arbitrates online
 * when a surface appears, exits, or is degraded to the VSync fallback by
 * the runtime watchdog.
 *
 * Two policies, so the bench can quantify what arbitration buys:
 *  - kWeighted (the arbiter proper): extras go one buffer at a time to
 *    the eligible surface with the highest weight-per-MB — D-VSync-aware,
 *    active, not degraded, under its cap, and fitting the remaining
 *    budget. Oblivious surfaces never receive extras (they cannot
 *    pre-render into them).
 *  - kEqualSplit (the naive baseline): the budget is divided equally
 *    among active surfaces regardless of awareness or demand; each
 *    surface converts its share into as many buffers as fit. Memory
 *    granted to an oblivious or light surface is simply wasted.
 *
 * Allocation is deterministic: surfaces are considered in registration
 * order and ties break toward the lower id. The arbiter never exceeds
 * the budget; an InvariantMonitor hook re-checks that after every pass.
 */

#ifndef DVS_SURFACE_BUDGET_ARBITER_H
#define DVS_SURFACE_BUDGET_ARBITER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dvs {

/** Allocation policy of the arbiter. */
enum class ArbiterPolicy {
    kWeighted,   ///< demand-weighted greedy (the arbiter proper)
    kEqualSplit, ///< naive equal division baseline
};

const char *to_string(ArbiterPolicy p);

/**
 * Allocates extra pre-render buffers across surfaces under one memory
 * budget. Pure decision logic: applying an allocation (resizing queues,
 * reconfiguring FPE limits) happens through the apply callback, so the
 * arbiter is unit-testable without a pipeline.
 */
class BufferBudgetArbiter
{
  public:
    /** Invoked for every surface whose extra-buffer grant changed. */
    using ApplyFn = std::function<void(int surface, int extra_buffers)>;

    /** Invoked after every pass with the resulting memory use. */
    using BudgetCheck =
        std::function<void(Time now, double used_mb, double budget_mb)>;

    BufferBudgetArbiter(double budget_mb, ArbiterPolicy policy);

    /**
     * Register a surface.
     * @return its id (registration order, dense from 0).
     */
    int add_surface(const std::string &name, double buffer_mb,
                    int max_extra, double weight, bool dvsync_aware);

    void set_apply(ApplyFn fn) { apply_ = std::move(fn); }
    void set_budget_check(BudgetCheck fn) { check_ = std::move(fn); }

    /**
     * Run one allocation pass and apply every changed grant. Call once
     * after registration, then on every lifecycle event (the exit /
     * degradation entry points below call it themselves).
     */
    void arbitrate(Time now);

    /** Surface @p id left the display; its extras return to the pool. */
    void on_surface_exit(int id, Time now);

    /**
     * Surface @p id was degraded to the VSync fallback (true) or
     * re-promoted (false) by the runtime watchdog. A degraded surface
     * cannot pre-render, so its extras return to the pool until it
     * recovers.
     */
    void on_surface_degraded(int id, bool degraded, Time now);

    // ----- introspection ----------------------------------------------

    double budget_mb() const { return budget_mb_; }
    ArbiterPolicy policy() const { return policy_; }
    std::size_t size() const { return surfaces_.size(); }

    /** Extra buffers currently granted to surface @p id. */
    int extra_of(int id) const;

    /** Highest grant surface @p id ever held (reporting: by run end
     *  every surface has exited and current grants read zero). */
    int peak_extra_of(int id) const;

    /** Extra-buffer memory currently in use across active surfaces. */
    double used_mb() const;

    /** Highest memory use any allocation pass reached. */
    double peak_used_mb() const { return peak_used_mb_; }

    /** Whether surface @p id can currently hold extras. */
    bool eligible(int id) const;

    bool active(int id) const;
    bool degraded(int id) const;

    /** Allocation passes run (including the initial one). */
    std::uint64_t rearbitrations() const { return rearbitrations_; }

  private:
    struct Slot {
        std::string name;
        double buffer_mb = 12.0;
        int max_extra = 0;
        double weight = 1.0;
        bool aware = true;
        bool active = true;
        bool degraded = false;
        int extra = 0;
        int peak_extra = 0;
    };

    const Slot &slot(int id) const;
    std::vector<int> allocate() const;

    double budget_mb_;
    ArbiterPolicy policy_;
    std::vector<Slot> surfaces_;
    ApplyFn apply_;
    BudgetCheck check_;
    std::uint64_t rearbitrations_ = 0;
    double peak_used_mb_ = 0.0;
};

} // namespace dvs

#endif // DVS_SURFACE_BUDGET_ARBITER_H
