#include "input/touch_event.h"

#include <algorithm>
#include <cassert>

#include "sim/logging.h"

namespace dvs {

TouchStream::TouchStream(std::vector<TouchEvent> events)
    : events_(std::move(events))
{
    assert(std::is_sorted(events_.begin(), events_.end(),
                          [](const TouchEvent &a, const TouchEvent &b) {
                              return a.timestamp < b.timestamp;
                          }));
}

void
TouchStream::push(const TouchEvent &ev)
{
    if (!events_.empty() && ev.timestamp < events_.back().timestamp)
        panic("touch events must be pushed in time order");
    events_.push_back(ev);
}

Time
TouchStream::start_time() const
{
    return events_.empty() ? kTimeNone : events_.front().timestamp;
}

Time
TouchStream::end_time() const
{
    return events_.empty() ? kTimeNone : events_.back().timestamp;
}

const TouchEvent *
TouchStream::latest_at(Time t) const
{
    auto it = std::upper_bound(
        events_.begin(), events_.end(), t,
        [](Time lhs, const TouchEvent &ev) { return lhs < ev.timestamp; });
    if (it == events_.begin())
        return nullptr;
    return &*std::prev(it);
}

std::vector<TouchEvent>
TouchStream::window(Time from, Time to) const
{
    std::vector<TouchEvent> out;
    for (const TouchEvent &ev : events_) {
        if (ev.timestamp > from && ev.timestamp <= to)
            out.push_back(ev);
    }
    return out;
}

TouchEvent
TouchStream::interpolate(Time t) const
{
    if (events_.empty())
        return TouchEvent{};
    if (t <= events_.front().timestamp)
        return events_.front();
    if (t >= events_.back().timestamp)
        return events_.back();
    auto hi = std::lower_bound(
        events_.begin(), events_.end(), t,
        [](const TouchEvent &ev, Time rhs) { return ev.timestamp < rhs; });
    auto lo = std::prev(hi);
    const double f =
        double(t - lo->timestamp) / double(hi->timestamp - lo->timestamp);
    TouchEvent ev = *lo;
    ev.timestamp = t;
    ev.x = lo->x + f * (hi->x - lo->x);
    ev.y = lo->y + f * (hi->y - lo->y);
    ev.pinch_distance =
        lo->pinch_distance + f * (hi->pinch_distance - lo->pinch_distance);
    return ev;
}

} // namespace dvs
