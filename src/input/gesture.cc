#include "input/gesture.h"

#include <cmath>

#include "sim/logging.h"

namespace dvs {
namespace {

double
noise(Rng *rng, double amount)
{
    return (rng && amount > 0) ? rng->normal(0.0, amount) : 0.0;
}

/** Generate samples at the report rate over [start, start+duration]. */
template <typename PosFn>
TouchStream
sample_gesture(const GestureTiming &t, PosFn &&fn)
{
    if (t.duration <= 0)
        fatal("gesture duration must be positive");
    TouchStream stream;
    const Time step = Time(1e9 / t.report_hz);
    for (Time ts = t.start;; ts += step) {
        const bool last = ts >= t.start + t.duration;
        const Time clamped = last ? t.start + t.duration : ts;
        TouchEvent ev = fn(double(clamped - t.start) / double(t.duration));
        ev.timestamp = clamped;
        ev.phase = clamped == t.start
                       ? TouchPhase::kDown
                       : (last ? TouchPhase::kUp : TouchPhase::kMove);
        stream.push(ev);
        if (last)
            break;
    }
    return stream;
}

} // namespace

TouchStream
make_swipe(const GestureTiming &timing, double start_y, double distance_px,
           Rng *noise_rng)
{
    return sample_gesture(timing, [&](double f) {
        // Ease-out (quadratic): fast at touch, decelerating to lift-off.
        const double progress = 1.0 - (1.0 - f) * (1.0 - f);
        TouchEvent ev;
        ev.x = 540.0;
        ev.y = start_y - distance_px * progress +
               noise(noise_rng, timing.noise_px);
        return ev;
    });
}

TouchStream
make_drag(const GestureTiming &timing, double start_y,
          double velocity_px_per_s, Rng *noise_rng)
{
    return sample_gesture(timing, [&](double f) {
        const double t_s = f * to_seconds(timing.duration);
        TouchEvent ev;
        ev.x = 540.0;
        ev.y = start_y - velocity_px_per_s * t_s +
               noise(noise_rng, timing.noise_px);
        return ev;
    });
}

TouchStream
make_pinch(const GestureTiming &timing, double start_distance,
           double end_distance, Rng *noise_rng)
{
    return sample_gesture(timing, [&](double f) {
        // Smoothstep ease-in-out.
        const double s = f * f * (3.0 - 2.0 * f);
        TouchEvent ev;
        ev.x = 540.0;
        ev.y = 1200.0;
        ev.pinch_distance = start_distance +
                            (end_distance - start_distance) * s +
                            noise(noise_rng, timing.noise_px);
        return ev;
    });
}

} // namespace dvs
