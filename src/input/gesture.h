/**
 * @file
 * Gesture synthesizer: generates realistic touch-event streams.
 *
 * The benches drive interactive scenarios with synthetic gestures — the
 * upward swipe of Fig. 7, the twice-a-second page swipes of §6.1, and the
 * two-finger pinch zoom of the §6.5 map case study.
 */

#ifndef DVS_INPUT_GESTURE_H
#define DVS_INPUT_GESTURE_H

#include "input/touch_event.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dvs {

/** Parameters shared by the gesture builders. */
struct GestureTiming {
    Time start = 0;
    Time duration = 0;
    /** Touch panel report rate. */
    double report_hz = 120.0;
    /** Gaussian positional noise (px) applied to every sample. */
    double noise_px = 0.0;
};

/**
 * A vertical swipe: the finger travels @p distance_px upward (negative
 * for downward) with an ease-out velocity profile, as a natural flick
 * decelerates toward lift-off.
 */
TouchStream make_swipe(const GestureTiming &timing, double start_y,
                       double distance_px, Rng *noise_rng = nullptr);

/**
 * A constant-velocity drag, used for latency visualization (Fig. 7)
 * where the displacement between finger and content is measured.
 */
TouchStream make_drag(const GestureTiming &timing, double start_y,
                      double velocity_px_per_s, Rng *noise_rng = nullptr);

/**
 * A two-finger pinch: fingertip distance grows from @p start_distance to
 * @p end_distance with a smooth (ease-in-out) profile; pinch_distance
 * carries the state the map app's ZDP predicts.
 */
TouchStream make_pinch(const GestureTiming &timing, double start_distance,
                       double end_distance, Rng *noise_rng = nullptr);

} // namespace dvs

#endif // DVS_INPUT_GESTURE_H
