/**
 * @file
 * Touch input events.
 *
 * Input is modeled as a timestamped stream of touch samples at a fixed
 * report rate (touch panels commonly report at 120–240 Hz). For pinch
 * gestures the salient state is the distance between the two fingertips
 * (what the map app's ZDP predicts, §6.5); for swipes it is the y
 * coordinate of the finger.
 */

#ifndef DVS_INPUT_TOUCH_EVENT_H
#define DVS_INPUT_TOUCH_EVENT_H

#include <vector>

#include "sim/time.h"

namespace dvs {

/** Phase of a touch sample within a gesture. */
enum class TouchPhase {
    kDown,
    kMove,
    kUp,
};

/** One report from the touch panel. */
struct TouchEvent {
    Time timestamp = 0;
    TouchPhase phase = TouchPhase::kMove;
    double x = 0.0; ///< px
    double y = 0.0; ///< px
    /** Two-finger distance in px (pinch gestures; 0 for single touch). */
    double pinch_distance = 0.0;
};

/**
 * The salient scalar of a touch sample: the pinch distance for two-finger
 * gestures, otherwise the y coordinate. This is the value interactive
 * frames render and the value IPL predicts.
 */
inline double
touch_value(const TouchEvent &ev)
{
    return ev.pinch_distance != 0.0 ? ev.pinch_distance : ev.y;
}

/**
 * A recorded or synthesized stream of touch events, ordered by timestamp.
 * Provides the "latest event at or before t" query the UI framework uses
 * when rendering an interactive frame.
 */
class TouchStream
{
  public:
    TouchStream() = default;
    explicit TouchStream(std::vector<TouchEvent> events);

    void push(const TouchEvent &ev);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<TouchEvent> &events() const { return events_; }

    /** First event time (kTimeNone when empty). */
    Time start_time() const;

    /** Last event time (kTimeNone when empty). */
    Time end_time() const;

    /**
     * The most recent event at or before @p t.
     * @return nullptr when no event has happened by @p t.
     */
    const TouchEvent *latest_at(Time t) const;

    /**
     * All events in (from, to], the window IPL uses to fit its curves.
     */
    std::vector<TouchEvent> window(Time from, Time to) const;

    /**
     * Ground-truth state at @p t by linear interpolation between samples
     * (clamped at the ends). Used to score prediction error.
     */
    TouchEvent interpolate(Time t) const;

  private:
    std::vector<TouchEvent> events_;
};

} // namespace dvs

#endif // DVS_INPUT_TOUCH_EVENT_H
