#include "workload/game_traces.h"

#include <cstdio>

#include "workload/app_profiles.h"
#include "workload/distributions.h"

namespace dvs {

const std::vector<GameInfo> &
game_list()
{
    static const std::vector<GameInfo> games = {
        {"Honor of Kings (UI)", 60.0, 1.45, true},
        {"Identity V (UI)", 30.0, 1.30, true},
        {"Game for Peace (UI)", 30.0, 1.20, true},
        {"RTK Mobile", 30.0, 1.10, false},
        {"CF: Legends (UI)", 60.0, 1.00, true},
        {"Survive", 60.0, 0.95, false},
        {"8 Ball Pool", 60.0, 0.90, false},
        {"Happy Poker", 30.0, 0.80, false},
        {"Thief Puzzle", 60.0, 0.70, false},
        {"Teamfight Tactics", 30.0, 0.65, false},
        {"TK: Conspiracy", 30.0, 0.60, false},
        {"FWJ", 60.0, 0.50, false},
        {"Original Legends", 60.0, 0.45, false},
        {"PvZ 2", 30.0, 0.35, false},
        {"LTK", 90.0, 0.25, false},
    };
    return games;
}

FrameTrace
make_game_trace(const GameInfo &game, Time duration, std::uint64_t seed)
{
    // Game frames are render-dominated (scene rasterization on the GPU);
    // UI-overlay traces carry a slightly larger CPU share for the HUD.
    ProfileSpec spec;
    spec.name = game.name;
    spec.paper_fdps = game.paper_fdps;
    spec.heavy_per_sec = game.paper_fdps * 1.75;
    spec.heavy_min_periods = 1.15;
    spec.heavy_max_periods = game.ui_overlay ? 3.2 : 2.8;
    spec.heavy_alpha = 1.5;
    spec.heavy_burst = game.ui_overlay ? 0.2 : 0.1;
    spec.short_mean_periods = 0.55; // games run closer to the deadline
    spec.short_sigma = 0.25;
    spec.ui_fraction = game.ui_overlay ? 0.25 : 0.12;

    const PowerLawCostModel model(make_params(spec, game.rate_hz), seed);

    FrameTrace trace;
    trace.rate_hz = game.rate_hz;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s @%gHz", game.name, game.rate_hz);
    trace.name = buf;

    const std::int64_t frames =
        std::int64_t(to_seconds(duration) * game.rate_hz);
    trace.frames.reserve(std::size_t(frames));
    for (std::int64_t i = 0; i < frames; ++i)
        trace.frames.push_back(model.cost_for(i));
    return trace;
}

} // namespace dvs
