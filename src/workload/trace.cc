#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.h"

namespace dvs {

std::string
FrameTrace::to_csv() const
{
    std::ostringstream out;
    out << "# trace: " << name << "\n";
    out << "# rate_hz: " << rate_hz << "\n";
    out << "ui_us,render_us,gpu_us\n";
    char buf[96];
    for (const FrameCost &f : frames) {
        std::snprintf(buf, sizeof(buf), "%.3f,%.3f,%.3f\n",
                      to_us(f.ui_time), to_us(f.render_time),
                      to_us(f.gpu_time));
        out << buf;
    }
    return out.str();
}

FrameTrace
FrameTrace::from_csv(const std::string &csv)
{
    FrameTrace t;
    std::istringstream in(csv);
    std::string line;
    long line_no = 0;
    bool saw_header = false;
    bool warned_missing_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        // Tolerate CRLF line endings: getline keeps the '\r' of a
        // Windows-saved trace, which would otherwise turn every line —
        // including the trailing blank one — into a "malformed row".
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line.rfind("# trace: ", 0) == 0) {
            t.name = line.substr(9);
            continue;
        }
        if (line.rfind("# rate_hz: ", 0) == 0) {
            t.rate_hz = std::atof(line.c_str() + 11);
            continue;
        }
        if (line.rfind("ui_us", 0) == 0) {
            saw_header = true;
            continue;
        }
        if (line[0] == '#')
            continue;
        if (!saw_header && !warned_missing_header) {
            warned_missing_header = true;
            warn("trace line %ld: data row before ui_us header", line_no);
        }
        double ui_us = 0, render_us = 0, gpu_us = 0;
        const int fields = std::sscanf(line.c_str(), "%lf,%lf,%lf",
                                       &ui_us, &render_us, &gpu_us);
        if (fields < 2) {
            warn("trace line %ld: malformed row ignored: %s", line_no,
                 line.c_str());
            continue;
        }
        t.frames.push_back(FrameCost{from_us(ui_us), from_us(render_us),
                                     from_us(gpu_us)});
    }
    return t;
}

bool
FrameTrace::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << to_csv();
    return bool(out);
}

FrameTrace
FrameTrace::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        warn("cannot open trace file %s", path.c_str());
        return {};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return from_csv(buf.str());
}

TraceCostModel::TraceCostModel(FrameTrace trace, TraceIndexMode mode)
    : trace_(std::move(trace)), mode_(mode)
{
    if (trace_.frames.empty())
        fatal("TraceCostModel needs a non-empty trace");
}

FrameCost
TraceCostModel::cost_for(std::int64_t nominal_index) const
{
    const std::size_t n = trace_.frames.size();
    if (mode_ == TraceIndexMode::kSegmentSlot) {
        const std::int64_t slot = nominal_index % kCostIndexStride;
        const std::size_t i =
            std::min(std::size_t(slot), n - 1); // clamp past the capture
        return trace_.frames[i];
    }
    const std::size_t i = std::size_t(nominal_index % std::int64_t(n));
    return trace_.frames[i];
}

} // namespace dvs
