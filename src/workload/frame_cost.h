/**
 * @file
 * Per-frame execution cost and the cost-model interface.
 *
 * The paper's core observation (§3.2) is that frame rendering time follows
 * a power-law distribution: ≥95% of frames are short, ≤5% are heavily
 * loaded key frames. Cost models generate per-frame (UI time, render time)
 * pairs. Costs are a deterministic function of the frame's *nominal index*
 * so the exact same series of workloads can be replayed under VSync and
 * D-VSync (the Fig. 10 comparison) even though the two architectures
 * execute different subsets of frames at different times.
 */

#ifndef DVS_WORKLOAD_FRAME_COST_H
#define DVS_WORKLOAD_FRAME_COST_H

#include <cstdint>
#include <memory>

#include "sim/time.h"

namespace dvs {

/**
 * Stride between the cost-index ranges of consecutive scenario segments:
 * segment i's slot s maps to cost index s + i * kCostIndexStride, so
 * repeated segments (e.g. successive swipes) sample fresh costs while the
 * mapping stays deterministic for VSync/D-VSync comparability.
 */
inline constexpr std::int64_t kCostIndexStride = 1 << 20;

/** Execution cost of one frame, split across pipeline stages. */
struct FrameCost {
    Time ui_time = 0;     ///< app UI-thread logic
    Time render_time = 0; ///< render service / render thread (CPU)
    Time gpu_time = 0;    ///< GPU execution after command submission

    Time total() const { return ui_time + render_time + gpu_time; }

    friend bool operator==(const FrameCost &, const FrameCost &) = default;
};

/**
 * Generates frame costs keyed by nominal frame index.
 *
 * Implementations must be pure functions of (model state, index): querying
 * the same index repeatedly returns the same cost.
 */
class FrameCostModel
{
  public:
    virtual ~FrameCostModel() = default;

    /** Cost of the frame occupying nominal slot @p nominal_index. */
    virtual FrameCost cost_for(std::int64_t nominal_index) const = 0;
};

/** Every frame costs the same. Useful for tests and microbenchmarks. */
class ConstantCostModel : public FrameCostModel
{
  public:
    explicit ConstantCostModel(FrameCost cost) : cost_(cost) {}

    ConstantCostModel(Time ui_time, Time render_time)
        : cost_{ui_time, render_time}
    {}

    FrameCost cost_for(std::int64_t) const override { return cost_; }

  private:
    FrameCost cost_;
};

/**
 * Deterministic spikes: every @p spike_interval frames the cost jumps to
 * @p spike, otherwise @p base. Models periodic key frames such as a map
 * loading a new vector-tile level while zooming (§6.5).
 */
class PeriodicSpikeCostModel : public FrameCostModel
{
  public:
    PeriodicSpikeCostModel(FrameCost base, FrameCost spike,
                           std::int64_t spike_interval,
                           std::int64_t spike_phase = 0);

    FrameCost cost_for(std::int64_t nominal_index) const override;

  private:
    FrameCost base_;
    FrameCost spike_;
    std::int64_t interval_;
    std::int64_t phase_;
};

} // namespace dvs

#endif // DVS_WORKLOAD_FRAME_COST_H
