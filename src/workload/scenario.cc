#include "workload/scenario.h"

#include "sim/logging.h"

namespace dvs {

const char *
to_string(SegmentKind k)
{
    switch (k) {
      case SegmentKind::kAnimation:
        return "animation";
      case SegmentKind::kInteraction:
        return "interaction";
      case SegmentKind::kRealtime:
        return "realtime";
      case SegmentKind::kIdle:
        return "idle";
    }
    return "?";
}

Scenario &
Scenario::animate(Time duration, std::shared_ptr<const FrameCostModel> cost,
                  std::string label)
{
    if (!cost)
        fatal("animation segments need a cost model");
    Segment s;
    s.kind = SegmentKind::kAnimation;
    s.duration = duration;
    s.cost = std::move(cost);
    s.label = std::move(label);
    segments_.push_back(std::move(s));
    return *this;
}

Scenario &
Scenario::interact(std::shared_ptr<const TouchStream> touch,
                   std::shared_ptr<const FrameCostModel> cost,
                   std::string label)
{
    if (!touch || touch->empty())
        fatal("interaction segments need a non-empty touch stream");
    if (!cost)
        fatal("interaction segments need a cost model");
    Segment s;
    s.kind = SegmentKind::kInteraction;
    s.duration = touch->end_time() - touch->start_time();
    s.touch = std::move(touch);
    s.cost = std::move(cost);
    s.label = std::move(label);
    segments_.push_back(std::move(s));
    return *this;
}

Scenario &
Scenario::realtime(Time duration, std::shared_ptr<const FrameCostModel> cost,
                   std::string label)
{
    if (!cost)
        fatal("realtime segments need a cost model");
    Segment s;
    s.kind = SegmentKind::kRealtime;
    s.duration = duration;
    s.cost = std::move(cost);
    s.label = std::move(label);
    segments_.push_back(std::move(s));
    return *this;
}

Scenario &
Scenario::idle(Time duration)
{
    Segment s;
    s.kind = SegmentKind::kIdle;
    s.duration = duration;
    s.label = "idle";
    segments_.push_back(std::move(s));
    return *this;
}

Time
Scenario::total_duration() const
{
    Time t = 0;
    for (const Segment &s : segments_)
        t += s.duration;
    return t;
}

Time
Scenario::segment_start(std::size_t i) const
{
    Time t = 0;
    for (std::size_t k = 0; k < i && k < segments_.size(); ++k)
        t += segments_[k].duration;
    return t;
}

int
Scenario::segment_at(Time t) const
{
    Time start = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        if (t >= start && t < start + segments_[i].duration)
            return int(i);
        start += segments_[i].duration;
    }
    return -1;
}

Time
Scenario::active_duration() const
{
    Time t = 0;
    for (const Segment &s : segments_) {
        if (s.produces_frames())
            t += s.duration;
    }
    return t;
}

Scenario
make_swipe_scenario(const std::string &name, int num_swipes,
                    Time swipe_period,
                    std::shared_ptr<const FrameCostModel> cost,
                    double active_fraction)
{
    Scenario sc(name);
    const Time active = Time(double(swipe_period) * active_fraction);
    const Time rest = swipe_period - active;
    for (int i = 0; i < num_swipes; ++i) {
        sc.animate(active, cost, "fling");
        if (rest > 0)
            sc.idle(rest);
    }
    return sc;
}

} // namespace dvs
