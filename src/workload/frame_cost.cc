#include "workload/frame_cost.h"

#include "sim/logging.h"

namespace dvs {

PeriodicSpikeCostModel::PeriodicSpikeCostModel(FrameCost base,
                                               FrameCost spike,
                                               std::int64_t spike_interval,
                                               std::int64_t spike_phase)
    : base_(base), spike_(spike), interval_(spike_interval),
      phase_(spike_phase)
{
    if (interval_ <= 0)
        fatal("spike interval must be positive");
}

FrameCost
PeriodicSpikeCostModel::cost_for(std::int64_t nominal_index) const
{
    if ((nominal_index + phase_) % interval_ == 0)
        return spike_;
    return base_;
}

} // namespace dvs
