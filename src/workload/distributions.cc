#include "workload/distributions.h"

#include <cmath>

#include "sim/logging.h"
#include "sim/random.h"

namespace dvs {

std::uint64_t
hash_index(std::uint64_t seed, std::int64_t index)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (std::uint64_t(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

PowerLawCostModel::PowerLawCostModel(const PowerLawParams &params,
                                     std::uint64_t seed)
    : params_(params), seed_(seed)
{
    if (params.heavy_prob < 0 || params.heavy_prob > 1)
        fatal("heavy_prob must be in [0,1]");
    if (params.heavy_min_ms >= params.heavy_max_ms)
        fatal("heavy_min_ms must be < heavy_max_ms");
    if (params.ui_fraction < 0 || params.ui_fraction > 1)
        fatal("ui_fraction must be in [0,1]");
}

bool
PowerLawCostModel::is_heavy(std::int64_t nominal_index) const
{
    // The heavy decision for a slot must be stable, so it uses its own
    // sub-stream independent of the magnitude sampling.
    Rng rng(hash_index(seed_ ^ 0xabcdefULL, nominal_index));
    if (rng.chance(params_.heavy_prob))
        return true;
    if (params_.heavy_burst_prob > 0 && nominal_index > 0) {
        Rng prev(hash_index(seed_ ^ 0xabcdefULL, nominal_index - 1));
        if (prev.chance(params_.heavy_prob)) {
            // Burst continuation rides on this slot's stream.
            return rng.chance(params_.heavy_burst_prob);
        }
    }
    return false;
}

double
PowerLawCostModel::sample_ms(std::int64_t nominal_index) const
{
    Rng rng(hash_index(seed_, nominal_index));
    // Lognormal with mean short_mean_ms: mu = ln(mean) - sigma^2/2.
    const double mu =
        std::log(params_.short_mean_ms) -
        params_.short_sigma * params_.short_sigma / 2.0;
    double ms = rng.lognormal(mu, params_.short_sigma);
    if (is_heavy(nominal_index)) {
        ms += rng.bounded_pareto(params_.heavy_alpha, params_.heavy_min_ms,
                                 params_.heavy_max_ms);
    }
    return ms;
}

FrameCost
PowerLawCostModel::cost_for(std::int64_t nominal_index) const
{
    const double total_ms = sample_ms(nominal_index);
    FrameCost c;
    c.ui_time = from_ms(total_ms * params_.ui_fraction);
    c.render_time = from_ms(total_ms * (1.0 - params_.ui_fraction));
    return c;
}

} // namespace dvs
