/**
 * @file
 * Scenarios: scripted sequences of rendering activity.
 *
 * A scenario is the simulator's stand-in for the paper's automated test
 * scripts (Appendix A): an ordered list of segments, each of which is a
 * deterministic animation, a user interaction (with a gesture stream), or
 * idle time. Segments carry the cost model of their frames and the
 * pre-renderability tag the UI framework would attach (§4.3).
 */

#ifndef DVS_WORKLOAD_SCENARIO_H
#define DVS_WORKLOAD_SCENARIO_H

#include <memory>
#include <string>
#include <vector>

#include "input/touch_event.h"
#include "sim/time.h"
#include "workload/frame_cost.h"

namespace dvs {

/** Classification of a segment, mirroring §4.2 (Fig. 9). */
enum class SegmentKind {
    kAnimation,   ///< deterministic, pre-renderable by default (85%)
    kInteraction, ///< predictable with IPL, D-VSync-extensible (10%)
    kRealtime,    ///< sensor/online data; D-VSync stays off (5%)
    kIdle,        ///< no content due; screen static
};

const char *to_string(SegmentKind k);

/** One contiguous stretch of rendering activity. */
struct Segment {
    SegmentKind kind = SegmentKind::kIdle;
    Time duration = 0;
    std::string label;

    /** Frame costs (null for idle segments). */
    std::shared_ptr<const FrameCostModel> cost;

    /** Touch stream for interactions (timestamps relative to segment). */
    std::shared_ptr<const TouchStream> touch;

    /** Frames due: animations/interactions owe one frame per period. */
    bool produces_frames() const { return kind != SegmentKind::kIdle; }

    /** Pre-renderable without app cooperation (the oblivious channel). */
    bool deterministic() const { return kind == SegmentKind::kAnimation; }
};

/**
 * An ordered list of segments with query helpers. Segment start times are
 * cumulative from the scenario start.
 */
class Scenario
{
  public:
    Scenario() = default;
    explicit Scenario(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append a deterministic animation segment. */
    Scenario &animate(Time duration,
                      std::shared_ptr<const FrameCostModel> cost,
                      std::string label = "anim");

    /** Append an interactive segment driven by @p touch. */
    Scenario &interact(std::shared_ptr<const TouchStream> touch,
                       std::shared_ptr<const FrameCostModel> cost,
                       std::string label = "touch");

    /** Append a real-time (non-decouplable) segment. */
    Scenario &realtime(Time duration,
                       std::shared_ptr<const FrameCostModel> cost,
                       std::string label = "realtime");

    /** Append idle time. */
    Scenario &idle(Time duration);

    const std::vector<Segment> &segments() const { return segments_; }
    std::size_t size() const { return segments_.size(); }
    bool empty() const { return segments_.empty(); }

    /** Total scripted duration. */
    Time total_duration() const;

    /** Start time of segment @p i relative to the scenario start. */
    Time segment_start(std::size_t i) const;

    /** Index of the segment covering @p t, or -1 when out of range. */
    int segment_at(Time t) const;

    /** Sum of durations of frame-producing segments. */
    Time active_duration() const;

  private:
    std::string name_;
    std::vector<Segment> segments_;
};

/**
 * Convenience factory for the §6.1 app methodology: swiping the page
 * twice a second, each swipe a deterministic fling animation.
 */
Scenario make_swipe_scenario(const std::string &name, int num_swipes,
                             Time swipe_period,
                             std::shared_ptr<const FrameCostModel> cost,
                             double active_fraction = 1.0);

} // namespace dvs

#endif // DVS_WORKLOAD_SCENARIO_H
