/**
 * @file
 * Power-law frame-cost distribution (§3.2, Figure 1).
 *
 * The bulk of frames draw from a lognormal around a short mean; with a
 * small probability a frame becomes a heavily-loaded key frame whose extra
 * cost draws from a bounded Pareto tail. Sampling is stateless per nominal
 * index (hash-seeded), so the same index always yields the same cost.
 */

#ifndef DVS_WORKLOAD_DISTRIBUTIONS_H
#define DVS_WORKLOAD_DISTRIBUTIONS_H

#include <cstdint>

#include "workload/frame_cost.h"

namespace dvs {

/** Parameters of the power-law frame-cost mixture. */
struct PowerLawParams {
    double short_mean_ms = 5.0; ///< mean cost of ordinary short frames
    double short_sigma = 0.25;  ///< lognormal shape of the short bulk
    double heavy_prob = 0.03;   ///< per-frame probability of a key frame
    double heavy_alpha = 1.5;   ///< Pareto tail index (smaller = heavier)
    double heavy_min_ms = 8.0;  ///< minimum extra cost of a key frame
    double heavy_max_ms = 40.0; ///< maximum extra cost of a key frame
    double ui_fraction = 0.35;  ///< share of the cost on the UI stage

    /**
     * Burstiness: probability that the frame right after a key frame is
     * also heavy (key frames come in clusters for effects that cannot
     * reuse the rendered cache, Fig. 4).
     */
    double heavy_burst_prob = 0.0;
};

/**
 * The power-law cost model: lognormal bulk + bounded-Pareto key frames.
 */
class PowerLawCostModel : public FrameCostModel
{
  public:
    PowerLawCostModel(const PowerLawParams &params, std::uint64_t seed);

    FrameCost cost_for(std::int64_t nominal_index) const override;

    const PowerLawParams &params() const { return params_; }

    /** Whether slot @p nominal_index is a heavy key frame. */
    bool is_heavy(std::int64_t nominal_index) const;

  private:
    double sample_ms(std::int64_t nominal_index) const;

    PowerLawParams params_;
    std::uint64_t seed_;
};

/** Mix 64 bits (splitmix64 finalizer); used to key per-index streams. */
std::uint64_t hash_index(std::uint64_t seed, std::int64_t index);

} // namespace dvs

#endif // DVS_WORKLOAD_DISTRIBUTIONS_H
