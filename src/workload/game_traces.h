/**
 * @file
 * The 15 mobile games of the paper's simulation study (§6.1, Fig. 14).
 *
 * The paper collects per-frame CPU/GPU traces of the games' UI and scene
 * animations and replays them under the D-VSync pattern in scripts (the
 * games use custom engines that bypass the OS framework, so the evaluation
 * is trace-driven). We synthesize equivalent traces: per-frame costs at
 * each game's target frame rate with power-law key frames calibrated to
 * the game's reported baseline FDPS.
 */

#ifndef DVS_WORKLOAD_GAME_TRACES_H
#define DVS_WORKLOAD_GAME_TRACES_H

#include <cstdint>
#include <vector>

#include "workload/trace.h"

namespace dvs {

/** One game of Fig. 14. */
struct GameInfo {
    const char *name;  ///< figure label (without the rate suffix)
    double rate_hz;    ///< target frame rate from the figure
    double paper_fdps; ///< baseline VSync (3 buffers) FDPS from Fig. 14
    bool ui_overlay;   ///< "(UI)" games: overlay animation traces
};

/** All 15 games in Fig. 14 order. */
const std::vector<GameInfo> &game_list();

/**
 * Synthesize a runtime trace for @p game covering @p duration, with
 * per-frame CPU (treated as UI-stage) and GPU (render-stage) time.
 */
FrameTrace make_game_trace(const GameInfo &game, Time duration,
                           std::uint64_t seed);

} // namespace dvs

#endif // DVS_WORKLOAD_GAME_TRACES_H
