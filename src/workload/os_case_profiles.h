/**
 * @file
 * The 75 common OS use cases of the paper's Appendix A (Table 3).
 *
 * Each case carries its category, description, and abbreviation exactly as
 * listed in the appendix, plus the baseline VSync FDPS the paper reports
 * for it on each evaluated configuration (Figures 12 and 13; zero when the
 * case showed no frame drops on that configuration).
 */

#ifndef DVS_WORKLOAD_OS_CASE_PROFILES_H
#define DVS_WORKLOAD_OS_CASE_PROFILES_H

#include <string>
#include <vector>

#include "workload/app_profiles.h"

namespace dvs {

/** Evaluated device/backend configurations for the OS use cases. */
enum class OsConfig {
    kMate40Gles, ///< Mate 40 Pro, 90 Hz, GLES (Fig. 13 left)
    kMate60Gles, ///< Mate 60 Pro, 120 Hz, GLES (Fig. 13 right)
    kMate60Vk,   ///< Mate 60 Pro, 120 Hz, Vulkan (Fig. 12)
};

const char *to_string(OsConfig c);

/** Refresh rate of a configuration. */
double os_config_refresh_hz(OsConfig c);

/** One of the 75 use cases (Appendix A, Table 3). */
struct OsCase {
    int id;                  ///< 1-based row in Table 3
    const char *category;    ///< e.g. "Notification Center"
    const char *description; ///< full description from Table 3
    const char *abbrev;      ///< figure abbreviation, e.g. "cls notif ctr"

    /** Paper-reported baseline FDPS per configuration (0 = no drops). */
    double fdps_mate40_gles;
    double fdps_mate60_gles;
    double fdps_mate60_vk;
};

/** All 75 cases, in Table 3 order. */
const std::vector<OsCase> &os_cases();

/** Paper FDPS of a case under a configuration. */
double case_fdps(const OsCase &c, OsConfig config);

/** Look up a case by abbreviation. @return nullptr when unknown. */
const OsCase *find_os_case(const std::string &abbrev);

/**
 * Cases with reported frame drops under @p config, in descending FDPS
 * order (the population Figures 12/13 chart).
 */
std::vector<const OsCase *> cases_with_drops(OsConfig config);

/**
 * Build the workload spec of a case for a configuration. The spec's
 * tail shape depends on the case category: scrolling cases scatter
 * moderate key frames; transition/animation cases front-load heavier
 * ones (window blur, rotation relayout).
 */
ProfileSpec make_os_case_spec(const OsCase &c, OsConfig config);

} // namespace dvs

#endif // DVS_WORKLOAD_OS_CASE_PROFILES_H
