/**
 * @file
 * Workload profiles for the paper's evaluated applications.
 *
 * The paper's vendor testing framework drives real apps and records their
 * frame traces; we have no access to those, so each app is represented by
 * a ProfileSpec — a parameterization of the power-law cost model expressed
 * in *refresh periods* (device-independent) plus the baseline VSync FDPS
 * the paper reports for it (used as the calibration anchor and printed
 * next to the measured value in the benches).
 *
 * The specs are calibrated so the simulated VSync baseline lands near the
 * paper's Fig. 11 bars; the D-VSync numbers are then *measured*, not
 * encoded — the reduction factors are genuine outputs of the simulation.
 */

#ifndef DVS_WORKLOAD_APP_PROFILES_H
#define DVS_WORKLOAD_APP_PROFILES_H

#include <memory>
#include <string>
#include <vector>

#include "workload/distributions.h"

namespace dvs {

/**
 * Device-independent workload description. Costs are in units of the
 * display refresh period so the same spec scales across 60/90/120 Hz.
 */
struct ProfileSpec {
    std::string name;

    /** Paper-reported baseline VSync FDPS (0 = no drops reported). */
    double paper_fdps = 0.0;

    /** Key-frame arrival rate, per second of active rendering. */
    double heavy_per_sec = 0.0;

    /** Extra cost range of a key frame, in refresh periods. */
    double heavy_min_periods = 1.1;
    double heavy_max_periods = 3.0;

    /** Pareto tail index of the key-frame cost (smaller = heavier). */
    double heavy_alpha = 1.5;

    /** Probability a key frame is followed by another (clustering). */
    double heavy_burst = 0.2;

    /** Ordinary frame cost, as a fraction of the period. */
    double short_mean_periods = 0.45;
    double short_sigma = 0.30;

    /** Fraction of frame cost spent on the UI stage. */
    double ui_fraction = 0.20;

    /**
     * Preferred active-window fraction of the operation period for this
     * workload (0 = use the harness default). One-shot transitions are
     * short animations (~200 ms); scrolls run longer.
     */
    double window_fraction = 0.0;
};

/**
 * Instantiate the power-law parameters of a spec for a display running at
 * @p refresh_hz.
 */
PowerLawParams make_params(const ProfileSpec &spec, double refresh_hz);

/** Build the cost model of a spec for a given refresh rate and seed. */
std::shared_ptr<const FrameCostModel>
make_cost_model(const ProfileSpec &spec, double refresh_hz,
                std::uint64_t seed);

/**
 * The 25 top apps of Fig. 6 / Fig. 11 (Google Pixel 5, 60 Hz), in the
 * paper's Fig. 11 order (descending baseline FDPS).
 */
const std::vector<ProfileSpec> &pixel5_app_profiles();

/** Look up an app profile by name. @return nullptr when unknown. */
const ProfileSpec *find_app_profile(const std::string &name);

} // namespace dvs

#endif // DVS_WORKLOAD_APP_PROFILES_H
