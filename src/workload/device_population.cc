#include "workload/device_population.h"

#include "display/device_config.h"
#include "sim/logging.h"

namespace dvs {
namespace {

/**
 * splitmix64 finalizer (Steele et al.). Each session index is hashed
 * independently — no sequential RNG state — so session(i) is a pure
 * function and shards can materialize disjoint index slices without
 * ever touching each other's draws.
 */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a 64-bit hash. */
double
unit(std::uint64_t h)
{
    return double(h >> 11) * 0x1.0p-53;
}

/** Weighted pick: index of the class covering @p u * total. */
template <typename T>
std::size_t
pick(const std::vector<T> &classes, double total, double u)
{
    double target = u * total;
    for (std::size_t i = 0; i + 1 < classes.size(); ++i) {
        target -= classes[i].weight;
        if (target < 0.0)
            return i;
    }
    return classes.size() - 1;
}

} // namespace

DevicePopulation::DevicePopulation(std::vector<DeviceTier> tiers,
                                   std::vector<AppUsageClass> apps,
                                   std::uint64_t seed)
    : tiers_(std::move(tiers)), apps_(std::move(apps)), seed_(seed)
{
    if (tiers_.empty() || apps_.empty())
        fatal("DevicePopulation needs at least one tier and one app class");
    for (const DeviceTier &t : tiers_) {
        if (t.weight <= 0.0)
            fatal("device tier '%s' has non-positive weight", t.name.c_str());
        tier_weight_total_ += t.weight;
    }
    for (const AppUsageClass &a : apps_) {
        if (a.weight <= 0.0)
            fatal("app class '%s' has non-positive weight", a.name.c_str());
        app_weight_total_ += a.weight;
    }
}

DevicePopulation
DevicePopulation::paper_fleet(std::uint64_t seed)
{
    // Table-1 devices as the fleet's hardware mix: entry phones dominate,
    // flagships trail (50/30/20).
    std::vector<DeviceTier> tiers = {
        {"entry-60", pixel5(), 0.50},
        {"mid-90", mate40_pro(), 0.30},
        {"flagship-120", mate60_pro(), 0.20},
    };

    // App-usage mix drawn from the Fig. 11 profile set, spanning the
    // skew spectrum: mostly light sessions, a heavy tail of QQMusic-like
    // workloads whose clustered key frames stress the buffer budget.
    auto profile = [](const char *name) {
        const ProfileSpec *p = find_app_profile(name);
        if (!p)
            fatal("paper_fleet: unknown app profile '%s'", name);
        return *p;
    };
    std::vector<AppUsageClass> apps = {
        {"light", profile("Pinterest"), 0.35},
        {"feed", profile("Instagram"), 0.30},
        {"browse", profile("FoxNews"), 0.20},
        {"heavy", profile("QQMusic"), 0.15},
    };

    return DevicePopulation(std::move(tiers), std::move(apps), seed);
}

DevicePopulation::Draw
DevicePopulation::draw(std::uint64_t index) const
{
    // One base hash per session, decorrelated sub-streams per decision.
    const std::uint64_t base =
        mix64(seed_ ^ (index * 0x9e3779b97f4a7c15ULL));
    const std::uint64_t h_tier = mix64(base ^ 0x7469657273ULL); // "tiers"
    const std::uint64_t h_app = mix64(base ^ 0x61707073ULL);    // "apps"
    const std::uint64_t h_mode = mix64(base ^ 0x6d6f6465ULL);   // "mode"
    const std::uint64_t h_seed = mix64(base ^ 0x73656564ULL);   // "seed"

    Draw d;
    d.tier = &tiers_[pick(tiers_, tier_weight_total_, unit(h_tier))];
    d.app = &apps_[pick(apps_, app_weight_total_, unit(h_app))];
    // 50/50 VSync vs D-VSync: every cohort ships with its baseline twin.
    d.mode = (h_mode & 1) ? RenderMode::kDvsync : RenderMode::kVsync;
    d.run_seed = h_seed ? h_seed : 1;
    return d;
}

SessionSpec
DevicePopulation::session(std::uint64_t index) const
{
    const Draw d = draw(index);
    SessionSpec s;
    s.config = SystemConfig()
                   .with_device(d.tier->device)
                   .with_mode(d.mode)
                   .with_seed(d.run_seed);
    s.scenario = make_swipe_scenario(
        d.app->name, d.app->swipes, d.app->swipe_period,
        make_cost_model(d.app->profile, d.tier->device.refresh_hz,
                        d.run_seed),
        d.app->active_fraction);
    s.cohort = d.tier->name + "/" + to_string(d.mode);
    s.label = s.cohort;
    return s;
}

Experiment
DevicePopulation::experiment(std::uint64_t index, int sim_workers) const
{
    SessionSpec spec = session(index);
    Experiment point;
    point.config = spec.config.with_sim_workers(sim_workers);
    point.scenario = std::move(spec.scenario);
    point.label = std::move(spec.label);
    return point;
}

std::string
DevicePopulation::cohort_of(std::uint64_t index) const
{
    const Draw d = draw(index);
    return d.tier->name + "/" + to_string(d.mode);
}

} // namespace dvs
