#include "workload/app_profiles.h"

#include <algorithm>

#include "sim/logging.h"

namespace dvs {
namespace {

/**
 * Calibration constant: key frames per second needed to produce one
 * observed frame drop per second under baseline VSync. Greater than one
 * because triple buffering's standing stuffed buffer absorbs roughly
 * every other key frame (§2, "until another long frame emerges").
 */
constexpr double kHeavyPerDrop = 1.75;

/** Tail shapes of the app population. */
enum class Skew {
    kScattered, ///< isolated moderate key frames (Walmart-like)
    kModerate,  ///< mildly clustered, occasional 3-4 period frames
    kSkewed,    ///< heavy clusters, frames beyond 7 periods (QQMusic-like)
};

ProfileSpec
app(const char *name, double fdps, Skew skew)
{
    ProfileSpec s;
    s.name = name;
    s.paper_fdps = fdps;
    s.heavy_per_sec = fdps * kHeavyPerDrop;
    switch (skew) {
      case Skew::kScattered:
        s.heavy_min_periods = 1.15;
        s.heavy_max_periods = 2.6;
        s.heavy_alpha = 1.8;
        s.heavy_burst = 0.10;
        break;
      case Skew::kModerate:
        s.heavy_min_periods = 1.15;
        s.heavy_max_periods = 4.0;
        s.heavy_alpha = 1.4;
        s.heavy_burst = 0.25;
        break;
      case Skew::kSkewed:
        s.heavy_min_periods = 1.2;
        s.heavy_max_periods = 9.0;
        s.heavy_alpha = 0.9;
        s.heavy_burst = 0.55;
        break;
    }
    return s;
}

} // namespace

PowerLawParams
make_params(const ProfileSpec &spec, double refresh_hz)
{
    if (refresh_hz <= 0)
        fatal("refresh_hz must be positive");
    const double period_ms = 1000.0 / refresh_hz;
    PowerLawParams p;
    p.short_mean_ms = spec.short_mean_periods * period_ms;
    p.short_sigma = spec.short_sigma;
    // Above ~40% key frames the workload is sustained overload, outside
    // the power-law regime the models target; clamp for safety.
    p.heavy_prob = std::min(0.4, spec.heavy_per_sec / refresh_hz);
    p.heavy_alpha = spec.heavy_alpha;
    p.heavy_min_ms = spec.heavy_min_periods * period_ms;
    p.heavy_max_ms = spec.heavy_max_periods * period_ms;
    p.ui_fraction = spec.ui_fraction;
    p.heavy_burst_prob = spec.heavy_burst;
    return p;
}

std::shared_ptr<const FrameCostModel>
make_cost_model(const ProfileSpec &spec, double refresh_hz,
                std::uint64_t seed)
{
    return std::make_shared<PowerLawCostModel>(make_params(spec, refresh_hz),
                                               seed);
}

const std::vector<ProfileSpec> &
pixel5_app_profiles()
{
    // Baseline FDPS values read off Fig. 11's blue bars (average 2.04).
    // Walmart and QQMusic anchor the paper's §6.1 analysis: Walmart's
    // drops are scattered short-of-3-periods key frames that D-VSync
    // absorbs almost fully; QQMusic's distribution is so skewed that even
    // 7 buffers cannot hide its janks.
    static const std::vector<ProfileSpec> profiles = {
        app("Walmart", 4.8, Skew::kScattered),
        app("QQMusic", 4.5, Skew::kSkewed),
        app("X", 3.6, Skew::kModerate),
        app("Apkpure", 3.3, Skew::kScattered),
        app("GroupMe", 3.1, Skew::kScattered),
        app("FoxNews", 2.9, Skew::kModerate),
        app("Facebook", 2.7, Skew::kScattered),
        app("Weibo", 2.5, Skew::kModerate),
        app("Shein", 2.4, Skew::kScattered),
        app("StudentUniv", 2.2, Skew::kScattered),
        app("Instagram", 2.1, Skew::kModerate),
        app("Zhihu", 2.0, Skew::kScattered),
        app("Lark", 1.9, Skew::kModerate),
        app("Reddit", 1.8, Skew::kScattered),
        app("Booking", 1.7, Skew::kScattered),
        app("Tidal", 1.6, Skew::kModerate),
        app("DoorDash", 1.5, Skew::kScattered),
        app("CNN", 1.4, Skew::kScattered),
        app("Discord", 1.3, Skew::kModerate),
        app("Bilibili", 1.2, Skew::kScattered),
        app("Snapchat", 1.1, Skew::kScattered),
        app("Taobao", 1.0, Skew::kModerate),
        app("VidMate", 0.9, Skew::kScattered),
        app("Tripadvisor", 0.7, Skew::kScattered),
        app("Pinterest", 0.5, Skew::kScattered),
    };
    return profiles;
}

const ProfileSpec *
find_app_profile(const std::string &name)
{
    for (const ProfileSpec &s : pixel5_app_profiles()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace dvs
