#include "workload/os_case_profiles.h"

#include <algorithm>
#include <cstring>

#include "sim/logging.h"

namespace dvs {

const char *
to_string(OsConfig c)
{
    switch (c) {
      case OsConfig::kMate40Gles:
        return "Mate 40 Pro (90Hz, GLES)";
      case OsConfig::kMate60Gles:
        return "Mate 60 Pro (120Hz, GLES)";
      case OsConfig::kMate60Vk:
        return "Mate 60 Pro (120Hz, Vulkan)";
    }
    return "?";
}

double
os_config_refresh_hz(OsConfig c)
{
    return c == OsConfig::kMate40Gles ? 90.0 : 120.0;
}

const std::vector<OsCase> &
os_cases()
{
    // Columns: id, category, description, abbreviation,
    //          FDPS on {Mate40 GLES, Mate60 GLES, Mate60 Vulkan}.
    // FDPS values follow Figures 12/13 (zero = no drops reported there).
    static const std::vector<OsCase> cases = {
        {1, "Phone Unlocking",
         "Swipe upwards in the lock screen to enter the password page",
         "lock to pswd", 0, 3.0, 3.8},
        {2, "Phone Unlocking",
         "The fly-in animation of the sceneboard after entering the last "
         "digit of the password",
         "pswd to desk", 0, 0, 0},
        {3, "Phone Unlocking",
         "Swipe upwards in the lock screen to unlock the phone (without "
         "password)",
         "unlock lock", 0, 0, 9.5},
        {4, "Phone Unlocking",
         "The fly-in animation of the sceneboard (without password)",
         "lock to desk", 0, 0, 0},
        {5, "Sceneboard",
         "Slide the sceneboard pages left and right (with default "
         "pre-installed apps)",
         "slide desk", 0, 0, 0},
        {6, "Sceneboard",
         "Slide the sceneboard pages left and right when exiting an app",
         "exit app slide", 0, 0, 2.3},
        {7, "Sceneboard",
         "Slide the sceneboard pages left and right with full folders",
         "slide full fd", 0, 0, 0},
        {8, "App Operation", "App opening animation when clicking an app",
         "open app", 0, 0, 0},
        {9, "App Operation", "App closing animation when swiping upwards",
         "close app", 0, 0, 0},
        {10, "App Operation",
         "App closing animation when sliding rightwards", "sld cls app", 0,
         0, 0},
        {11, "App Operation",
         "Quickly open and close apps one after another", "qk opn apps", 0,
         0, 2.7},
        {12, "Folder", "Folder opening animation when clicking a folder",
         "open fd", 0, 0, 0},
        {13, "Folder",
         "Folder closing animation when tapping the empty space outside",
         "tap cls fd", 0, 2.4, 0},
        {14, "Folder",
         "Folder closing animation when sliding rightwards", "sld cls fd",
         0, 4.5, 0},
        {15, "Folder", "Folder closing animation when swiping upwards",
         "swp cls fd", 0, 0, 0},
        {16, "Cards",
         "Long click the photos app and the cards show up", "shw ph cd", 0,
         0, 2.0},
        {17, "Cards",
         "Tap the empty space outside to close the cards of the photos app",
         "cls ph cd", 0, 0, 0},
        {18, "Cards", "Long click the memos app and the cards show up",
         "shw mem cd", 0, 0, 0},
        {19, "Cards",
         "Tap the empty space outside to close the cards of the memos app",
         "cls mem cd", 0, 0, 0},
        {20, "Notification Center",
         "Swipe downwards to open the notification center", "open notif ctr",
         0, 0, 3.0},
        {21, "Notification Center",
         "Swipe upwards to close the notification center", "cls notif ctr",
         4.1, 7.0, 23.0},
        {22, "Notification Center",
         "Tap the empty space to close the notification center",
         "tap cls notif", 0, 0, 17.0},
        {23, "Notification Center",
         "Click the trash can button to clear all notifications",
         "clr all notif", 1.7, 9.0, 15.5},
        {24, "Notification Center",
         "Slide rightwards to delete one notification and the bottom ones "
         "move up",
         "del one notif", 0, 0, 14.0},
        {25, "Control Center",
         "Swipe downwards to open the control center", "open ctrl ctr", 0,
         4.0, 4.6},
        {26, "Control Center",
         "Swipe upwards to close the control center", "cls ctrl ctr", 0,
         2.1, 12.5},
        {27, "Control Center",
         "Tap the empty space to close the control center", "tap cls ctrl",
         0, 0, 10.5},
        {28, "Control Center",
         "Click the unfold button to show all control buttons",
         "shw ctrl btns", 0, 10.0, 0},
        {29, "Control Center",
         "Screen rotation button animation when clicking on the button",
         "rot btn anim", 0, 0, 20.0},
        {30, "Control Center",
         "Click the settings button in the control center to enter the "
         "settings",
         "clck settings", 0, 34.0, 0},
        {31, "Control Center",
         "Adjust the screen brightness in the control center", "brtness adj",
         0, 0, 2.1},
        {32, "Volume Bar",
         "The volume bar appears when clicking the physical volume "
         "adjustment button",
         "shw vol bar", 0, 0, 0},
        {33, "Volume Bar",
         "Disappearing animation of the volume bar after some time of no "
         "operation",
         "vol bar gone", 0, 0, 0},
        {34, "Volume Bar",
         "Short click the physical volume adjustment button to adjust "
         "volume",
         "clck adj vol", 0, 0, 0},
        {35, "Volume Bar",
         "Long click the physical volume adjustment button to adjust "
         "volume",
         "lclck adj vol", 0, 0, 0},
        {36, "Volume Bar",
         "Slide the volume bar on the screen to adjust volume",
         "sld adj vol", 0, 0, 0},
        {37, "Volume Bar", "Tap the empty space to hide the volume bar",
         "hide vol bar", 0, 0, 0},
        {38, "Tasks", "Swipe upwards on the sceneboard to enter tasks",
         "opn tasks dsk", 0, 0, 0},
        {39, "Tasks", "Swipe upwards on the app to enter tasks",
         "opn tasks app", 0, 0, 0},
        {40, "Tasks", "Slide the tasks left and right", "sld tasks", 0, 0,
         0},
        {41, "Tasks",
         "Swipe upwards to delete one task and the last task moves "
         "rightwards",
         "del one task", 0, 0, 0},
        {42, "Tasks",
         "Click the trash can button to clear all tasks and go back to the "
         "sceneboard",
         "clr all tasks", 0, 0, 8.0},
        {43, "Tasks", "Tap the empty space to leave the tasks",
         "leave tasks", 0, 0, 0},
        {44, "Tasks", "Click one task to enter the app", "task open app", 0,
         0, 0},
        {45, "HiBoard",
         "Slide rightwards from the first page of the sceneboard to enter "
         "HiBoard",
         "enter hibd", 0, 0, 4.2},
        {46, "HiBoard",
         "Click the weather card on HiBoard to enter weather app",
         "clck hibd cd", 0, 2.7, 7.5},
        {47, "HiBoard",
         "Swipe upwards in the weather app to return to HiBoard",
         "swp ret hibd", 0, 0, 2.5},
        {48, "HiBoard",
         "Slide rightwards in the weather app to return to HiBoard",
         "sld ret hibd", 0, 0, 6.5},
        {49, "Global Search", "Swipe downwards to open global search",
         "open search", 0, 0, 3.4},
        {50, "Global Search", "Slide rightwards to close global search",
         "cls search", 0, 0, 0},
        {51, "Keyboard",
         "Click the browser search bar to show the virtual keyboard",
         "shw kb", 0, 0, 0},
        {52, "Keyboard",
         "Click the keyboard hide button to hide the virtual keyboard",
         "hide kb", 0, 0, 0},
        {53, "Screen Rotation",
         "Rotate the screen from vertical to horizontal when displaying a "
         "full-screen photo",
         "vert ph hori", 0, 0, 0},
        {54, "Screen Rotation",
         "Rotate the screen from horizontal to vertical when displaying a "
         "full-screen photo",
         "hori ph vert", 0, 0, 0},
        {55, "Screen Rotation",
         "Rotate the screen from vertical to horizontal when displaying an "
         "app",
         "vert to hori", 2.6, 12.0, 5.5},
        {56, "Screen Rotation",
         "Rotate the screen from horizontal to vertical when displaying an "
         "app",
         "hori to vert", 2.2, 8.0, 0},
        {57, "Photos", "Scroll the albums in the photos app", "scrl albums",
         0, 6.0, 7.0},
        {58, "Photos", "Click into one album and enter its photo list",
         "open album", 0, 0, 5.0},
        {59, "Photos", "Scroll the photo list in the photos app",
         "scrl photos", 1.3, 7.5, 0},
        {60, "Photos",
         "Click into one photo and view the photo in full screen",
         "clck photo", 0, 0, 0},
        {61, "Photos", "Browse the full-screen photo", "brws photo", 0, 0,
         0},
        {62, "Photos",
         "Swipe downwards the full-screen photo to return to the photo "
         "list",
         "ret photos", 0, 0, 0},
        {63, "Photos",
         "Slide rightwards the full-screen photo to return to the photo "
         "list",
         "sld ret photos", 0, 0, 0},
        {64, "Photos",
         "Click the back button in the photo list to return to the album "
         "list",
         "ret albums", 0, 0, 0},
        {65, "Camera",
         "Click the photo preview in the camera app to enter the photos "
         "app",
         "cam to pht", 0, 3.5, 8.5},
        {66, "Camera",
         "Slide rightwards from the photos app to return to the camera app",
         "pht to cam", 7.3, 5.0, 11.5},
        {67, "Camera",
         "Slide inside the camera app to select between camera modes",
         "cam mode sel", 3.2, 0, 19.0},
        {68, "Browser",
         "Click the pages button to see all the opening pages in the "
         "browser app",
         "brwsr pages", 0, 0, 0},
        {69, "Settings",
         "Scroll the settings in the main page of the settings app",
         "scrl sets", 0, 1.8, 0},
        {70, "Settings",
         "Click the bluetooth setting in the settings app to enter the "
         "subpage",
         "clck bt", 0, 0, 0},
        {71, "Settings",
         "Click the WLAN setting in the settings app to enter the subpage",
         "clck wlan", 0, 0, 0},
        {72, "Settings",
         "Click the login tab in the settings app to enter the subpage",
         "clck login", 0, 0, 0},
        {73, "Other Apps", "Scroll the main page of WeChat", "scrl wechat",
         1.0, 5.5, 6.0},
        {74, "Other Apps", "Scroll the videos of TikTok", "scrl tiktok", 0,
         6.5, 9.0},
        {75, "Other Apps", "Scroll the video lists of Videos", "scrl videos",
         5.2, 18.0, 0},
    };
    return cases;
}

double
case_fdps(const OsCase &c, OsConfig config)
{
    switch (config) {
      case OsConfig::kMate40Gles:
        return c.fdps_mate40_gles;
      case OsConfig::kMate60Gles:
        return c.fdps_mate60_gles;
      case OsConfig::kMate60Vk:
        return c.fdps_mate60_vk;
    }
    return 0.0;
}

const OsCase *
find_os_case(const std::string &abbrev)
{
    for (const OsCase &c : os_cases()) {
        if (abbrev == c.abbrev)
            return &c;
    }
    return nullptr;
}

std::vector<const OsCase *>
cases_with_drops(OsConfig config)
{
    std::vector<const OsCase *> out;
    for (const OsCase &c : os_cases()) {
        if (case_fdps(c, config) > 0)
            out.push_back(&c);
    }
    std::sort(out.begin(), out.end(),
              [config](const OsCase *a, const OsCase *b) {
                  return case_fdps(*a, config) > case_fdps(*b, config);
              });
    return out;
}

ProfileSpec
make_os_case_spec(const OsCase &c, OsConfig config)
{
    const double fdps = case_fdps(c, config);
    ProfileSpec s;
    s.name = c.abbrev;
    s.paper_fdps = fdps;
    // Same absorption calibration as the app profiles.
    s.heavy_per_sec = fdps * 1.75;

    // Scrolling cases scatter isolated key frames (new list items being
    // inflated); one-shot transitions (rotation, window blur, page
    // entry) include somewhat heavier effects. Even the worst cases are
    // key-frame-dominated, not sustained overload: the notification
    // center at 95-105 FPS on a 120 Hz panel still renders most frames
    // quickly, which is exactly why D-VSync can absorb them (§6.1).
    const double hz = os_config_refresh_hz(config);
    const bool scroll = std::strncmp(c.abbrev, "scrl", 4) == 0 ||
                        std::strncmp(c.abbrev, "sld", 3) == 0 ||
                        std::strncmp(c.abbrev, "slide", 5) == 0;
    if (fdps > hz / 20.0) {
        // Cases dropping >5% of refreshes (e.g. the notification center
        // at 95-105 FPS on the 120 Hz panel): heavyweight effect frames
        // (window blur, relayout) overshooting the tight 8.3 ms deadline
        // by one to two periods. Each janks under VSync; D-VSync's
        // accumulated back buffers ride across them.
        s.heavy_min_periods = 1.6;
        s.heavy_max_periods = 2.8;
        s.heavy_alpha = 1.6;
        s.heavy_burst = 0.02;
        // One-shot transitions are short (~200 ms of animation), which
        // is what concentrates their drops into a high FDPS.
        s.window_fraction = 0.36;
    } else if (scroll) {
        s.heavy_min_periods = 1.15;
        s.heavy_max_periods = 2.6;
        s.heavy_alpha = 1.8;
        s.heavy_burst = 0.10;
    } else {
        s.heavy_min_periods = 1.2;
        s.heavy_max_periods = 3.2;
        s.heavy_alpha = 1.5;
        s.heavy_burst = 0.15;
    }
    return s;
}

} // namespace dvs
