/**
 * @file
 * Text format for scenarios.
 *
 * Lets workloads be described in a small line-based script instead of
 * C++, so new cases can be run without recompiling (the
 * examples/scenario_runner binary consumes these). Format:
 *
 * ```
 * # comment
 * device mate60pro            # pixel5 | mate40pro | mate60pro
 * seed 42
 *
 * repeat 5
 *   animate 350ms heavy_rate=3 heavy_min=1.2 heavy_max=3 label=fling
 *   idle 150ms
 * end
 *
 * interact swipe 300ms from=1800 travel=1200 label=scroll
 * realtime 500ms mean=0.5 heavy_rate=8
 * ```
 *
 * Durations accept `ms`, `us`, `s` suffixes. `animate`/`realtime`
 * accept the power-law knobs as key=value pairs (mean=, sigma=,
 * heavy_rate=, heavy_min=, heavy_max=, alpha=, burst=, ui=, seed=);
 * `interact` takes a gesture (`swipe`, `drag`, `pinch`) with `from=`,
 * `travel=`, `noise=`. `repeat N` ... `end` duplicates a block.
 */

#ifndef DVS_WORKLOAD_SCENARIO_SCRIPT_H
#define DVS_WORKLOAD_SCENARIO_SCRIPT_H

#include <string>

#include "display/device_config.h"
#include "workload/scenario.h"

namespace dvs {

/** Result of parsing a scenario script. */
struct ScenarioScript {
    Scenario scenario;
    DeviceConfig device;      ///< pixel5() unless overridden
    std::uint64_t seed = 1;
    bool ok = false;
    std::string error;        ///< first parse error (when !ok)
    int error_line = 0;
};

/** Parse a script from text. Never throws; check `.ok`. */
ScenarioScript parse_scenario_script(const std::string &text);

/** Parse a script from a file. */
ScenarioScript load_scenario_script(const std::string &path);

} // namespace dvs

#endif // DVS_WORKLOAD_SCENARIO_SCRIPT_H
