#include "workload/scenario_script.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "input/gesture.h"
#include "workload/app_profiles.h"

namespace dvs {
namespace {

/** One tokenized script line. */
struct Line {
    int number = 0;
    std::vector<std::string> words;
    std::map<std::string, std::string> args; // key=value pairs
};

std::vector<Line>
tokenize(const std::string &text)
{
    std::vector<Line> lines;
    std::istringstream in(text);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream ls(raw);
        Line line;
        line.number = number;
        std::string word;
        while (ls >> word) {
            const auto eq = word.find('=');
            if (eq != std::string::npos && eq > 0) {
                line.args[word.substr(0, eq)] = word.substr(eq + 1);
            } else {
                line.words.push_back(word);
            }
        }
        if (!line.words.empty() || !line.args.empty())
            lines.push_back(std::move(line));
    }
    return lines;
}

/** Parse "350ms" / "1.5s" / "200us" into nanoseconds; 0 on failure. */
Time
parse_duration(const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || v < 0)
        return 0;
    const std::string unit(end);
    if (unit == "ms")
        return from_ms(v);
    if (unit == "us")
        return from_us(v);
    if (unit == "s")
        return from_seconds(v);
    if (unit == "ns" || unit.empty())
        return Time(v);
    return 0;
}

double
arg_num(const Line &line, const std::string &key, double fallback)
{
    auto it = line.args.find(key);
    return it == line.args.end() ? fallback : std::atof(it->second.c_str());
}

std::string
arg_str(const Line &line, const std::string &key,
        const std::string &fallback)
{
    auto it = line.args.find(key);
    return it == line.args.end() ? fallback : it->second;
}

/** Build the cost model of an `animate`/`realtime`/`interact` line. */
std::shared_ptr<const FrameCostModel>
cost_from_args(const Line &line, const DeviceConfig &device,
               std::uint64_t default_seed)
{
    ProfileSpec spec;
    spec.name = arg_str(line, "label", "script");
    spec.short_mean_periods = arg_num(line, "mean", 0.45);
    spec.short_sigma = arg_num(line, "sigma", 0.30);
    spec.heavy_per_sec = arg_num(line, "heavy_rate", 0.0);
    spec.heavy_min_periods = arg_num(line, "heavy_min", 1.2);
    spec.heavy_max_periods = arg_num(line, "heavy_max", 3.0);
    spec.heavy_alpha = arg_num(line, "alpha", 1.5);
    spec.heavy_burst = arg_num(line, "burst", 0.1);
    spec.ui_fraction = arg_num(line, "ui", 0.2);
    const std::uint64_t seed =
        std::uint64_t(arg_num(line, "seed", double(default_seed)));
    return make_cost_model(spec, device.refresh_hz, seed);
}

struct Parser {
    ScenarioScript out;
    std::uint64_t gesture_seed = 99;

    bool
    fail(const Line &line, const std::string &message)
    {
        out.ok = false;
        out.error = message;
        out.error_line = line.number;
        return false;
    }

    bool
    handle(const Line &line)
    {
        const std::string &cmd = line.words[0];
        if (cmd == "device") {
            if (line.words.size() < 2)
                return fail(line, "device needs a name");
            const std::string &name = line.words[1];
            if (name == "pixel5")
                out.device = pixel5();
            else if (name == "mate40pro")
                out.device = mate40_pro();
            else if (name == "mate60pro")
                out.device = mate60_pro();
            else
                return fail(line, "unknown device '" + name + "'");
            return true;
        }
        if (cmd == "seed") {
            if (line.words.size() < 2)
                return fail(line, "seed needs a value");
            out.seed = std::strtoull(line.words[1].c_str(), nullptr, 10);
            return true;
        }
        if (cmd == "idle") {
            const Time d =
                line.words.size() > 1 ? parse_duration(line.words[1]) : 0;
            if (d <= 0)
                return fail(line, "idle needs a positive duration");
            out.scenario.idle(d);
            return true;
        }
        if (cmd == "animate" || cmd == "realtime") {
            const Time d =
                line.words.size() > 1 ? parse_duration(line.words[1]) : 0;
            if (d <= 0)
                return fail(line, cmd + " needs a positive duration");
            auto cost = cost_from_args(line, out.device, out.seed);
            const std::string label = arg_str(line, "label", cmd);
            if (cmd == "animate")
                out.scenario.animate(d, cost, label);
            else
                out.scenario.realtime(d, cost, label);
            return true;
        }
        if (cmd == "interact") {
            if (line.words.size() < 3)
                return fail(line,
                            "interact needs a gesture and a duration");
            const std::string &gesture = line.words[1];
            const Time d = parse_duration(line.words[2]);
            if (d <= 0)
                return fail(line, "interact needs a positive duration");

            GestureTiming timing;
            timing.duration = d;
            timing.noise_px = arg_num(line, "noise", 0.0);
            Rng noise(gesture_seed++);
            const double from = arg_num(line, "from", 1000.0);
            const double travel = arg_num(line, "travel", 800.0);

            TouchStream stream;
            if (gesture == "swipe")
                stream = make_swipe(timing, from, travel, &noise);
            else if (gesture == "drag")
                stream = make_drag(timing, from, travel, &noise);
            else if (gesture == "pinch")
                stream = make_pinch(timing, from, from + travel, &noise);
            else
                return fail(line, "unknown gesture '" + gesture + "'");

            out.scenario.interact(
                std::make_shared<TouchStream>(std::move(stream)),
                cost_from_args(line, out.device, out.seed),
                arg_str(line, "label", gesture));
            return true;
        }
        return fail(line, "unknown command '" + cmd + "'");
    }
};

} // namespace

ScenarioScript
parse_scenario_script(const std::string &text)
{
    Parser parser;
    parser.out.device = pixel5();
    parser.out.scenario = Scenario("script");
    parser.out.ok = true;

    const std::vector<Line> lines = tokenize(text);

    // Expand `repeat N ... end` blocks (non-nested) first.
    std::vector<Line> expanded;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].words[0] == "repeat") {
            if (lines[i].words.size() < 2) {
                parser.fail(lines[i], "repeat needs a count");
                return parser.out;
            }
            const int count = std::atoi(lines[i].words[1].c_str());
            if (count <= 0) {
                parser.fail(lines[i], "repeat count must be positive");
                return parser.out;
            }
            std::vector<Line> body;
            std::size_t j = i + 1;
            for (; j < lines.size() && lines[j].words[0] != "end"; ++j)
                body.push_back(lines[j]);
            if (j == lines.size()) {
                parser.fail(lines[i], "repeat without matching end");
                return parser.out;
            }
            for (int k = 0; k < count; ++k)
                expanded.insert(expanded.end(), body.begin(), body.end());
            i = j; // skip past `end`
        } else if (lines[i].words[0] == "end") {
            parser.fail(lines[i], "end without repeat");
            return parser.out;
        } else {
            expanded.push_back(lines[i]);
        }
    }

    for (const Line &line : expanded) {
        if (!parser.handle(line))
            return parser.out;
    }
    if (parser.out.scenario.empty())
        parser.out.error = "script produced no segments";
    parser.out.ok = !parser.out.scenario.empty();
    return parser.out;
}

ScenarioScript
load_scenario_script(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ScenarioScript out;
        out.ok = false;
        out.error = "cannot open " + path;
        return out;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_scenario_script(buf.str());
}

} // namespace dvs
