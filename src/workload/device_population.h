/**
 * @file
 * DevicePopulation: a weighted fleet model for million-session sweeps.
 *
 * The paper evaluates three devices (Table 1: 60/90/120 Hz tiers); a
 * real deployment is a *mix* of such devices running a mix of app
 * workloads. This model crosses weighted device tiers with weighted
 * app-usage classes and materializes the (SystemConfig, Scenario, seed)
 * of any session *lazily*: session(i) is a pure function of the index
 * and the population seed, so
 *
 *  - a 1M-session campaign never holds a point list in memory,
 *  - --shard K/N slices (indices congruent to K mod N) partition the
 *    exact same session stream, and
 *  - any session can be re-materialized afterwards for bisection by
 *    index alone.
 *
 * Every session carries a cohort label ("<tier>/<mode>") used by
 * CampaignAggregator to key its percentile surfaces, which is how one
 * command answers "what does D-VSync do across a fleet of 1M users?".
 *
 * (The sources live in src/workload/ but compile into the harness
 * library: a population emits SystemConfigs, which sit above the
 * workload layer.)
 */

#ifndef DVS_WORKLOAD_DEVICE_POPULATION_H
#define DVS_WORKLOAD_DEVICE_POPULATION_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/render_system.h"
#include "harness/experiment_runner.h"
#include "workload/app_profiles.h"
#include "workload/scenario.h"

namespace dvs {

/** One device class of the fleet, with its population share. */
struct DeviceTier {
    std::string name; ///< cohort tag, e.g. "entry-60"
    DeviceConfig device;
    double weight = 1.0;
};

/** One app-usage class of the fleet (device-independent costs). */
struct AppUsageClass {
    std::string name; ///< e.g. "feed-scroll"
    ProfileSpec profile;
    double weight = 1.0;
    int swipes = 2;              ///< session length, §6.1 swipe units
    Time swipe_period = 500'000'000;
    double active_fraction = 0.7;
};

/** Fully materialized session: ready to hand to the harness. */
struct SessionSpec {
    SystemConfig config;
    Scenario scenario;
    std::string cohort; ///< aggregation key: "<tier>/<mode>"
    std::string label;  ///< cohort (kept equal so sinks can key on it)
};

/**
 * Weighted device-tier x app-class population. Draws are made with a
 * splitmix64 hash of (population seed, session index) — deterministic,
 * order-free, and identical across shards by construction.
 */
class DevicePopulation
{
  public:
    /**
     * @param tiers   weighted device tiers (weights need not sum to 1)
     * @param apps    weighted app-usage classes
     * @param seed    population seed; also drives per-session RNG seeds
     */
    DevicePopulation(std::vector<DeviceTier> tiers,
                     std::vector<AppUsageClass> apps,
                     std::uint64_t seed = 1);

    /**
     * The default fleet: Table-1 tiers (60 Hz entry / 90 Hz mid /
     * 120 Hz flagship) in a 50/30/20 mix, running a light/feed/browse/
     * game app mix, each session under VSync or D-VSync (50/50) so
     * every cohort has its baseline twin.
     */
    static DevicePopulation paper_fleet(std::uint64_t seed = 1);

    /** Materialize session @p index (pure; thread-safe). */
    SessionSpec session(std::uint64_t index) const;

    /**
     * Materialize session @p index as a ready-to-run harness point —
     * the one way every consumer (campaign stream, observatory
     * specimen re-simulation, tests) builds a fleet session, so they
     * cannot drift apart. Pure and thread-safe like session().
     */
    Experiment experiment(std::uint64_t index, int sim_workers = 0) const;

    /** Cohort label of session @p index without building the scenario. */
    std::string cohort_of(std::uint64_t index) const;

    const std::vector<DeviceTier> &tiers() const { return tiers_; }
    const std::vector<AppUsageClass> &apps() const { return apps_; }

  private:
    struct Draw {
        const DeviceTier *tier;
        const AppUsageClass *app;
        RenderMode mode;
        std::uint64_t run_seed;
    };
    Draw draw(std::uint64_t index) const;

    std::vector<DeviceTier> tiers_;
    std::vector<AppUsageClass> apps_;
    std::uint64_t seed_;
    double tier_weight_total_ = 0.0;
    double app_weight_total_ = 0.0;
};

} // namespace dvs

#endif // DVS_WORKLOAD_DEVICE_POPULATION_H
