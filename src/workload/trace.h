/**
 * @file
 * Frame traces: recorded per-frame costs for trace-driven simulation.
 *
 * The paper's game evaluation (§6.1, Fig. 14) collects runtime traces of
 * CPU and GPU time per frame and replays them under the D-VSync pattern.
 * FrameTrace is that artifact: an ordered list of frame costs plus the
 * rate it was captured at, with CSV import/export so traces can be shared.
 */

#ifndef DVS_WORKLOAD_TRACE_H
#define DVS_WORKLOAD_TRACE_H

#include <string>
#include <vector>

#include "workload/frame_cost.h"

namespace dvs {

/** An ordered recording of per-frame costs. */
struct FrameTrace {
    std::string name;
    double rate_hz = 60.0; ///< frame rate the trace was captured at
    std::vector<FrameCost> frames;

    std::size_t size() const { return frames.size(); }

    /** Serialize as CSV: header + one "ui_us,render_us" row per frame. */
    std::string to_csv() const;

    /**
     * Parse the CSV format produced by to_csv().
     * @throws never; returns an empty trace and warns on malformed input.
     */
    static FrameTrace from_csv(const std::string &csv);

    /** Write/read CSV files. @return success. */
    bool save(const std::string &path) const;
    static FrameTrace load(const std::string &path);
};

/**
 * How a TraceCostModel maps nominal frame indices onto trace entries.
 */
enum class TraceIndexMode {
    /**
     * Raw index modulo trace length: a short capture loops to drive an
     * arbitrarily long simulation (the §6.1 game-trace methodology).
     */
    kWrap,

    /**
     * Segment-slot mapping for session replay: the producer queries
     * segment i's slot s at index s + i * kCostIndexStride, so the slot
     * is recovered as index % kCostIndexStride and indexes the trace
     * directly (clamped to the last entry past the end). One recorded
     * per-segment table then replays bit-exactly at its recorded slots
     * regardless of which segment of the scenario it serves.
     */
    kSegmentSlot,
};

/**
 * Cost model that replays a trace — the unified replay path for both the
 * looping game-trace methodology (kWrap) and the trace record-and-replay
 * subsystem's per-segment capture tables (kSegmentSlot, see src/trace/).
 */
class TraceCostModel : public FrameCostModel
{
  public:
    explicit TraceCostModel(FrameTrace trace,
                            TraceIndexMode mode = TraceIndexMode::kWrap);

    FrameCost cost_for(std::int64_t nominal_index) const override;

    const FrameTrace &trace() const { return trace_; }
    TraceIndexMode index_mode() const { return mode_; }

  private:
    FrameTrace trace_;
    TraceIndexMode mode_;
};

} // namespace dvs

#endif // DVS_WORKLOAD_TRACE_H
