/**
 * @file
 * Frame traces: recorded per-frame costs for trace-driven simulation.
 *
 * The paper's game evaluation (§6.1, Fig. 14) collects runtime traces of
 * CPU and GPU time per frame and replays them under the D-VSync pattern.
 * FrameTrace is that artifact: an ordered list of frame costs plus the
 * rate it was captured at, with CSV import/export so traces can be shared.
 */

#ifndef DVS_WORKLOAD_TRACE_H
#define DVS_WORKLOAD_TRACE_H

#include <string>
#include <vector>

#include "workload/frame_cost.h"

namespace dvs {

/** An ordered recording of per-frame costs. */
struct FrameTrace {
    std::string name;
    double rate_hz = 60.0; ///< frame rate the trace was captured at
    std::vector<FrameCost> frames;

    std::size_t size() const { return frames.size(); }

    /** Serialize as CSV: header + one "ui_us,render_us" row per frame. */
    std::string to_csv() const;

    /**
     * Parse the CSV format produced by to_csv().
     * @throws never; returns an empty trace and warns on malformed input.
     */
    static FrameTrace from_csv(const std::string &csv);

    /** Write/read CSV files. @return success. */
    bool save(const std::string &path) const;
    static FrameTrace load(const std::string &path);
};

/**
 * Cost model that replays a trace. Indices beyond the end wrap around,
 * so a short capture can drive an arbitrarily long simulation.
 */
class TraceCostModel : public FrameCostModel
{
  public:
    explicit TraceCostModel(FrameTrace trace);

    FrameCost cost_for(std::int64_t nominal_index) const override;

    const FrameTrace &trace() const { return trace_; }

  private:
    FrameTrace trace_;
};

} // namespace dvs

#endif // DVS_WORKLOAD_TRACE_H
