/**
 * @file
 * Fixed-bin histogram with CDF export (for Fig. 1-style plots).
 */

#ifndef DVS_METRICS_HISTOGRAM_H
#define DVS_METRICS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace dvs {

/**
 * Equal-width histogram over [lo, hi). Out-of-range samples are counted
 * separately as underflow/overflow rather than clamped into the edge
 * bins, so bin counts describe only in-range mass and the CDF tail is
 * not silently pinned to 1.0 when samples exceed the range.
 *
 * Histograms over the same range are *mergeable*: bin counts are plain
 * integer sums, so merge() is associative and commutative and sharded
 * campaigns combine per-shard histograms into exactly the histogram the
 * unsharded run would have built (the keystone of CampaignAggregator's
 * shard-composition guarantee).
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, int bins);

    void add(double x);

    /**
     * Fold @p other into this histogram. Both must share the exact
     * (lo, hi, bins) layout — merging differently-binned histograms is
     * a fatal() configuration error. Under/overflow counts merge too;
     * integer addition makes the operation associative, commutative,
     * and bit-exact in any grouping.
     */
    void merge(const Histogram &other);

    /**
     * Record @p count samples into bin @p i directly (checkpoint
     * restore). Negative @p i addresses the out-of-range counters:
     * kUnderflowBin / kOverflowBin.
     */
    static constexpr int kUnderflowBin = -1;
    static constexpr int kOverflowBin = -2;
    void add_to_bin(int i, std::uint64_t count);

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    int bins() const { return int(counts_.size()); }

    /** Total samples added, including under/overflow. */
    std::uint64_t count() const { return total_; }
    std::uint64_t bin_count(int i) const { return counts_[i]; }

    /** Samples below lo() / at or above hi(). */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Left edge of bin @p i. */
    double bin_edge(int i) const;

    /**
     * Cumulative probability at the *right* edge of bin @p i, over all
     * samples: underflow counts toward every edge, overflow toward none,
     * so the last bin's CDF is < 1 exactly when samples overflowed.
     */
    double cdf_at(int i) const;

    /** Fraction of samples <= x. */
    double cdf(double x) const;

    /**
     * p-th percentile (p in [0, 100]) read off the binned CDF: the right
     * edge of the first bin whose cumulative count reaches p% of all
     * samples. Resolution is one bin width; underflow resolves to lo()
     * and a crossing beyond the last bin (overflow mass) to hi(). The
     * result depends only on the integer bin counts, so merged shards
     * report bit-identical percentile surfaces. @return NaN when empty
     * (no samples means no percentile surface; 0 would be
     * indistinguishable from an all-zero cohort).
     */
    double percentile(double p) const;

    /**
     * CSV rows: "bin_right_edge,pdf,cdf", preceded by "# samples,N",
     * "# underflow,N", "# overflow,N" comment lines surfacing the
     * out-of-range counts.
     */
    std::string to_csv() const;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

} // namespace dvs

#endif // DVS_METRICS_HISTOGRAM_H
