/**
 * @file
 * Fixed-bin histogram with CDF export (for Fig. 1-style plots).
 */

#ifndef DVS_METRICS_HISTOGRAM_H
#define DVS_METRICS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace dvs {

/** Equal-width histogram over [lo, hi); out-of-range values clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, int bins);

    void add(double x);

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    int bins() const { return int(counts_.size()); }
    std::uint64_t count() const { return total_; }
    std::uint64_t bin_count(int i) const { return counts_[i]; }

    /** Left edge of bin @p i. */
    double bin_edge(int i) const;

    /** Cumulative probability at the *right* edge of bin @p i. */
    double cdf_at(int i) const;

    /** Fraction of samples <= x. */
    double cdf(double x) const;

    /** CSV rows: "bin_right_edge,pdf,cdf". */
    std::string to_csv() const;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace dvs

#endif // DVS_METRICS_HISTOGRAM_H
