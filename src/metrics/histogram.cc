#include "metrics/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "sim/logging.h"

namespace dvs {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi)
{
    if (bins <= 0 || hi <= lo)
        fatal("Histogram needs bins > 0 and hi > lo");
    width_ = (hi - lo) / bins;
    counts_.assign(std::size_t(bins), 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    // x in [lo, hi): rounding can still land exactly on bins() when x is
    // a hair under hi, so clamp the index (not the sample) to the range.
    const int i = std::min(int((x - lo_) / width_), bins() - 1);
    ++counts_[std::size_t(i)];
}

void
Histogram::merge(const Histogram &other)
{
    if (other.lo_ != lo_ || other.hi_ != hi_ ||
        other.counts_.size() != counts_.size())
        fatal("Histogram::merge needs identical (lo, hi, bins) layouts");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
}

void
Histogram::add_to_bin(int i, std::uint64_t count)
{
    if (i == kUnderflowBin)
        underflow_ += count;
    else if (i == kOverflowBin)
        overflow_ += count;
    else if (i >= 0 && i < bins())
        counts_[std::size_t(i)] += count;
    else
        fatal("Histogram::add_to_bin: bin %d out of range", i);
    total_ += count;
}

double
Histogram::percentile(double p) const
{
    // NaN, not 0: an empty histogram has no percentile surface, and 0 is
    // a legitimate sample value — reporting layers must render empties
    // as "n/a" rather than as a cohort of zeros.
    if (total_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    // Integer threshold: ceil(p/100 * total) samples must be at or below
    // the reported edge. Computed in integers so the answer depends only
    // on bin counts, never on summation order.
    const double target_f = p / 100.0 * double(total_);
    std::uint64_t target = std::uint64_t(target_f);
    if (double(target) < target_f)
        ++target;
    if (target == 0)
        target = 1;
    std::uint64_t cum = underflow_;
    if (cum >= target)
        return lo_;
    for (int i = 0; i < bins(); ++i) {
        cum += counts_[std::size_t(i)];
        if (cum >= target)
            return bin_edge(i) + width_;
    }
    return hi_;
}

double
Histogram::bin_edge(int i) const
{
    return lo_ + width_ * i;
}

double
Histogram::cdf_at(int i) const
{
    if (total_ == 0)
        return 0.0;
    // Underflow samples lie below every bin edge, so they belong in every
    // cumulative count; overflow samples lie above all edges and in none.
    std::uint64_t cum = underflow_;
    for (int k = 0; k <= i; ++k)
        cum += counts_[std::size_t(k)];
    return double(cum) / double(total_);
}

double
Histogram::cdf(double x) const
{
    if (x < lo_)
        return 0.0;
    if (x >= hi_)
        return 1.0;
    const double pos = (x - lo_) / width_;
    const int i = int(pos);
    // x exactly on a bin edge: samples inside bin i are all > x.
    if (pos == double(i))
        return i == 0 ? 0.0 : cdf_at(i - 1);
    return cdf_at(i);
}

std::string
Histogram::to_csv() const
{
    char buf[96];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "# samples,%llu\n# underflow,%llu\n# overflow,%llu\n",
                  (unsigned long long)total_,
                  (unsigned long long)underflow_,
                  (unsigned long long)overflow_);
    out += buf;
    out += "bin_right_edge,pdf,cdf\n";
    std::uint64_t cum = underflow_;
    for (int i = 0; i < bins(); ++i) {
        cum += counts_[std::size_t(i)];
        const double pdf =
            total_ ? double(counts_[std::size_t(i)]) / double(total_) : 0;
        const double cdf_v = total_ ? double(cum) / double(total_) : 0;
        std::snprintf(buf, sizeof(buf), "%.6g,%.6g,%.6g\n",
                      bin_edge(i) + width_, pdf, cdf_v);
        out += buf;
    }
    return out;
}

} // namespace dvs
