/**
 * @file
 * Text reporters for the bench binaries: aligned tables and ASCII bar
 * charts, so each bench prints rows directly comparable to the paper's
 * figures.
 */

#ifndef DVS_METRICS_REPORTER_H
#define DVS_METRICS_REPORTER_H

#include <string>
#include <vector>

namespace dvs {

/** An aligned text table built row by row. */
class TableReporter
{
  public:
    explicit TableReporter(std::vector<std::string> headers);

    /** Add a row (cells beyond the header count are dropped). */
    void add_row(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Render the table with column alignment. */
    std::string to_string() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** A proportional ASCII bar: e.g. bar(2.5, 5.0, 20) -> "##########". */
std::string ascii_bar(double value, double max_value, int width = 30);

/** Section header for bench output. */
void print_section(const std::string &title);

} // namespace dvs

#endif // DVS_METRICS_REPORTER_H
