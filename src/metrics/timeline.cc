#include "metrics/timeline.h"

#include <algorithm>
#include <cstdio>

namespace dvs {
namespace {

/** Label for a frame: the last digit of its timeline slot. */
char
frame_glyph(const FrameRecord &rec)
{
    return char('0' + (rec.slot >= 0 ? rec.slot % 10 : 0));
}

/** Paint [from, to) of a lane with @p glyph. */
void
paint(std::string &lane, Time from, Time to, Time start, Time column,
      char glyph)
{
    if (to <= from)
        to = from + 1;
    const std::int64_t width = std::int64_t(lane.size());
    std::int64_t lo = (from - start) / column;
    std::int64_t hi = (to - start + column - 1) / column;
    lo = std::clamp<std::int64_t>(lo, 0, width);
    hi = std::clamp<std::int64_t>(hi, 0, width);
    for (std::int64_t i = lo; i < hi; ++i)
        lane[std::size_t(i)] = glyph;
}

} // namespace

std::string
render_timeline(const std::vector<FrameRecord> &records,
                const std::vector<RefreshLog> &refreshes,
                const TimelineOptions &options)
{
    TimelineOptions opt = options;
    if (opt.column == 0)
        opt.column = std::max<Time>(1, opt.period / 2);
    if (opt.duration == 0) {
        Time last = opt.start + opt.period;
        for (const RefreshLog &r : refreshes)
            last = std::max(last, r.time);
        opt.duration = last - opt.start + opt.period;
    }

    int columns = int((opt.duration + opt.column - 1) / opt.column);
    columns = std::clamp(columns, 1, opt.max_width);
    const Time end = opt.start + Time(columns) * opt.column;

    std::string ruler(std::size_t(columns), ' ');
    std::string ui(std::size_t(columns), '.');
    std::string render(std::size_t(columns), '.');
    std::string gpu(std::size_t(columns), '.');
    std::string queue(std::size_t(columns), '.');
    std::string display(std::size_t(columns), '.');
    bool any_gpu = false;

    // Ruler: a '|' on every vsync edge that lands on a column boundary.
    for (Time t = 0; t < end; t += opt.period) {
        if (t < opt.start)
            continue;
        const std::int64_t i = (t - opt.start) / opt.column;
        if (i >= 0 && i < columns)
            ruler[std::size_t(i)] = '|';
    }

    for (const FrameRecord &rec : records) {
        if (rec.queue_time != kTimeNone && rec.queue_time < opt.start)
            continue;
        if (rec.trigger_time > end)
            continue;
        const char g = frame_glyph(rec);
        if (rec.ui_start != kTimeNone)
            paint(ui, rec.ui_start, rec.ui_end, opt.start, opt.column, g);
        if (rec.render_start != kTimeNone) {
            paint(render, rec.render_start, rec.render_end, opt.start,
                  opt.column, g);
        }
        if (rec.gpu_start != kTimeNone) {
            any_gpu = true;
            paint(gpu, rec.gpu_start, rec.gpu_end, opt.start, opt.column,
                  g);
        }
        if (rec.queue_time != kTimeNone && rec.present_time != kTimeNone) {
            paint(queue, rec.queue_time, rec.present_time, opt.start,
                  opt.column, g);
        }
    }

    for (const RefreshLog &r : refreshes) {
        if (r.time < opt.start || r.time >= end)
            continue;
        if (r.presented) {
            // Find the frame to label the display lane.
            char g = '#';
            if (r.frame_id < records.size())
                g = frame_glyph(records[r.frame_id]);
            paint(display, r.time, r.time + opt.period, opt.start,
                  opt.column, g);
        } else if (r.drop) {
            paint(display, r.time, r.time + opt.period, opt.start,
                  opt.column, 'X');
        }
    }

    std::string out;
    out += "vsync    " + ruler + "\n";
    out += "ui       " + ui + "\n";
    out += "render   " + render + "\n";
    if (any_gpu)
        out += "gpu      " + gpu + "\n";
    out += "queue    " + queue + "\n";
    out += "display  " + display + "\n";
    char legend[160];
    std::snprintf(legend, sizeof(legend),
                  "         (column = %s; digits = timeline slot mod 10; "
                  "X = frame drop)\n",
                  format_time(opt.column).c_str());
    out += legend;
    return out;
}

} // namespace dvs
