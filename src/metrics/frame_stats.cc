#include "metrics/frame_stats.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace dvs {

FrameStats::FrameStats(Producer &producer, Panel &panel, int pipeline_depth)
    : producer_(producer), pipeline_depth_(pipeline_depth),
      seg_presented_(producer.scenario().size(), 0)
{
    panel.add_present_listener(
        [this](const PresentEvent &ev) { on_present(ev); });
}

bool
FrameStats::content_due(Time t) const
{
    // Content is due at refresh t when some segment's present schedule
    // says more frames should have been shown than actually were, and
    // either the segment's display window is still open or frames of it
    // are still in flight. Slots the producer skipped (VSync running
    // behind, or DTV's drop elasticity) were visible as repeats when
    // they were missed; they must not keep counting after the segment's
    // window closes.
    const std::size_t n = producer_.scenario().size();
    for (std::size_t i = 0; i < n; ++i) {
        const SegmentState &st = producer_.segment_state(int(i));
        if (st.anchor == kTimeNone)
            continue; // never started producing
        const Time lag = Time(pipeline_depth_) * st.period;
        const Time first = st.anchor + lag;
        if (t < first)
            continue;
        const std::int64_t expected = std::min<std::int64_t>(
            (t - first) / st.period + 1, st.total_slots);
        const std::int64_t presented = seg_presented_[i];
        if (presented >= expected)
            continue;
        const Time window_end = first + (st.total_slots - 1) * st.period;
        if (t <= window_end || presented < st.started)
            return true;
    }
    return false;
}

std::int64_t
FrameStats::frames_due() const
{
    std::int64_t total = 0;
    const std::size_t n = producer_.scenario().size();
    for (std::size_t i = 0; i < n; ++i) {
        const SegmentState &st = producer_.segment_state(int(i));
        if (st.anchor != kTimeNone)
            total += st.total_slots;
    }
    return total;
}

void
FrameStats::on_present(const PresentEvent &ev)
{
    RefreshLog log;
    log.time = ev.present_time;
    log.presented = !ev.repeat;

    if (!ev.repeat) {
        FrameRecord &rec = producer_.record(ev.meta.frame_id);
        rec.present_time = ev.present_time;
        ++presented_total_;
        ++seg_presented_[std::size_t(rec.segment_index)];
        log.frame_id = ev.meta.frame_id;
        log.due = true;

        ShownFrame sf;
        sf.frame_id = rec.frame_id;
        sf.segment_index = rec.segment_index;
        sf.content_timestamp = ev.meta.content_timestamp;
        sf.timeline_timestamp = ev.meta.timeline_timestamp;
        sf.present_time = ev.present_time;
        sf.queue_wait = ev.present_time - ev.queue_time;
        sf.pre_rendered = ev.meta.pre_rendered;
        sf.rate_hz = ev.rate_hz;
        shown_.push_back(sf);

        const SegmentState &st =
            producer_.segment_state(rec.segment_index);
        if (sf.queue_wait > st.period)
            ++stuffed_;
        else
            ++direct_;

        if (ev.meta.timeline_timestamp != kTimeNone) {
            latency_.add(
                double(ev.present_time - ev.meta.timeline_timestamp));
        }

        if (rec.has_content_value) {
            const Segment &seg =
                producer_.scenario().segments()[rec.segment_index];
            if (seg.touch) {
                const Time rel = ev.present_time - st.abs_start;
                const double truth =
                    touch_value(seg.touch->interpolate(rel));
                touch_error_.add(std::abs(rec.content_value - truth));
            }
        }
    } else {
        const bool due = content_due(ev.present_time);
        log.due = due;
        if (due) {
            log.drop = true;
            ++drops_;
        }
    }

    refreshes_.push_back(log);
}

double
FrameStats::fdps() const
{
    const Time active = producer_.scenario().active_duration();
    if (active <= 0)
        return 0.0;
    return double(drops_) / to_seconds(active);
}

double
FrameStats::fps() const
{
    const Time active = producer_.scenario().active_duration();
    if (active <= 0)
        return 0.0;
    return double(presents()) / to_seconds(active);
}

double
FrameStats::frame_drop_percent() const
{
    const std::int64_t due = frames_due();
    if (due <= 0)
        return 0.0;
    return 100.0 * double(drops_) / double(due);
}

StatSet
FrameStats::summary() const
{
    StatSet s;
    s.set("frames_due", double(frames_due()));
    s.set("frames_presented", double(presents()));
    s.set("frame_drops", double(drops_));
    s.set("fdps", fdps());
    s.set("fps", fps());
    s.set("frame_drop_percent", frame_drop_percent());
    s.set("direct_composition", double(direct_));
    s.set("buffer_stuffing", double(stuffed_));
    s.set("latency_mean_ms", to_ms(Time(latency_.mean())));
    s.set("latency_p95_ms",
          latency_.count() > 0 ? to_ms(Time(latency_.percentile(95)))
                               : 0.0);
    s.set("latency_max_ms", to_ms(Time(latency_.max())));
    if (touch_error_.count() > 0) {
        s.set("touch_error_mean_px", touch_error_.mean());
        s.set("touch_error_max_px", touch_error_.max());
    }
    return s;
}

} // namespace dvs
