#include "metrics/power_model.h"

namespace dvs {

double
PowerModel::energy_mj(const RunActivity &a) const
{
    // mW × s = mJ.
    double mj = params_.base_mw * to_seconds(a.wall_time);
    mj += params_.active_mw * to_seconds(a.pipeline_busy);
    mj += dvsync_overhead_mj(a);
    return mj;
}

double
PowerModel::dvsync_overhead_mj(const RunActivity &a) const
{
    if (!a.dvsync_on)
        return 0.0;
    double mj = params_.little_mw *
                to_seconds(Time(a.frames_produced) *
                           params_.dvsync_overhead_per_frame);
    // Predictor fitting runs on the app side (middle cores).
    mj += params_.active_mw *
          to_seconds(Time(a.predicted_frames) * a.predictor_overhead);
    return mj;
}

double
PowerModel::instructions(const RunActivity &a) const
{
    const double per_frame = a.dvsync_on ? params_.instr_per_frame_dvsync
                                         : params_.instr_per_frame_base;
    return per_frame * double(a.frames_produced);
}

double
PowerModel::percent_increase(const RunActivity &a,
                             const RunActivity &b) const
{
    const double ea = energy_mj(a);
    if (ea <= 0)
        return 0.0;
    return 100.0 * (energy_mj(b) - ea) / ea;
}

} // namespace dvs
