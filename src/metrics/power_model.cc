#include "metrics/power_model.h"

#include <cmath>
#include <limits>

#include "sim/logging.h"

namespace dvs {

double
PowerModel::energy_mj(const RunActivity &a) const
{
    // mW × s = mJ.
    double mj = params_.base_mw * to_seconds(a.wall_time);
    mj += params_.active_mw * to_seconds(a.pipeline_busy);
    mj += dvsync_overhead_mj(a);
    mj += a.gpu_mj;
    return mj;
}

double
PowerModel::dvsync_overhead_mj(const RunActivity &a) const
{
    if (!a.dvsync_on)
        return 0.0;
    double mj = params_.little_mw *
                to_seconds(Time(a.frames_produced) *
                           params_.dvsync_overhead_per_frame);
    // Predictor fitting runs on the app side (middle cores).
    mj += params_.active_mw *
          to_seconds(Time(a.predicted_frames) * a.predictor_overhead);
    return mj;
}

double
PowerModel::instructions(const RunActivity &a) const
{
    const double per_frame = a.dvsync_on ? params_.instr_per_frame_dvsync
                                         : params_.instr_per_frame_base;
    return per_frame * double(a.frames_produced);
}

double
PowerModel::percent_increase(const RunActivity &a,
                             const RunActivity &b) const
{
    const double ea = energy_mj(a);
    if (ea <= 0)
        return std::numeric_limits<double>::quiet_NaN();
    return 100.0 * (energy_mj(b) - ea) / ea;
}

// ----- thermal/DVFS plant ----------------------------------------------

ThermalParams
thermal_params_for(double budget_mw, double headroom_c,
                   double envelope_scale)
{
    if (budget_mw <= 0 || headroom_c <= 0 || envelope_scale <= 0)
        fatal("thermal envelope must be positive (budget=%g headroom=%g "
              "scale=%g)",
              budget_mw, headroom_c, envelope_scale);
    ThermalParams p;
    // Dissipating exactly the (scaled) budget settles at the throttle
    // threshold: steady state = ambient + R * P.
    const double budget_w = budget_mw * envelope_scale / 1000.0;
    p.throttle_c = p.ambient_c + headroom_c;
    p.release_c = p.throttle_c - 4.0;
    p.resistance_c_per_w = headroom_c / budget_w;
    return p;
}

ThermalPlant::ThermalPlant(ThermalParams params)
    : params_(std::move(params)),
      temp_c_(params_.start_c),
      peak_c_(params_.start_c)
{
    if (params_.levels.empty())
        fatal("ThermalPlant needs at least one DVFS level");
    for (const DvfsLevel &l : params_.levels) {
        if (l.speed <= 0 || l.power_mw < 0)
            fatal("DVFS level needs speed > 0 and power >= 0");
    }
    if (params_.tau <= 0)
        fatal("thermal tau must be > 0");
    if (params_.release_c > params_.throttle_c)
        fatal("thermal release temperature above the throttle threshold");
}

double
ThermalPlant::slowdown() const
{
    return params_.levels.front().speed / params_.levels[level_].speed;
}

Time
ThermalPlant::scale_duration(Time duration) const
{
    if (level_ == 0)
        return duration;
    return Time(double(duration) * slowdown());
}

void
ThermalPlant::integrate(Time to, double power_mw)
{
    if (to <= last_)
        return;
    const double dt = double(to - last_);
    const double t_inf = params_.ambient_c +
                         params_.resistance_c_per_w * power_mw / 1000.0;
    temp_c_ = t_inf + (temp_c_ - t_inf) * std::exp(-dt / double(params_.tau));
    if (temp_c_ > peak_c_)
        peak_c_ = temp_c_;
    last_ = to;
}

void
ThermalPlant::on_busy(Time start, Time end)
{
    if (end < start)
        panic("ThermalPlant busy interval runs backwards");
    // GPU submissions are serialized (the pipeline pumps one job at a
    // time), so intervals arrive in order; a stale interval would mean a
    // second submitter raced the integrator.
    if (start < last_)
        panic("ThermalPlant busy interval precedes the integrator");
    integrate(start, 0.0); // idle decay toward ambient
    const double power_mw = params_.levels[level_].power_mw;
    integrate(end, power_mw);
    energy_mj_ += power_mw * to_seconds(end - start);

    // Emergent throttle: one ladder step per accounted job, against the
    // hysteresis band. The release never climbs above the governor floor.
    if (temp_c_ >= params_.throttle_c && level_ + 1 < level_count()) {
        ++level_;
        ++trips_;
    } else if (temp_c_ <= params_.release_c && level_ > floor_) {
        --level_;
    }
}

double
ThermalPlant::temperature_at(Time now) const
{
    if (now <= last_)
        return temp_c_;
    const double dt = double(now - last_);
    return params_.ambient_c +
           (temp_c_ - params_.ambient_c) *
               std::exp(-dt / double(params_.tau));
}

void
ThermalPlant::set_governor_floor(int floor)
{
    if (floor < 0 || floor >= level_count())
        panic("governor floor %d outside the DVFS ladder", floor);
    floor_ = floor;
    if (level_ < floor_)
        level_ = floor_;
}

} // namespace dvs
