/**
 * @file
 * Stutter perception model (§6.2, Table 2).
 *
 * The paper's subjective data comes from trained UX evaluators whose
 * perceived stutters are confirmed with a high-speed camera. We stand in
 * for the evaluator with the industry jank heuristics the paper's
 * methodology references: a stutter is perceived when the display holds
 * one frame across multiple refreshes (a visible hitch), or when isolated
 * drops cluster densely enough that motion looks uneven.
 */

#ifndef DVS_METRICS_STUTTER_MODEL_H
#define DVS_METRICS_STUTTER_MODEL_H

#include <cstdint>
#include <vector>

#include "metrics/frame_stats.h"
#include "sim/time.h"

namespace dvs {

/** Tunables of the perception model. */
struct StutterParams {
    /** A run of >= this many consecutive drops is one visible stutter. */
    int hold_threshold = 2;

    /** This many isolated drops inside cluster_window is one stutter. */
    int cluster_drops = 3;
    Time cluster_window = 500'000'000; // 500 ms

    /**
     * Periodic misses with a steady spacing are a *cadence* (an app
     * paced at half rate), which users perceive as smooth-but-slower
     * motion, not stutter. Isolated drops whose spacing matches the
     * recent inter-drop interval within this tolerance do not cluster.
     */
    Time cadence_tolerance = 3'000'000; // 3 ms
};

/**
 * Streaming stutter detector: feed it every refresh in order.
 */
class StutterDetector
{
  public:
    explicit StutterDetector(StutterParams params = {});

    /** Record one refresh: was due content dropped at it? */
    void on_refresh(Time t, bool dropped);

    /** Finish the stream (flushes a trailing drop run). */
    void finish();

    /** Perceived stutters so far. */
    std::uint64_t stutters() const { return stutters_; }

  private:
    void end_run();
    bool steady_cadence() const;

    StutterParams params_;
    std::uint64_t stutters_ = 0;
    int run_length_ = 0;
    Time last_drop_time_ = 0;
    std::vector<Time> recent_isolated_;
    bool finished_ = false;
};

/** Score a finished run's refresh log. */
std::uint64_t count_stutters(const FrameStats &stats,
                             StutterParams params = {});

} // namespace dvs

#endif // DVS_METRICS_STUTTER_MODEL_H
