/**
 * @file
 * Rendering-latency analysis (§3.3 / §6.3, Fig. 15).
 *
 * Latency of a displayed frame is its present time minus its nominal
 * timeline timestamp. The architectural floor is pipeline_depth refresh
 * periods (2 for the §2 pipeline); buffer stuffing adds one period and
 * drops add the hold time. The breakdown quantifies how far above the
 * floor a run sits — the quantity D-VSync eliminates.
 */

#ifndef DVS_METRICS_LATENCY_H
#define DVS_METRICS_LATENCY_H

#include "metrics/frame_stats.h"
#include "sim/time.h"

namespace dvs {

/** Summary of a run's rendering latency. */
struct LatencyBreakdown {
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double max_ms = 0.0;

    /** Mean over direct-composition frames only. */
    double direct_mean_ms = 0.0;
    /** Mean over buffer-stuffed frames only. */
    double stuffed_mean_ms = 0.0;

    /** Architectural floor: pipeline_depth × period. */
    double floor_ms = 0.0;
    /** How many periods the mean sits above the floor. */
    double above_floor_periods = 0.0;
};

/**
 * Analyze the latency of a finished run.
 * @param period the display period of the run
 * @param pipeline_depth the nominal pipeline depth in periods
 */
LatencyBreakdown analyze_latency(const FrameStats &stats, Time period,
                                 int pipeline_depth = 2);

} // namespace dvs

#endif // DVS_METRICS_LATENCY_H
