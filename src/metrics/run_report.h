/**
 * @file
 * RunReport: the unified result type of a simulated run.
 *
 * One value aggregating everything the evaluation cares about — frame
 * drops and FDPS, the Fig. 6 displayed-frame classification, rendering
 * latency percentiles, perceived stutters, compositor deadline misses,
 * power-model activity and energy, and the effective configuration the
 * run resolved to. Benches and the experiment harness consume this
 * instead of reaching into FrameStats / Panel / RunActivity piecemeal,
 * so a run's outcome can be stored, compared, and averaged as a plain
 * value.
 */

#ifndef DVS_METRICS_RUN_REPORT_H
#define DVS_METRICS_RUN_REPORT_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/power_model.h"
#include "obs/drop_cause.h"

namespace dvs {

/** The configuration a run effectively executed with. */
struct ReportConfig {
    std::string mode;   ///< "VSync" / "D-VSync" / "SwapInterval"
    std::string device; ///< marketing name of the device preset
    double refresh_hz = 0.0;
    int buffers = 0;         ///< resolved queue capacity
    int prerender_limit = 0; ///< resolved limit (0 under VSync)
    std::uint64_t seed = 0;

    friend bool operator==(const ReportConfig &,
                           const ReportConfig &) = default;
};

/**
 * Per-surface slice of a multi-surface run (src/surface): the metrics of
 * one producer/queue/panel layer of a shared display, plus the buffer
 * allocation the memory arbiter resolved for it.
 */
struct SurfaceReport {
    std::string name;
    std::string mode;       ///< "D-VSync" / "VSync"
    int buffers = 0;        ///< queue capacity at run end
    int extra_buffers = 0;  ///< peak arbiter-granted extra buffers
    double buffer_mb = 0.0; ///< §6.4 memory cost of one extra buffer

    double fdps = 0.0;
    double fd_percent = 0.0;
    std::uint64_t drops = 0;
    std::int64_t frames_due = 0;
    std::uint64_t presents = 0;
    double latency_p95_ms = 0.0;

    std::uint64_t invariant_violations = 0;
    std::uint64_t degradations = 0;
    std::uint64_t repromotions = 0;

    /** Per-cause drop attribution (indexed by DropCause). */
    std::array<std::uint64_t, kDropCauseCount> drop_causes{};
    std::uint64_t drops_injected = 0; ///< drops inside a fault window

    friend bool operator==(const SurfaceReport &,
                           const SurfaceReport &) = default;
};

/** Complete, self-contained outcome of one (or several averaged) runs. */
struct RunReport {
    std::string label;    ///< free-form tag from the experiment point
    std::string scenario; ///< scenario name
    ReportConfig config;

    // ----- frame drops (§3.2) ------------------------------------------
    double fdps = 0.0;
    double fd_percent = 0.0;
    double fps = 0.0;
    std::uint64_t drops = 0;
    std::int64_t frames_due = 0;

    // ----- displayed-frame classification (Fig. 6) ----------------------
    std::uint64_t presents = 0;
    std::uint64_t direct = 0;
    std::uint64_t stuffed = 0;

    // ----- rendering latency (§6.3), milliseconds ------------------------
    double latency_mean_ms = 0.0;
    double latency_p50_ms = 0.0;
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    double latency_max_ms = 0.0;

    // ----- perception + pipeline health ---------------------------------
    std::uint64_t stutters = 0;
    std::uint64_t deadline_misses = 0; ///< compositor latch misses

    // ----- power model (§6.4) -------------------------------------------
    RunActivity activity;
    double energy_mj = 0.0;
    double pipeline_busy_s = 0.0;
    std::uint64_t frames_produced = 0;
    std::uint64_t predicted_frames = 0;

    // ----- robustness (fault campaign + watchdog) -----------------------
    std::uint64_t invariant_violations = 0; ///< InvariantMonitor total
    std::uint64_t faults_injected = 0;      ///< fault activations (all kinds)
    std::uint64_t degradations = 0;  ///< watchdog D-VSync -> VSync fall-backs
    std::uint64_t repromotions = 0;  ///< watchdog VSync -> D-VSync returns
    std::uint64_t dtv_resyncs = 0;   ///< DTV promise-chain resets

    // ----- drop root-cause attribution (src/obs) ------------------------

    /**
     * Per-cause drop counts (indexed by DropCause); the classifier
     * guarantees they sum to `drops`, and the systems panic if not.
     */
    std::array<std::uint64_t, kDropCauseCount> drop_causes{};
    std::uint64_t drops_injected = 0; ///< drops overlapping a fault window

    // ----- multi-surface composition (src/surface) ----------------------

    /**
     * Per-surface slices of a multi-surface run, in surface order; empty
     * for single-surface runs (which keeps debug_string() byte-stable
     * for every existing bench golden).
     */
    std::vector<SurfaceReport> surfaces;
    double budget_mb = 0.0;      ///< extra-buffer memory budget (§6.4)
    double budget_used_mb = 0.0; ///< peak extras memory in use
    std::uint64_t rearbitrations = 0; ///< arbiter allocation passes

    // ----- thermal/DVFS plant + governor (closed loop) ------------------

    /**
     * Whether the thermal plant ran; all fields below stay zero (and
     * unprinted by debug_string) when it did not, keeping governor-off
     * runs byte-identical to their goldens.
     */
    bool thermal_on = false;
    double peak_temp_c = 0.0;   ///< peak die temperature over the run
    double final_temp_c = 0.0;  ///< die temperature at run end
    std::uint64_t thermal_trips = 0; ///< emergent clock step-downs
    int dvfs_level_end = 0;     ///< ladder index at run end
    double gpu_energy_mj = 0.0; ///< plant-accounted GPU dynamic energy
    std::uint64_t governor_demotions = 0;
    std::uint64_t governor_promotions = 0;
    int governor_rung_end = 0;  ///< ladder rung at run end

    /**
     * Degrade/re-promote + governor transition log ("t=<ns> ..."),
     * merged in time order.
     */
    std::vector<std::string> timeline;

    /**
     * Nonempty when the run failed instead of completing (e.g. the
     * configuration was rejected with a ConfigError); every metric above
     * is then zero/default. The harness records the error and moves on.
     */
    std::string error;

    /** Runs aggregated into this report (1 for a single run). */
    int repeats = 1;

    /**
     * Combine repeat runs of the same point: rates, percentages,
     * latencies, and energies are averaged; event counts are summed
     * (matching the paper's seed-averaging methodology). Identity on an
     * empty or single-element input.
     */
    static RunReport averaged(const std::vector<RunReport> &runs);

    /**
     * Full-precision textual dump of every field. Two reports are
     * byte-identical here iff they compare equal; the determinism tests
     * diff these strings.
     */
    std::string debug_string() const;

    friend bool operator==(const RunReport &, const RunReport &) = default;
};

} // namespace dvs

#endif // DVS_METRICS_RUN_REPORT_H
