#include "metrics/reporter.h"

#include <algorithm>
#include <cstdio>

namespace dvs {

TableReporter::TableReporter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TableReporter::add_row(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TableReporter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TableReporter::to_string() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto &row : rows_)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line.append(widths[c] - row[c].size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = emit_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 < widths.size())
            rule.append(2, ' ');
    }
    out += rule + '\n';
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

void
TableReporter::print() const
{
    std::fputs(to_string().c_str(), stdout);
}

std::string
ascii_bar(double value, double max_value, int width)
{
    if (max_value <= 0 || value <= 0)
        return "";
    int n = int(value / max_value * width + 0.5);
    n = std::clamp(n, 0, width);
    return std::string(std::size_t(n), '#');
}

void
print_section(const std::string &title)
{
    std::string rule(title.size(), '=');
    std::printf("\n%s\n%s\n", title.c_str(), rule.c_str());
}

} // namespace dvs
