/**
 * @file
 * ASCII timeline rendering of a simulated run.
 *
 * Renders the runtime traces the paper draws in Figures 2 and 10: one
 * lane per pipeline stage (UI thread, render thread, buffer queue,
 * display), columns quantized to a fraction of the refresh period.
 * Frames are labelled by the last digit of their timeline slot so the
 * execution pattern — vsync-paced vs. accumulated pre-rendering — is
 * visible at a glance, and missed refreshes show as 'X' in the display
 * lane.
 */

#ifndef DVS_METRICS_TIMELINE_H
#define DVS_METRICS_TIMELINE_H

#include <string>
#include <vector>

#include "metrics/frame_stats.h"
#include "pipeline/frame.h"
#include "sim/time.h"

namespace dvs {

/** Options for timeline rendering. */
struct TimelineOptions {
    Time start = 0;             ///< left edge of the view
    Time duration = 0;          ///< 0 = until the last present
    Time column = 0;            ///< time per character (0 = period / 2)
    Time period = 16'666'666;   ///< refresh period (for the ruler)
    int max_width = 110;        ///< clip to this many columns
};

/**
 * Render the lanes of a run.
 *
 * @param records the producer's frame records
 * @param refreshes the metrics layer's refresh log
 * @return a multi-line string (ruler + 4 lanes)
 */
std::string render_timeline(const std::vector<FrameRecord> &records,
                            const std::vector<RefreshLog> &refreshes,
                            const TimelineOptions &options);

} // namespace dvs

#endif // DVS_METRICS_TIMELINE_H
