#include "metrics/stutter_model.h"

#include <algorithm>

namespace dvs {

StutterDetector::StutterDetector(StutterParams params) : params_(params) {}

void
StutterDetector::end_run()
{
    if (run_length_ >= params_.hold_threshold) {
        // A visible hitch: the screen held one frame for multiple
        // refreshes. One stutter regardless of the hold length.
        ++stutters_;
    } else if (run_length_ > 0) {
        // Isolated drop: only perceptible when drops cluster at an
        // irregular rhythm. A steady cadence (swap-interval pacing at
        // half rate) reads as uniform slower motion, not stutter.
        recent_isolated_.push_back(last_drop_time_);
        while (!recent_isolated_.empty() &&
               last_drop_time_ - recent_isolated_.front() >
                   params_.cluster_window) {
            recent_isolated_.erase(recent_isolated_.begin());
        }
        if (int(recent_isolated_.size()) >= params_.cluster_drops &&
            !steady_cadence()) {
            ++stutters_;
            recent_isolated_.clear();
        }
    }
    run_length_ = 0;
}

void
StutterDetector::on_refresh(Time t, bool dropped)
{
    if (dropped) {
        ++run_length_;
        last_drop_time_ = t;
    } else {
        end_run();
    }
}

void
StutterDetector::finish()
{
    if (!finished_) {
        end_run();
        finished_ = true;
    }
}

bool
StutterDetector::steady_cadence() const
{
    if (int(recent_isolated_.size()) < params_.cluster_drops)
        return false;
    Time min_gap = kTimeMax, max_gap = 0;
    for (std::size_t i = 1; i < recent_isolated_.size(); ++i) {
        const Time gap = recent_isolated_[i] - recent_isolated_[i - 1];
        min_gap = std::min(min_gap, gap);
        max_gap = std::max(max_gap, gap);
    }
    return max_gap - min_gap <= params_.cadence_tolerance;
}

std::uint64_t
count_stutters(const FrameStats &stats, StutterParams params)
{
    StutterDetector det(params);
    for (const RefreshLog &r : stats.refreshes())
        det.on_refresh(r.time, r.drop);
    det.finish();
    return det.stutters();
}

} // namespace dvs
