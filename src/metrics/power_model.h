/**
 * @file
 * Power, CPU-instruction, and thermal/DVFS model (§6.4 / §6.7 +
 * ROADMAP item 3).
 *
 * Two layers live here:
 *
 *  - PowerModel: the paper's first-order post-run energy accountant — a
 *    static floor (display + rails) plus dynamic energy proportional to
 *    pipeline busy time, with D-VSync's fixed per-frame bookkeeping cost
 *    (102.6 µs, §6.4) and ZDP's fitting cost on predicted frames.
 *
 *  - ThermalPlant: a *live* closed-loop plant in the spirit of Anglada
 *    et al.'s Dynamic Sampling Rate (PAPERS.md): the GPU runs on a DVFS
 *    clock ladder, per-frame GPU cost scales with inter-frame coherence
 *    and the clock in force, dissipated power feeds a deterministic RC
 *    thermal integrator over *simulated* time, and crossing the throttle
 *    temperature steps the clock down — thermal throttle becomes an
 *    emergent state the simulation produces, not just an injected fault.
 *    The Governor (src/governor/) additionally caps the ladder from
 *    above as one of its degradation rungs.
 *
 * The plant is pure double arithmetic over integer nanoseconds: no RNG,
 * no events, no wall clock. Feeding it the same busy schedule yields
 * bit-identical temperatures and energies, which is what lets a
 * governor-enabled run stay byte-identical at any --sim-workers count.
 */

#ifndef DVS_METRICS_POWER_MODEL_H
#define DVS_METRICS_POWER_MODEL_H

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dvs {

/** Model constants (defaults target a Pixel-5-class SoC). */
struct PowerParams {
    /** Static device power while the screen is on (mW). */
    double base_mw = 1450.0;

    /** Dynamic power of the big/middle cores while rendering (mW). */
    double active_mw = 900.0;

    /**
     * Power of the little-core cluster while the D-VSync threads run
     * (mW). VSync/D-VSync threads live on little cores so they do not
     * compete with the UI/render threads (§6.4).
     */
    double little_mw = 550.0;

    /** FPE + DTV execution time per frame (§6.4: 102.6 µs). */
    Time dvsync_overhead_per_frame = 102'600;

    /** Render-service instructions per frame, VSync baseline (§6.7). */
    double instr_per_frame_base = 10.793e6;

    /** Render-service instructions per frame with D-VSync on (§6.7). */
    double instr_per_frame_dvsync = 10.849e6;
};

/** Inputs describing a finished run. */
struct RunActivity {
    Time wall_time = 0;        ///< run duration
    Time pipeline_busy = 0;    ///< UI + render thread busy time
    std::uint64_t frames_produced = 0;
    bool dvsync_on = false;
    /** Frames that additionally ran an input predictor (ZDP). */
    std::uint64_t predicted_frames = 0;
    /** Predictor execution time per predicted frame (§6.5: 151.6 µs). */
    Time predictor_overhead = 151'600;
    /**
     * GPU dynamic energy accounted by the ThermalPlant (mJ); 0 when the
     * plant is off, which keeps the legacy energy model byte-identical.
     */
    double gpu_mj = 0.0;

    friend bool operator==(const RunActivity &,
                           const RunActivity &) = default;
};

/** First-order energy model. */
class PowerModel
{
  public:
    explicit PowerModel(PowerParams params = {}) : params_(params) {}

    /** Total energy of a run in millijoules. */
    double energy_mj(const RunActivity &a) const;

    /** Energy attributable to D-VSync bookkeeping alone (mJ). */
    double dvsync_overhead_mj(const RunActivity &a) const;

    /** Render-service instructions executed over the run. */
    double instructions(const RunActivity &a) const;

    /**
     * Percentage increase of @p b over @p a in energy. NaN when the
     * baseline energy is <= 0 — a zero baseline is a config bug, and
     * rendering it as "no change" would mask it; campaign roll-ups
     * print NaN as "n/a" (the empty-histogram convention).
     */
    double percent_increase(const RunActivity &a,
                            const RunActivity &b) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

// ----- thermal/DVFS plant (closed loop) --------------------------------

/** One operating point of the GPU clock ladder. */
struct DvfsLevel {
    double clock_ghz = 0.0; ///< nominal clock, reporting only
    double speed = 1.0;     ///< relative throughput vs level 0
    double power_mw = 0.0;  ///< dynamic power while busy at this level
};

/** Thermal RC model + DVFS ladder parameters. */
struct ThermalParams {
    /**
     * Clock ladder, fastest first. Level 0 is nominal; the thermal trip
     * and the governor's DVFS rung only ever move *down* the ladder
     * (higher index = slower, cooler).
     */
    std::vector<DvfsLevel> levels = {
        {2.6, 1.00, 2400.0},
        {2.1, 0.84, 1700.0},
        {1.7, 0.68, 1150.0},
        {1.3, 0.52, 760.0},
    };

    double ambient_c = 25.0; ///< heat-sink / skin reference temperature
    double start_c = 30.0;   ///< die temperature at run start

    /** Crossing this trips one clock step down (emergent throttle). */
    double throttle_c = 44.0;

    /** Cooling below this releases one step (hysteresis band). */
    double release_c = 40.0;

    /**
     * Thermal resistance die -> ambient (°C per W): the steady-state
     * temperature under sustained power P is ambient + R * P.
     */
    double resistance_c_per_w = 7.5;

    /** RC time constant of the die/chassis node (simulated ns). */
    Time tau = 400'000'000; // 400 ms

    /**
     * GPU-cost floor for a fully coherent frame (Anglada-style dynamic
     * sampling): a frame whose content barely moved re-renders at this
     * fraction of its nominal cost; incoherent frames pay full price.
     */
    double coherent_scale = 0.35;
};

/**
 * Map a device's §6 thermal envelope (sustained chassis budget in mW and
 * headroom above ambient in °C) to plant parameters: dissipating exactly
 * the budget settles right at the throttle threshold, so an envelope
 * scale < 1 (a constrained chassis: thin phone, hot day) makes the same
 * workload trip the throttle earlier.
 */
ThermalParams thermal_params_for(double budget_mw, double headroom_c,
                                 double envelope_scale = 1.0);

/**
 * Deterministic thermal/DVFS plant. Wire it to the GPU ExecResource:
 * a cost transform applies the clock slowdown to submitted jobs, and a
 * usage listener accounts each busy interval into the RC integrator
 * (advancing idle decay first). The integrator is lazy — it advances
 * only when told, so the plant schedules no simulator events.
 */
class ThermalPlant
{
  public:
    explicit ThermalPlant(ThermalParams params);

    const ThermalParams &params() const { return params_; }

    /** Current ladder index (0 = nominal clock). */
    int level() const { return level_; }
    int level_count() const { return int(params_.levels.size()); }

    /** Nominal-speed / current-speed job-duration multiplier (>= 1). */
    double slowdown() const;

    /** Scale a GPU job duration by the clock in force. */
    Time scale_duration(Time duration) const;

    /**
     * Account a GPU busy interval [start, end) at the current level:
     * idle-decay to start, integrate heating to end, accumulate energy,
     * then trip/release the clock against the hysteresis band.
     */
    void on_busy(Time start, Time end);

    /** Die temperature as of the last accounted interval. */
    double temperature_c() const { return temp_c_; }

    /** Decay-projected temperature at @p now (non-mutating; gauges). */
    double temperature_at(Time now) const;

    /**
     * Governor floor: the slowest level index the governor demands
     * (its DVFS-cap rung). The plant never runs faster than the floor;
     * thermal trips can still push below it.
     */
    void set_governor_floor(int floor);
    int governor_floor() const { return floor_; }

    /** Emergent thermal trips (clock step-downs at the threshold). */
    std::uint64_t throttle_trips() const { return trips_; }

    /** Running slower than the governor floor due to thermal trips? */
    bool throttled() const { return level_ > floor_; }

    /** Peak die temperature seen so far. */
    double peak_temp_c() const { return peak_c_; }

    /** GPU dynamic energy accounted so far (mJ). */
    double gpu_energy_mj() const { return energy_mj_; }

  private:
    /** Integrate toward the steady state of @p power_mw until @p to. */
    void integrate(Time to, double power_mw);

    ThermalParams params_;
    Time last_ = 0;
    double temp_c_;
    double peak_c_;
    int level_ = 0;
    int floor_ = 0;
    std::uint64_t trips_ = 0;
    double energy_mj_ = 0.0;
};

} // namespace dvs

#endif // DVS_METRICS_POWER_MODEL_H
