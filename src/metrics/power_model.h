/**
 * @file
 * Power and CPU-instruction model (§6.4 / §6.7).
 *
 * First-order energy model of a run: a static floor (display + rails)
 * plus dynamic energy proportional to pipeline busy time. D-VSync's own
 * logic (FPE + DTV) adds a fixed per-frame execution cost on the little
 * cores (the paper measures 102.6 µs/frame), and decoupling-aware input
 * prediction (ZDP) adds its fitting cost on predicted frames. The paper
 * attributes D-VSync's 0.13–0.37% end-to-end power increase to (a) these
 * overheads and (b) the frames rendered that VSync would have skipped —
 * both fall out of this model directly.
 */

#ifndef DVS_METRICS_POWER_MODEL_H
#define DVS_METRICS_POWER_MODEL_H

#include <cstdint>

#include "sim/time.h"

namespace dvs {

/** Model constants (defaults target a Pixel-5-class SoC). */
struct PowerParams {
    /** Static device power while the screen is on (mW). */
    double base_mw = 1450.0;

    /** Dynamic power of the big/middle cores while rendering (mW). */
    double active_mw = 900.0;

    /**
     * Power of the little-core cluster while the D-VSync threads run
     * (mW). VSync/D-VSync threads live on little cores so they do not
     * compete with the UI/render threads (§6.4).
     */
    double little_mw = 550.0;

    /** FPE + DTV execution time per frame (§6.4: 102.6 µs). */
    Time dvsync_overhead_per_frame = 102'600;

    /** Render-service instructions per frame, VSync baseline (§6.7). */
    double instr_per_frame_base = 10.793e6;

    /** Render-service instructions per frame with D-VSync on (§6.7). */
    double instr_per_frame_dvsync = 10.849e6;
};

/** Inputs describing a finished run. */
struct RunActivity {
    Time wall_time = 0;        ///< run duration
    Time pipeline_busy = 0;    ///< UI + render thread busy time
    std::uint64_t frames_produced = 0;
    bool dvsync_on = false;
    /** Frames that additionally ran an input predictor (ZDP). */
    std::uint64_t predicted_frames = 0;
    /** Predictor execution time per predicted frame (§6.5: 151.6 µs). */
    Time predictor_overhead = 151'600;

    friend bool operator==(const RunActivity &,
                           const RunActivity &) = default;
};

/** First-order energy model. */
class PowerModel
{
  public:
    explicit PowerModel(PowerParams params = {}) : params_(params) {}

    /** Total energy of a run in millijoules. */
    double energy_mj(const RunActivity &a) const;

    /** Energy attributable to D-VSync bookkeeping alone (mJ). */
    double dvsync_overhead_mj(const RunActivity &a) const;

    /** Render-service instructions executed over the run. */
    double instructions(const RunActivity &a) const;

    /** Percentage increase of @p b over @p a in energy. */
    double percent_increase(const RunActivity &a,
                            const RunActivity &b) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

} // namespace dvs

#endif // DVS_METRICS_POWER_MODEL_H
