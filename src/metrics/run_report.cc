#include "metrics/run_report.h"

#include <algorithm>
#include <cstdio>

namespace dvs {

RunReport
RunReport::averaged(const std::vector<RunReport> &runs)
{
    if (runs.empty())
        return {};
    RunReport avg = runs.front();
    for (std::size_t i = 1; i < runs.size(); ++i) {
        const RunReport &r = runs[i];
        avg.fdps += r.fdps;
        avg.fd_percent += r.fd_percent;
        avg.fps += r.fps;
        avg.drops += r.drops;
        avg.frames_due += r.frames_due;
        avg.presents += r.presents;
        avg.direct += r.direct;
        avg.stuffed += r.stuffed;
        avg.latency_mean_ms += r.latency_mean_ms;
        avg.latency_p50_ms += r.latency_p50_ms;
        avg.latency_p95_ms += r.latency_p95_ms;
        avg.latency_p99_ms += r.latency_p99_ms;
        avg.latency_max_ms += r.latency_max_ms;
        avg.stutters += r.stutters;
        avg.deadline_misses += r.deadline_misses;
        avg.activity.wall_time += r.activity.wall_time;
        avg.activity.pipeline_busy += r.activity.pipeline_busy;
        avg.activity.frames_produced += r.activity.frames_produced;
        avg.activity.predicted_frames += r.activity.predicted_frames;
        avg.energy_mj += r.energy_mj;
        avg.pipeline_busy_s += r.pipeline_busy_s;
        avg.frames_produced += r.frames_produced;
        avg.predicted_frames += r.predicted_frames;
        avg.invariant_violations += r.invariant_violations;
        avg.faults_injected += r.faults_injected;
        avg.degradations += r.degradations;
        avg.repromotions += r.repromotions;
        avg.dtv_resyncs += r.dtv_resyncs;
        for (int c = 0; c < kDropCauseCount; ++c)
            avg.drop_causes[c] += r.drop_causes[c];
        avg.drops_injected += r.drops_injected;
        avg.rearbitrations += r.rearbitrations;
        avg.thermal_on = avg.thermal_on || r.thermal_on;
        avg.peak_temp_c += r.peak_temp_c;
        avg.final_temp_c += r.final_temp_c;
        avg.thermal_trips += r.thermal_trips;
        avg.dvfs_level_end = std::max(avg.dvfs_level_end, r.dvfs_level_end);
        avg.activity.gpu_mj += r.activity.gpu_mj;
        avg.gpu_energy_mj += r.gpu_energy_mj;
        avg.governor_demotions += r.governor_demotions;
        avg.governor_promotions += r.governor_promotions;
        avg.governor_rung_end =
            std::max(avg.governor_rung_end, r.governor_rung_end);
        // timeline, error, and the per-surface slices stay the front
        // run's: transition logs are per-run narratives, and surface
        // slices describe one session's allocation outcome.
        avg.repeats += r.repeats;
    }
    const double n = double(runs.size());
    avg.fdps /= n;
    avg.fd_percent /= n;
    avg.fps /= n;
    avg.latency_mean_ms /= n;
    avg.latency_p50_ms /= n;
    avg.latency_p95_ms /= n;
    avg.latency_p99_ms /= n;
    avg.latency_max_ms /= n;
    avg.energy_mj /= n;
    avg.pipeline_busy_s /= n;
    avg.peak_temp_c /= n;
    avg.final_temp_c /= n;
    avg.gpu_energy_mj /= n;
    return avg;
}

std::string
RunReport::debug_string() const
{
    // %.17g round-trips doubles exactly, so equal strings <=> equal
    // reports bit for bit.
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "label=%s scenario=%s mode=%s device=%s hz=%.17g buffers=%d "
        "limit=%d seed=%llu fdps=%.17g fd%%=%.17g fps=%.17g drops=%llu "
        "due=%lld presents=%llu direct=%llu stuffed=%llu "
        "lat(ms)=[%.17g %.17g %.17g %.17g %.17g] stutters=%llu "
        "deadline_misses=%llu wall=%lld busy=%lld produced=%llu "
        "predicted=%llu dvsync=%d energy_mj=%.17g repeats=%d",
        label.c_str(), scenario.c_str(), config.mode.c_str(),
        config.device.c_str(), config.refresh_hz, config.buffers,
        config.prerender_limit, (unsigned long long)config.seed, fdps,
        fd_percent, fps, (unsigned long long)drops, (long long)frames_due,
        (unsigned long long)presents, (unsigned long long)direct,
        (unsigned long long)stuffed, latency_mean_ms, latency_p50_ms,
        latency_p95_ms, latency_p99_ms, latency_max_ms,
        (unsigned long long)stutters, (unsigned long long)deadline_misses,
        (long long)activity.wall_time, (long long)activity.pipeline_busy,
        (unsigned long long)activity.frames_produced,
        (unsigned long long)activity.predicted_frames,
        int(activity.dvsync_on), energy_mj, repeats);
    std::string out = buf;
    std::snprintf(buf, sizeof(buf),
                  " violations=%llu faults=%llu degradations=%llu "
                  "repromotions=%llu resyncs=%llu error=%s",
                  (unsigned long long)invariant_violations,
                  (unsigned long long)faults_injected,
                  (unsigned long long)degradations,
                  (unsigned long long)repromotions,
                  (unsigned long long)dtv_resyncs,
                  error.empty() ? "-" : error.c_str());
    out += buf;

    const auto causes_of =
        [&buf](const std::array<std::uint64_t, kDropCauseCount> &causes,
               std::uint64_t injected) {
            // Legacy causes print unconditionally; causes added later
            // (thermal/governor) only when nonzero, so runs that cannot
            // produce them stay byte-identical to pre-existing goldens.
            std::string s = " causes=[";
            for (int c = 0; c < kDropCauseCount; ++c) {
                if (c >= kDropCauseLegacyCount && causes[c] == 0)
                    continue;
                std::snprintf(buf, 64, "%s%s=%llu", c ? " " : "",
                              to_string(DropCause(c)),
                              (unsigned long long)causes[c]);
                s += buf;
            }
            std::snprintf(buf, 64, "] injected_drops=%llu",
                          (unsigned long long)injected);
            s += buf;
            return s;
        };
    out += causes_of(drop_causes, drops_injected);
    if (thermal_on) {
        std::snprintf(
            buf, sizeof(buf),
            " thermal=[peak_c=%.17g final_c=%.17g trips=%llu "
            "dvfs_end=%d gpu_mj=%.17g] governor=[demotions=%llu "
            "promotions=%llu rung_end=%d]",
            peak_temp_c, final_temp_c, (unsigned long long)thermal_trips,
            dvfs_level_end, gpu_energy_mj,
            (unsigned long long)governor_demotions,
            (unsigned long long)governor_promotions, governor_rung_end);
        out += buf;
    }
    if (!surfaces.empty()) {
        std::snprintf(buf, sizeof(buf),
                      " budget_mb=%.17g used_mb=%.17g rearb=%llu",
                      budget_mb, budget_used_mb,
                      (unsigned long long)rearbitrations);
        out += buf;
        for (const SurfaceReport &s : surfaces) {
            std::snprintf(
                buf, sizeof(buf),
                "\n  surface=%s mode=%s buffers=%d extra=%d mb=%.17g "
                "fdps=%.17g fd%%=%.17g drops=%llu due=%lld presents=%llu "
                "p95=%.17g violations=%llu degradations=%llu "
                "repromotions=%llu",
                s.name.c_str(), s.mode.c_str(), s.buffers, s.extra_buffers,
                s.buffer_mb, s.fdps, s.fd_percent,
                (unsigned long long)s.drops, (long long)s.frames_due,
                (unsigned long long)s.presents, s.latency_p95_ms,
                (unsigned long long)s.invariant_violations,
                (unsigned long long)s.degradations,
                (unsigned long long)s.repromotions);
            out += buf;
            out += causes_of(s.drop_causes, s.drops_injected);
        }
    }
    for (const std::string &t : timeline)
        out += "\n  " + t;
    return out;
}

} // namespace dvs
