#include "metrics/latency.h"

namespace dvs {

LatencyBreakdown
analyze_latency(const FrameStats &stats, Time period, int pipeline_depth)
{
    LatencyBreakdown b;
    const SampleStat &lat = stats.latency();
    if (lat.count() == 0)
        return b;

    b.mean_ms = to_ms(Time(lat.mean()));
    b.p50_ms = to_ms(Time(lat.percentile(50)));
    b.p95_ms = to_ms(Time(lat.percentile(95)));
    b.max_ms = to_ms(Time(lat.max()));
    b.floor_ms = to_ms(Time(pipeline_depth) * period);
    b.above_floor_periods =
        (b.mean_ms - b.floor_ms) / to_ms(period);

    SampleStat direct, stuffed;
    for (const ShownFrame &f : stats.shown()) {
        if (f.timeline_timestamp == kTimeNone)
            continue;
        const double lat_ns = double(f.present_time - f.timeline_timestamp);
        if (f.queue_wait > period)
            stuffed.add(lat_ns);
        else
            direct.add(lat_ns);
    }
    b.direct_mean_ms = to_ms(Time(direct.mean()));
    b.stuffed_mean_ms = to_ms(Time(stuffed.mean()));
    return b;
}

} // namespace dvs
