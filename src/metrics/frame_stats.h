/**
 * @file
 * Frame statistics: the paper's objective metrics.
 *
 * FrameStats observes the present fence and the producer's frame records
 * and derives:
 *  - frame drops and FDPS (§3.2): refreshes at which content was due but
 *    the screen had to repeat the previous frame;
 *  - the Fig. 6 classification of displayed frames into direct
 *    composition vs. buffer stuffing;
 *  - rendering latency (§3.3/§6.3): present time minus the frame's
 *    nominal timeline timestamp;
 *  - per-refresh drop log (input of the stutter model) and displayed-frame
 *    list (input of the judder metric);
 *  - touch-follow error for interactive frames (Fig. 7 / Fig. 16).
 */

#ifndef DVS_METRICS_FRAME_STATS_H
#define DVS_METRICS_FRAME_STATS_H

#include <cstdint>
#include <vector>

#include "display/panel.h"
#include "pipeline/producer.h"
#include "sim/stats.h"

namespace dvs {

/** One screen refresh as seen by the metrics layer. */
struct RefreshLog {
    Time time = 0;
    bool presented = false; ///< a new buffer was latched
    bool due = false;       ///< content was owed at this refresh
    bool drop = false;      ///< due && !presented
    std::uint64_t frame_id = 0; ///< valid when presented
};

/** A displayed frame's content/present pair (judder + touch error). */
struct ShownFrame {
    std::uint64_t frame_id = 0;
    int segment_index = -1;
    Time content_timestamp = kTimeNone;
    Time timeline_timestamp = kTimeNone;
    Time present_time = kTimeNone;
    Time queue_wait = 0;       ///< present − queue_time
    bool pre_rendered = false;
    double rate_hz = 0.0;
};

/**
 * Aggregates the run's objective metrics. Construct after the producer
 * and panel exist, before the simulation runs.
 */
class FrameStats
{
  public:
    /**
     * @param pipeline_depth nominal present lag of the architecture in
     *        refresh periods (2 for the app→RS→display pipeline of §2)
     */
    FrameStats(Producer &producer, Panel &panel, int pipeline_depth = 2);

    // ----- frame drops ------------------------------------------------

    /** Refreshes at which due content was missing. */
    std::uint64_t frame_drops() const { return drops_; }

    /** Frame drops per second of active (frame-producing) time. */
    double fdps() const;

    /** Share of active refreshes that were drops (Fig. 5's FD%). */
    double frame_drop_percent() const;

    /**
     * Effective frames per second over the active time — the industry
     * metric the paper quotes ("can only reach 95-105 FPS on the 120 Hz
     * screen").
     */
    double fps() const;

    // ----- displayed-frame classification (Fig. 6) ---------------------

    std::uint64_t direct_composition() const { return direct_; }
    std::uint64_t buffer_stuffing() const { return stuffed_; }
    std::uint64_t presents() const { return direct_ + stuffed_; }

    // ----- latency (§6.3) ----------------------------------------------

    /** Rendering latency samples (ns), presented frames only. */
    const SampleStat &latency() const { return latency_; }
    double mean_latency_ms() const { return to_ms(Time(latency_.mean())); }

    // ----- logs ---------------------------------------------------------

    const std::vector<RefreshLog> &refreshes() const { return refreshes_; }
    const std::vector<ShownFrame> &shown() const { return shown_; }

    /** Touch-follow error (px) of interactive frames vs. ground truth. */
    const SampleStat &touch_error_px() const { return touch_error_; }

    /** Total frames the scenario owed (anchored segments only). */
    std::int64_t frames_due() const;

    /** Summary of everything, for printing. */
    StatSet summary() const;

  private:
    void on_present(const PresentEvent &ev);
    bool content_due(Time t) const;

    Producer &producer_;
    int pipeline_depth_;

    std::uint64_t drops_ = 0;
    std::uint64_t direct_ = 0;
    std::uint64_t stuffed_ = 0;
    std::int64_t presented_total_ = 0;
    SampleStat latency_{/*keep_samples=*/true};
    SampleStat touch_error_{/*keep_samples=*/true};
    std::vector<RefreshLog> refreshes_;
    std::vector<ShownFrame> shown_;
    std::vector<std::int64_t> seg_presented_;
};

} // namespace dvs

#endif // DVS_METRICS_FRAME_STATS_H
