/**
 * @file
 * Compositor: the latch stage between the buffer queue and the panel.
 *
 * On OpenHarmony the hardware thread consumes the queue directly at the
 * HW-VSync edge; on Android, SurfaceFlinger latches at a VSync-sf offset,
 * so a buffer queued inside the latch window misses the upcoming refresh
 * even though it arrived "before the edge". The Compositor models this as
 * a latch deadline installed on the panel, and counts latch outcomes.
 */

#ifndef DVS_PIPELINE_COMPOSITOR_H
#define DVS_PIPELINE_COMPOSITOR_H

#include <cstdint>

#include "display/panel.h"
#include "sim/time.h"

namespace dvs {

/**
 * Latch-deadline policy plus composition statistics.
 */
class Compositor
{
  public:
    /**
     * @param panel the panel to govern
     * @param latch_lead buffers must be queued at least this long before
     *        the edge to be latched (0 = OpenHarmony-style direct path)
     */
    explicit Compositor(Panel &panel, Time latch_lead = 0);

    Time latch_lead() const { return latch_lead_; }
    void set_latch_lead(Time lead);

    /**
     * Fault-injection hook: while the hook returns true for an edge
     * timestamp, the compositor misses its latch deadline regardless of
     * when the buffer was queued (an overloaded composition thread).
     */
    using ForcedMiss = std::function<bool(Time)>;
    void set_forced_miss(ForcedMiss fn) { forced_miss_ = std::move(fn); }

    /** Buffers that arrived inside the latch window and had to wait. */
    std::uint64_t missed_deadline() const { return missed_; }

    /** Buffers latched on time. */
    std::uint64_t latched() const { return latched_; }

  private:
    bool eligible(const FrameBuffer &buf, const VsyncEdge &edge);

    Panel &panel_;
    Time latch_lead_;
    ForcedMiss forced_miss_;
    std::uint64_t missed_ = 0;
    std::uint64_t latched_ = 0;
};

} // namespace dvs

#endif // DVS_PIPELINE_COMPOSITOR_H
