#include "pipeline/compositor.h"

#include "sim/logging.h"

namespace dvs {

Compositor::Compositor(Panel &panel, Time latch_lead)
    : panel_(panel), latch_lead_(latch_lead)
{
    if (latch_lead < 0)
        fatal("latch lead must be >= 0");
    panel_.set_latch_policy(
        [this](const FrameBuffer &buf, const VsyncEdge &edge) {
            return eligible(buf, edge);
        });
}

void
Compositor::set_latch_lead(Time lead)
{
    if (lead < 0)
        fatal("latch lead must be >= 0");
    latch_lead_ = lead;
}

bool
Compositor::eligible(const FrameBuffer &buf, const VsyncEdge &edge)
{
    if (forced_miss_ && forced_miss_(edge.timestamp)) {
        ++missed_;
        return false;
    }
    const bool ok = buf.queue_time() <= edge.timestamp - latch_lead_;
    if (ok)
        ++latched_;
    else
        ++missed_;
    return ok;
}

} // namespace dvs
