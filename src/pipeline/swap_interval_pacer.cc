#include "pipeline/swap_interval_pacer.h"

#include <algorithm>
#include <vector>

#include "sim/logging.h"

namespace dvs {

SwapIntervalPacer::SwapIntervalPacer(SwapIntervalConfig config)
    : config_(config)
{
    if (config.fixed_interval < 0 || config.max_interval < 1)
        fatal("invalid swap-interval configuration");
    if (config.fixed_interval > 0)
        interval_ = config.fixed_interval;
}

void
SwapIntervalPacer::on_segment_start(int)
{
    edges_since_frame_ = interval_; // fire on the first edge
    producer_->request_vsync_trigger();
}

bool
SwapIntervalPacer::accept_vsync_trigger(const SwVsync &sw)
{
    period_hint_ = period_from_hz(sw.rate_hz);
    if (++edges_since_frame_ >= interval_) {
        edges_since_frame_ = 0;
        return true;
    }
    return false;
}

void
SwapIntervalPacer::on_ui_complete(const FrameRecord &rec)
{
    if (producer_->segment_has_more(rec.segment_index))
        producer_->request_vsync_trigger();
}

void
SwapIntervalPacer::on_frame_queued(const FrameRecord &rec)
{
    recent_cost_ms_.push_back(to_ms(rec.cost.total()));
    while (int(recent_cost_ms_.size()) > config_.window)
        recent_cost_ms_.pop_front();
    if (config_.fixed_interval == 0)
        retune();
}

double
SwapIntervalPacer::windowed_p90_ms() const
{
    std::vector<double> v(recent_cost_ms_.begin(), recent_cost_ms_.end());
    std::sort(v.begin(), v.end());
    return v[std::size_t(0.9 * double(v.size() - 1))];
}

void
SwapIntervalPacer::retune()
{
    if (int(recent_cost_ms_.size()) < config_.window)
        return;
    const double p90 = windowed_p90_ms();
    const double period_ms = to_ms(period_hint_);
    const double budget = double(interval_) * period_ms;

    if (p90 > config_.raise_threshold * budget &&
        interval_ < config_.max_interval) {
        ++interval_;
        ++changes_;
        debug("swap interval raised to %d (p90 %.2f ms)", interval_, p90);
    } else if (interval_ > 1 &&
               p90 < config_.lower_threshold *
                         double(interval_ - 1) * period_ms) {
        --interval_;
        ++changes_;
        debug("swap interval lowered to %d (p90 %.2f ms)", interval_,
              p90);
    }
}

} // namespace dvs
