#include "pipeline/producer.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace dvs {

Producer::Producer(Simulator &sim, Scenario scenario, BufferQueue &queue,
                   VsyncDistributor &dist)
    : sim_(sim), scenario_(std::move(scenario)), queue_(queue), dist_(dist),
      choreographer_(dist, VsyncChannel::kApp), ui_thread_(sim, "ui"),
      render_thread_(sim, "render"), gpu_(sim, "gpu"),
      states_(scenario_.size())
{
    choreographer_.set_callback(
        [this](const SwVsync &sw) { handle_vsync_trigger(sw); });
    queue_.on_slot_free([this] { on_slot_free(); });
    // FrameRecords are flat PODs indexed by frame id; pre-sizing keeps
    // the begin_frame hot path out of the allocator for typical runs.
    records_.reserve(512);
}

void
Producer::use_shared_gpu(ExecResource &gpu)
{
    if (started_)
        panic("use_shared_gpu after start()");
    gpu_res_ = &gpu;
}

void
Producer::set_pacer(FramePacer *pacer)
{
    pacer_ = pacer;
    pacer_->attach(*this);
}

void
Producer::start(Time at)
{
    if (started_)
        panic("Producer::start called twice");
    if (!pacer_)
        fatal("Producer needs a pacer before start()");
    started_ = true;
    start_time_ = at;

    for (std::size_t i = 0; i < scenario_.size(); ++i) {
        const Time seg_start = at + scenario_.segment_start(i);
        states_[i].abs_start = seg_start;
        states_[i].abs_end = seg_start + scenario_.segments()[i].duration;
        sim_.events().schedule(
            seg_start, [this, i] { on_segment_event(int(i)); },
            EventPriority::kSegment);
    }
}

void
Producer::on_segment_event(int i)
{
    current_segment_ = i;
    if (scenario_.segments()[i].produces_frames())
        pacer_->on_segment_start(i);
}

void
Producer::request_vsync_trigger()
{
    choreographer_.post_frame_callback();
}

bool
Producer::segment_has_more(int i) const
{
    if (i < 0 || i >= int(scenario_.size()))
        return false;
    if (!scenario_.segments()[i].produces_frames())
        return false;
    const SegmentState &st = states_[i];
    if (st.anchor == kTimeNone)
        return true; // not a single frame started yet
    return st.next_slot < st.total_slots;
}

Time
Producer::slot_timeline(int i, std::int64_t slot) const
{
    const SegmentState &st = states_[i];
    if (st.anchor == kTimeNone)
        panic("slot_timeline before segment %d anchored", i);
    return st.anchor + slot * st.period;
}

void
Producer::handle_vsync_trigger(const SwVsync &sw)
{
    const int i = current_segment_;
    if (i < 0 || !scenario_.segments()[i].produces_frames())
        return;

    if (!pacer_->accept_vsync_trigger(sw)) {
        // The pacer skipped this edge (swap-interval pacing): keep the
        // trigger armed so it can decide again at the next edge.
        request_vsync_trigger();
        return;
    }

    SegmentState &st = states_[i];
    if (st.anchor == kTimeNone) {
        // First trigger: anchor the segment's nominal timeline here.
        st.anchor = sw.timestamp;
        st.period = dist_.model().period();
        const Time span = st.abs_end - st.anchor;
        st.total_slots =
            span <= 0 ? 1 : (span + st.period - 1) / st.period;
    }

    const std::int64_t slot =
        (sw.timestamp - st.anchor + st.period / 2) / st.period;
    if (slot < st.next_slot) {
        // The producer ran ahead of the display (accumulated content):
        // this edge's slot is already produced. Keep the trigger armed
        // so production resumes once the display catches up — dropping
        // it would stall a segment that just fell back from the
        // decoupled path (runtime switch mid-animation).
        if (segment_has_more(i))
            request_vsync_trigger();
        return;
    }
    if (slot >= st.total_slots)
        return; // segment is over

    st.next_slot = slot + 1;
    begin_frame(i, slot, pacer_->vsync_content_timestamp(sw.timestamp),
                st.anchor + slot * st.period, /*pre_rendered=*/false);
}

void
Producer::begin_pre_rendered(Time content_timestamp)
{
    const int i = current_segment_;
    if (i < 0)
        panic("begin_pre_rendered with no active segment");
    SegmentState &st = states_[i];
    if (st.anchor == kTimeNone)
        panic("begin_pre_rendered before the segment's first vsync frame");
    if (st.next_slot >= st.total_slots)
        panic("begin_pre_rendered beyond the segment's last slot");

    const std::int64_t slot = st.next_slot++;
    begin_frame(i, slot, content_timestamp,
                st.anchor + slot * st.period, /*pre_rendered=*/true);
}

void
Producer::skip_slots(int n)
{
    const int i = current_segment_;
    if (i < 0 || n <= 0)
        return;
    SegmentState &st = states_[i];
    if (st.anchor == kTimeNone)
        return;
    st.next_slot =
        std::min<std::int64_t>(st.next_slot + n, st.total_slots);
}

double
Producer::sample_content(const Segment &seg, const FrameRecord &rec)
{
    const SegmentState &st = states_[rec.segment_index];
    SampleContext ctx;
    ctx.segment = &seg;
    ctx.now_rel = sim_.now() - st.abs_start;
    ctx.content_rel = rec.content_timestamp - st.abs_start;
    if (sampler_)
        return sampler_(ctx);
    // Default (IPL-less) sampling: render the latest input state known at
    // execution time — exactly what a conventional UI framework does.
    if (seg.touch) {
        const TouchEvent *ev = seg.touch->latest_at(ctx.now_rel);
        if (ev)
            return ev->pinch_distance != 0.0 ? ev->pinch_distance : ev->y;
    }
    return 0.0;
}

void
Producer::begin_frame(int seg_idx, std::int64_t slot, Time content_ts,
                      Time timeline_ts, bool pre_rendered)
{
    const Segment &seg = scenario_.segments()[seg_idx];

    FrameRecord rec;
    rec.frame_id = records_.size();
    rec.segment_index = seg_idx;
    rec.kind = seg.kind;
    rec.slot = slot;
    rec.content_timestamp = content_ts;
    rec.timeline_timestamp = timeline_ts;
    rec.pre_rendered = pre_rendered;
    rec.cost =
        seg.cost->cost_for(slot + std::int64_t(seg_idx) * kCostIndexStride);
    rec.rate_hz = rate_source_ ? rate_source_()
                               : 1e9 / double(dist_.model().period());
    rec.trigger_time = sim_.now();
    if (extra_cost_)
        rec.cost.ui_time += extra_cost_(seg, rec);
    if (seg.kind == SegmentKind::kInteraction) {
        rec.content_value = sample_content(seg, rec);
        rec.has_content_value = true;
    }

    ++in_flight_;
    ++states_[seg_idx].started;
    records_.push_back(rec);
    pending_ui_.push_back(rec.frame_id);
    pump_ui();
}

void
Producer::pump_ui()
{
    if (pending_ui_.empty() || !ui_thread_.idle())
        return;
    const std::uint64_t id = pending_ui_.front();
    pending_ui_.pop_front();
    FrameRecord &rec = records_[id];
    rec.ui_start = ui_thread_.run(rec.cost.ui_time,
                                  [this, id] { on_ui_done(id); });
}

void
Producer::on_ui_done(std::uint64_t id)
{
    FrameRecord &rec = records_[id];
    rec.ui_end = sim_.now();

    if (pacer_->align_render(rec)) {
        dist_.request_callback(
            VsyncChannel::kRs,
            [this, id](const SwVsync &) { enqueue_render(id); }, lane_);
    } else {
        enqueue_render(id);
    }

    pacer_->on_ui_complete(rec);
    pump_ui();
}

void
Producer::enqueue_render(std::uint64_t id)
{
    records_[id].render_ready = sim_.now();
    pending_render_.insert(id);
    pump_render();
}

void
Producer::pump_render()
{
    // Renders run strictly in frame order: frame N+1 may be ready (its
    // UI chained ahead) while frame N still waits for its VSync-rs edge.
    auto it = pending_render_.find(next_render_id_);
    if (it == pending_render_.end() || !render_thread_.idle())
        return;
    FrameBuffer *buf = queue_.try_dequeue(sim_.now());
    if (!buf) {
        // Record the stall start (forensics: queue-stuffing evidence).
        FrameRecord &stalled = records_[*it];
        if (stalled.buffer_stall_start == kTimeNone)
            stalled.buffer_stall_start = sim_.now();
        return; // resumed by on_slot_free
    }
    const std::uint64_t id = *it;
    pending_render_.erase(it);
    ++next_render_id_;
    FrameRecord &rec = records_[id];
    rec.render_start = render_thread_.run(
        rec.cost.render_time, [this, id, buf] { on_render_done(id, buf); });
}

void
Producer::on_render_done(std::uint64_t id, FrameBuffer *buf)
{
    FrameRecord &rec = records_[id];
    rec.render_end = sim_.now();

    if (rec.cost.gpu_time > 0) {
        // Command buffers execute on the GPU in submission order while
        // the render thread moves on to the next frame.
        pending_gpu_.emplace_back(id, buf);
        pump_gpu();
        pump_render();
        return;
    }
    finish_frame(id, buf);
}

void
Producer::pump_gpu()
{
    if (pending_gpu_.empty() || !gpu_res_->idle())
        return;
    const auto [id, buf] = pending_gpu_.front();
    pending_gpu_.pop_front();
    FrameRecord &rec = records_[id];
    Time gpu_cost = rec.cost.gpu_time;
    if (gpu_shaper_)
        gpu_cost = gpu_shaper_(rec, gpu_cost);
    rec.gpu_start = gpu_res_->run(gpu_cost, [this, id, buf] {
        on_gpu_done(id, buf);
    });
}

void
Producer::on_gpu_done(std::uint64_t id, FrameBuffer *buf)
{
    records_[id].gpu_end = sim_.now();
    finish_frame(id, buf);
    pump_gpu();
}

void
Producer::finish_frame(std::uint64_t id, FrameBuffer *buf)
{
    FrameRecord &rec = records_[id];

    FrameMeta &meta = buf->meta();
    meta.frame_id = rec.frame_id;
    meta.nominal_index = rec.slot;
    meta.content_timestamp = rec.content_timestamp;
    meta.timeline_timestamp = rec.timeline_timestamp;
    meta.render_rate_hz = rec.rate_hz;
    meta.pre_rendered = rec.pre_rendered;

    queue_.queue(buf, sim_.now());
    rec.queue_time = sim_.now();
    --in_flight_;
    ++states_[rec.segment_index].produced;

    for (auto &fn : queued_listeners_)
        fn(rec);
    pacer_->on_frame_queued(rec);
    pump_render();
}

void
Producer::on_slot_free()
{
    pump_render();
    if (pacer_)
        pacer_->on_slot_free();
}

void
VsyncPacer::on_segment_start(int)
{
    producer_->request_vsync_trigger();
}

void
VsyncPacer::on_ui_complete(const FrameRecord &rec)
{
    if (producer_->segment_has_more(rec.segment_index))
        producer_->request_vsync_trigger();
}

} // namespace dvs
