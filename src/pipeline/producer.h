/**
 * @file
 * Frame producer: the app UI thread + render service pipeline.
 *
 * The producer plays a Scenario: for each frame-producing segment it runs
 * the two-stage pipeline of §2 — UI logic on the UI thread, then GPU
 * rendering on the render thread — and queues the result into the buffer
 * queue the screen consumes.
 *
 * *When* each frame starts, and with what timestamps, is delegated to a
 * FramePacer: the baseline VsyncPacer paces every frame with software
 * VSync callbacks (the conventional architecture), while D-VSync's Frame
 * Pre-Executor (core/frame_pre_executor.h) starts frames ahead of the
 * display through the same interface.
 */

#ifndef DVS_PIPELINE_PRODUCER_H
#define DVS_PIPELINE_PRODUCER_H

#include <cstdint>
#include <deque>
#include <set>
#include <functional>
#include <vector>

#include "buffer/buffer_queue.h"
#include "pipeline/exec_resource.h"
#include "pipeline/frame.h"
#include "sim/simulator.h"
#include "vsyncsrc/choreographer.h"
#include "vsyncsrc/vsync_distributor.h"
#include "workload/scenario.h"

namespace dvs {

class Producer;

/** Context handed to the content sampler of interactive frames. */
struct SampleContext {
    const Segment *segment = nullptr;
    /** Execution time, relative to the segment start. */
    Time now_rel = 0;
    /** Content timestamp, relative to the segment start. */
    Time content_rel = 0;
};

/**
 * Decides when frames start and what timestamps they carry.
 *
 * Implementations: VsyncPacer (baseline, below) and the D-VSync
 * FramePreExecutor (core module).
 */
class FramePacer
{
  public:
    virtual ~FramePacer() = default;

    /** Bind to the producer (called by Producer::set_pacer). */
    virtual void attach(Producer &p) { producer_ = &p; }

    virtual const char *name() const = 0;

    /** A frame-producing segment became active. */
    virtual void on_segment_start(int segment_index) = 0;

    /** The UI stage of @p rec finished; decide about the next frame. */
    virtual void on_ui_complete(const FrameRecord &rec) = 0;

    /** A buffer slot returned to the free list. */
    virtual void on_slot_free() {}

    /** A rendered buffer entered the FIFO. */
    virtual void on_frame_queued(const FrameRecord &rec) { (void)rec; }

    /**
     * Whether the render stage of this frame waits for the next VSync-rs
     * edge (conventional pipeline) or chains immediately (decoupled).
     */
    virtual bool align_render(const FrameRecord &rec) const = 0;

    /**
     * Whether to start a frame on this vsync trigger. Pacers that run at
     * an integer swap interval decline intermediate edges; the producer
     * re-arms the choreographer so the pacer sees the next edge too.
     */
    virtual bool accept_vsync_trigger(const SwVsync &sw)
    {
        (void)sw;
        return true;
    }

    /**
     * Content timestamp of a frame triggered by a software vsync at
     * @p edge. The baseline renders for the edge itself; D-VSync
     * virtualizes even vsync-path frames to their display time so the
     * first frame of an animation paces uniformly with the pre-rendered
     * ones (§4.4).
     */
    virtual Time vsync_content_timestamp(Time edge) const { return edge; }

  protected:
    Producer *producer_ = nullptr;
};

/** Per-segment production bookkeeping. */
struct SegmentState {
    Time abs_start = kTimeNone;     ///< scheduled wall start
    Time abs_end = kTimeNone;       ///< scheduled wall end
    Time anchor = kTimeNone;        ///< first trigger edge (once known)
    Time period = 0;                ///< display period captured at anchor
    std::int64_t total_slots = -1;  ///< frames owed (once anchored)
    std::int64_t next_slot = 0;     ///< next slot to start (or skip)
    std::int64_t started = 0;       ///< frames actually begun
    std::int64_t produced = 0;      ///< frames queued so far
};

/**
 * Plays a scenario through the two-stage rendering pipeline.
 */
class Producer
{
  public:
    using ContentSampler = std::function<double(const SampleContext &)>;
    using QueuedListener = std::function<void(const FrameRecord &)>;

    Producer(Simulator &sim, Scenario scenario, BufferQueue &queue,
             VsyncDistributor &dist);

    /** Must be called before start(). The pacer must outlive the run. */
    void set_pacer(FramePacer *pacer);

    /** Override the interactive-frame content sampler (IPL hook). */
    void set_content_sampler(ContentSampler s) { sampler_ = std::move(s); }

    /** Extra UI-stage cost per frame (e.g. an input predictor's fit). */
    using ExtraCostFn =
        std::function<Time(const Segment &, const FrameRecord &)>;
    void set_extra_ui_cost(ExtraCostFn fn) { extra_cost_ = std::move(fn); }

    /**
     * Rate stamped on produced frames (LTPO co-design installs the
     * rendering-rate source; default: the observed display rate).
     */
    void set_rate_source(std::function<double()> fn)
    {
        rate_source_ = std::move(fn);
    }

    /** Notify @p fn whenever a frame's buffer is queued. */
    void add_queued_listener(QueuedListener fn)
    {
        queued_listeners_.push_back(std::move(fn));
    }

    /**
     * Shape a frame's GPU cost at submission (the thermal plant's
     * frame-coherence factor): receives the record and its nominal GPU
     * cost, returns the cost to submit. Runs before the GPU resource's
     * cost transforms; rec.cost stays nominal.
     */
    using GpuCostShaper =
        std::function<Time(const FrameRecord &, Time nominal)>;
    void set_gpu_cost_shaper(GpuCostShaper fn)
    {
        gpu_shaper_ = std::move(fn);
    }

    /** Schedule the scenario to play starting at absolute time @p at. */
    void start(Time at = 0);

    // ----- Pacer-facing API ------------------------------------------

    /** Request a one-shot software vsync trigger for the next frame. */
    void request_vsync_trigger();

    /**
     * Start a pre-rendered frame (D-VSync path) in the current segment.
     * @pre segment_has_more() for the current segment.
     */
    void begin_pre_rendered(Time content_timestamp);

    /**
     * Skip @p n timeline slots of the current segment: DTV's elasticity
     * to residual drops (§5.1, "skips VSync periods in such cases").
     */
    void skip_slots(int n);

    /** The scenario being played. */
    const Scenario &scenario() const { return scenario_; }

    /** Index of the segment currently driving production (-1 initially). */
    int current_segment() const { return current_segment_; }

    /** Bookkeeping of segment @p i. */
    const SegmentState &segment_state(int i) const { return states_[i]; }

    /** Whether segment @p i still owes frames beyond those started. */
    bool segment_has_more(int i) const;

    /** Frames begun but not yet queued. */
    int in_flight() const { return in_flight_; }

    /** Current display period as seen through the vsync model. */
    Time display_period() const { return dist_.model().period(); }

    /** Timeline timestamp of slot @p slot in segment @p i. */
    Time slot_timeline(int i, std::int64_t slot) const;

    // ----- Introspection ---------------------------------------------

    /** All frame records, indexed by frame id. */
    const std::vector<FrameRecord> &records() const { return records_; }

    /** Mutable access for the metrics layer (fills present_time). */
    FrameRecord &record(std::uint64_t frame_id)
    {
        return records_[frame_id];
    }

    ExecResource &ui_thread() { return ui_thread_; }
    ExecResource &render_thread() { return render_thread_; }
    ExecResource &gpu() { return *gpu_res_; }

    /**
     * Route this producer's GPU submissions to a shared device GPU
     * instead of the private one — several surfaces of one display
     * contend for the same GPU (multi-surface composition). Must be
     * called before start(); @p gpu must outlive the run.
     */
    void use_shared_gpu(ExecResource &gpu);

    /**
     * Pin this producer's pipeline stages (UI thread, render thread,
     * and the private GPU) to event lane @p lane for parallel lane
     * dispatch. A shared device GPU installed via use_shared_gpu() is
     * deliberately NOT pinned — cross-surface work must stay on the
     * shared lane. Placement only; results are identical at any worker
     * count.
     */
    void pin_lane(LaneId lane)
    {
        lane_ = lane;
        ui_thread_.set_lane(lane);
        render_thread_.set_lane(lane);
        gpu_.set_lane(lane);
        choreographer_.set_lane(lane);
    }

    /** Lane this producer is pinned to (kSharedLane when unpinned). */
    LaneId lane() const { return lane_; }

    /**
     * Resume GPU submissions parked behind another submitter's job on a
     * shared GPU (wired to ExecResource::add_done_listener by the
     * multi-surface system). No-op when nothing is pending or the GPU is
     * still busy.
     */
    void kick_gpu() { pump_gpu(); }

    /** Frames whose UI stage ran (for cost accounting). */
    std::uint64_t frames_started() const { return records_.size(); }

  private:
    void on_segment_event(int i);
    void handle_vsync_trigger(const SwVsync &sw);
    void begin_frame(int seg_idx, std::int64_t slot, Time content_ts,
                     Time timeline_ts, bool pre_rendered);
    void pump_ui();
    void on_ui_done(std::uint64_t id);
    void enqueue_render(std::uint64_t id);
    void pump_render();
    void on_render_done(std::uint64_t id, FrameBuffer *buf);
    void pump_gpu();
    void on_gpu_done(std::uint64_t id, FrameBuffer *buf);
    void finish_frame(std::uint64_t id, FrameBuffer *buf);
    void on_slot_free();
    double sample_content(const Segment &seg, const FrameRecord &rec);

    Simulator &sim_;
    Scenario scenario_;
    BufferQueue &queue_;
    VsyncDistributor &dist_;
    Choreographer choreographer_;
    ExecResource ui_thread_;
    ExecResource render_thread_;
    ExecResource gpu_;
    ExecResource *gpu_res_ = &gpu_;
    LaneId lane_ = kSharedLane;
    FramePacer *pacer_ = nullptr;
    ContentSampler sampler_;
    ExtraCostFn extra_cost_;
    GpuCostShaper gpu_shaper_;
    std::function<double()> rate_source_;
    std::vector<QueuedListener> queued_listeners_;

    std::vector<SegmentState> states_;
    std::vector<FrameRecord> records_;
    std::deque<std::uint64_t> pending_ui_;
    // Render stages must execute in frame order even when a pre-rendered
    // frame's UI finishes while an older frame still waits for its
    // VSync-rs edge; the set holds ready frames, next_render_id_ gates.
    std::set<std::uint64_t> pending_render_;
    std::uint64_t next_render_id_ = 0;
    // GPU work is submitted in render-completion order and executes
    // serially; entries pair the frame with its dequeued buffer.
    std::deque<std::pair<std::uint64_t, FrameBuffer *>> pending_gpu_;
    int current_segment_ = -1;
    int in_flight_ = 0;
    Time start_time_ = 0;
    bool started_ = false;
};

/**
 * The conventional VSync pacer (§2): every frame is triggered by a
 * software vsync callback, and render stages align to VSync-rs edges.
 */
class VsyncPacer : public FramePacer
{
  public:
    const char *name() const override { return "vsync"; }

    void on_segment_start(int) override;
    void on_ui_complete(const FrameRecord &rec) override;
    bool align_render(const FrameRecord &) const override { return true; }
};

} // namespace dvs

#endif // DVS_PIPELINE_PRODUCER_H
